//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements the subset of the proptest API the workspace uses:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`, `prop_filter`
//!   and `prop_filter_map` combinators,
//! * [`any`] for primitive types, range strategies, tuple strategies,
//!   [`Just`], `prop::collection::vec`, `prop::option::of` and
//!   `prop::sample::select`,
//! * the `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert!`,
//!   `prop_assert_eq!`, `prop_assert_ne!` and `prop_assume!` macros,
//! * [`ProptestConfig`] with `with_cases`.
//!
//! Differences from real proptest: generation is driven by a deterministic
//! splitmix64 RNG seeded from the test name (override with the
//! `PROPTEST_SEED` environment variable), and failing cases are *not*
//! shrunk — the failing input is reported as-is.

use std::fmt;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn seeded(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit output (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is negligible for test generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Test-case plumbing
// ---------------------------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs; another case is drawn.
    Reject(String),
}

impl TestCaseError {
    /// Builds the failing variant.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejecting variant.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!`) tolerated before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Executes `f` until `config.cases` cases pass. Called by `proptest!`.
///
/// # Panics
///
/// Panics when a case fails or too many cases are rejected.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(&s)),
        Err(_) => fnv1a(name),
    };
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        let case = u64::from(passed) + (u64::from(rejected) << 32);
        let mut rng =
            TestRng::seeded(seed ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1));
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                assert!(
                    rejected <= config.max_global_rejects,
                    "proptest '{name}': too many rejected cases ({rejected}), last: {why}"
                );
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest '{name}' failed after {passed} passing case(s) \
                 (base seed {seed:#x}): {msg}"
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe producing random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values for which `f` holds; retries otherwise.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Combined filter and map: retries while `f` returns `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

const FILTER_RETRIES: u32 = 4096;

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected {FILTER_RETRIES} draws",
            self.reason
        );
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!(
            "prop_filter_map({:?}) rejected {FILTER_RETRIES} draws",
            self.reason
        );
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy; see [`any`].
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T`; see [`any`].
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` generates uniformly over all bit patterns of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
range_strategy_signed!(i8, i16, i32, i64, isize);

macro_rules! range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let t = rng.unit_f64() as $t;
                self.start + t * (self.end - self.start)
            }
        }
    )*};
}
range_strategy_float!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Strategy built directly from a generation closure; used by
/// `prop_compose!`.
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Weighted choice between type-erased alternatives; built by
/// `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Builds from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weight bookkeeping is exhaustive")
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`]: an exact `usize` or a
    /// half-open `Range<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some-biased, matching proptest's default 3:1 ratio.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// `Option` wrapping values of `inner`, biased toward `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// See [`select`].
    pub struct Select<T: Clone> {
        choices: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.choices[rng.below(self.choices.len() as u64) as usize].clone()
        }
    }

    /// Uniform choice from a non-empty list.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select from an empty list");
        Select { choices }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running [`run_cases`] over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, stringify!($name), |rng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Composes named sub-strategies into a derived strategy function.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)
            ($($pat:pat_param in $strat:expr),+ $(,)?)
            -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)+
                $body
            })
        }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $((($weight) as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Like `assert!` but fails only the current case, with input reporting.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!` for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), lhs, rhs
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(*lhs == *rhs) {
            return Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), lhs, rhs
            )));
        }
    }};
}

/// Like `assert_ne!` for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if *lhs == *rhs {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                lhs
            )));
        }
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(concat!(
                "assume failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
        TestCaseResult,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::seeded(7);
        for _ in 0..1000 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-4.0f32..4.0).generate(&mut rng);
            assert!((-4.0..4.0).contains(&f));
        }
    }

    #[test]
    fn vec_sizes_respect_spec() {
        let mut rng = crate::TestRng::seeded(9);
        for _ in 0..100 {
            let exact = prop::collection::vec(0u32..10, 7).generate(&mut rng);
            assert_eq!(exact.len(), 7);
            let ranged = prop::collection::vec(0u32..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&ranged.len()));
        }
    }

    #[test]
    fn same_seed_same_draws() {
        let strat = (0u32..1000, prop::option::of(0u64..99)).prop_map(|(a, b)| (a * 2, b));
        let a: Vec<_> = {
            let mut rng = crate::TestRng::seeded(42);
            (0..50).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = crate::TestRng::seeded(42);
            (0..50).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro front-end compiles with patterns, assumes and asserts.
        #[test]
        fn macro_front_end((a, b) in (0u32..50, 0u32..50), pick in prop_oneof![2 => Just(0u8), 1 => 1u8..4]) {
            prop_assume!(a != b);
            prop_assert!(a + b < 100, "sum {} too large", a + b);
            prop_assert_eq!(a + b, b + a);
            prop_assert!(pick < 4);
        }
    }
}
