//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements the subset of the criterion API the workspace benches use:
//! [`Criterion`] with `bench_function` / `bench_with_input` /
//! `benchmark_group`, [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros (both the simple and the
//! `name/config/targets` forms).
//!
//! Instead of criterion's statistical machinery it times `sample_size`
//! batches with `std::time::Instant` and prints the median per-iteration
//! time — enough to compare configurations, not to publish numbers.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, e.g. `gemm64/3`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing helper passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timed sample per batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the timed region.
        std::hint::black_box(f());
        let iters_per_sample = 1;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

fn report(name: &str, median: Duration) {
    println!("bench {name:<48} median {median:>12.3?}");
}

/// The benchmark driver; mirrors `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(name, b.median());
        self
    }

    /// Runs a single benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&id.to_string(), b.median());
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{id}", self.name), b.median());
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{id}", self.name), b.median());
        self
    }

    /// Ends the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Re-export for benches that import `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` invoking each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_a(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    fn bench_b(c: &mut Criterion) {
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        for n in [1u64, 2] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
    }

    criterion_group!(benches, bench_a, bench_b);

    #[test]
    fn groups_run() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
