//! Property-based tests for the neural-network substrate.

use proptest::prelude::*;
use redmule_nn::backend::{Backend, CycleLedger};
use redmule_nn::conv::{conv2d_reference, Conv2d, FeatureMap};
use redmule_nn::mlp::{Dense, Network};
use redmule_nn::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A whole training step is bit-identical across the HW and SW
    /// backends for arbitrary tiny topologies, batch sizes and data.
    #[test]
    fn training_step_is_backend_invariant(
        in_dim in 1usize..12,
        hidden in 1usize..12,
        batch in 1usize..5,
        seed in 0u64..1000,
        lr_milli in 1u32..100,
    ) {
        let lr = lr_milli as f32 / 1000.0;
        let build = || Network::new(vec![
            Dense::new("a", in_dim, hidden, true, seed),
            Dense::new("b", hidden, in_dim, false, seed + 1),
        ]);
        let x = Tensor::from_fn(in_dim, batch, |r, c| {
            ((r * 31 + c * 17 + seed as usize) % 23) as f32 / 23.0 - 0.4
        });

        let mut hw_net = build();
        let mut sw_net = build();
        let mut lh = CycleLedger::new();
        let mut ls = CycleLedger::new();
        let rh = hw_net.train_step(&x, lr, &mut Backend::hw(), &mut lh).expect("hw step");
        let rs = sw_net.train_step(&x, lr, &mut Backend::sw(), &mut ls).expect("sw step");
        prop_assert_eq!(rh.loss.to_bits(), rs.loss.to_bits());
        for (a, b) in hw_net.layers().iter().zip(sw_net.layers()) {
            prop_assert_eq!(a.weights(), b.weights());
        }
    }

    /// im2col-lowered convolution equals the direct reference for random
    /// geometry, on both backends.
    #[test]
    fn conv_lowering_is_exact(
        in_ch in 1usize..4,
        out_ch in 1usize..6,
        kernel in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        h in 3usize..10,
        w in 3usize..10,
        seed in 0u64..1000,
    ) {
        prop_assume!(h + 2 * padding >= kernel && w + 2 * padding >= kernel);
        let layer = Conv2d::new("c", in_ch, out_ch, kernel, stride, padding, true, seed);
        let input = FeatureMap::from_fn(in_ch, h, w, |c, y, x| {
            ((c * 7 + y * 13 + x * 3 + seed as usize) % 19) as f32 / 9.0 - 1.0
        });
        let want = conv2d_reference(&layer, &input);
        for mut backend in [Backend::hw(), Backend::sw()] {
            let mut ledger = CycleLedger::new();
            let got = layer.forward(&input, &mut backend, &mut ledger).expect("forward");
            prop_assert_eq!(got.as_slice(), want.as_slice(), "backend {}", backend.name());
        }
    }

    /// Tensor transpose is an involution and preserves every element.
    #[test]
    fn transpose_involution(rows in 1usize..20, cols in 1usize..20, seed in 0u64..100) {
        let t = Tensor::random(rows, cols, 2.0, seed | 1);
        let tt = t.transposed();
        prop_assert_eq!(tt.rows(), cols);
        prop_assert_eq!(tt.transposed(), t.clone());
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(t.get(r, c), tt.get(c, r));
            }
        }
    }

    /// Deeper batching never changes per-column results: column `c` of a
    /// batched forward equals the single-sample forward of that column.
    #[test]
    fn batching_is_column_independent(
        batch in 2usize..5,
        seed in 0u64..200,
    ) {
        let build = || Network::new(vec![
            Dense::new("a", 6, 9, true, seed),
            Dense::new("b", 9, 6, false, seed + 1),
        ]);
        let x = Tensor::from_fn(6, batch, |r, c| ((r + 5 * c) % 11) as f32 / 11.0 - 0.3);
        let mut ledger = CycleLedger::new();
        let mut backend = Backend::hw();
        let y = build().forward(&x, &mut backend, &mut ledger).expect("batched forward");
        for c in 0..batch {
            let xc = Tensor::from_fn(6, 1, |r, _| x.get(r, c).to_f32());
            let yc = build().forward(&xc, &mut backend, &mut ledger).expect("column forward");
            for r in 0..y.rows() {
                prop_assert_eq!(
                    y.get(r, c).to_bits(),
                    yc.get(r, 0).to_bits(),
                    "row {}, column {}", r, c
                );
            }
        }
    }
}
