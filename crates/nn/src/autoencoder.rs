//! The TinyMLPerf (MLPerf Tiny) anomaly-detection deep autoencoder.
//!
//! The benchmark's reference model reconstructs 640-dimensional inputs
//! (5 frames x 128 mel bins of machine-sound spectrograms) through a
//! symmetric MLP with an 8-dimensional bottleneck:
//!
//! ```text
//! 640 -> 128 -> 128 -> 128 -> 128 -> 8 -> 128 -> 128 -> 128 -> 128 -> 640
//! ```
//!
//! All hidden layers use ReLU (the reference model's batch-norm layers are
//! folded into the dense weights, as is standard for deployment); the
//! output layer is linear. The paper's Fig. 4c/4d train this model on
//! device with batch sizes 1 and 16.

use crate::mlp::{Dense, Network};

/// Input dimensionality (5 frames x 128 mel bins).
pub const INPUT_DIM: usize = 640;
/// Hidden width.
pub const HIDDEN_DIM: usize = 128;
/// Bottleneck width.
pub const BOTTLENECK_DIM: usize = 8;

/// The layer widths of the reference topology, inputs first.
pub fn layer_dims() -> Vec<usize> {
    vec![
        INPUT_DIM,
        HIDDEN_DIM,
        HIDDEN_DIM,
        HIDDEN_DIM,
        HIDDEN_DIM,
        BOTTLENECK_DIM,
        HIDDEN_DIM,
        HIDDEN_DIM,
        HIDDEN_DIM,
        HIDDEN_DIM,
        INPUT_DIM,
    ]
}

/// Builds the MLPerf-Tiny deep autoencoder with deterministic weights.
///
/// # Example
///
/// ```
/// use redmule_nn::autoencoder;
///
/// let net = autoencoder::mlperf_tiny(1);
/// assert_eq!(net.in_dim(), 640);
/// assert_eq!(net.out_dim(), 640);
/// // ~270k parameters, matching the published model size.
/// assert!((260_000..280_000).contains(&net.param_count()));
/// ```
pub fn mlperf_tiny(seed: u64) -> Network {
    let dims = layer_dims();
    let n_layers = dims.len() - 1;
    let layers: Vec<Dense> = dims
        .windows(2)
        .enumerate()
        .map(|(i, pair)| {
            let relu = i + 1 < n_layers; // linear output layer
            Dense::new(format!("dense{i}"), pair[0], pair[1], relu, seed + i as u64)
        })
        .collect();
    Network::new(layers)
}

/// Memory footprint of one training step at batch size `b`, in bytes:
/// live activations plus the output-gradient buffer (weights live in L2
/// and are streamed; they are reported separately by
/// [`Network::weight_bytes`](crate::mlp::Network::weight_bytes)).
pub fn training_activation_bytes(net: &Network, b: usize) -> usize {
    // Activations of every layer boundary plus one gradient tensor of the
    // widest boundary.
    let widest = net
        .layers()
        .iter()
        .map(|l| l.out_dim().max(l.in_dim()))
        .max()
        .unwrap_or(0);
    net.activation_bytes(b) + 2 * widest * b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Backend, CycleLedger};
    use crate::Tensor;

    #[test]
    fn topology_matches_the_benchmark() {
        let dims = layer_dims();
        assert_eq!(dims.len(), 11);
        assert_eq!(dims[0], 640);
        assert_eq!(dims[5], 8);
        assert_eq!(dims[10], 640);
        let net = mlperf_tiny(3);
        assert_eq!(net.layers().len(), 10);
        assert!(net.layers()[0].has_relu());
        assert!(!net.layers()[9].has_relu(), "output layer is linear");
    }

    #[test]
    fn parameter_count_is_about_270k() {
        let net = mlperf_tiny(3);
        // 2*(640*128) + 6*(128*128) + 2*(128*8) + biases (1672).
        assert_eq!(net.param_count(), 163840 + 98304 + 2048 + 1672);
    }

    #[test]
    fn footprints_fit_a_pulp_l2() {
        let net = mlperf_tiny(3);
        let weights_kb = net.weight_bytes() / 1024;
        // FP16 weights ~520 KiB: stream from a typical >= 1 MiB L2.
        assert!(
            (400..600).contains(&weights_kb),
            "weights = {weights_kb} KiB"
        );
        let act1 = training_activation_bytes(&net, 1);
        let act16 = training_activation_bytes(&net, 16);
        assert!(act16 > 14 * act1 && act16 < 17 * act1);
        assert!(
            act16 / 1024 < 128,
            "B=16 activations fit the TCDM+L2 budget"
        );
    }

    #[test]
    fn single_forward_pass_runs_on_both_backends() {
        let x = Tensor::from_fn(640, 1, |r, _| ((r % 11) as f32 - 5.0) / 16.0);
        let mut hw = Backend::hw();
        let mut sw = Backend::sw();
        let mut lh = CycleLedger::new();
        let mut ls = CycleLedger::new();
        let yh = mlperf_tiny(7)
            .forward(&x, &mut hw, &mut lh)
            .expect("hw forward");
        let ys = mlperf_tiny(7)
            .forward(&x, &mut sw, &mut ls)
            .expect("sw forward");
        assert_eq!(yh, ys, "backends must agree bitwise");
        assert_eq!(yh.rows(), 640);
        assert!(lh.total_cycles() < ls.total_cycles());
    }

    #[test]
    fn batching_helps_hw_much_more_than_sw() {
        // The essence of Fig. 4d at unit-test scale: per-sample forward
        // cycles shrink dramatically on HW when batching, barely on SW.
        let mut hw = Backend::hw();
        let mut sw = Backend::sw();
        let per_sample = |backend: &mut Backend, b: usize| {
            let x = Tensor::from_fn(640, b, |r, c| ((r + 3 * c) % 13) as f32 / 16.0 - 0.4);
            let mut ledger = CycleLedger::new();
            let mut net = mlperf_tiny(5);
            net.forward(&x, backend, &mut ledger).expect("forward");
            ledger.total_cycles().count() as f64 / b as f64
        };
        let hw_gain = per_sample(&mut hw, 1) / per_sample(&mut hw, 16);
        let sw_gain = per_sample(&mut sw, 1) / per_sample(&mut sw, 16);
        assert!(hw_gain > 5.0, "HW batching gain = {hw_gain}");
        assert!(sw_gain < 2.0, "SW batching gain = {sw_gain}");
    }
}
