//! FP16 neural-network substrate for the RedMulE use-case experiments.
//!
//! The paper evaluates RedMulE on training the TinyMLPerf (MLPerf Tiny)
//! anomaly-detection **deep autoencoder** — forward and backward passes of
//! a 640-128-...-8-...-640 MLP — comparing the accelerator against the
//! 8-core software baseline at batch sizes 1 and 16 (Fig. 4c/4d). This
//! crate provides everything those experiments need:
//!
//! * [`Tensor`] — a row-major FP16 matrix.
//! * [`backend`] — the [`backend::Backend`] dispatcher sending every GEMM
//!   either to the cycle-accurate accelerator model or to the software
//!   kernel, plus elementwise-op cycle costs and a
//!   [`backend::CycleLedger`] recording per-layer, per-operation costs.
//! * [`mlp`] — dense layers with bias and ReLU, forward/backward/SGD.
//! * [`conv`] — 2-D convolutions lowered onto the GEMM via im2col.
//! * [`autoencoder`] — the MLPerf-Tiny topology and its memory footprint.
//!
//! Layer data is laid out activations-as-columns (`features x batch`), so
//! a forward GEMM has the paper's orientation `K = B` — which is exactly
//! why small batches underutilise the accelerator in Fig. 4c and batching
//! recovers almost 16x in Fig. 4d.
//!
//! # Example
//!
//! ```
//! use redmule_nn::autoencoder;
//! use redmule_nn::backend::{Backend, CycleLedger};
//!
//! let mut net = autoencoder::mlperf_tiny(42);
//! let mut backend = Backend::hw();
//! let mut ledger = CycleLedger::new();
//! let x = redmule_nn::Tensor::from_fn(640, 1, |i, _| ((i % 7) as f32 - 3.0) / 8.0);
//! let report = net.train_step(&x, 0.001, &mut backend, &mut ledger)?;
//! assert!(report.loss >= 0.0);
//! assert!(ledger.total_cycles().count() > 0);
//! # Ok::<(), redmule::EngineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod autoencoder;
pub mod backend;
pub mod conv;
pub mod mlp;
mod tensor;

pub use tensor::Tensor;
