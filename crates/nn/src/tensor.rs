//! A minimal row-major FP16 matrix.

use redmule_fp16::F16;
use std::fmt;

/// A dense, row-major `rows x cols` FP16 matrix.
///
/// Activations in this crate use the *features-as-rows* convention
/// (`features x batch`), matching the GEMM orientation the paper uses
/// (`K = B` in forward passes).
///
/// # Example
///
/// ```
/// use redmule_nn::Tensor;
///
/// let t = Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(t.get(1, 2).to_f32(), 5.0);
/// assert_eq!(t.transposed().get(2, 1).to_f32(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<F16>,
}

impl Tensor {
    /// A `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: vec![F16::ZERO; rows * cols],
        }
    }

    /// Builds a matrix element-wise from `f(row, col)` (values rounded to
    /// FP16).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Tensor {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(F16::from_f32(f(r, c)));
            }
        }
        Tensor { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<F16>) -> Tensor {
        assert_eq!(data.len(), rows * cols, "buffer does not match dimensions");
        Tensor { rows, cols, data }
    }

    /// Deterministic uniform initialisation in `[-scale, scale]`
    /// (xorshift; reproducible across platforms, no external RNG).
    pub fn random(rows: usize, cols: usize, scale: f32, seed: u64) -> Tensor {
        let mut state = seed | 1;
        Tensor::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let unit = (state >> 11) as f32 / (1u64 << 53) as f32; // [0,1)
            (2.0 * unit - 1.0) * scale
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for zero-sized matrices.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Memory footprint in bytes (2 per FP16 element).
    pub fn bytes(&self) -> usize {
        2 * self.data.len()
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> F16 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, v: F16) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.cols + c] = v;
    }

    /// The underlying row-major storage.
    pub fn as_slice(&self) -> &[F16] {
        &self.data
    }

    /// Mutable access to the storage.
    pub fn as_mut_slice(&mut self) -> &mut [F16] {
        &mut self.data
    }

    /// A new transposed matrix.
    pub fn transposed(&self) -> Tensor {
        Tensor {
            rows: self.cols,
            cols: self.rows,
            data: redmule_fp16::vector::transpose(&self.data, self.rows, self.cols),
        }
    }

    /// Frobenius-like mean of squared entries, computed in f64 (used for
    /// loss reporting only, not part of the FP16 contract).
    pub fn mean_square_f64(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data
            .iter()
            .map(|v| v.to_f64() * v.to_f64())
            .sum::<f64>()
            / self.data.len() as f64
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}x{}]", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:9.4} ", self.get(r, c).to_f32())?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(2, 3);
        assert_eq!((t.rows(), t.cols(), t.len()), (2, 3, 6));
        assert_eq!(t.bytes(), 12);
        t.set(1, 2, F16::ONE);
        assert_eq!(t.get(1, 2), F16::ONE);
        assert_eq!(t.get(0, 0), F16::ZERO);
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(2, 2, |r, c| (10 * r + c) as f32);
        let vals: Vec<f32> = t.as_slice().iter().map(|v| v.to_f32()).collect();
        assert_eq!(vals, [0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_bounds_checked() {
        let _ = Tensor::zeros(1, 1).get(0, 1);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_length_checked() {
        let _ = Tensor::from_vec(2, 2, vec![F16::ZERO; 3]);
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let tt = t.transposed();
        assert_eq!(tt.rows(), 4);
        assert_eq!(tt.get(3, 2), t.get(2, 3));
        assert_eq!(tt.transposed(), t);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Tensor::random(8, 8, 0.5, 7);
        let b = Tensor::random(8, 8, 0.5, 7);
        let c = Tensor::random(8, 8, 0.5, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|v| v.to_f32().abs() <= 0.5));
        // Not degenerate: some spread.
        assert!(a.mean_square_f64() > 1e-4);
    }

    #[test]
    fn mean_square_of_zeros_and_empty() {
        assert_eq!(Tensor::zeros(2, 2).mean_square_f64(), 0.0);
        assert_eq!(Tensor::zeros(0, 5).mean_square_f64(), 0.0);
        assert!(Tensor::zeros(0, 5).is_empty());
    }

    #[test]
    fn display_truncates_large() {
        let t = Tensor::zeros(20, 20);
        let s = t.to_string();
        assert!(s.contains("[20x20]"));
        assert!(s.contains("..."));
    }
}
