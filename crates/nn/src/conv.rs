//! 2-D convolution lowered onto the GEMM accelerator (im2col).
//!
//! RedMulE accelerates matrix multiplication; convolutional layers reach
//! it through the standard im2col lowering: every output position's
//! receptive field becomes one column of a patch matrix, and the
//! convolution becomes `Y(out_ch x positions) = W(out_ch x patch) * P`.
//! The patch gather runs on the cluster cores (DMA-assisted in practice)
//! and is charged as elementwise work; the GEMM goes to whichever
//! [`Backend`] is in use.
//!
//! The numerical contract is [`conv2d_reference`]: accumulation over the
//! receptive field in `(channel, ky, kx)` row-major order, exactly the
//! order the lowered GEMM uses — so accelerator and software results stay
//! bit-identical to the reference.

use crate::backend::{Backend, CycleLedger, OpKind};
use redmule::EngineError;
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;

/// A channel-major 2-D feature map (`channels x height x width`).
///
/// # Example
///
/// ```
/// use redmule_nn::conv::FeatureMap;
/// use redmule_fp16::F16;
///
/// let map = FeatureMap::zeros(3, 8, 8);
/// assert_eq!(map.len(), 3 * 64);
/// assert_eq!(map.get(2, 7, 7), F16::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMap {
    channels: usize,
    height: usize,
    width: usize,
    data: Vec<F16>,
}

impl FeatureMap {
    /// An all-zero map.
    pub fn zeros(channels: usize, height: usize, width: usize) -> FeatureMap {
        FeatureMap {
            channels,
            height,
            width,
            data: vec![F16::ZERO; channels * height * width],
        }
    }

    /// Builds a map element-wise from `f(channel, y, x)`.
    pub fn from_fn(
        channels: usize,
        height: usize,
        width: usize,
        mut f: impl FnMut(usize, usize, usize) -> f32,
    ) -> FeatureMap {
        let mut data = Vec::with_capacity(channels * height * width);
        for c in 0..channels {
            for y in 0..height {
                for x in 0..width {
                    data.push(F16::from_f32(f(c, y, x)));
                }
            }
        }
        FeatureMap {
            channels,
            height,
            width,
            data,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Spatial width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for degenerate empty maps.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, c: usize, y: usize, x: usize) -> F16 {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "index ({c},{y},{x}) out of range"
        );
        self.data[(c * self.height + y) * self.width + x]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, c: usize, y: usize, x: usize, v: F16) {
        assert!(
            c < self.channels && y < self.height && x < self.width,
            "index ({c},{y},{x}) out of range"
        );
        self.data[(c * self.height + y) * self.width + x] = v;
    }

    /// The flat channel-major storage.
    pub fn as_slice(&self) -> &[F16] {
        &self.data
    }

    /// Zero-padded read: out-of-bounds coordinates return `+0`.
    fn padded(&self, c: usize, y: isize, x: isize) -> F16 {
        if y < 0 || x < 0 || y as usize >= self.height || x as usize >= self.width {
            F16::ZERO
        } else {
            self.get(c, y as usize, x as usize)
        }
    }
}

/// A 2-D convolution layer executed through im2col + GEMM.
///
/// # Example
///
/// ```
/// use redmule_nn::backend::{Backend, CycleLedger};
/// use redmule_nn::conv::{Conv2d, FeatureMap};
///
/// let conv = Conv2d::new("c0", 1, 4, 3, 1, 1, true, 7);
/// let input = FeatureMap::from_fn(1, 8, 8, |_, y, x| (y + x) as f32 / 16.0);
/// let mut backend = Backend::hw();
/// let mut ledger = CycleLedger::new();
/// let out = conv.forward(&input, &mut backend, &mut ledger)?;
/// assert_eq!((out.channels(), out.height(), out.width()), (4, 8, 8));
/// # Ok::<(), redmule::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    name: String,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    /// `out_ch x (in_ch * kernel * kernel)`, row-major — GEMM-ready.
    weights: Vec<F16>,
    bias: Vec<F16>,
    relu: bool,
}

impl Conv2d {
    /// Creates a layer with deterministic uniform init.
    ///
    /// # Panics
    ///
    /// Panics if any structural parameter is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        relu: bool,
        seed: u64,
    ) -> Conv2d {
        assert!(
            in_ch > 0 && out_ch > 0 && kernel > 0 && stride > 0,
            "conv dimensions must be positive"
        );
        let patch = in_ch * kernel * kernel;
        let scale = 1.0 / (patch as f32).sqrt();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut rnd = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let unit = (state >> 11) as f32 / (1u64 << 53) as f32;
            F16::from_f32((2.0 * unit - 1.0) * scale)
        };
        Conv2d {
            name: name.into(),
            in_ch,
            out_ch,
            kernel,
            stride,
            padding,
            weights: (0..out_ch * patch).map(|_| rnd()).collect(),
            bias: vec![F16::ZERO; out_ch],
            relu,
        }
    }

    /// Layer label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output spatial size for an input of `h x w`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let span_h = h + 2 * self.padding;
        let span_w = w + 2 * self.padding;
        assert!(
            span_h >= self.kernel && span_w >= self.kernel,
            "kernel {k} does not fit input {h}x{w} with padding {p}",
            k = self.kernel,
            p = self.padding
        );
        (
            (span_h - self.kernel) / self.stride + 1,
            (span_w - self.kernel) / self.stride + 1,
        )
    }

    /// Raw GEMM-ready weights (`out_ch x in_ch*k*k`).
    pub fn weights(&self) -> &[F16] {
        &self.weights
    }

    /// Forward pass: im2col gather, GEMM, bias and optional ReLU.
    ///
    /// # Errors
    ///
    /// Returns the backend's [`EngineError`] if the lowered GEMM fails.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count mismatches or the kernel does not
    /// fit.
    pub fn forward(
        &self,
        input: &FeatureMap,
        backend: &mut Backend,
        ledger: &mut CycleLedger,
    ) -> Result<FeatureMap, EngineError> {
        assert_eq!(input.channels(), self.in_ch, "input channels mismatch");
        let (oh, ow) = self.output_hw(input.height(), input.width());
        let positions = oh * ow;
        let patch = self.in_ch * self.kernel * self.kernel;

        // im2col gather (cores/DMA): one patch column per output position.
        let mut cols = vec![F16::ZERO; patch * positions];
        for oy in 0..oh {
            for ox in 0..ow {
                let pos = oy * ow + ox;
                let base_y = (oy * self.stride) as isize - self.padding as isize;
                let base_x = (ox * self.stride) as isize - self.padding as isize;
                let mut row = 0usize;
                for c in 0..self.in_ch {
                    for ky in 0..self.kernel {
                        for kx in 0..self.kernel {
                            cols[row * positions + pos] =
                                input.padded(c, base_y + ky as isize, base_x + kx as isize);
                            row += 1;
                        }
                    }
                }
            }
        }
        ledger.record(
            &self.name,
            OpKind::Elementwise,
            None,
            backend.elementwise_cycles(cols.len()),
        );

        // GEMM: Y(out_ch x positions) = W(out_ch x patch) * cols.
        let shape = GemmShape::new(self.out_ch, patch, positions);
        let (y, cycles) = backend.gemm(shape, &self.weights, &cols)?;
        ledger.record(&self.name, OpKind::Forward, Some(shape), cycles);

        // Bias + activation on the cores.
        let mut out = FeatureMap::zeros(self.out_ch, oh, ow);
        for c in 0..self.out_ch {
            for pos in 0..positions {
                let mut v = y[c * positions + pos] + self.bias[c];
                if self.relu && !v.is_nan() && v.is_sign_negative() && !v.is_zero() {
                    v = F16::ZERO;
                }
                out.data[c * positions + pos] = v;
            }
        }
        ledger.record(
            &self.name,
            OpKind::Elementwise,
            None,
            backend.elementwise_cycles(out.len()),
        );
        Ok(out)
    }
}

/// 2-D max pooling, executed on the cluster cores.
///
/// # Example
///
/// ```
/// use redmule_nn::backend::{Backend, CycleLedger};
/// use redmule_nn::conv::{FeatureMap, MaxPool2d};
///
/// let pool = MaxPool2d::new(2, 2);
/// let x = FeatureMap::from_fn(1, 4, 4, |_, y, x| (y * 4 + x) as f32);
/// let mut backend = Backend::sw();
/// let mut ledger = CycleLedger::new();
/// let y = pool.forward(&x, &mut backend, &mut ledger);
/// assert_eq!((y.height(), y.width()), (2, 2));
/// assert_eq!(y.get(0, 1, 1).to_f32(), 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxPool2d {
    size: usize,
    stride: usize,
}

impl MaxPool2d {
    /// Creates a pooling layer with a `size x size` window.
    ///
    /// # Panics
    ///
    /// Panics if `size` or `stride` is zero.
    pub fn new(size: usize, stride: usize) -> MaxPool2d {
        assert!(size > 0 && stride > 0, "pool dimensions must be positive");
        MaxPool2d { size, stride }
    }

    /// Output spatial size for an input of `h x w`.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.size && w >= self.size,
            "pool window {s} does not fit input {h}x{w}",
            s = self.size
        );
        (
            (h - self.size) / self.stride + 1,
            (w - self.size) / self.stride + 1,
        )
    }

    /// Forward pass. NaNs lose the max (IEEE `maxNum` semantics, matching
    /// the cores' `fmax.h`).
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the input.
    pub fn forward(
        &self,
        input: &FeatureMap,
        backend: &mut Backend,
        ledger: &mut CycleLedger,
    ) -> FeatureMap {
        let (oh, ow) = self.output_hw(input.height(), input.width());
        let mut out = FeatureMap::zeros(input.channels(), oh, ow);
        for c in 0..input.channels() {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = F16::NEG_INFINITY;
                    for ky in 0..self.size {
                        for kx in 0..self.size {
                            best = best.max(input.get(
                                c,
                                oy * self.stride + ky,
                                ox * self.stride + kx,
                            ));
                        }
                    }
                    out.set(c, oy, ox, best);
                }
            }
        }
        // Each output reads size^2 inputs: charge the comparisons as
        // elementwise work over the receptive fields.
        ledger.record(
            "maxpool",
            OpKind::Elementwise,
            None,
            backend.elementwise_cycles(out.len() * self.size * self.size),
        );
        out
    }
}

/// Direct-convolution reference with the same accumulation order as the
/// im2col GEMM (`(channel, ky, kx)` row-major, sequential FMA).
///
/// # Panics
///
/// Panics on channel mismatch or a kernel that does not fit.
pub fn conv2d_reference(layer: &Conv2d, input: &FeatureMap) -> FeatureMap {
    assert_eq!(input.channels(), layer.in_ch, "input channels mismatch");
    let (oh, ow) = layer.output_hw(input.height(), input.width());
    let mut out = FeatureMap::zeros(layer.out_ch, oh, ow);
    let patch = layer.in_ch * layer.kernel * layer.kernel;
    for oc in 0..layer.out_ch {
        for oy in 0..oh {
            for ox in 0..ow {
                let base_y = (oy * layer.stride) as isize - layer.padding as isize;
                let base_x = (ox * layer.stride) as isize - layer.padding as isize;
                let mut acc = F16::ZERO;
                let mut row = 0usize;
                for c in 0..layer.in_ch {
                    for ky in 0..layer.kernel {
                        for kx in 0..layer.kernel {
                            let w = layer.weights[oc * patch + row];
                            let xval = input.padded(c, base_y + ky as isize, base_x + kx as isize);
                            acc = xval.mul_add(w, acc);
                            row += 1;
                        }
                    }
                }
                let mut v = acc + layer.bias[oc];
                if layer.relu && !v.is_nan() && v.is_sign_negative() && !v.is_zero() {
                    v = F16::ZERO;
                }
                out.set(oc, oy, ox, v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(m: &FeatureMap) -> Vec<u16> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    fn input(ch: usize, h: usize, w: usize) -> FeatureMap {
        FeatureMap::from_fn(ch, h, w, |c, y, x| {
            ((c * 7 + y * 3 + x * 5) % 17) as f32 / 8.0 - 1.0
        })
    }

    #[test]
    fn output_geometry() {
        let c = Conv2d::new("t", 1, 1, 3, 1, 1, false, 1);
        assert_eq!(c.output_hw(8, 8), (8, 8)); // same padding
        let c = Conv2d::new("t", 1, 1, 3, 2, 0, false, 1);
        assert_eq!(c.output_hw(9, 9), (4, 4));
        let c = Conv2d::new("t", 1, 1, 1, 1, 0, false, 1);
        assert_eq!(c.output_hw(5, 7), (5, 7));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn kernel_larger_than_input_rejected() {
        let c = Conv2d::new("t", 1, 1, 5, 1, 0, false, 1);
        let _ = c.output_hw(3, 3);
    }

    #[test]
    fn im2col_matches_direct_convolution_bitwise() {
        for (stride, padding) in [(1, 0), (1, 1), (2, 0), (2, 1)] {
            let layer = Conv2d::new("t", 3, 5, 3, stride, padding, false, 11);
            let x = input(3, 9, 7);
            let mut backend = Backend::sw();
            let mut ledger = CycleLedger::new();
            let got = layer
                .forward(&x, &mut backend, &mut ledger)
                .expect("forward");
            let want = conv2d_reference(&layer, &x);
            assert_eq!(
                bits(&got),
                bits(&want),
                "stride {stride}, padding {padding}"
            );
        }
    }

    #[test]
    fn hw_and_sw_agree_on_convolution() {
        let layer = Conv2d::new("t", 2, 8, 3, 1, 1, true, 5);
        let x = input(2, 12, 12);
        let mut ledger_h = CycleLedger::new();
        let mut ledger_s = CycleLedger::new();
        let yh = layer
            .forward(&x, &mut Backend::hw(), &mut ledger_h)
            .expect("hw forward");
        let ys = layer
            .forward(&x, &mut Backend::sw(), &mut ledger_s)
            .expect("sw forward");
        assert_eq!(bits(&yh), bits(&ys));
        assert!(
            ledger_h.cycles_for(OpKind::Forward) < ledger_s.cycles_for(OpKind::Forward),
            "accelerator must win the GEMM"
        );
    }

    #[test]
    fn relu_applies_after_bias() {
        let mut layer = Conv2d::new("t", 1, 1, 1, 1, 0, true, 3);
        layer.weights[0] = F16::ONE;
        layer.bias[0] = F16::from_f32(-10.0);
        let x = FeatureMap::from_fn(1, 2, 2, |_, _, _| 1.0);
        let mut backend = Backend::sw();
        let mut ledger = CycleLedger::new();
        let y = layer
            .forward(&x, &mut backend, &mut ledger)
            .expect("forward");
        assert!(y.as_slice().iter().all(|v| v.is_zero()), "ReLU clamps");
        let want = conv2d_reference(&layer, &x);
        assert_eq!(bits(&y), bits(&want));
    }

    #[test]
    fn padding_reads_zeros() {
        let m = input(1, 2, 2);
        assert_eq!(m.padded(0, -1, 0), F16::ZERO);
        assert_eq!(m.padded(0, 0, 2), F16::ZERO);
        assert_eq!(m.padded(0, 1, 1), m.get(0, 1, 1));
    }

    #[test]
    fn maxpool_picks_window_maxima() {
        let pool = MaxPool2d::new(2, 2);
        let x = FeatureMap::from_fn(2, 4, 4, |c, y, x| ((c + 1) * (y * 4 + x)) as f32);
        let mut backend = Backend::sw();
        let mut ledger = CycleLedger::new();
        let y = pool.forward(&x, &mut backend, &mut ledger);
        assert_eq!((y.channels(), y.height(), y.width()), (2, 2, 2));
        assert_eq!(y.get(0, 0, 0).to_f32(), 5.0);
        assert_eq!(y.get(0, 1, 1).to_f32(), 15.0);
        assert_eq!(y.get(1, 1, 1).to_f32(), 30.0);
        assert!(ledger.cycles_for(OpKind::Elementwise).count() > 0);
    }

    #[test]
    fn maxpool_overlapping_stride() {
        let pool = MaxPool2d::new(3, 1);
        let x = FeatureMap::from_fn(1, 5, 5, |_, y, x| -((y * 5 + x) as f32));
        let mut backend = Backend::sw();
        let mut ledger = CycleLedger::new();
        let y = pool.forward(&x, &mut backend, &mut ledger);
        assert_eq!((y.height(), y.width()), (3, 3));
        // Max of a negative ramp is the top-left element of each window.
        assert_eq!(y.get(0, 2, 2).to_f32(), -12.0);
    }

    #[test]
    fn maxpool_nan_loses() {
        let pool = MaxPool2d::new(2, 2);
        let mut x = FeatureMap::zeros(1, 2, 2);
        x.set(0, 0, 0, F16::NAN);
        x.set(0, 0, 1, F16::from_f32(3.0));
        let mut backend = Backend::sw();
        let mut ledger = CycleLedger::new();
        let y = pool.forward(&x, &mut backend, &mut ledger);
        assert_eq!(y.get(0, 0, 0).to_f32(), 3.0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn maxpool_window_checked() {
        let _ = MaxPool2d::new(4, 1).output_hw(3, 3);
    }

    #[test]
    fn feature_map_accessors() {
        let mut m = FeatureMap::zeros(2, 3, 4);
        assert_eq!((m.channels(), m.height(), m.width()), (2, 3, 4));
        assert!(!m.is_empty());
        m.set(1, 2, 3, F16::ONE);
        assert_eq!(m.get(1, 2, 3), F16::ONE);
        assert_eq!(m.as_slice().len(), 24);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn feature_map_bounds_checked() {
        let _ = FeatureMap::zeros(1, 1, 1).get(0, 0, 1);
    }
}
