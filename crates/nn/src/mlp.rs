//! Dense layers and SGD training with full cycle accounting.
//!
//! Conventions:
//!
//! * activations are `features x batch` tensors, so a forward GEMM is
//!   `Y(out x B) = Wt(out x in) * A(in x B)` — the paper's orientation
//!   where the GEMM `K` dimension equals the batch size;
//! * weights are kept in **both** layouts (`Wt` = `out x in` and its
//!   transpose) so backward passes need no on-the-fly weight transpose —
//!   the standard memory-for-cycles trade on PULP systems; the SGD update
//!   pays for writing both copies;
//! * activation transposes (needed by the weight-gradient GEMM) run on
//!   the cores and are charged as elementwise work.

use crate::backend::{Backend, CycleLedger, OpKind};
use crate::tensor::Tensor;
use redmule::EngineError;
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use redmule_hwsim::Cycle;

/// A fully connected layer with optional bias and ReLU.
#[derive(Debug, Clone)]
pub struct Dense {
    name: String,
    /// `out x in` (forward layout).
    wt: Tensor,
    /// `in x out` (backward layout, kept in sync).
    w: Tensor,
    /// `out x 1`.
    bias: Tensor,
    relu: bool,
    /// Caches for the backward pass.
    input: Option<Tensor>,
    output: Option<Tensor>,
    /// Gradients produced by `backward`, consumed by `apply_update`.
    d_wt: Option<Tensor>,
    d_bias: Option<Tensor>,
}

impl Dense {
    /// Creates a layer with deterministic uniform init scaled by
    /// `1/sqrt(in_dim)`.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn new(
        name: impl Into<String>,
        in_dim: usize,
        out_dim: usize,
        relu: bool,
        seed: u64,
    ) -> Dense {
        assert!(
            in_dim > 0 && out_dim > 0,
            "layer dimensions must be positive"
        );
        let scale = 1.0 / (in_dim as f32).sqrt();
        let wt = Tensor::random(out_dim, in_dim, scale, seed);
        let w = wt.transposed();
        Dense {
            name: name.into(),
            wt,
            w,
            bias: Tensor::zeros(out_dim, 1),
            relu,
            input: None,
            output: None,
            d_wt: None,
            d_bias: None,
        }
    }

    /// Layer label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.wt.cols()
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.wt.rows()
    }

    /// Whether the layer applies ReLU.
    pub fn has_relu(&self) -> bool {
        self.relu
    }

    /// Forward-layout weights (`out x in`).
    pub fn weights(&self) -> &Tensor {
        &self.wt
    }

    /// Parameter count (weights + bias), each stored once for counting
    /// purposes (the duplicated layout is an implementation detail).
    pub fn param_count(&self) -> usize {
        self.wt.len() + self.bias.len()
    }

    /// Forward pass: `Y = relu(Wt * A + b)`.
    ///
    /// # Errors
    ///
    /// Returns the backend's [`EngineError`] if the GEMM fails (e.g. a
    /// watchdog timeout or TCDM fault on the hardware path).
    pub fn forward(
        &mut self,
        a: &Tensor,
        backend: &mut Backend,
        ledger: &mut CycleLedger,
    ) -> Result<Tensor, EngineError> {
        assert_eq!(a.rows(), self.in_dim(), "input features mismatch");
        let b = a.cols();
        let shape = GemmShape::new(self.out_dim(), self.in_dim(), b);
        let (y, cycles) = backend.gemm(shape, self.wt.as_slice(), a.as_slice())?;
        ledger.record(&self.name, OpKind::Forward, Some(shape), cycles);

        let mut y = Tensor::from_vec(self.out_dim(), b, y);
        for r in 0..self.out_dim() {
            let bias = self.bias.get(r, 0);
            for c in 0..b {
                let mut v = y.get(r, c) + bias;
                if self.relu && !v.is_nan() && v.is_sign_negative() && !v.is_zero() {
                    v = F16::ZERO;
                }
                y.set(r, c, v);
            }
        }
        ledger.record(
            &self.name,
            OpKind::Elementwise,
            None,
            backend.elementwise_cycles(y.len()),
        );

        self.input = Some(a.clone());
        self.output = Some(y.clone());
        Ok(y)
    }

    /// Backward pass: consumes `dY (out x B)`, stores the weight/bias
    /// gradients and returns `dA (in x B)`.
    ///
    /// # Errors
    ///
    /// Returns the backend's [`EngineError`] if a gradient GEMM fails.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with mismatched shapes.
    pub fn backward(
        &mut self,
        d_out: &Tensor,
        backend: &mut Backend,
        ledger: &mut CycleLedger,
    ) -> Result<Tensor, EngineError> {
        let input = self.input.as_ref().expect("forward must run first").clone();
        let output = self.output.as_ref().expect("forward must run first");
        assert_eq!(d_out.rows(), self.out_dim(), "gradient features mismatch");
        let batch = d_out.cols();
        assert_eq!(batch, input.cols(), "gradient batch mismatch");

        // ReLU mask.
        let mut d_y = d_out.clone();
        if self.relu {
            for r in 0..d_y.rows() {
                for c in 0..d_y.cols() {
                    let fwd = output.get(r, c);
                    if fwd.is_zero() || fwd.is_sign_negative() {
                        d_y.set(r, c, F16::ZERO);
                    }
                }
            }
            ledger.record(
                &self.name,
                OpKind::Elementwise,
                None,
                backend.elementwise_cycles(d_y.len()),
            );
        }

        // Bias gradient: row sums of dY.
        let mut d_bias = Tensor::zeros(self.out_dim(), 1);
        for r in 0..self.out_dim() {
            let mut acc = F16::ZERO;
            for c in 0..batch {
                acc += d_y.get(r, c);
            }
            d_bias.set(r, 0, acc);
        }
        ledger.record(
            &self.name,
            OpKind::Elementwise,
            None,
            backend.elementwise_cycles(d_y.len()),
        );

        // Weight gradient: dWt(out x in) = dY(out x B) * A^T(B x in).
        // The activation transpose runs on the cores.
        let a_t = input.transposed();
        ledger.record(
            &self.name,
            OpKind::Elementwise,
            None,
            backend.elementwise_cycles(a_t.len()),
        );
        let shape_w = GemmShape::new(self.out_dim(), batch, self.in_dim());
        let (d_wt, cycles) = backend.gemm(shape_w, d_y.as_slice(), a_t.as_slice())?;
        ledger.record(&self.name, OpKind::BackwardWeight, Some(shape_w), cycles);
        self.d_wt = Some(Tensor::from_vec(self.out_dim(), self.in_dim(), d_wt));
        self.d_bias = Some(d_bias);

        // Input gradient: dA(in x B) = W(in x out) * dY(out x B), using
        // the backward-layout weight copy (no transpose needed).
        let shape_a = GemmShape::new(self.in_dim(), self.out_dim(), batch);
        let (d_a, cycles) = backend.gemm(shape_a, self.w.as_slice(), d_y.as_slice())?;
        ledger.record(&self.name, OpKind::BackwardData, Some(shape_a), cycles);
        Ok(Tensor::from_vec(self.in_dim(), batch, d_a))
    }

    /// SGD step: `W -= lr * dW` on both weight copies, and the bias.
    ///
    /// # Panics
    ///
    /// Panics if no gradients are pending (call `backward` first).
    pub fn apply_update(&mut self, lr: f32, backend: &mut Backend, ledger: &mut CycleLedger) {
        let d_wt = self.d_wt.take().expect("no pending gradient");
        let d_bias = self.d_bias.take().expect("no pending gradient");
        let neg_lr = F16::from_f32(-lr);
        for (w, g) in self.wt.as_mut_slice().iter_mut().zip(d_wt.as_slice()) {
            *w = neg_lr.mul_add(*g, *w);
        }
        self.w = self.wt.transposed();
        for (b, g) in self.bias.as_mut_slice().iter_mut().zip(d_bias.as_slice()) {
            *b = neg_lr.mul_add(*g, *b);
        }
        // Both layout copies are written.
        ledger.record(
            &self.name,
            OpKind::Update,
            None,
            backend.elementwise_cycles(2 * self.wt.len() + self.bias.len()),
        );
    }
}

/// A sequential stack of [`Dense`] layers.
#[derive(Debug, Clone)]
pub struct Network {
    layers: Vec<Dense>,
}

/// Summary of one training step.
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    /// Mean-squared reconstruction error (computed in f64 for reporting).
    pub loss: f64,
    /// Cycles added to the ledger by this step.
    pub cycles: Cycle,
}

impl Network {
    /// Builds a network from layers.
    ///
    /// # Panics
    ///
    /// Panics if consecutive layer dimensions do not match.
    pub fn new(layers: Vec<Dense>) -> Network {
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_dim(),
                pair[1].in_dim(),
                "layer dimension mismatch between {} and {}",
                pair[0].name(),
                pair[1].name()
            );
        }
        Network { layers }
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Dense::in_dim)
    }

    /// Output feature count.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Dense::out_dim)
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Bytes of FP16 parameters (single-copy accounting).
    pub fn weight_bytes(&self) -> usize {
        2 * self.param_count()
    }

    /// Bytes of FP16 activations a forward+backward pass keeps live for a
    /// given batch size (inputs and outputs of every layer).
    pub fn activation_bytes(&self, batch: usize) -> usize {
        let feats: usize = self.in_dim() + self.layers.iter().map(Dense::out_dim).sum::<usize>();
        2 * feats * batch
    }

    /// Forward pass through all layers.
    ///
    /// # Errors
    ///
    /// Returns the backend's [`EngineError`] if any layer GEMM fails.
    pub fn forward(
        &mut self,
        x: &Tensor,
        backend: &mut Backend,
        ledger: &mut CycleLedger,
    ) -> Result<Tensor, EngineError> {
        let mut a = x.clone();
        for layer in &mut self.layers {
            a = layer.forward(&a, backend, ledger)?;
        }
        Ok(a)
    }

    /// One autoencoder training step: reconstruct `x`, MSE loss against
    /// `x` itself, full backward pass and SGD update.
    ///
    /// # Errors
    ///
    /// Returns the backend's [`EngineError`] if any GEMM in the step
    /// fails; the network is left with whatever partial state the step
    /// reached (no pending gradients are applied).
    pub fn train_step(
        &mut self,
        x: &Tensor,
        lr: f32,
        backend: &mut Backend,
        ledger: &mut CycleLedger,
    ) -> Result<StepReport, EngineError> {
        self.train_step_with_target(x, x, lr, backend, ledger)
    }

    /// One supervised training step against an explicit target.
    ///
    /// # Errors
    ///
    /// Returns the backend's [`EngineError`] if any GEMM in the step
    /// fails.
    ///
    /// # Panics
    ///
    /// Panics if the target shape does not match the network output.
    pub fn train_step_with_target(
        &mut self,
        x: &Tensor,
        target: &Tensor,
        lr: f32,
        backend: &mut Backend,
        ledger: &mut CycleLedger,
    ) -> Result<StepReport, EngineError> {
        let before = ledger.total_cycles();
        let y = self.forward(x, backend, ledger)?;
        assert_eq!(
            (y.rows(), y.cols()),
            (target.rows(), target.cols()),
            "target shape mismatch"
        );

        // MSE loss gradient: dY = (Y - T) * 2/out_features. Computed in
        // FP16 (this is what the device would do); the reported loss is
        // f64 for diagnostics only.
        let scale = F16::from_f32(2.0 / y.rows() as f32);
        let mut d_y = Tensor::zeros(y.rows(), y.cols());
        let mut loss = 0.0f64;
        for r in 0..y.rows() {
            for c in 0..y.cols() {
                let diff = y.get(r, c) - target.get(r, c);
                loss += diff.to_f64() * diff.to_f64();
                d_y.set(r, c, diff * scale);
            }
        }
        loss /= (y.rows() * y.cols().max(1)) as f64;
        ledger.record(
            "loss",
            OpKind::Loss,
            None,
            backend.elementwise_cycles(2 * y.len()),
        );

        let mut grad = d_y;
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad, backend, ledger)?;
        }
        for layer in &mut self.layers {
            layer.apply_update(lr, backend, ledger);
        }

        Ok(StepReport {
            loss,
            cycles: Cycle::new(ledger.total_cycles().count() - before.count()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_net(seed: u64) -> Network {
        Network::new(vec![
            Dense::new("d0", 4, 6, true, seed),
            Dense::new("d1", 6, 4, false, seed + 1),
        ])
    }

    fn sample(batch: usize) -> Tensor {
        Tensor::from_fn(4, batch, |r, c| ((r * 3 + c * 5) % 7) as f32 / 8.0 - 0.3)
    }

    #[test]
    fn forward_matches_manual_computation() {
        let mut layer = Dense::new("t", 2, 2, false, 3);
        let mut backend = Backend::sw();
        let mut ledger = CycleLedger::new();
        let a = Tensor::from_fn(2, 1, |r, _| (r + 1) as f32); // [1, 2]
        let y = layer
            .forward(&a, &mut backend, &mut ledger)
            .expect("forward");
        for r in 0..2 {
            // Same FMA order as the backend: accumulate in index order.
            let mut acc = F16::ZERO;
            acc = layer.weights().get(r, 0).mul_add(a.get(0, 0), acc);
            acc = layer.weights().get(r, 1).mul_add(a.get(1, 0), acc);
            assert_eq!(y.get(r, 0).to_bits(), acc.to_bits());
        }
    }

    #[test]
    fn relu_zeroes_negative_outputs() {
        let mut layer = Dense::new("t", 3, 8, true, 11);
        let mut backend = Backend::sw();
        let mut ledger = CycleLedger::new();
        let a = Tensor::from_fn(3, 2, |r, c| (r as f32 - 1.0) * (c as f32 + 1.0));
        let y = layer
            .forward(&a, &mut backend, &mut ledger)
            .expect("forward");
        assert!(y
            .as_slice()
            .iter()
            .all(|v| !v.is_sign_negative() || v.is_zero()));
    }

    #[test]
    fn train_step_reduces_loss() {
        let mut net = tiny_net(5);
        let mut backend = Backend::sw();
        let mut ledger = CycleLedger::new();
        let x = sample(2);
        let first = net
            .train_step(&x, 0.05, &mut backend, &mut ledger)
            .expect("step")
            .loss;
        let mut last = first;
        for _ in 0..30 {
            last = net
                .train_step(&x, 0.05, &mut backend, &mut ledger)
                .expect("step")
                .loss;
        }
        assert!(
            last < first * 0.8,
            "loss must fall: first = {first}, last = {last}"
        );
    }

    #[test]
    fn hw_and_sw_training_steps_are_bit_identical() {
        let x = sample(3);
        let mut ledger_h = CycleLedger::new();
        let mut ledger_s = CycleLedger::new();
        let mut net_h = tiny_net(9);
        let mut net_s = tiny_net(9);
        let mut bh = Backend::hw();
        let mut bs = Backend::sw();
        let rh = net_h
            .train_step(&x, 0.01, &mut bh, &mut ledger_h)
            .expect("hw step");
        let rs = net_s
            .train_step(&x, 0.01, &mut bs, &mut ledger_s)
            .expect("sw step");
        assert_eq!(rh.loss.to_bits(), rs.loss.to_bits());
        for (lh, ls) in net_h.layers().iter().zip(net_s.layers()) {
            assert_eq!(lh.weights(), ls.weights(), "weights diverged");
        }
        // But the cycle accounting differs (HW is faster overall).
        assert!(ledger_h.total_cycles() < ledger_s.total_cycles());
    }

    #[test]
    fn ledger_contains_every_op_kind() {
        let mut net = tiny_net(13);
        let mut backend = Backend::sw();
        let mut ledger = CycleLedger::new();
        net.train_step(&sample(1), 0.01, &mut backend, &mut ledger)
            .expect("step");
        for kind in [
            OpKind::Forward,
            OpKind::BackwardData,
            OpKind::BackwardWeight,
            OpKind::Loss,
            OpKind::Update,
            OpKind::Elementwise,
        ] {
            assert!(
                ledger.cycles_for(kind).count() > 0,
                "missing ledger entries for {kind}"
            );
        }
    }

    #[test]
    fn network_validates_dimensions() {
        let ok = Network::new(vec![
            Dense::new("a", 3, 5, true, 1),
            Dense::new("b", 5, 2, false, 2),
        ]);
        assert_eq!(ok.in_dim(), 3);
        assert_eq!(ok.out_dim(), 2);
        assert_eq!(ok.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(ok.weight_bytes(), 2 * ok.param_count());
        assert_eq!(ok.activation_bytes(4), 2 * (3 + 5 + 2) * 4);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_layers_rejected() {
        let _ = Network::new(vec![
            Dense::new("a", 3, 5, true, 1),
            Dense::new("b", 4, 2, false, 2),
        ]);
    }

    #[test]
    #[should_panic(expected = "forward must run first")]
    fn backward_requires_forward() {
        let mut layer = Dense::new("t", 2, 2, false, 3);
        let mut backend = Backend::sw();
        let mut ledger = CycleLedger::new();
        let _ = layer.backward(&Tensor::zeros(2, 1), &mut backend, &mut ledger);
    }

    #[test]
    fn batched_forward_broadcasts_bias() {
        let mut layer = Dense::new("t", 2, 3, false, 17);
        let mut backend = Backend::sw();
        let mut ledger = CycleLedger::new();
        // Two identical batch columns must produce identical outputs.
        let a = Tensor::from_fn(2, 2, |r, _| r as f32 + 0.5);
        let y = layer
            .forward(&a, &mut backend, &mut ledger)
            .expect("forward");
        for r in 0..3 {
            assert_eq!(y.get(r, 0).to_bits(), y.get(r, 1).to_bits());
        }
    }
}
