//! GEMM execution backends and cycle accounting.
//!
//! Every matrix multiplication in a training step is dispatched through a
//! [`Backend`]: either the cycle-accurate RedMulE model (`hw`) or the
//! 8-core software kernel (`sw`). Both produce **bit-identical** results
//! (they share the golden FMA accumulation order), so HW/SW comparisons
//! differ only in cycles — exactly the methodology of Fig. 4c/4d.
//!
//! Elementwise work (bias, ReLU, loss gradient, SGD update) always runs on
//! the cores; its cost model is shared by both backends.

pub use redmule::BackendKind;
pub use redmule::Format;
use redmule::{AccelConfig, Accelerator, EngineError, FunctionalGemm, L2TiledGemm};
use redmule_cluster::{baseline::SwGemm, ClusterConfig};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use redmule_hwsim::Cycle;
use redmule_runtime::{StopReason, Supervisor};
use std::fmt;

/// The operation class a ledger entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Forward GEMM (`Y = Wt * A`).
    Forward,
    /// Activation-gradient GEMM (`dA = W * dY`).
    BackwardData,
    /// Weight-gradient GEMM (`dW = dY * A^T`).
    BackwardWeight,
    /// Elementwise loss / loss-gradient work.
    Loss,
    /// SGD parameter update.
    Update,
    /// Bias add / ReLU / ReLU-backward elementwise work.
    Elementwise,
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Forward => "fwd",
            OpKind::BackwardData => "bwd-data",
            OpKind::BackwardWeight => "bwd-weight",
            OpKind::Loss => "loss",
            OpKind::Update => "update",
            OpKind::Elementwise => "elementwise",
        };
        f.write_str(s)
    }
}

/// One accounted operation.
#[derive(Debug, Clone)]
pub struct OpRecord {
    /// Layer label (e.g. `"dense2"`), or a step-level label.
    pub layer: String,
    /// Operation class.
    pub kind: OpKind,
    /// GEMM shape when the op was a matrix multiplication.
    pub shape: Option<GemmShape>,
    /// Cycle cost.
    pub cycles: Cycle,
}

/// Accumulates [`OpRecord`]s across a training step (or epoch).
///
/// # Example
///
/// ```
/// use redmule_hwsim::Cycle;
/// use redmule_nn::backend::{CycleLedger, OpKind};
///
/// let mut ledger = CycleLedger::new();
/// ledger.record("dense0", OpKind::Forward, None, Cycle::new(100));
/// ledger.record("dense0", OpKind::BackwardWeight, None, Cycle::new(50));
/// assert_eq!(ledger.total_cycles().count(), 150);
/// assert_eq!(ledger.cycles_for(OpKind::Forward).count(), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CycleLedger {
    records: Vec<OpRecord>,
}

impl CycleLedger {
    /// An empty ledger.
    pub fn new() -> CycleLedger {
        CycleLedger::default()
    }

    /// Appends one record.
    pub fn record(
        &mut self,
        layer: impl Into<String>,
        kind: OpKind,
        shape: Option<GemmShape>,
        cycles: Cycle,
    ) {
        self.records.push(OpRecord {
            layer: layer.into(),
            kind,
            shape,
            cycles,
        });
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[OpRecord] {
        &self.records
    }

    /// Sum of all recorded cycles.
    pub fn total_cycles(&self) -> Cycle {
        self.records.iter().map(|r| r.cycles).sum()
    }

    /// Sum of cycles for one operation class.
    pub fn cycles_for(&self, kind: OpKind) -> Cycle {
        self.records
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.cycles)
            .sum()
    }

    /// Sum of cycles for one layer label.
    pub fn cycles_for_layer(&self, layer: &str) -> Cycle {
        self.records
            .iter()
            .filter(|r| r.layer == layer)
            .map(|r| r.cycles)
            .sum()
    }

    /// Clears all records.
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

/// A GEMM execution backend: the accelerator or the software cores.
///
/// # Example
///
/// ```
/// use redmule_fp16::{vector::GemmShape, F16};
/// use redmule_nn::backend::Backend;
///
/// let mut hw = Backend::hw();
/// let mut sw = Backend::sw();
/// let shape = GemmShape::new(4, 8, 4);
/// let x = vec![F16::HALF; shape.x_len()];
/// let w = vec![F16::TWO; shape.w_len()];
/// let (z_hw, c_hw) = hw.gemm(shape, &x, &w)?;
/// let (z_sw, c_sw) = sw.gemm(shape, &x, &w)?;
/// assert_eq!(z_hw, z_sw);       // bit-identical numerics
/// assert!(c_hw < c_sw);          // the accelerator is faster
/// # Ok::<(), redmule::EngineError>(())
/// ```
#[derive(Debug)]
pub struct Backend {
    inner: Inner,
    cluster: ClusterConfig,
    format: Format,
}

#[derive(Debug)]
enum Inner {
    Hw(Accelerator),
    HwFn(FunctionalGemm),
    HwL2(L2TiledGemm),
    Sw(SwGemm),
}

impl Backend {
    /// The paper's accelerator instance (`H=4, L=8, P=3`).
    pub fn hw() -> Backend {
        Backend::hw_with(Accelerator::paper_instance())
    }

    /// The paper's accelerator instance on the chosen execution model:
    /// [`BackendKind::CycleAccurate`] simulates every clock edge,
    /// [`BackendKind::Functional`] returns bit-identical results with an
    /// analytical cycle estimate at a fraction of the host cost.
    pub fn hw_kind(kind: BackendKind) -> Backend {
        match kind {
            BackendKind::CycleAccurate => Backend::hw(),
            BackendKind::Functional => Backend::hw_functional(),
        }
    }

    /// The fast functional model of the paper's accelerator instance
    /// (see [`redmule::FunctionalGemm`]): numerics bit-identical to
    /// [`Backend::hw`], cycles from the analytical performance model.
    pub fn hw_functional() -> Backend {
        Backend {
            inner: Inner::HwFn(FunctionalGemm::paper_instance()),
            cluster: ClusterConfig::default(),
            format: Format::Fp16,
        }
    }

    /// A custom accelerator instance.
    pub fn hw_with(accel: Accelerator) -> Backend {
        Backend {
            inner: Inner::Hw(accel),
            cluster: ClusterConfig::default(),
            format: Format::Fp16,
        }
    }

    /// The accelerator behind the L2 tiling driver: GEMMs whose operands
    /// exceed the TCDM are streamed in panels with DMA double buffering
    /// (the realistic deployment for the autoencoder's ~0.5 MiB of
    /// weights). Costs are the driver's double-buffered cycles.
    pub fn hw_l2() -> Backend {
        let cluster = ClusterConfig::default();
        Backend {
            inner: Inner::HwL2(L2TiledGemm::new(AccelConfig::paper(), cluster.clone())),
            cluster,
            format: Format::Fp16,
        }
    }

    /// The 8-core software baseline.
    pub fn sw() -> Backend {
        Backend::sw_with(ClusterConfig::default())
    }

    /// A software baseline on a custom cluster.
    pub fn sw_with(cfg: ClusterConfig) -> Backend {
        Backend {
            inner: Inner::Sw(SwGemm::new(&cfg)),
            cluster: cfg,
            format: Format::Fp16,
        }
    }

    /// Selects the operand storage [`Format`] for every GEMM this
    /// backend runs. With an FP8 format the cycle-accurate path stores
    /// X/W/Z in TCDM at one byte per element (cast at the engine's
    /// castin/castout stages); the software, functional and L2 paths
    /// quantise operands in and results out through the same
    /// round-to-nearest-even casts, so **all four backends stay
    /// bit-identical for any format** — the property `tests` pin.
    #[must_use]
    pub fn with_format(mut self, format: Format) -> Backend {
        self.format = format;
        self
    }

    /// The operand storage format this backend runs with.
    pub fn format(&self) -> Format {
        self.format
    }

    /// `"hw"`, `"hw-fn"`, `"hw-l2"` or `"sw"`.
    pub fn name(&self) -> &'static str {
        match self.inner {
            Inner::Hw(_) => "hw",
            Inner::HwFn(_) => "hw-fn",
            Inner::HwL2(_) => "hw-l2",
            Inner::Sw(_) => "sw",
        }
    }

    /// Executes `Z = X * W`, returning the result and its cycle cost.
    ///
    /// The accelerator path is driven through the supervised runtime
    /// ([`redmule_runtime::Supervisor`]): a hung or faulting engine run
    /// surfaces here as an [`EngineError`] instead of tearing down the
    /// whole training step, and panics inside the simulation are retried
    /// from the job's entry checkpoint before being re-raised.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when slice lengths do not match
    /// `shape`; otherwise any [`EngineError`] the engine run reports.
    ///
    /// # Panics
    ///
    /// Panics only if the simulation itself panics persistently (a model
    /// bug, re-raised after the supervisor's retries are exhausted).
    pub fn gemm(
        &mut self,
        shape: GemmShape,
        x: &[F16],
        w: &[F16],
    ) -> Result<(Vec<F16>, Cycle), EngineError> {
        // FP8 formats quantise the operands up front — exactly the image
        // the engine's staging castout would store, so feeding the
        // already-quantised values through any path is idempotent and
        // keeps all backends bit-identical.
        let format = self.format;
        let (xq, wq);
        let (x, w) = if format.is_fp8() {
            xq = quantize(format, x);
            wq = quantize(format, w);
            (&xq[..], &wq[..])
        } else {
            (x, w)
        };
        match &mut self.inner {
            Inner::Hw(accel) => {
                // One entry checkpoint per job (interval MAX): enough for
                // panic/watchdog rollback without per-tile snapshot cost.
                let supervisor =
                    Supervisor::new(accel.engine().clone()).with_checkpoint_interval(usize::MAX);
                let (z, run) = supervisor.gemm_in(shape, format, x, w)?;
                match run.stop {
                    StopReason::Completed => Ok((z, run.report.cycles)),
                    StopReason::Failed(e) => Err(e),
                    StopReason::Panicked(msg) => panic!("supervised GEMM panicked: {msg}"),
                    // No limits or cancel token are configured on this
                    // supervisor, so budget stops cannot occur.
                    other => unreachable!("unlimited supervised run stopped with {other:?}"),
                }
            }
            Inner::HwFn(f) => {
                let run = f.run_format(shape, format, x, w)?;
                Ok((run.z, run.estimated_cycles))
            }
            Inner::HwL2(driver) => {
                // The L2 driver models FP8 at the L2/DMA boundary with
                // FP16 accumulation in TCDM across reduction slices; the
                // single output narrowing matches the one-job engine run.
                let (mut z, report) = driver.run(shape, x, w)?;
                if format.is_fp8() {
                    z = quantize(format, &z);
                }
                Ok((z, report.overlapped_cycles))
            }
            Inner::Sw(sw) => {
                let run = sw.run(shape, x, w)?;
                let mut z = run.z;
                if format.is_fp8() {
                    z = quantize(format, &z);
                }
                Ok((z, run.cycles))
            }
        }
    }

    /// Cycle cost of an elementwise pass over `elems` elements on the
    /// cluster cores (load, compute, store, amortised loop overhead;
    /// parallel over the cores). Used for bias/ReLU/loss/SGD in both
    /// backends.
    pub fn elementwise_cycles(&self, elems: usize) -> Cycle {
        if elems == 0 {
            return Cycle::ZERO;
        }
        const CYCLES_PER_ELEM: usize = 4;
        const FORK_JOIN: u64 = 30;
        Cycle::new((elems * CYCLES_PER_ELEM).div_ceil(self.cluster.n_cores) as u64 + FORK_JOIN)
    }
}

/// Quantises a slice through `format` (identity for FP16).
fn quantize(format: Format, v: &[F16]) -> Vec<F16> {
    v.iter().map(|e| format.quantize(*e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape_data(shape: GemmShape) -> (Vec<F16>, Vec<F16>) {
        let x = (0..shape.x_len())
            .map(|i| F16::from_f32(((i % 13) as f32 - 6.0) / 4.0))
            .collect();
        let w = (0..shape.w_len())
            .map(|i| F16::from_f32(((i % 11) as f32 - 5.0) / 8.0))
            .collect();
        (x, w)
    }

    #[test]
    fn backends_agree_bitwise() {
        let shape = GemmShape::new(6, 10, 14);
        let (x, w) = shape_data(shape);
        let (zh, _) = Backend::hw().gemm(shape, &x, &w).expect("hw gemm");
        let (zs, _) = Backend::sw().gemm(shape, &x, &w).expect("sw gemm");
        let hb: Vec<u16> = zh.iter().map(|v| v.to_bits()).collect();
        let sb: Vec<u16> = zs.iter().map(|v| v.to_bits()).collect();
        assert_eq!(hb, sb);
    }

    #[test]
    fn hw_is_faster_on_large_gemm() {
        let shape = GemmShape::new(16, 64, 32);
        let (x, w) = shape_data(shape);
        let (_, ch) = Backend::hw().gemm(shape, &x, &w).expect("hw gemm");
        let (_, cs) = Backend::sw().gemm(shape, &x, &w).expect("sw gemm");
        let speedup = cs.count() as f64 / ch.count() as f64;
        assert!(speedup > 10.0, "speedup = {speedup}");
    }

    #[test]
    fn names() {
        assert_eq!(Backend::hw().name(), "hw");
        assert_eq!(Backend::hw_functional().name(), "hw-fn");
        assert_eq!(Backend::hw_l2().name(), "hw-l2");
        assert_eq!(Backend::sw().name(), "sw");
    }

    #[test]
    fn functional_backend_matches_cycle_accurate_bitwise() {
        let shape = GemmShape::new(7, 19, 13);
        let (x, w) = shape_data(shape);
        let (zc, cc) = Backend::hw().gemm(shape, &x, &w).expect("cycle gemm");
        let (zf, cf) = Backend::hw_functional()
            .gemm(shape, &x, &w)
            .expect("functional gemm");
        let cb: Vec<u16> = zc.iter().map(|v| v.to_bits()).collect();
        let fb: Vec<u16> = zf.iter().map(|v| v.to_bits()).collect();
        assert_eq!(cb, fb, "functional backend must be bit-identical");
        // The estimate is the supervisor's analytical model: same order
        // of magnitude as the measured cycles, never zero.
        assert!(cf.count() > 0);
        assert!(cf.count() < 4 * cc.count());
    }

    #[test]
    fn all_backends_agree_bitwise_in_fp8() {
        let shape = GemmShape::new(6, 10, 14);
        let (x, w) = shape_data(shape);
        for format in [Format::Fp8E4M3, Format::Fp8E5M2] {
            let run = |mut b: Backend| {
                let (z, _) = b.gemm(shape, &x, &w).expect("gemm");
                z.iter().map(|v| v.to_bits()).collect::<Vec<u16>>()
            };
            let zh = run(Backend::hw().with_format(format));
            assert_eq!(
                zh,
                run(Backend::hw_functional().with_format(format)),
                "{format}: hw-fn drifted"
            );
            assert_eq!(
                zh,
                run(Backend::sw().with_format(format)),
                "{format}: sw drifted"
            );
            assert_eq!(
                zh,
                run(Backend::hw_l2().with_format(format)),
                "{format}: hw-l2 drifted"
            );
        }
        assert_eq!(
            Backend::hw().with_format(Format::Fp8E4M3).format().label(),
            "fp8e4m3"
        );
    }

    #[test]
    fn hw_kind_selects_the_execution_model() {
        assert_eq!(Backend::hw_kind(BackendKind::CycleAccurate).name(), "hw");
        assert_eq!(Backend::hw_kind(BackendKind::Functional).name(), "hw-fn");
    }

    #[test]
    fn l2_backend_matches_hw_numerics_with_dma_overhead() {
        let shape = GemmShape::new(16, 48, 32);
        let (x, w) = shape_data(shape);
        let (zh, ch) = Backend::hw().gemm(shape, &x, &w).expect("hw gemm");
        let (zl, cl) = Backend::hw_l2().gemm(shape, &x, &w).expect("l2 gemm");
        let hb: Vec<u16> = zh.iter().map(|v| v.to_bits()).collect();
        let lb: Vec<u16> = zl.iter().map(|v| v.to_bits()).collect();
        assert_eq!(hb, lb, "tiling must not change numerics");
        // The L2 path pays at least the initial panel fill.
        assert!(cl >= ch, "L2 path cannot be cheaper than TCDM-resident");
    }

    #[test]
    fn elementwise_cost_scales() {
        let b = Backend::sw();
        assert_eq!(b.elementwise_cycles(0), Cycle::ZERO);
        let small = b.elementwise_cycles(8).count();
        let big = b.elementwise_cycles(8000).count();
        assert!(big > 100 * small / 2);
        // 8 cores, 4 cycles/element.
        assert_eq!(b.elementwise_cycles(1600).count(), 1600 * 4 / 8 + 30);
    }

    #[test]
    fn ledger_accounting() {
        let mut l = CycleLedger::new();
        let shape = GemmShape::new(1, 2, 3);
        l.record("a", OpKind::Forward, Some(shape), Cycle::new(10));
        l.record("a", OpKind::Elementwise, None, Cycle::new(5));
        l.record("b", OpKind::Forward, None, Cycle::new(20));
        assert_eq!(l.total_cycles().count(), 35);
        assert_eq!(l.cycles_for(OpKind::Forward).count(), 30);
        assert_eq!(l.cycles_for_layer("a").count(), 15);
        assert_eq!(l.records().len(), 3);
        l.clear();
        assert_eq!(l.total_cycles(), Cycle::ZERO);
    }

    #[test]
    fn opkind_display() {
        assert_eq!(OpKind::BackwardWeight.to_string(), "bwd-weight");
        assert_eq!(OpKind::Forward.to_string(), "fwd");
    }
}
