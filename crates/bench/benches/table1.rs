//! Table I: state-of-the-art comparison.
//!
//! Prints the regenerated table (literature rows + our three computed
//! rows driven by the measured MAC/cycle), then benchmarks the simulator
//! kernel behind it: the cycle-accurate accelerator running a large GEMM.

use criterion::{criterion_group, criterion_main, Criterion};
use redmule::Accelerator;
use redmule_bench::{experiments, workloads};
use redmule_fp16::vector::GemmShape;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::table1(false).expect("table1"));

    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(64, 64, 64);
    let (x, w) = workloads::gemm_operands(shape, 1);
    c.bench_function("table1/accelerator_gemm_64x64x64", |b| {
        b.iter(|| {
            let run = accel.gemm(shape, black_box(&x), black_box(&w)).unwrap();
            black_box(run.report.cycles)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
