//! Fig. 3d: throughput at the maximum cluster frequency vs matrix size.
//!
//! Prints the regenerated GFLOPS series at 666 MHz, then benchmarks the
//! simulator's tile pipeline on a rectangular workload.

use criterion::{criterion_group, criterion_main, Criterion};
use redmule::Accelerator;
use redmule_bench::{experiments, workloads};
use redmule_fp16::vector::GemmShape;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::fig3d(&workloads::sweep_sizes(false)).expect("fig3d")
    );

    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(32, 128, 48);
    let (x, w) = workloads::gemm_operands(shape, 5);
    c.bench_function("fig3d/accelerator_gemm_32x128x48", |b| {
        b.iter(|| black_box(accel.gemm(shape, &x, &w).unwrap().report.cycles))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
