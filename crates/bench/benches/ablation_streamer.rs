//! Ablation: the streamer's interleaved schedule and W prefetch.
//!
//! The paper's Fig. 2c schedule interleaves X loads and Z stores between
//! adjacent W accesses, with W groups prefetched one phase ahead. This
//! ablation quantifies both choices on the same workload:
//!
//! * `half-bandwidth` — the shallow branch issues at most every other
//!   cycle (half the 288-bit port);
//! * `single-buffered W` — no W prefetch: a group is fetched only after
//!   its register drains, stalling each phase boundary.

use criterion::{criterion_group, criterion_main, Criterion};
use redmule::{AccelConfig, Engine, Job, StreamerPolicy};
use redmule_bench::workloads;
use redmule_cluster::{ClusterConfig, Hci, Tcdm};
use redmule_fp16::vector::GemmShape;
use std::hint::black_box;

fn run_policy(policy: StreamerPolicy, shape: GemmShape) -> (u64, u64) {
    let (x, w) = workloads::gemm_operands(shape, 3);
    let ccfg = ClusterConfig::default();
    let mut mem = Tcdm::new(&ccfg);
    let mut hci = Hci::new(&ccfg);
    mem.store_f16_slice(0, &x).expect("X fits");
    mem.store_f16_slice(0x4000, &w).expect("W fits");
    let engine = Engine::new(AccelConfig::paper()).with_streamer_policy(policy);
    let job = Job::new(0, 0x4000, 0x8000, shape.m, shape.n, shape.k);
    let report = engine.run(job, &mut mem, &mut hci).expect("job runs");
    (report.cycles.count(), report.stall_cycles)
}

fn bench(c: &mut Criterion) {
    let shape = GemmShape::new(32, 64, 32);
    println!(
        "{}",
        redmule_bench::experiments::ablation_streamer().expect("ablation")
    );

    let mut group = c.benchmark_group("ablation_streamer");
    group.sample_size(10);
    for (name, policy) in [
        ("interleaved", StreamerPolicy::Interleaved),
        ("single_buffered_w", StreamerPolicy::SingleBufferedW),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(run_policy(policy, shape))));
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
