//! Fig. 4a: HW vs SW computational performance vs the 32 MAC/cycle ideal.
//!
//! Prints the regenerated series (cycles, MAC/cycle, % of ideal, speedup
//! per size) plus the energy-efficiency headline, then benchmarks both
//! simulators on the same mid-size GEMM.

use criterion::{criterion_group, criterion_main, Criterion};
use redmule::Accelerator;
use redmule_bench::{experiments, workloads};
use redmule_cluster::{baseline::SwGemm, ClusterConfig};
use redmule_fp16::vector::GemmShape;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::fig4a(&workloads::sweep_sizes(false)).expect("fig4a")
    );
    println!(
        "energy-efficiency gain over SW: {:.2}x (paper: up to 4.65x)\n",
        experiments::efficiency_gain(false).expect("gain")
    );

    let shape = GemmShape::new(32, 32, 32);
    let (x, w) = workloads::gemm_operands(shape, 9);
    let accel = Accelerator::paper_instance();
    let sw = SwGemm::new(&ClusterConfig::default());
    let mut group = c.benchmark_group("fig4a");
    group.sample_size(10);
    group.bench_function("hw_sim_32x32x32", |b| {
        b.iter(|| black_box(accel.gemm(shape, &x, &w).unwrap().report.cycles))
    });
    group.bench_function("sw_sim_32x32x32", |b| {
        b.iter(|| black_box(sw.run(shape, &x, &w).expect("sw run").cycles))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
