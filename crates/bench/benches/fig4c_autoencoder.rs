//! Fig. 4c: RedMulE on the TinyMLPerf AutoEncoder benchmark (B = 1).
//!
//! Prints the regenerated per-layer forward/backward comparison, then
//! benchmarks one forward pass of the autoencoder on each backend.

use criterion::{criterion_group, criterion_main, Criterion};
use redmule_bench::{experiments, workloads};
use redmule_nn::autoencoder;
use redmule_nn::backend::{Backend, CycleLedger};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig4c().expect("fig4c"));

    let x = workloads::autoencoder_batch(1, 3);
    let mut group = c.benchmark_group("fig4c/autoencoder_forward_b1");
    group.sample_size(10);
    group.bench_function("hw", |b| {
        let mut backend = Backend::hw();
        b.iter(|| {
            let mut net = autoencoder::mlperf_tiny(7);
            let mut ledger = CycleLedger::new();
            black_box(
                net.forward(&x, &mut backend, &mut ledger)
                    .expect("forward")
                    .rows(),
            )
        })
    });
    group.bench_function("sw", |b| {
        let mut backend = Backend::sw();
        b.iter(|| {
            let mut net = autoencoder::mlperf_tiny(7);
            let mut ledger = CycleLedger::new();
            black_box(
                net.forward(&x, &mut backend, &mut ledger)
                    .expect("forward")
                    .rows(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
