//! Fig. 4d: effect of batching on HW/SW benchmark execution.
//!
//! Prints the regenerated B = 1 vs B = 16 comparison (including the
//! per-sample batching gains and the memory-footprint check), then
//! benchmarks a batched forward pass on the accelerator backend.

use criterion::{criterion_group, criterion_main, Criterion};
use redmule_bench::{experiments, workloads};
use redmule_nn::autoencoder;
use redmule_nn::backend::{Backend, CycleLedger};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig4d().expect("fig4d"));

    let x = workloads::autoencoder_batch(16, 5);
    c.bench_function("fig4d/autoencoder_forward_b16_hw", |b| {
        let mut backend = Backend::hw();
        b.iter(|| {
            let mut net = autoencoder::mlperf_tiny(7);
            let mut ledger = CycleLedger::new();
            black_box(
                net.forward(&x, &mut backend, &mut ledger)
                    .expect("forward")
                    .cols(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
