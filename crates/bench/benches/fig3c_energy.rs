//! Fig. 3c: cluster energy per MAC operation vs matrix size.
//!
//! Prints the regenerated series (utilization-dependent energy at the
//! 0.65 V point), then benchmarks the accelerator simulation at the
//! smallest and a mid-size point of the sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redmule::Accelerator;
use redmule_bench::{experiments, workloads};
use redmule_fp16::vector::GemmShape;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        experiments::fig3c(&workloads::sweep_sizes(false)).expect("fig3c")
    );

    let accel = Accelerator::paper_instance();
    let mut group = c.benchmark_group("fig3c/accelerator_gemm");
    group.sample_size(10);
    for size in [16usize, 64] {
        let shape = GemmShape::new(size, size, size);
        let (x, w) = workloads::gemm_operands(shape, size as u32);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, _| {
            b.iter(|| black_box(accel.gemm(shape, &x, &w).unwrap().report.macs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
