//! Ablation: sensitivity of the headline speedup to the software baseline.
//!
//! The paper's "up to 22x speedup" is measured against *a* software
//! kernel. This ablation runs the accelerator against two baseline
//! variants — the naive scalar three-loop kernel (our default, believed to
//! match the paper's) and a packed-SIMD `vfmac.h` kernel that retires two
//! MACs per FP instruction — showing how much of the factor is baseline
//! choice rather than accelerator merit.

use criterion::{criterion_group, criterion_main, Criterion};
use redmule_bench::workloads;
use redmule_cluster::baseline::{KernelVariant, SwGemm};
use redmule_cluster::ClusterConfig;
use redmule_fp16::vector::GemmShape;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let shape = GemmShape::new(64, 64, 64);
    let (x, w) = workloads::gemm_operands(shape, 17);
    println!(
        "{}",
        redmule_bench::experiments::ablation_sw_kernel().expect("ablation")
    );

    let mut group = c.benchmark_group("ablation_sw_kernel");
    group.sample_size(10);
    for (name, variant) in [
        ("scalar", KernelVariant::Scalar),
        ("simd2", KernelVariant::Simd2),
    ] {
        let sw = SwGemm::new(&ClusterConfig::default()).with_variant(variant);
        group.bench_function(name, |b| {
            b.iter(|| black_box(sw.run(shape, &x, &w).expect("sw run").cycles))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
