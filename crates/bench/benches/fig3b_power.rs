//! Fig. 3b: RedMulE power breakdown.
//!
//! Prints the component shares at the peak-efficiency point, then
//! benchmarks the power-model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use redmule_bench::experiments;
use redmule_energy::{OperatingPoint, PowerModel, Technology};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig3b());

    let model = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_efficiency());
    c.bench_function("fig3b/power_model_eval", |b| {
        b.iter(|| black_box(model.cluster_power_mw(black_box(0.97)).total()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
