//! Fig. 4b: RedMulE area as a function of H and L (P = 3).
//!
//! Prints the regenerated sweep (area, cluster ratio, port count per
//! configuration), then benchmarks the sweep evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use redmule_bench::experiments;
use redmule_energy::{AreaModel, Technology};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig4b());

    let model = AreaModel::new(Technology::Gf22Fdx);
    let pairs = [(2, 4), (2, 8), (4, 8), (4, 16), (8, 16), (8, 32), (16, 32)];
    c.bench_function("fig4b/area_sweep_eval", |b| {
        b.iter(|| black_box(model.sweep(black_box(&pairs), 3).len()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
