//! Fig. 3a: RedMulE area breakdown.
//!
//! Prints the component shares for the paper instance, then benchmarks
//! the parametric area-model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use redmule_bench::experiments;
use redmule_energy::{AreaModel, Technology};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", experiments::fig3a());

    let model = AreaModel::new(Technology::Gf22Fdx);
    c.bench_function("fig3a/area_model_eval", |b| {
        b.iter(|| {
            black_box(
                model
                    .redmule(black_box(4), black_box(8), black_box(3))
                    .total(),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
