//! Ablation: the FMA pipeline depth `P`.
//!
//! DESIGN.md calls out `P = 3` as a design choice: it sets the phase width
//! `H*(P+1)` and therefore the memory transaction width, the column
//! offsets and the drain length. This ablation sweeps `P` at fixed
//! `H = 4, L = 8` and reports utilization and area so the trade-off is
//! visible: deeper pipelines widen the memory interface and lengthen tile
//! drain, shallower ones raise the W-load rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use redmule::{AccelConfig, Accelerator};
use redmule_bench::workloads;
use redmule_fp16::vector::GemmShape;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "{}",
        redmule_bench::experiments::ablation_pipeline().expect("ablation")
    );
    let shape = GemmShape::new(64, 64, 64);

    let mut group = c.benchmark_group("ablation_pipeline");
    group.sample_size(10);
    for p in [1usize, 3] {
        let accel = Accelerator::new(AccelConfig::new(4, 8, p));
        let (x, w) = workloads::gemm_operands(shape, 7);
        group.bench_with_input(BenchmarkId::new("gemm64", p), &p, |b, _| {
            b.iter(|| black_box(accel.gemm(shape, &x, &w).unwrap().report.cycles))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
