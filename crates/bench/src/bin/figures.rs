//! Regenerates the paper's tables and figures from the simulation models.
//!
//! ```text
//! cargo run --release -p redmule-bench --bin figures -- all --full
//! cargo run --release -p redmule-bench --bin figures -- table1 fig4a
//! ```
//!
//! Without `--full`, the size sweeps stop at 128 (fast); with it they
//! extend to 512 like the paper (the software baseline simulation of
//! 512^3 takes ~30 s in release mode).
//!
//! Every experiment runs isolated: a panic or an engine error in one
//! artefact is recorded and the sweep continues with the next. The
//! process exits nonzero if anything failed, after printing a summary of
//! which artefacts succeeded and which did not.

use redmule::EngineError;
use redmule_bench::{experiments, workloads};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One artefact's outcome for the end-of-run summary.
enum Outcome {
    Ok,
    Error(EngineError),
    Panic(String),
}

/// Runs one experiment closure isolated from the rest of the sweep:
/// prints its rendering on success, records the error or panic otherwise.
fn run_isolated(name: &str, exp: impl FnOnce() -> Result<String, EngineError>) -> Outcome {
    match catch_unwind(AssertUnwindSafe(exp)) {
        Ok(Ok(text)) => {
            println!("{text}");
            Outcome::Ok
        }
        Ok(Err(e)) => {
            eprintln!("[{name}] engine error: {e}");
            Outcome::Error(e)
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            eprintln!("[{name}] panicked: {msg}");
            Outcome::Panic(msg)
        }
    }
}

/// Writes a benchmark artefact atomically: the bytes land in a temp
/// file first and are renamed over the target, so an interrupted run
/// never leaves a half-written `BENCH_*.json` behind.
fn write_artifact(name: &str, contents: &str) -> Result<(), EngineError> {
    let tmp = format!("{name}.tmp");
    std::fs::write(&tmp, contents)
        .and_then(|()| std::fs::rename(&tmp, name))
        .map_err(|e| EngineError::InvalidJob(format!("cannot write {name}: {e}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec![
            "table1",
            "fig3a",
            "fig3b",
            "fig3c",
            "fig3d",
            "fig4a",
            "fig4b",
            "fig4c",
            "fig4d",
            "ablations",
            "faults",
            "degradation",
            "batch",
            "trace",
            "service",
            "recover",
            "fp8",
        ];
    }
    let sizes = workloads::sweep_sizes(full);

    let mut results: Vec<(String, Outcome)> = Vec::new();
    let mut record = |name: &str, outcome: Outcome| results.push((name.to_owned(), outcome));

    for item in wanted {
        match item {
            "table1" => record(
                item,
                run_isolated(item, || Ok(experiments::table1(full)?.to_string())),
            ),
            "fig3a" => record(item, run_isolated(item, || Ok(experiments::fig3a()))),
            "fig3b" => record(item, run_isolated(item, || Ok(experiments::fig3b()))),
            "fig3c" => record(
                item,
                run_isolated(item, || Ok(experiments::fig3c(&sizes)?.to_string())),
            ),
            "fig3d" => record(
                item,
                run_isolated(item, || Ok(experiments::fig3d(&sizes)?.to_string())),
            ),
            "fig4a" => record(
                item,
                run_isolated(item, || {
                    let fig = experiments::fig4a(&sizes)?;
                    let gain = experiments::efficiency_gain(full)?;
                    Ok(format!(
                        "{fig}energy-efficiency gain over SW: {gain:.2}x (paper: up to 4.65x)\n"
                    ))
                }),
            ),
            "fig4b" => record(item, run_isolated(item, || Ok(experiments::fig4b()))),
            "fig4c" => record(
                item,
                run_isolated(item, || Ok(experiments::fig4c()?.to_string())),
            ),
            "fig4d" => record(
                item,
                run_isolated(item, || Ok(experiments::fig4d()?.to_string())),
            ),
            "ablations" => {
                record(
                    "ablation_pipeline",
                    run_isolated("ablation_pipeline", experiments::ablation_pipeline),
                );
                record(
                    "ablation_streamer",
                    run_isolated("ablation_streamer", experiments::ablation_streamer),
                );
                record(
                    "ablation_sw_kernel",
                    run_isolated("ablation_sw_kernel", experiments::ablation_sw_kernel),
                );
                record(
                    "contention",
                    run_isolated("contention", experiments::contention),
                );
            }
            "faults" => record(
                item,
                run_isolated(item, || Ok(experiments::fault_sweep()?.to_string())),
            ),
            "degradation" => record(item, run_isolated(item, experiments::degradation)),
            "batch" => record(
                item,
                run_isolated(item, || {
                    let bt = experiments::batch_throughput(smoke || !full)?;
                    write_artifact("BENCH_batch.json", &bt.to_json())?;
                    if let Some(violation) = bt.scaling_violation() {
                        return Err(EngineError::InvalidJob(format!(
                            "batch scaling guard failed: {violation}"
                        )));
                    }
                    Ok(format!("{bt}wrote BENCH_batch.json\n"))
                }),
            ),
            "trace" => record(
                item,
                run_isolated(item, || {
                    let te = experiments::trace_export(smoke || !full)?;
                    write_artifact("BENCH_trace.json", &te.json)?;
                    Ok(format!("{te}wrote BENCH_trace.json\n"))
                }),
            ),
            "service" => record(
                item,
                run_isolated(item, || {
                    let ss = experiments::service_saturation(smoke || !full)?;
                    write_artifact("BENCH_service.json", &ss.to_json())?;
                    if let Some(violation) = ss.degradation_violation() {
                        return Err(EngineError::InvalidJob(format!(
                            "service degradation guard failed: {violation}"
                        )));
                    }
                    Ok(format!("{ss}wrote BENCH_service.json\n"))
                }),
            ),
            "recover" => record(
                item,
                run_isolated(item, || {
                    let rs = experiments::crash_recovery(smoke || !full)?;
                    write_artifact("BENCH_recovery.json", &rs.to_json())?;
                    if let Some(violation) = rs.no_work_lost_violation() {
                        return Err(EngineError::InvalidJob(format!(
                            "recovery no-work-lost guard failed: {violation}"
                        )));
                    }
                    Ok(format!("{rs}wrote BENCH_recovery.json\n"))
                }),
            ),
            // Not part of `all`: needs the committed BENCH_batch.json as
            // its baseline, which `all` is in the middle of rewriting.
            "perf" => record(
                item,
                run_isolated(item, || {
                    let baseline = std::fs::read_to_string("BENCH_batch.json").map_err(|e| {
                        EngineError::InvalidJob(format!(
                            "cannot read committed BENCH_batch.json baseline: {e}"
                        ))
                    })?;
                    let pg = experiments::perf_guard(smoke || !full, &baseline)?;
                    if let Some(violation) = pg.violation() {
                        return Err(EngineError::InvalidJob(format!(
                            "wall-clock perf guard failed: {violation}"
                        )));
                    }
                    Ok(pg.to_string())
                }),
            ),
            "fp8" => record(
                item,
                run_isolated(item, || {
                    let cmp = experiments::fp8_comparison(smoke || !full)?;
                    write_artifact("BENCH_fp8.json", &cmp.to_json())?;
                    if let Some(violation) = cmp.guard() {
                        return Err(EngineError::InvalidJob(format!(
                            "fp8 comparison guard failed: {violation}"
                        )));
                    }
                    Ok(format!("{cmp}wrote BENCH_fp8.json\n"))
                }),
            ),
            other => eprintln!(
                "unknown item `{other}` (try: all, table1, fig3a..fig4d, ablations, faults, \
                 degradation, batch, trace, service, recover, fp8, perf)"
            ),
        }
    }

    let failures: Vec<&(String, Outcome)> = results
        .iter()
        .filter(|(_, o)| !matches!(o, Outcome::Ok))
        .collect();
    eprintln!(
        "figures: {} artefact(s) regenerated, {} failed",
        results.len() - failures.len(),
        failures.len()
    );
    for (name, outcome) in &failures {
        match outcome {
            Outcome::Error(e) => eprintln!("  FAILED {name}: {e}"),
            Outcome::Panic(msg) => eprintln!("  PANICKED {name}: {msg}"),
            Outcome::Ok => unreachable!("filtered above"),
        }
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }
}
