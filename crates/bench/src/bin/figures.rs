//! Regenerates the paper's tables and figures from the simulation models.
//!
//! ```text
//! cargo run --release -p redmule-bench --bin figures -- all --full
//! cargo run --release -p redmule-bench --bin figures -- table1 fig4a
//! ```
//!
//! Without `--full`, the size sweeps stop at 128 (fast); with it they
//! extend to 512 like the paper (the software baseline simulation of
//! 512^3 takes ~30 s in release mode).

use redmule_bench::{experiments, workloads};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.is_empty() || wanted.contains(&"all") {
        wanted = vec![
            "table1", "fig3a", "fig3b", "fig3c", "fig3d", "fig4a", "fig4b", "fig4c", "fig4d",
            "ablations", "faults",
        ];
    }
    let sizes = workloads::sweep_sizes(full);

    for item in wanted {
        match item {
            "table1" => println!("{}", experiments::table1(full)),
            "fig3a" => println!("{}", experiments::fig3a()),
            "fig3b" => println!("{}", experiments::fig3b()),
            "fig3c" => println!("{}", experiments::fig3c(&sizes)),
            "fig3d" => println!("{}", experiments::fig3d(&sizes)),
            "fig4a" => {
                println!("{}", experiments::fig4a(&sizes));
                println!(
                    "energy-efficiency gain over SW: {:.2}x (paper: up to 4.65x)\n",
                    experiments::efficiency_gain(full)
                );
            }
            "fig4b" => println!("{}", experiments::fig4b()),
            "fig4c" => println!("{}", experiments::fig4c()),
            "fig4d" => println!("{}", experiments::fig4d()),
            "ablations" => {
                println!("{}", experiments::ablation_pipeline());
                println!("{}", experiments::ablation_streamer());
                println!("{}", experiments::ablation_sw_kernel());
                println!("{}", experiments::contention());
            }
            "faults" => println!("{}", experiments::fault_sweep()),
            other => eprintln!(
                "unknown item `{other}` (try: all, table1, fig3a..fig4d, ablations, faults)"
            ),
        }
    }
}
