//! Deterministic workload generators shared by all experiments.

use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use redmule_nn::Tensor;

/// Matrix sizes swept by the size-dependent figures. `full` adds the
/// largest points (slow under the software simulator).
pub fn sweep_sizes(full: bool) -> Vec<usize> {
    let mut sizes = vec![16, 32, 64, 128];
    if full {
        sizes.extend([256, 512]);
    }
    sizes
}

/// Deterministic, well-conditioned FP16 operands for a GEMM shape.
///
/// Values are small enough that no accumulation overflows even at
/// `N = 512`, so utilization and cycle measurements are not perturbed by
/// special-case handling.
pub fn gemm_operands(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
    let gen = |len: usize, s: u32| -> Vec<F16> {
        (0..len)
            .map(|i| {
                let h = ((i as u32).wrapping_mul(2654435761) ^ s.wrapping_mul(0x85EB_CA6B)) >> 17;
                F16::from_f32((h % 64) as f32 / 64.0 - 0.5)
            })
            .collect()
    };
    (
        gen(shape.x_len(), seed),
        gen(shape.w_len(), seed ^ 0x9E37_79B9),
    )
}

/// A deterministic batch of autoencoder inputs (`640 x batch`),
/// spectrogram-like in scale.
pub fn autoencoder_batch(batch: usize, seed: u32) -> Tensor {
    let s = seed as usize;
    Tensor::from_fn(640, batch, |r, c| {
        let h = ((r * 131 + c * 31 + s * 17) as u32).wrapping_mul(2654435761) >> 18;
        (h % 128) as f32 / 128.0 - 0.5
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_depend_on_full_flag() {
        assert_eq!(sweep_sizes(false).last(), Some(&128));
        assert_eq!(sweep_sizes(true).last(), Some(&512));
    }

    #[test]
    fn operands_are_deterministic_and_bounded() {
        let shape = GemmShape::new(8, 8, 8);
        let (x1, w1) = gemm_operands(shape, 1);
        let (x2, _) = gemm_operands(shape, 1);
        let (x3, _) = gemm_operands(shape, 2);
        assert_eq!(x1, x2);
        assert_ne!(x1, x3);
        assert_eq!(x1.len(), 64);
        assert_eq!(w1.len(), 64);
        assert!(x1.iter().all(|v| v.to_f32().abs() <= 0.5));
    }

    #[test]
    fn autoencoder_batch_shape() {
        let b = autoencoder_batch(16, 3);
        assert_eq!((b.rows(), b.cols()), (640, 16));
        assert!(b.as_slice().iter().all(|v| v.to_f32().abs() <= 0.5));
    }
}
