//! One function per paper artefact (table or figure).
//!
//! Every function *executes the models* and returns a data structure whose
//! `Display` rendering is the regenerated table/series. Nothing here is a
//! hard-coded copy of a paper value except the literature rows of Table I
//! (which are citations, not measurements).

use crate::workloads;
use redmule::faults::{FaultPlan, FtConfig, FtMode, TransientTarget};
use redmule::{AccelConfig, Accelerator, BackendKind, EngineError, Format, FunctionalGemm};
use redmule_batch::{BatchExecutor, GemmJob};
use redmule_cluster::{baseline::SwGemm, ClusterConfig};
use redmule_energy::{table1, AreaModel, OperatingPoint, PowerModel, Technology};
use redmule_fp16::vector::GemmShape;
use redmule_nn::autoencoder;
use redmule_nn::backend::{Backend, CycleLedger, OpKind};
use redmule_service::{ServiceConfig, ServiceRetry, ServiceSim, Submission, TenantConfig};
use redmule_store::{MemBackend, StorageFault, StorageFaultPlan};
use std::fmt;
use std::time::Instant;

/// One size point of the HW-vs-SW sweep (Figs. 3c, 3d, 4a).
#[derive(Debug, Clone, Copy)]
pub struct SizePoint {
    /// Square matrix dimension (`M = N = K`).
    pub size: usize,
    /// Accelerator cycles.
    pub hw_cycles: u64,
    /// Accelerator MACs per cycle.
    pub hw_mpc: f64,
    /// Accelerator utilization (fraction of the 32 MAC/cycle ideal).
    pub hw_util: f64,
    /// Software-baseline cycles (8 cores).
    pub sw_cycles: u64,
    /// Software MACs per cycle.
    pub sw_mpc: f64,
}

impl SizePoint {
    /// HW-over-SW speedup.
    pub fn speedup(&self) -> f64 {
        self.sw_cycles as f64 / self.hw_cycles as f64
    }
}

/// Runs the accelerator model over square GEMMs.
///
/// # Errors
///
/// Returns the first [`EngineError`] an accelerator run reports.
pub fn hw_sweep(sizes: &[usize]) -> Result<Vec<(usize, f64, f64)>, EngineError> {
    let accel = Accelerator::paper_instance();
    sizes
        .iter()
        .map(|&s| {
            let shape = GemmShape::new(s, s, s);
            let (x, w) = workloads::gemm_operands(shape, s as u32);
            let run = accel.gemm(shape, &x, &w)?;
            Ok((
                s,
                run.report.macs_per_cycle(),
                run.report.utilization(accel.config()),
            ))
        })
        .collect()
}

/// Runs both the accelerator and the software baseline over square GEMMs.
///
/// # Errors
///
/// Returns the first [`EngineError`] an accelerator run reports.
///
/// # Panics
///
/// Panics if the accelerator and software results ever diverge bitwise —
/// that is a model bug, not a runtime condition.
pub fn hw_sw_sweep(sizes: &[usize]) -> Result<Vec<SizePoint>, EngineError> {
    let accel = Accelerator::paper_instance();
    let sw = SwGemm::new(&ClusterConfig::default());
    sizes
        .iter()
        .map(|&s| {
            let shape = GemmShape::new(s, s, s);
            let (x, w) = workloads::gemm_operands(shape, s as u32);
            let hw = accel.gemm(shape, &x, &w)?;
            let swr = sw.run(shape, &x, &w)?;
            assert_eq!(
                hw.z.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                swr.z.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "HW and SW must agree bitwise at size {s}"
            );
            Ok(SizePoint {
                size: s,
                hw_cycles: hw.report.cycles.count(),
                hw_mpc: hw.report.macs_per_cycle(),
                hw_util: hw.report.utilization(accel.config()),
                sw_cycles: swr.cycles.count(),
                sw_mpc: swr.macs_per_cycle(),
            })
        })
        .collect()
}

/// The measured sustained throughput used by Table I (MAC/cycle and
/// utilization at a large square GEMM).
///
/// # Errors
///
/// Returns the [`EngineError`] of the underlying accelerator run.
pub fn measured_peak(full: bool) -> Result<(f64, f64), EngineError> {
    let size = if full { 512 } else { 128 };
    let (_, mpc, util) = hw_sweep(&[size])?[0];
    Ok((mpc, util))
}

/// Table I, regenerated: literature rows plus our three computed rows.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Measured MAC/cycle driving the computed rows.
    pub macs_per_cycle: f64,
    /// Measured utilization.
    pub util: f64,
    /// All rows (literature + ours).
    pub rows: Vec<table1::Row>,
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table I (computed rows use measured {:.1} MAC/cycle, {:.1} % utilization)",
            self.macs_per_cycle,
            100.0 * self.util
        )?;
        f.write_str(&table1::render(&self.rows))
    }
}

/// Regenerates Table I.
///
/// # Errors
///
/// Returns the [`EngineError`] of the underlying accelerator run.
pub fn table1(full: bool) -> Result<Table1, EngineError> {
    let (mpc, util) = measured_peak(full)?;
    let mut rows = table1::literature_rows();
    rows.extend(table1::our_rows(mpc, util));
    Ok(Table1 {
        macs_per_cycle: mpc,
        util,
        rows,
    })
}

/// Fig. 3a: RedMulE area breakdown.
pub fn fig3a() -> String {
    let b = AreaModel::new(Technology::Gf22Fdx).redmule(4, 8, 3);
    let shares = b.shares();
    format!(
        "Fig 3a: RedMulE area breakdown (total {:.3} mm2)\n\
         datapath   {:5.1} %\nbuffers    {:5.1} %\nstreamer   {:5.1} %\ncontroller {:5.1} %\n",
        b.total(),
        100.0 * shares[0],
        100.0 * shares[1],
        100.0 * shares[2],
        100.0 * shares[3],
    )
}

/// Fig. 3b: RedMulE power breakdown at the efficiency point.
pub fn fig3b() -> String {
    let m = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_efficiency());
    let rm = m.redmule_power_mw(0.988);
    format!(
        "Fig 3b: RedMulE power breakdown (total {:.1} mW at {})\n\
         datapath   {:5.1} %\nbuffers    {:5.1} %\nstreamer   {:5.1} %\ncontroller {:5.1} %\n",
        rm.total(),
        m.operating_point(),
        100.0 * rm.datapath / rm.total(),
        100.0 * rm.buffers / rm.total(),
        100.0 * rm.streamer / rm.total(),
        100.0 * rm.controller / rm.total(),
    )
}

/// Fig. 3c: cluster energy per MAC vs matrix size.
#[derive(Debug, Clone)]
pub struct Fig3c {
    /// (size, utilization, pJ/MAC) series.
    pub points: Vec<(usize, f64, f64)>,
}

impl fmt::Display for Fig3c {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 3c: cluster energy per MAC (0.65 V, 476 MHz)")?;
        writeln!(f, "{:>6} {:>8} {:>10}", "size", "util%", "pJ/MAC")?;
        for &(s, u, e) in &self.points {
            writeln!(f, "{s:>6} {:>8.1} {e:>10.2}", 100.0 * u)?;
        }
        Ok(())
    }
}

/// Regenerates Fig. 3c.
///
/// # Errors
///
/// Returns the [`EngineError`] of the underlying accelerator sweep.
pub fn fig3c(sizes: &[usize]) -> Result<Fig3c, EngineError> {
    let m = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_efficiency());
    Ok(Fig3c {
        points: hw_sweep(sizes)?
            .into_iter()
            .map(|(s, mpc, util)| (s, util, m.energy_per_mac_pj(mpc, util)))
            .collect(),
    })
}

/// Fig. 3d: throughput at the maximum cluster frequency vs matrix size.
#[derive(Debug, Clone)]
pub struct Fig3d {
    /// (size, MAC/cycle, GFLOPS at 666 MHz) series.
    pub points: Vec<(usize, f64, f64)>,
}

impl fmt::Display for Fig3d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 3d: throughput at 666 MHz (0.8 V)")?;
        writeln!(f, "{:>6} {:>10} {:>9}", "size", "MAC/cycle", "GFLOPS")?;
        for &(s, mpc, g) in &self.points {
            writeln!(f, "{s:>6} {mpc:>10.2} {g:>9.1}")?;
        }
        Ok(())
    }
}

/// Regenerates Fig. 3d.
///
/// # Errors
///
/// Returns the [`EngineError`] of the underlying accelerator sweep.
pub fn fig3d(sizes: &[usize]) -> Result<Fig3d, EngineError> {
    let m = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_performance());
    Ok(Fig3d {
        points: hw_sweep(sizes)?
            .into_iter()
            .map(|(s, mpc, _)| (s, mpc, m.gops(mpc)))
            .collect(),
    })
}

/// Fig. 4a: HW vs SW computational performance against the 32 MAC/cycle
/// ideal.
#[derive(Debug, Clone)]
pub struct Fig4a {
    /// Per-size measurements.
    pub points: Vec<SizePoint>,
}

impl Fig4a {
    /// Largest observed speedup ("up to NNx" in the paper).
    pub fn peak_speedup(&self) -> f64 {
        self.points
            .iter()
            .map(SizePoint::speedup)
            .fold(0.0, f64::max)
    }

    /// Largest observed fraction of the ideal throughput.
    pub fn peak_ideal_fraction(&self) -> f64 {
        self.points.iter().map(|p| p.hw_util).fold(0.0, f64::max)
    }
}

impl fmt::Display for Fig4a {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 4a: HW vs SW vs ideal (32 MAC/cycle)")?;
        writeln!(
            f,
            "{:>6} {:>12} {:>10} {:>8} {:>12} {:>10} {:>9}",
            "size", "HW cycles", "HW MAC/c", "% ideal", "SW cycles", "SW MAC/c", "speedup"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>6} {:>12} {:>10.2} {:>8.1} {:>12} {:>10.3} {:>8.1}x",
                p.size,
                p.hw_cycles,
                p.hw_mpc,
                100.0 * p.hw_util,
                p.sw_cycles,
                p.sw_mpc,
                p.speedup()
            )?;
        }
        writeln!(
            f,
            "peak: {:.1}% of ideal, {:.1}x speedup",
            100.0 * self.peak_ideal_fraction(),
            self.peak_speedup()
        )
    }
}

/// Regenerates Fig. 4a.
///
/// # Errors
///
/// Returns the [`EngineError`] of the underlying accelerator sweep.
pub fn fig4a(sizes: &[usize]) -> Result<Fig4a, EngineError> {
    Ok(Fig4a {
        points: hw_sw_sweep(sizes)?,
    })
}

/// Fig. 4b: area sweep as a function of H and L (P = 3).
pub fn fig4b() -> String {
    let m = AreaModel::new(Technology::Gf22Fdx);
    let pairs = [
        (2usize, 4usize),
        (2, 8),
        (4, 8),
        (4, 16),
        (8, 16),
        (8, 32),
        (16, 32),
    ];
    let mut out = String::from("Fig 4b: RedMulE area sweep (P = 3)\n");
    out.push_str(&format!(
        "{:>4} {:>4} {:>6} {:>10} {:>9} {:>7}\n",
        "H", "L", "FMAs", "area mm2", "cluster", "ports"
    ));
    for p in m.sweep(&pairs, 3) {
        let ports = AccelConfig::new(p.h, p.l, 3).memory_ports();
        out.push_str(&format!(
            "{:>4} {:>4} {:>6} {:>10.3} {:>8.2}x {:>7}\n",
            p.h, p.l, p.fmas, p.area_mm2, p.cluster_ratio, ports
        ));
    }
    out
}

/// One layer row of the Fig. 4c comparison (GEMM cycles only; shared
/// elementwise work is reported separately).
#[derive(Debug, Clone)]
pub struct AeLayerRow {
    /// Layer label.
    pub layer: String,
    /// Forward GEMM cycles on the accelerator.
    pub fwd_hw: u64,
    /// Forward GEMM cycles on the 8-core baseline.
    pub fwd_sw: u64,
    /// Backward (data + weight) GEMM cycles on the accelerator.
    pub bwd_hw: u64,
    /// Backward GEMM cycles on the baseline.
    pub bwd_sw: u64,
}

/// Fig. 4c / 4d data: one full training step at a given batch size.
#[derive(Debug, Clone)]
pub struct AeStep {
    /// Batch size.
    pub batch: usize,
    /// Per-layer GEMM cycle comparison.
    pub layers: Vec<AeLayerRow>,
    /// Forward + backward cycles (GEMMs, activations, loss) on the
    /// accelerator path. The SGD update is excluded: the paper's benchmark
    /// propagates "a single input forward and backward".
    pub total_hw: u64,
    /// Forward + backward cycles on the software path.
    pub total_sw: u64,
    /// Elementwise cycles within the totals (identical on both paths).
    pub elementwise: u64,
    /// SGD update cycles (identical on both paths, excluded from totals).
    pub update_cycles: u64,
    /// FP16 weight bytes (single copy).
    pub weight_bytes: usize,
    /// Live training activation bytes at this batch size.
    pub activation_bytes: usize,
}

impl AeStep {
    /// Overall HW-over-SW speedup for the whole training step.
    pub fn speedup(&self) -> f64 {
        self.total_sw as f64 / self.total_hw as f64
    }
}

impl fmt::Display for AeStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "TinyMLPerf AutoEncoder training step, batch = {}",
            self.batch
        )?;
        writeln!(
            f,
            "{:<8} {:>10} {:>10} {:>8} {:>10} {:>10} {:>8}",
            "layer", "fwd HW", "fwd SW", "fwd x", "bwd HW", "bwd SW", "bwd x"
        )?;
        for row in &self.layers {
            writeln!(
                f,
                "{:<8} {:>10} {:>10} {:>7.1}x {:>10} {:>10} {:>7.1}x",
                row.layer,
                row.fwd_hw,
                row.fwd_sw,
                row.fwd_sw as f64 / row.fwd_hw.max(1) as f64,
                row.bwd_hw,
                row.bwd_sw,
                row.bwd_sw as f64 / row.bwd_hw.max(1) as f64,
            )?;
        }
        writeln!(
            f,
            "fwd+bwd totals: HW {} cyc, SW {} cyc (elementwise, shared: {} cyc) => speedup {:.1}x",
            self.total_hw,
            self.total_sw,
            self.elementwise,
            self.speedup()
        )?;
        writeln!(
            f,
            "optimizer update (shared, excluded): {} cyc",
            self.update_cycles
        )?;
        writeln!(
            f,
            "memory: weights {} KiB (FP16), activations {} KiB at B={}",
            self.weight_bytes / 1024,
            self.activation_bytes / 1024,
            self.batch
        )
    }
}

/// Regenerates Fig. 4c (per-layer, B = 1) or the per-batch halves of
/// Fig. 4d.
///
/// # Errors
///
/// Returns the [`EngineError`] of a failed training-step GEMM.
pub fn autoencoder_step(batch: usize) -> Result<AeStep, EngineError> {
    let x = workloads::autoencoder_batch(batch, 11);
    let run = |mut backend: Backend| -> Result<CycleLedger, EngineError> {
        let mut net = autoencoder::mlperf_tiny(77);
        let mut ledger = CycleLedger::new();
        net.train_step(&x, 0.001, &mut backend, &mut ledger)?;
        Ok(ledger)
    };
    let hw = run(Backend::hw())?;
    let sw = run(Backend::sw())?;

    let gemm_cycles = |ledger: &CycleLedger, layer: &str, kinds: &[OpKind]| -> u64 {
        ledger
            .records()
            .iter()
            .filter(|r| r.layer == layer && kinds.contains(&r.kind))
            .map(|r| r.cycles.count())
            .sum()
    };

    let net = autoencoder::mlperf_tiny(77);
    let layers = net
        .layers()
        .iter()
        .map(|l| AeLayerRow {
            layer: l.name().to_owned(),
            fwd_hw: gemm_cycles(&hw, l.name(), &[OpKind::Forward]),
            fwd_sw: gemm_cycles(&sw, l.name(), &[OpKind::Forward]),
            bwd_hw: gemm_cycles(
                &hw,
                l.name(),
                &[OpKind::BackwardData, OpKind::BackwardWeight],
            ),
            bwd_sw: gemm_cycles(
                &sw,
                l.name(),
                &[OpKind::BackwardData, OpKind::BackwardWeight],
            ),
        })
        .collect();

    let update = hw.cycles_for(OpKind::Update).count();
    Ok(AeStep {
        batch,
        layers,
        total_hw: hw.total_cycles().count() - update,
        total_sw: sw.total_cycles().count() - update,
        elementwise: hw.cycles_for(OpKind::Elementwise).count()
            + hw.cycles_for(OpKind::Loss).count(),
        update_cycles: update,
        weight_bytes: net.weight_bytes(),
        activation_bytes: autoencoder::training_activation_bytes(&net, batch),
    })
}

/// Fig. 4c: the B = 1 per-layer comparison.
///
/// # Errors
///
/// Returns the [`EngineError`] of a failed training-step GEMM.
pub fn fig4c() -> Result<AeStep, EngineError> {
    autoencoder_step(1)
}

/// Fig. 4d: the batching comparison.
#[derive(Debug, Clone)]
pub struct Fig4d {
    /// The B = 1 step.
    pub b1: AeStep,
    /// The B = 16 step.
    pub b16: AeStep,
}

impl Fig4d {
    /// HW per-sample throughput improvement from batching.
    pub fn hw_batching_gain(&self) -> f64 {
        (self.b1.total_hw as f64) / (self.b16.total_hw as f64 / 16.0)
    }

    /// SW per-sample throughput improvement from batching (paper: ~1).
    pub fn sw_batching_gain(&self) -> f64 {
        (self.b1.total_sw as f64) / (self.b16.total_sw as f64 / 16.0)
    }
}

impl fmt::Display for Fig4d {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig 4d: effect of batching on HW/SW execution")?;
        writeln!(
            f,
            "{:>4} {:>12} {:>12} {:>9} {:>12} {:>12}",
            "B", "HW cyc", "SW cyc", "speedup", "HW cyc/spl", "SW cyc/spl"
        )?;
        for step in [&self.b1, &self.b16] {
            writeln!(
                f,
                "{:>4} {:>12} {:>12} {:>8.1}x {:>12.0} {:>12.0}",
                step.batch,
                step.total_hw,
                step.total_sw,
                step.speedup(),
                step.total_hw as f64 / step.batch as f64,
                step.total_sw as f64 / step.batch as f64,
            )?;
        }
        writeln!(
            f,
            "batching gain per sample: HW {:.1}x, SW {:.2}x; B=16 activations {} KiB",
            self.hw_batching_gain(),
            self.sw_batching_gain(),
            self.b16.activation_bytes / 1024
        )
    }
}

/// Regenerates Fig. 4d.
///
/// # Errors
///
/// Returns the [`EngineError`] of a failed training-step GEMM.
pub fn fig4d() -> Result<Fig4d, EngineError> {
    Ok(Fig4d {
        b1: autoencoder_step(1)?,
        b16: autoencoder_step(16)?,
    })
}

/// Ablation: FMA pipeline depth `P` at fixed `H = 4, L = 8` — the design
/// choice the paper fixed at `P = 3`.
///
/// # Errors
///
/// Returns the first [`EngineError`] an accelerator run reports.
pub fn ablation_pipeline() -> Result<String, EngineError> {
    use redmule_energy::AreaModel;
    let shape = GemmShape::new(64, 64, 64);
    let area = AreaModel::new(Technology::Gf22Fdx);
    let mut out = String::from("Ablation: FMA pipeline depth (H = 4, L = 8, square GEMM 64^3)\n");
    out.push_str(&format!(
        "{:>3} {:>7} {:>7} {:>9} {:>10} {:>10}\n",
        "P", "width", "ports", "cycles", "util %", "area mm2"
    ));
    for p in 0..=5 {
        let cfg = AccelConfig::new(4, 8, p);
        let accel = Accelerator::new(cfg);
        let (x, w) = workloads::gemm_operands(shape, p as u32);
        let run = accel.gemm(shape, &x, &w)?;
        out.push_str(&format!(
            "{:>3} {:>7} {:>7} {:>9} {:>10.1} {:>10.4}\n",
            p,
            cfg.phase_width(),
            cfg.memory_ports(),
            run.report.cycles.count(),
            100.0 * run.report.utilization(&cfg),
            area.redmule(4, 8, p).total(),
        ));
    }
    Ok(out)
}

/// Ablation: streamer schedule policies (interleave + prefetch vs the
/// strawmen).
///
/// # Errors
///
/// Returns the first [`EngineError`] an engine run reports.
pub fn ablation_streamer() -> Result<String, EngineError> {
    use redmule::{Engine, Job, StreamerPolicy};
    use redmule_cluster::{Hci, Tcdm};

    let shape = GemmShape::new(32, 64, 32);
    let run_policy = |policy: StreamerPolicy| -> Result<(u64, u64), EngineError> {
        let (x, w) = workloads::gemm_operands(shape, 3);
        let ccfg = ClusterConfig::default();
        let mut mem = Tcdm::new(&ccfg);
        let mut hci = Hci::new(&ccfg);
        mem.store_f16_slice(0, &x)?;
        mem.store_f16_slice(0x4000, &w)?;
        let engine = Engine::new(AccelConfig::paper()).with_streamer_policy(policy);
        let job = Job::new(0, 0x4000, 0x8000, shape.m, shape.n, shape.k);
        let report = engine.run(job, &mut mem, &mut hci)?;
        Ok((report.cycles.count(), report.stall_cycles))
    };

    let mut out = format!("Ablation: streamer schedule (GEMM {shape})\n");
    out.push_str(&format!(
        "{:<18} {:>9} {:>9} {:>9}\n",
        "policy", "cycles", "stalls", "vs base"
    ));
    let (base, base_stalls) = run_policy(StreamerPolicy::Interleaved)?;
    out.push_str(&format!(
        "{:<18} {:>9} {:>9} {:>8.2}x\n",
        "interleaved", base, base_stalls, 1.0
    ));
    for (name, policy) in [
        ("half-bandwidth", StreamerPolicy::HalfBandwidth),
        ("single-buffered-W", StreamerPolicy::SingleBufferedW),
    ] {
        let (cycles, stalls) = run_policy(policy)?;
        out.push_str(&format!(
            "{:<18} {:>9} {:>9} {:>8.2}x\n",
            name,
            cycles,
            stalls,
            cycles as f64 / base as f64
        ));
    }
    Ok(out)
}

/// Ablation: sensitivity of the speedup headline to the software kernel.
///
/// # Errors
///
/// Returns the [`EngineError`] of the accelerator reference run.
pub fn ablation_sw_kernel() -> Result<String, EngineError> {
    use redmule_cluster::baseline::KernelVariant;
    let shape = GemmShape::new(64, 64, 64);
    let (x, w) = workloads::gemm_operands(shape, 17);
    let hw = Accelerator::paper_instance().gemm(shape, &x, &w)?;
    let mut out = format!("Ablation: software-kernel sensitivity (GEMM {shape})\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>10} {:>9}\n",
        "baseline", "SW cycles", "SW MAC/c", "speedup"
    ));
    for (name, variant) in [
        ("scalar", KernelVariant::Scalar),
        ("simd2", KernelVariant::Simd2),
    ] {
        let run = SwGemm::new(&ClusterConfig::default())
            .with_variant(variant)
            .run(shape, &x, &w)?;
        out.push_str(&format!(
            "{:<10} {:>10} {:>10.3} {:>8.1}x\n",
            name,
            run.cycles.count(),
            run.macs_per_cycle(),
            run.cycles.count() as f64 / hw.report.cycles.count() as f64
        ));
    }
    Ok(out)
}

/// Co-simulation experiment (beyond the paper): the accelerator sharing
/// the TCDM with cores that access memory every cycle, across the HCI's
/// configurable rotation window.
///
/// # Errors
///
/// Returns the first [`EngineError`] an engine session reports.
pub fn contention() -> Result<String, EngineError> {
    use redmule::{Engine, Job};
    use redmule_cluster::{Hci, Initiator, Tcdm};

    let shape = GemmShape::new(8, 32, 16);
    let (x, w) = workloads::gemm_operands(shape, 23);
    let engine = Engine::new(AccelConfig::paper());

    let run = |streak: u32, hammers: usize| -> Result<(u64, f64), EngineError> {
        let ccfg = ClusterConfig {
            rotation_streak: streak,
            ..ClusterConfig::default()
        };
        let mut mem = Tcdm::new(&ccfg);
        let mut hci = Hci::new(&ccfg);
        mem.store_f16_slice(0, &x)?;
        mem.store_f16_slice(0x2000, &w)?;
        let job = Job::new(0, 0x2000, 0x4000, shape.m, shape.n, shape.k);
        let mut session = engine.start(job)?;
        let mut cycles = 0u64;
        let mut grants = 0u64;
        let mut requests = 0u64;
        while !session.is_finished() {
            let reqs: Vec<(Initiator, u32)> = (0..hammers)
                .map(|c| (Initiator::Core(c), ((cycles as u32 + c as u32) % 512) * 4))
                .collect();
            let tick = session.tick(&mut mem, &mut hci, &reqs)?;
            requests += reqs.len() as u64;
            grants += tick.log_granted.iter().filter(|&&g| g).count() as u64;
            cycles += 1;
        }
        session.finish();
        let rate = if requests == 0 {
            1.0
        } else {
            grants as f64 / requests as f64
        };
        Ok((cycles, rate))
    };

    let (clean, _) = run(4, 0)?;
    let mut out = format!(
        "Co-simulation: accelerator vs 8 memory-hammering cores (GEMM {shape})
         uncontended: {clean} cycles
"
    );
    out.push_str(&format!(
        "{:>7} {:>12} {:>10} {:>12}
",
        "streak", "engine cyc", "slowdown", "core grants"
    ));
    for streak in [1u32, 2, 4, 8] {
        let (cycles, rate) = run(streak, 8)?;
        out.push_str(&format!(
            "{:>7} {:>12} {:>9.2}x {:>11.1}%
",
            streak,
            cycles,
            cycles as f64 / clean as f64,
            100.0 * rate
        ));
    }
    Ok(out)
}

/// Headline claim check: energy-efficiency gain of the accelerator over
/// the software baseline (paper: up to 4.65x).
///
/// Both run at the same operating point; SW power excludes the (idle)
/// accelerator but keeps cores active, which we approximate by the same
/// cluster power envelope with the cores' share replacing RedMulE's.
///
/// # Errors
///
/// Returns the [`EngineError`] of the underlying accelerator run.
pub fn efficiency_gain(full: bool) -> Result<f64, EngineError> {
    let sizes = workloads::sweep_sizes(full);
    let size = *sizes.last().expect("non-empty sweep");
    let pts = hw_sw_sweep(&[size])?;
    let p = &pts[0];
    let m = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_efficiency());
    Ok(m.efficiency_gain_over_sw(p.hw_mpc, p.hw_util, p.sw_mpc))
}

/// One row of the fault-tolerance sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepRow {
    /// Protection mode.
    pub mode: FtMode,
    /// Random transients injected per tile.
    pub per_tile: u32,
    /// Faults that actually landed on live state.
    pub injected: u64,
    /// Detections (ABFT mismatch or DMR vote failure).
    pub detected: u64,
    /// Tiles restored to the exact result.
    pub corrected: u64,
    /// Tile re-executions.
    pub replayed: u64,
    /// Total cycles including all recovery overhead.
    pub cycles: u64,
    /// Cycle overhead relative to the unprotected fault-free run.
    pub overhead: f64,
    /// Whether the final Z matched the golden model bit for bit.
    pub exact: bool,
}

/// RedMulE-FT sweep: both protection modes against increasing transient
/// rates on a 32x32x32 GEMM.
#[derive(Debug, Clone)]
pub struct FaultSweep {
    /// Fault-free unprotected cycle count (the overhead baseline).
    pub baseline_cycles: u64,
    /// One row per (mode, rate) pair.
    pub rows: Vec<FaultSweepRow>,
}

impl fmt::Display for FaultSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fault sweep: 32x32x32 GEMM, seeded transients (baseline {} cycles)",
            self.baseline_cycles
        )?;
        writeln!(
            f,
            "{:>10} {:>9} {:>8} {:>8} {:>9} {:>8} {:>8} {:>9} {:>6}",
            "mode",
            "per-tile",
            "injected",
            "detected",
            "corrected",
            "replays",
            "cycles",
            "overhead",
            "exact"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>10} {:>9} {:>8} {:>8} {:>9} {:>8} {:>8} {:>8.1}% {:>6}",
                format!("{:?}", r.mode),
                r.per_tile,
                r.injected,
                r.detected,
                r.corrected,
                r.replayed,
                r.cycles,
                100.0 * r.overhead,
                if r.exact { "yes" } else { "NO" },
            )?;
        }
        Ok(())
    }
}

/// Runs the RedMulE-FT fault sweep: replay vs redundancy at 0/1/2/4
/// random transients per tile, all from fixed seeds so the table is
/// reproducible run to run.
///
/// # Errors
///
/// Returns the first [`EngineError`] a protected or baseline run reports
/// (including unrecoverable fault escalations).
pub fn fault_sweep() -> Result<FaultSweep, EngineError> {
    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(32, 32, 32);
    let (x, w) = workloads::gemm_operands(shape, 0xF0F0);
    let golden = redmule_fp16::vector::gemm_golden(shape, &x, &w);
    let baseline = accel.gemm(shape, &x, &w)?;
    let baseline_cycles = baseline.report.cycles.count();

    let targets = [
        TransientTarget::Pipe,
        TransientTarget::WLoad,
        TransientTarget::XLoad,
        TransientTarget::ZStore,
    ];
    let mut rows = Vec::new();
    for mode in [FtMode::Replay, FtMode::Redundancy] {
        for (i, per_tile) in [0u32, 1, 2, 4].into_iter().enumerate() {
            let plan = FaultPlan::new(0x5EED + i as u64).with_random_transients(per_tile, &targets);
            let ft = FtConfig {
                mode,
                max_retries: 8,
            };
            let run = accel.gemm_ft(shape, &x, &w, &plan, ft)?;
            let stats = &run.report.stats;
            let cycles = run.report.cycles.count();
            rows.push(FaultSweepRow {
                mode,
                per_tile,
                injected: stats.get("faults_injected"),
                detected: stats.get("faults_detected"),
                corrected: stats.get("faults_corrected"),
                replayed: stats.get("tiles_replayed"),
                cycles,
                overhead: cycles as f64 / baseline_cycles as f64 - 1.0,
                exact: run
                    .z
                    .iter()
                    .map(|v| v.to_bits())
                    .eq(golden.iter().map(|v| v.to_bits())),
            });
        }
    }
    Ok(FaultSweep {
        baseline_cycles,
        rows,
    })
}

/// Supervised-runtime experiment (beyond the paper): a long GEMM driven
/// under shrinking cycle budgets. Each over-budget slice degrades
/// gracefully — it stops at a tile boundary with a resumable checkpoint,
/// a partial report and an analytical estimate of the remaining cycles —
/// and resuming until completion reproduces the uninterrupted result bit
/// for bit in the same total number of engine cycles.
///
/// # Errors
///
/// Returns the first [`EngineError`] a supervised slice reports.
///
/// # Panics
///
/// Panics if a resumed run diverges from the uninterrupted baseline —
/// that is a model bug, not a runtime condition.
pub fn degradation() -> Result<String, EngineError> {
    use redmule::{stage_gemm_workspace, Engine};
    use redmule_runtime::{Limits, Supervisor};

    let shape = GemmShape::new(48, 48, 48);
    let (x, w) = workloads::gemm_operands(shape, 0xD15C);
    let engine = Engine::new(AccelConfig::paper());

    // Uninterrupted baseline.
    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None)?;
    let full = engine.run(job, &mut mem, &mut hci)?;
    let total = full.cycles.count();
    let golden: Vec<u16> = mem
        .load_f16_slice(job.z_addr, shape.z_len())?
        .iter()
        .map(|v| v.to_bits())
        .collect();

    let mut out = format!("Supervised degradation: GEMM {shape}, {total} cycles uninterrupted\n");
    out.push_str(&format!(
        "{:>8} {:>10} {:>12} {:>11} {:>12} {:>7} {:>11}\n",
        "budget", "stop", "tiles", "executed", "est. remain", "slices", "total cyc"
    ));
    for pct in [10u64, 25, 50] {
        let budget = total * pct / 100;
        let sup =
            Supervisor::new(engine.clone()).with_limits(Limits::none().with_max_cycles(budget));
        let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, None)?;
        let mut run = sup.run(job, &mut mem, &mut hci)?;
        let first_stop = format!("{:?}", run.stop);
        let first_tiles = format!("{}/{}", run.tiles_done, run.tiles_total);
        let first_cycles = run.cycles_executed;
        let first_estimate = run.estimated_remaining_cycles;
        let mut slices = 1u32;
        while run.degraded {
            let ckpt = run.checkpoint.expect("degraded runs carry a checkpoint");
            run = sup.resume(&ckpt, &mut mem, &mut hci)?;
            slices += 1;
        }
        let z: Vec<u16> = mem
            .load_f16_slice(job.z_addr, shape.z_len())?
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(z, golden, "resumed run must match the baseline bitwise");
        let final_cycles = run.report.cycles.count();
        assert_eq!(final_cycles, total, "resumed run must cost the same cycles");
        out.push_str(&format!(
            "{:>7}% {:>10} {:>12} {:>11} {:>12} {:>7} {:>11}\n",
            pct, first_stop, first_tiles, first_cycles, first_estimate, slices, final_cycles
        ));
    }
    Ok(out)
}

/// One worker-count point of the batch scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct BatchPoint {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Modeled makespan: simulated cycles of the busiest worker.
    pub makespan_cycles: u64,
    /// Total simulated cycles over all jobs (worker-count invariant).
    pub busy_cycles: u64,
    /// Modeled throughput at the 0.80 V operating point: what the
    /// *accelerator* would sustain, `jobs x f_clk / makespan_cycles`.
    pub modeled_jobs_per_sec: f64,
    /// Measured throughput: host wall-clock jobs/sec of the functional
    /// backend running the same batch at this worker count, median of
    /// [`BatchThroughput::wall_repeats`] timed runs.
    pub wall_jobs_per_sec: f64,
}

/// Batch-throughput scaling artefact (`BENCH_batch.json`): jobs/sec vs
/// worker count for a fixed batch of independent GEMMs, reported two
/// honest ways.
///
/// *Modeled* throughput is what the accelerator would sustain: each
/// worker accounts the simulated cycles of the jobs it executed, the
/// makespan is the busiest worker's total, and jobs/sec = jobs × f_clk /
/// makespan. It is bit-deterministic and guards the *scheduler* — a pool
/// that serialized every job onto one worker would show no scaling.
///
/// *Wall* throughput is what the host actually delivers: the same batch
/// re-run on the functional backend under a wall clock, median of
/// `wall_repeats` timed runs per worker count. It is noisy by nature
/// (hence the lenient guard) but is the only number that can catch a
/// softfloat kernel that got 10x slower without changing a bit.
#[derive(Debug, Clone)]
pub struct BatchThroughput {
    /// Number of jobs in the batch.
    pub jobs: usize,
    /// Clock frequency assumed by the modeled throughput (MHz).
    pub freq_mhz: f64,
    /// Timed wall-clock runs per worker count (the median is reported).
    pub wall_repeats: usize,
    /// One point per worker count, ascending.
    pub points: Vec<BatchPoint>,
}

impl BatchThroughput {
    /// Modeled speedup of `workers` over the single-worker point.
    pub fn modeled_speedup_at(&self, workers: usize) -> f64 {
        let base = self.points.first().map_or(0.0, |p| p.modeled_jobs_per_sec);
        self.points
            .iter()
            .find(|p| p.workers == workers)
            .map_or(0.0, |p| {
                if base > 0.0 {
                    p.modeled_jobs_per_sec / base
                } else {
                    0.0
                }
            })
    }

    /// Measured wall-clock speedup of `workers` over the single-worker
    /// point.
    pub fn wall_speedup_at(&self, workers: usize) -> f64 {
        let base = self.points.first().map_or(0.0, |p| p.wall_jobs_per_sec);
        self.points
            .iter()
            .find(|p| p.workers == workers)
            .map_or(0.0, |p| {
                if base > 0.0 {
                    p.wall_jobs_per_sec / base
                } else {
                    0.0
                }
            })
    }

    /// Scaling guard used by CI, checking both throughput kinds.
    ///
    /// Modeled (deterministic, strict): 4 workers must beat 1 strictly
    /// and 8 workers must reach at least 3x. Wall (noisy, lenient —
    /// CI hosts may have fewer cores than workers): every point must be
    /// finite and positive, and no worker count may fall below a quarter
    /// of the single-worker wall throughput — adding workers being
    /// *catastrophically* slower than serial means a contention bug, not
    /// host noise. Returns the first violation, if any.
    pub fn scaling_violation(&self) -> Option<String> {
        let s4 = self.modeled_speedup_at(4);
        let s8 = self.modeled_speedup_at(8);
        if s4 <= 1.0 {
            return Some(format!(
                "modeled jobs/sec at 4 workers is {s4:.2}x of 1 worker (need > 1x)"
            ));
        }
        if s8 < 3.0 {
            return Some(format!(
                "modeled jobs/sec at 8 workers is {s8:.2}x of 1 worker (need >= 3x)"
            ));
        }
        for p in &self.points {
            if !p.wall_jobs_per_sec.is_finite() || p.wall_jobs_per_sec <= 0.0 {
                return Some(format!(
                    "wall jobs/sec at {} workers is {} (need finite and positive)",
                    p.workers, p.wall_jobs_per_sec
                ));
            }
            let ws = self.wall_speedup_at(p.workers);
            if ws < 0.25 {
                return Some(format!(
                    "wall jobs/sec at {} workers is {ws:.2}x of 1 worker (need >= 0.25x)",
                    p.workers
                ));
            }
        }
        None
    }

    /// Renders the artefact as the JSON written to `BENCH_batch.json`.
    /// Fixed-precision formatting throughout so regenerated artefacts
    /// diff cleanly field by field (wall values are measurements and
    /// *will* move between hosts; their format does not).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"batch_throughput\",\n");
        out.push_str(&format!("  \"jobs\": {},\n", self.jobs));
        out.push_str(&format!("  \"freq_mhz\": {:.1},\n", self.freq_mhz));
        out.push_str(&format!("  \"wall_repeats\": {},\n", self.wall_repeats));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"workers\": {}, \"makespan_cycles\": {}, \"busy_cycles\": {}, \
                 \"modeled_jobs_per_sec\": {:.1}, \"modeled_speedup\": {:.3}, \
                 \"wall_jobs_per_sec\": {:.0}, \"wall_speedup\": {:.3}}}{}\n",
                p.workers,
                p.makespan_cycles,
                p.busy_cycles,
                p.modeled_jobs_per_sec,
                self.modeled_speedup_at(p.workers),
                p.wall_jobs_per_sec,
                self.wall_speedup_at(p.workers),
                sep,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for BatchThroughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Batch throughput ({} independent GEMM jobs, modeled at {:.0} MHz, \
             wall = median of {} runs)",
            self.jobs, self.freq_mhz, self.wall_repeats
        )?;
        writeln!(
            f,
            "{:>8} {:>16} {:>16} {:>9} {:>13} {:>9}",
            "workers", "makespan (cyc)", "modeled jobs/s", "speedup", "wall jobs/s", "speedup"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>8} {:>16} {:>16.0} {:>8.2}x {:>13.0} {:>8.2}x",
                p.workers,
                p.makespan_cycles,
                p.modeled_jobs_per_sec,
                self.modeled_speedup_at(p.workers),
                p.wall_jobs_per_sec,
                self.wall_speedup_at(p.workers),
            )?;
        }
        Ok(())
    }
}

/// Timed wall-clock runs per worker count; the median is reported, so
/// one descheduled run cannot swing the artefact.
const WALL_REPEATS: usize = 5;

/// The fixed batch both throughput legs (and the perf guard) run: 64
/// jobs of small shapes in smoke mode, 256 heavier jobs otherwise. Five
/// shapes, coprime with every worker count in the sweep, so the
/// round-robin deal hands each worker a mix of weights rather than a
/// resonant all-light / all-heavy split.
fn batch_job_mix(smoke: bool) -> Vec<GemmJob> {
    let n_jobs: usize = if smoke { 64 } else { 256 };
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[
            (8, 16, 16),
            (16, 8, 32),
            (12, 24, 16),
            (16, 16, 16),
            (8, 32, 24),
        ]
    } else {
        &[
            (32, 32, 32),
            (16, 64, 32),
            (48, 16, 48),
            (32, 48, 64),
            (24, 40, 40),
        ]
    };
    (0..n_jobs)
        .map(|i| {
            let (m, n, k) = shapes[i % shapes.len()];
            let shape = GemmShape::new(m, n, k);
            let (x, w) = workloads::gemm_operands(shape, i as u32);
            GemmJob::new(i as u64, shape, x, w)
        })
        .collect()
}

/// Runs a fixed batch of independent GEMM jobs through the work-stealing
/// executor at 1, 2, 4 and 8 workers and reports both modeled
/// (accelerator-cycle) and measured (host wall-clock, functional
/// backend) jobs/sec. While measuring, it also asserts the canonical
/// batch report is byte-identical across every worker count — the
/// determinism contract the parallel writeback must uphold.
///
/// `smoke` selects the small CI workload (64 jobs of small shapes);
/// without it the batch is 4x larger with heavier shapes.
///
/// # Errors
///
/// Returns an [`EngineError`] if the executor rejects the batch, a
/// job's engine run fails, or the canonical report differs between
/// worker counts.
pub fn batch_throughput(smoke: bool) -> Result<BatchThroughput, EngineError> {
    let jobs = batch_job_mix(smoke);
    let n_jobs = jobs.len();

    // The wall-clock leg runs the same batch on the functional backend:
    // bit-identical outputs (pinned by tests/conformance.rs) at wall
    // speeds where host parallelism is visible at all.
    let wall_jobs: Vec<GemmJob> = jobs
        .iter()
        .cloned()
        .map(|j| j.with_backend(BackendKind::Functional))
        .collect();

    let freq_mhz = OperatingPoint::peak_performance().frequency().as_mhz();
    let mut points = Vec::new();
    let mut canonical: Option<String> = None;
    for workers in [1usize, 2, 4, 8] {
        let outcome = BatchExecutor::new(workers)
            .run(jobs.clone())
            .map_err(|e| EngineError::InvalidJob(format!("batch executor: {e}")))?;
        if !outcome.report.all_completed() {
            return Err(EngineError::InvalidJob(format!(
                "{} of {} jobs did not complete at {} workers",
                outcome.report.jobs.len() - outcome.report.completed(),
                outcome.report.jobs.len(),
                workers,
            )));
        }
        let makespan = outcome.schedule.makespan_cycles();
        let busy = outcome.schedule.total_busy_cycles();
        let modeled_jobs_per_sec = n_jobs as f64 * freq_mhz * 1e6 / makespan as f64;

        let mut wall_secs = Vec::with_capacity(WALL_REPEATS);
        let executor = BatchExecutor::new(workers);
        for _ in 0..WALL_REPEATS {
            // Clone outside the timed region: the measurement is the
            // executor plus the functional kernel, not the allocator.
            let batch = wall_jobs.clone();
            let start = Instant::now();
            let wall_outcome = executor
                .run(batch)
                .map_err(|e| EngineError::InvalidJob(format!("wall batch executor: {e}")))?;
            wall_secs.push(start.elapsed().as_secs_f64());
            let canon = wall_outcome.report.to_canonical_json();
            match &canonical {
                None => canonical = Some(canon),
                Some(reference) => {
                    if *reference != canon {
                        return Err(EngineError::InvalidJob(format!(
                            "canonical batch report at {workers} workers differs from the \
                             1-worker report: parallel writeback broke determinism"
                        )));
                    }
                }
            }
        }
        wall_secs.sort_by(|a, b| a.total_cmp(b));
        let median = wall_secs[wall_secs.len() / 2];
        let wall_jobs_per_sec = n_jobs as f64 / median;

        points.push(BatchPoint {
            workers,
            makespan_cycles: makespan,
            busy_cycles: busy,
            modeled_jobs_per_sec,
            wall_jobs_per_sec,
        });
    }
    Ok(BatchThroughput {
        jobs: n_jobs,
        freq_mhz,
        wall_repeats: WALL_REPEATS,
        points,
    })
}

/// Outcome of the wall-clock regression guard (`make perf-smoke`):
/// freshly measured single-thread functional-backend throughput next to
/// the committed `BENCH_batch.json` baseline.
#[derive(Debug, Clone, Copy)]
pub struct PerfGuard {
    /// `wall_jobs_per_sec` at 1 worker from the committed artefact.
    pub baseline_jobs_per_sec: f64,
    /// Freshly measured single-thread wall jobs/sec (median of
    /// [`BatchThroughput::wall_repeats`] runs of the same job mix).
    pub measured_jobs_per_sec: f64,
}

impl PerfGuard {
    /// measured / baseline; 1.0 means exactly the committed speed.
    pub fn ratio(&self) -> f64 {
        if self.baseline_jobs_per_sec > 0.0 {
            self.measured_jobs_per_sec / self.baseline_jobs_per_sec
        } else {
            0.0
        }
    }

    /// CI rule: single-thread wall throughput must not regress by more
    /// than 30% against the committed baseline. The slack absorbs host
    /// jitter; a softfloat-kernel or loop-structure regression shows up
    /// as an integer multiple, not a percentage.
    pub fn violation(&self) -> Option<String> {
        let r = self.ratio();
        if r < 0.7 {
            return Some(format!(
                "single-thread wall throughput is {:.0} jobs/sec, {:.0}% of the committed \
                 baseline {:.0} (must stay above 70%)",
                self.measured_jobs_per_sec,
                r * 100.0,
                self.baseline_jobs_per_sec
            ));
        }
        None
    }
}

impl fmt::Display for PerfGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Perf guard: measured {:.0} jobs/sec single-thread wall vs committed {:.0} \
             ({:.0}% of baseline, threshold 70%)",
            self.measured_jobs_per_sec,
            self.baseline_jobs_per_sec,
            self.ratio() * 100.0
        )
    }
}

/// Measures single-thread wall-clock throughput of the functional
/// backend on the standard batch job mix and compares it against the
/// committed `BENCH_batch.json` contents (passed in as `baseline_json`
/// so this module stays free of file IO).
///
/// # Errors
///
/// Returns an [`EngineError`] if the baseline JSON has no 1-worker
/// `wall_jobs_per_sec` field or the measurement batch fails.
pub fn perf_guard(smoke: bool, baseline_json: &str) -> Result<PerfGuard, EngineError> {
    let baseline_jobs_per_sec = parse_wall_baseline(baseline_json)?;
    let jobs: Vec<GemmJob> = batch_job_mix(smoke)
        .into_iter()
        .map(|j| j.with_backend(BackendKind::Functional))
        .collect();
    let n_jobs = jobs.len();
    let executor = BatchExecutor::new(1);
    let mut wall_secs = Vec::with_capacity(WALL_REPEATS);
    for _ in 0..WALL_REPEATS {
        let batch = jobs.clone();
        let start = Instant::now();
        let outcome = executor
            .run(batch)
            .map_err(|e| EngineError::InvalidJob(format!("perf-guard batch: {e}")))?;
        wall_secs.push(start.elapsed().as_secs_f64());
        if !outcome.report.all_completed() {
            return Err(EngineError::InvalidJob(
                "perf-guard batch had failed jobs".to_owned(),
            ));
        }
    }
    wall_secs.sort_by(|a, b| a.total_cmp(b));
    let median = wall_secs[wall_secs.len() / 2];
    Ok(PerfGuard {
        baseline_jobs_per_sec,
        measured_jobs_per_sec: n_jobs as f64 / median,
    })
}

/// Extracts `wall_jobs_per_sec` from the committed artefact's 1-worker
/// point. A plain scan, not a JSON parser: the artefact is written by
/// [`BatchThroughput::to_json`] one point per line, so the first line
/// mentioning `"workers": 1` carries the baseline.
fn parse_wall_baseline(json: &str) -> Result<f64, EngineError> {
    for line in json.lines() {
        if !line.contains("\"workers\": 1,") {
            continue;
        }
        if let Some(rest) = line.split("\"wall_jobs_per_sec\": ").nth(1) {
            let num: String = rest
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect();
            return num.parse::<f64>().map_err(|e| {
                EngineError::InvalidJob(format!("unparseable wall_jobs_per_sec baseline: {e}"))
            });
        }
    }
    Err(EngineError::InvalidJob(
        "BENCH_batch.json has no 1-worker wall_jobs_per_sec (regenerate with \
         `figures -- batch`)"
            .to_owned(),
    ))
}

/// Trace-export artefact (`BENCH_trace.json`): a Chrome trace-event
/// document (Perfetto-loadable) for a small deterministic mixed batch,
/// plus the invariance evidence gathered while producing it.
#[derive(Debug, Clone)]
pub struct TraceExport {
    /// Jobs in the traced batch.
    pub jobs: usize,
    /// Trace events across all lanes.
    pub events: usize,
    /// Lanes (one per job).
    pub lanes: usize,
    /// Largest timestamp in the document (simulated cycles).
    pub max_ts: u64,
    /// Worker counts whose exports were byte-compared.
    pub worker_counts: Vec<usize>,
    /// The validated Chrome trace JSON.
    pub json: String,
}

impl fmt::Display for TraceExport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Trace export: {} jobs, {} lanes, {} events, max ts {} cycles",
            self.jobs, self.lanes, self.events, self.max_ts
        )?;
        writeln!(
            f,
            "Chrome trace bytes identical across {:?} workers ({} bytes)",
            self.worker_counts,
            self.json.len()
        )
    }
}

/// Runs a small deterministic mixed batch (both backends, accumulate, a
/// fault drill) with event tracing at several worker counts, checks the
/// exported Chrome trace is byte-identical across all of them, and
/// validates the document structurally.
///
/// `smoke` selects the CI workload (6 jobs); without it the batch is
/// larger with heavier shapes.
///
/// # Errors
///
/// Returns an [`EngineError`] if the executor rejects the batch, the
/// trace bytes differ between worker counts, or the document fails
/// validation.
pub fn trace_export(smoke: bool) -> Result<TraceExport, EngineError> {
    use redmule::obs::validate_chrome_trace;
    use redmule::BackendKind;
    use redmule_batch::JobFaults;

    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(8, 16, 16), (3, 7, 21), (16, 8, 32)]
    } else {
        &[(16, 32, 32), (13, 24, 40), (32, 16, 48)]
    };
    let reps = if smoke { 2 } else { 8 };
    let mut jobs: Vec<GemmJob> = (0..shapes.len() * reps)
        .map(|i| {
            let (m, n, k) = shapes[i % shapes.len()];
            let shape = GemmShape::new(m, n, k);
            let (x, w) = workloads::gemm_operands(shape, i as u32);
            let job = GemmJob::new(i as u64, shape, x, w);
            if i % 3 == 1 {
                job.with_backend(BackendKind::Functional)
            } else {
                job
            }
        })
        .collect();
    // One FT-protected fault drill so Fault events appear in the trace.
    let shape = GemmShape::new(8, 8, 16);
    let (x, w) = workloads::gemm_operands(shape, 99);
    jobs.push(
        GemmJob::new(jobs.len() as u64, shape, x, w).with_faults(JobFaults::Protected {
            plan: FaultPlan::new(0x7ACE).with_random_transients(1, &[TransientTarget::Pipe]),
            ft: FtConfig::replay(),
        }),
    );
    let n_jobs = jobs.len();

    let worker_counts = vec![1usize, 2, 4];
    let mut reference: Option<String> = None;
    for &workers in &worker_counts {
        let outcome = BatchExecutor::new(workers)
            .with_event_trace()
            .run(jobs.clone())
            .map_err(|e| EngineError::InvalidJob(format!("batch executor: {e}")))?;
        let json = outcome.report.chrome_trace();
        match &reference {
            None => reference = Some(json),
            Some(r) if *r != json => {
                return Err(EngineError::InvalidJob(format!(
                    "chrome trace bytes diverged at {workers} workers"
                )))
            }
            Some(_) => {}
        }
    }
    let json = reference.unwrap_or_default();
    let summary = validate_chrome_trace(&json)
        .map_err(|e| EngineError::InvalidJob(format!("invalid chrome trace: {e}")))?;
    if summary.events == 0 {
        return Err(EngineError::InvalidJob(
            "traced batch produced an empty event stream".to_owned(),
        ));
    }
    Ok(TraceExport {
        jobs: n_jobs,
        events: summary.events,
        lanes: summary.lanes,
        max_ts: summary.max_ts,
        worker_counts,
        json,
    })
}

/// One offered-load point of the service saturation sweep.
#[derive(Debug, Clone)]
pub struct ServicePoint {
    /// Offered load as a per-mille fraction of the service's aggregate
    /// server capacity (1000 = arrivals exactly match what the virtual
    /// servers can drain).
    pub offered_per_mille: u64,
    /// Submissions offered at this load.
    pub submitted: usize,
    /// Submissions admitted.
    pub admitted: usize,
    /// Completed-job latency percentiles, in simulated cycles.
    pub p50: u64,
    /// 95th percentile latency.
    pub p95: u64,
    /// 99th percentile latency.
    pub p99: u64,
    /// Rejected submissions per 1000 offered.
    pub rejection_per_mille: u64,
    /// Preemptions across all jobs.
    pub preemptions: u64,
    /// Jobs evicted (degraded to a resumable checkpoint).
    pub evicted: usize,
}

/// Service saturation artefact (`BENCH_service.json`): latency
/// percentiles and rejection rate versus offered load for the
/// multi-tenant GEMM service, with the report byte-compared across
/// several host worker counts at every point (the divergence guard).
#[derive(Debug, Clone)]
pub struct ServiceSaturation {
    /// Virtual servers the front end schedules onto.
    pub servers: usize,
    /// Worker counts whose canonical reports were byte-compared.
    pub worker_counts: Vec<usize>,
    /// One point per offered load, ascending.
    pub points: Vec<ServicePoint>,
}

impl ServiceSaturation {
    /// Renders the artefact as the JSON written to `BENCH_service.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"service_saturation\",\n");
        out.push_str(&format!("  \"servers\": {},\n", self.servers));
        let workers: Vec<String> = self.worker_counts.iter().map(usize::to_string).collect();
        out.push_str(&format!(
            "  \"workers_compared\": [{}],\n",
            workers.join(", ")
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"offered_per_mille\": {}, \"submitted\": {}, \"admitted\": {}, \
                 \"latency_p50\": {}, \"latency_p95\": {}, \"latency_p99\": {}, \
                 \"rejection_per_mille\": {}, \"preemptions\": {}, \"evicted\": {}}}{}\n",
                p.offered_per_mille,
                p.submitted,
                p.admitted,
                p.p50,
                p.p95,
                p.p99,
                p.rejection_per_mille,
                p.preemptions,
                p.evicted,
                sep,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Sanity guard used by CI: under deepening overload the service must
    /// degrade *gracefully* — the rejection rate must be monotonically
    /// non-decreasing in offered load, and the heaviest point must
    /// actually shed or reject something. Returns the violation, if any.
    pub fn degradation_violation(&self) -> Option<String> {
        for pair in self.points.windows(2) {
            if pair[1].rejection_per_mille < pair[0].rejection_per_mille {
                return Some(format!(
                    "rejection rate fell from {}‰ to {}‰ as offered load rose {}‰ -> {}‰",
                    pair[0].rejection_per_mille,
                    pair[1].rejection_per_mille,
                    pair[0].offered_per_mille,
                    pair[1].offered_per_mille,
                ));
            }
        }
        match self.points.last() {
            Some(last) if last.rejection_per_mille == 0 && last.evicted == 0 => Some(
                "heaviest offered load neither rejected nor evicted anything — \
                 the sweep never saturated"
                    .to_owned(),
            ),
            _ => None,
        }
    }
}

impl fmt::Display for ServiceSaturation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Service saturation ({} virtual servers; reports byte-identical across {:?} workers)",
            self.servers, self.worker_counts
        )?;
        writeln!(
            f,
            "{:>9} {:>7} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
            "load (‰)",
            "offered",
            "admitted",
            "p50 (cyc)",
            "p95 (cyc)",
            "p99 (cyc)",
            "rej (‰)",
            "preempt",
            "evicted"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>9} {:>7} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}",
                p.offered_per_mille,
                p.submitted,
                p.admitted,
                p.p50,
                p.p95,
                p.p99,
                p.rejection_per_mille,
                p.preemptions,
                p.evicted,
            )?;
        }
        Ok(())
    }
}

/// Sweeps the multi-tenant GEMM service across offered loads from light
/// to heavily saturating, measuring latency percentiles and the typed
/// rejection rate, and byte-comparing the canonical report across host
/// worker counts 1, 2 and 8 at every point.
///
/// `smoke` selects the CI workload (24 submissions per point, small
/// shapes); without it each point offers 60 submissions of heavier
/// shapes.
///
/// # Errors
///
/// Returns an [`EngineError`] if the service rejects a script outright,
/// a replay fails, or the canonical report diverges between worker
/// counts.
pub fn service_saturation(smoke: bool) -> Result<ServiceSaturation, EngineError> {
    let n_subs: usize = if smoke { 24 } else { 60 };
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(8, 8, 8), (4, 12, 8), (8, 4, 16), (6, 6, 6)]
    } else {
        &[(16, 16, 16), (8, 24, 16), (16, 8, 32), (12, 12, 12)]
    };
    let servers = 2usize;
    let worker_counts = vec![1usize, 2, 8];
    let loads_per_mille: &[u64] = if smoke {
        &[500, 1000, 2000, 4000]
    } else {
        &[250, 500, 1000, 2000, 4000]
    };

    let functional = FunctionalGemm::new(AccelConfig::paper());
    let mean_est: u64 = {
        let total: u64 = shapes
            .iter()
            .map(|&(m, n, k)| functional.estimated_cycles(GemmShape::new(m, n, k)).count())
            .sum();
        total / shapes.len() as u64
    };

    let mut points = Vec::new();
    for &load in loads_per_mille {
        // Arrival spacing that offers `load`/1000 of the aggregate
        // capacity: at 1000‰ the `servers` virtual servers exactly keep
        // up with the mean service demand.
        let spacing = (mean_est * 1000 / (servers as u64 * load)).max(1);
        let config = ServiceConfig::new(servers)
            .with_queue_capacity(4)
            .with_preempt_margin(mean_est / 8)
            .with_retry(ServiceRetry {
                max_retries: 1,
                backoff_cycles: 64,
            })
            .with_tenant(TenantConfig::new(0).with_priority(1).with_max_in_flight(6))
            .with_tenant(TenantConfig::new(1).with_priority(2).with_max_in_flight(6))
            .with_tenant(
                TenantConfig::new(2)
                    .with_priority(3)
                    .with_bucket(mean_est * 8, mean_est / 2),
            );
        let script: Vec<Submission> = (0..n_subs)
            .map(|i| {
                let (m, n, k) = shapes[i % shapes.len()];
                let shape = GemmShape::new(m, n, k);
                let mut sub = Submission::new(i as u64, (i % 3) as u32, i as u64 * spacing, shape);
                if i % 4 == 1 {
                    // A quarter of the traffic is deadline-constrained,
                    // feasible when lightly loaded.
                    let est = functional.estimated_cycles(shape).count();
                    sub = sub.clone().with_deadline_cycle(sub.arrival_cycle + est * 3);
                }
                sub
            })
            .collect();

        let mut reference: Option<String> = None;
        let mut metrics: Option<ServicePoint> = None;
        for &workers in &worker_counts {
            let sim = ServiceSim::new(config.clone())
                .map_err(|e| EngineError::InvalidJob(format!("service config: {e}")))?
                .with_workers(workers);
            let report = sim
                .run(&script)
                .map_err(|e| EngineError::InvalidJob(format!("service run: {e}")))?;
            let json = report.to_canonical_json();
            match &reference {
                None => {
                    reference = Some(json);
                    metrics = Some(ServicePoint {
                        offered_per_mille: load,
                        submitted: script.len(),
                        admitted: report.jobs.len(),
                        p50: report.latency_percentile(50),
                        p95: report.latency_percentile(95),
                        p99: report.latency_percentile(99),
                        rejection_per_mille: report.rejection_per_mille(),
                        preemptions: report.total_preemptions(),
                        evicted: report.evicted(),
                    });
                }
                Some(r) if *r != json => {
                    return Err(EngineError::InvalidJob(format!(
                        "service report bytes diverged at {workers} workers (load {load}‰)"
                    )))
                }
                Some(_) => {}
            }
        }
        if let Some(p) = metrics {
            points.push(p);
        }
    }
    Ok(ServiceSaturation {
        servers,
        worker_counts,
        points,
    })
}

/// One (shape, format) measurement of the FP8 storage-format comparison.
#[derive(Debug, Clone, Copy)]
pub struct Fp8Point {
    /// GEMM shape `(m, n, k)`.
    pub shape: (usize, usize, usize),
    /// TCDM storage format the job ran with.
    pub format: Format,
    /// Measured engine cycles (trigger to completion).
    pub cycles: u64,
    /// Analytical model cycles — pinned equal to `cycles`.
    pub estimated: u64,
    /// Cycles charged to pipeline fill (halved refill beats under FP8).
    pub fill_cycles: u64,
    /// Cycles charged to buffer refill.
    pub refill_cycles: u64,
}

/// FP8 storage-format artefact (`BENCH_fp8.json`): modeled cycles and
/// batch throughput for the same GEMM workload stored as FP16, E4M3 and
/// E5M2.
///
/// Compute cycles are format-independent (the FMA core always runs
/// FP16); only the memory-bound fill and drain terms shrink because the
/// streamer serves two half-width elements per granted TCDM beat. The
/// guard pins exactly that: FP8 never costs more cycles than FP16 on the
/// same shape, the fill phase strictly shrinks on refill-bound shapes,
/// and the analytical model stays cycle-exact for every format.
#[derive(Debug, Clone)]
pub struct Fp8Comparison {
    /// Clock frequency assumed by the throughput model (MHz).
    pub freq_mhz: f64,
    /// Jobs per format in the batch-throughput measurement.
    pub jobs: usize,
    /// One point per (shape, format), formats grouped per shape with
    /// FP16 first.
    pub points: Vec<Fp8Point>,
    /// Modeled batch throughput per format (4-worker pool).
    pub throughput: Vec<(Format, f64)>,
}

impl Fp8Comparison {
    fn fp16_point(&self, shape: (usize, usize, usize)) -> Option<&Fp8Point> {
        self.points
            .iter()
            .find(|p| p.shape == shape && p.format == Format::Fp16)
    }

    /// Total cycles over all shapes for one format.
    pub fn total_cycles(&self, format: Format) -> u64 {
        self.points
            .iter()
            .filter(|p| p.format == format)
            .map(|p| p.cycles)
            .sum()
    }

    /// CI guard: the FP8 datapath must never be slower than FP16, the
    /// halved-beat refill must actually show up in the fill phase, and
    /// the analytical model must stay exact. Returns the violation.
    pub fn guard(&self) -> Option<String> {
        for p in &self.points {
            if p.cycles != p.estimated {
                return Some(format!(
                    "cycle model drifted for {} {:?}: measured {} vs estimated {}",
                    p.format, p.shape, p.cycles, p.estimated
                ));
            }
            if p.format == Format::Fp16 {
                continue;
            }
            let Some(base) = self.fp16_point(p.shape) else {
                return Some(format!("missing FP16 baseline for shape {:?}", p.shape));
            };
            if p.cycles > base.cycles {
                return Some(format!(
                    "{} is slower than FP16 on {:?}: {} vs {} cycles",
                    p.format, p.shape, p.cycles, base.cycles
                ));
            }
            if p.fill_cycles > base.fill_cycles {
                return Some(format!(
                    "{} fill exceeds FP16 on {:?}: {} vs {} cycles",
                    p.format, p.shape, p.fill_cycles, base.fill_cycles
                ));
            }
        }
        for &(format, jps) in &self.throughput {
            if jps.is_nan() || jps <= 0.0 {
                return Some(format!("non-positive throughput for {format}: {jps}"));
            }
        }
        None
    }

    /// Renders the artefact as the JSON written to `BENCH_fp8.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"fp8_comparison\",\n");
        out.push_str(&format!("  \"freq_mhz\": {:.1},\n", self.freq_mhz));
        out.push_str(&format!("  \"batch_jobs\": {},\n", self.jobs));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"shape\": [{}, {}, {}], \"format\": \"{}\", \"cycles\": {}, \
                 \"estimated\": {}, \"fill_cycles\": {}, \"refill_cycles\": {}}}{}\n",
                p.shape.0,
                p.shape.1,
                p.shape.2,
                p.format.label(),
                p.cycles,
                p.estimated,
                p.fill_cycles,
                p.refill_cycles,
                sep,
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"throughput\": [\n");
        for (i, (format, jps)) in self.throughput.iter().enumerate() {
            let sep = if i + 1 == self.throughput.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"format\": \"{}\", \"jobs_per_sec\": {:.1}}}{}\n",
                format.label(),
                jps,
                sep,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

impl fmt::Display for Fp8Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FP8 storage-format comparison (modeled at {:.0} MHz)",
            self.freq_mhz
        )?;
        writeln!(
            f,
            "{:>14} {:>9} {:>9} {:>7} {:>8}",
            "shape", "format", "cycles", "fill", "refill"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>14} {:>9} {:>9} {:>7} {:>8}",
                format!("{}x{}x{}", p.shape.0, p.shape.1, p.shape.2),
                p.format.label(),
                p.cycles,
                p.fill_cycles,
                p.refill_cycles,
            )?;
        }
        writeln!(f, "batch throughput ({} jobs, 4 workers):", self.jobs)?;
        for (format, jps) in &self.throughput {
            writeln!(f, "{:>14} {:>14.0} jobs/sec", format.label(), jps)?;
        }
        Ok(())
    }
}

/// Runs the same GEMM workload in all three storage formats and reports
/// measured engine cycles (checked against the analytical model), phase
/// attribution and modeled batch throughput.
///
/// `smoke` selects the small CI workload; without it the shapes are
/// larger and the batch 4x deeper.
///
/// # Errors
///
/// Returns an [`EngineError`] if an engine run or the batch executor
/// fails.
pub fn fp8_comparison(smoke: bool) -> Result<Fp8Comparison, EngineError> {
    let shapes: &[(usize, usize, usize)] = if smoke {
        &[(8, 16, 16), (16, 8, 32), (13, 7, 24), (16, 16, 16)]
    } else {
        &[(32, 32, 32), (16, 64, 32), (48, 16, 48), (64, 64, 64)]
    };
    let accel = Accelerator::paper_instance();
    let func = FunctionalGemm::paper_instance();
    let mut points = Vec::new();
    for &(m, n, k) in shapes {
        let shape = GemmShape::new(m, n, k);
        let (x, w) = workloads::gemm_operands(shape, (m * 31 + n * 7 + k) as u32);
        for format in Format::ALL {
            let run = accel.gemm_with_format(shape, format, &x, &w)?;
            points.push(Fp8Point {
                shape: (m, n, k),
                format,
                cycles: run.report.cycles.count(),
                estimated: func.estimated_cycles_format(shape, format).count(),
                fill_cycles: run.report.phases.fill,
                refill_cycles: run.report.phases.refill,
            });
        }
    }

    let n_jobs: usize = if smoke { 32 } else { 128 };
    let freq_mhz = OperatingPoint::peak_performance().frequency().as_mhz();
    let mut throughput = Vec::new();
    for format in Format::ALL {
        let jobs: Vec<GemmJob> = (0..n_jobs)
            .map(|i| {
                let (m, n, k) = shapes[i % shapes.len()];
                let shape = GemmShape::new(m, n, k);
                let (x, w) = workloads::gemm_operands(shape, i as u32);
                GemmJob::new(i as u64, shape, x, w).with_format(format)
            })
            .collect();
        let outcome = BatchExecutor::new(4)
            .run(jobs)
            .map_err(|e| EngineError::InvalidJob(format!("batch executor: {e}")))?;
        if !outcome.report.all_completed() {
            return Err(EngineError::InvalidJob(format!(
                "{} of {} {} jobs did not complete",
                outcome.report.jobs.len() - outcome.report.completed(),
                outcome.report.jobs.len(),
                format,
            )));
        }
        let makespan = outcome.schedule.makespan_cycles();
        throughput.push((format, n_jobs as f64 * freq_mhz * 1e6 / makespan as f64));
    }

    Ok(Fp8Comparison {
        freq_mhz,
        jobs: n_jobs,
        points,
        throughput,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp8_comparison_guard_holds_on_smoke() {
        let cmp = fp8_comparison(true).expect("fp8 comparison");
        assert_eq!(cmp.points.len(), 4 * Format::ALL.len());
        assert_eq!(cmp.guard(), None);
        // The halved refill beats must be visible in the totals, not
        // just non-regressing.
        assert!(cmp.total_cycles(Format::Fp8E4M3) < cmp.total_cycles(Format::Fp16));
        assert!(cmp.total_cycles(Format::Fp8E5M2) < cmp.total_cycles(Format::Fp16));
        let json = cmp.to_json();
        assert!(json.contains("\"fp8e4m3\"") && json.contains("\"fp8e5m2\""));
        assert!(cmp.to_string().contains("jobs/sec"));
    }

    #[test]
    fn sweep_points_match_paper_shape() {
        let pts = hw_sw_sweep(&[16, 64]).expect("sweep");
        assert!(pts[1].hw_util > pts[0].hw_util, "utilization grows");
        assert!(pts[1].speedup() > pts[0].speedup(), "speedup grows");
        assert!(pts[1].speedup() > 15.0);
    }

    #[test]
    fn table1_has_twelve_rows() {
        let t = table1(false).expect("table");
        assert_eq!(t.rows.len(), 12);
        let text = t.to_string();
        assert!(text.contains("PULP+RedMulE"));
        assert!(text.contains("Eyeriss"));
    }

    #[test]
    fn fig3_renderings_are_nonempty() {
        assert!(fig3a().contains("datapath"));
        assert!(fig3b().contains("mW"));
        let c = fig3c(&[16, 64]).expect("fig3c");
        assert_eq!(c.points.len(), 2);
        assert!(c.points[0].2 > c.points[1].2, "energy/MAC must fall");
        let d = fig3d(&[16, 64]).expect("fig3d");
        assert!(d.points[1].2 > d.points[0].2, "GFLOPS must grow");
        assert!(c.to_string().contains("pJ/MAC"));
        assert!(d.to_string().contains("GFLOPS"));
    }

    #[test]
    fn fig4a_peaks_are_sane() {
        let fig = fig4a(&[16, 64]).expect("fig4a");
        assert!(fig.peak_ideal_fraction() > 0.9);
        assert!(fig.peak_speedup() > 15.0);
        assert!(fig.to_string().contains("speedup"));
    }

    #[test]
    fn fig4b_lists_paper_anchor_configs() {
        let text = fig4b();
        assert!(text.contains("256"));
        assert!(text.contains("512"));
        // 11 ports at H=16? No: H=16 -> 33 ports; check the H column text.
        assert!(text.lines().count() >= 9);
    }

    #[test]
    fn autoencoder_step_b1_shows_hw_advantage() {
        let step = autoencoder_step(1).expect("step");
        assert_eq!(step.layers.len(), 10);
        let speedup = step.speedup();
        assert!(
            (1.5..4.5).contains(&speedup),
            "B=1 overall speedup = {speedup} (paper: 2.6x)"
        );
        // Backward dominates the gain (weight gradients have large K).
        let fwd_gain: f64 = step.layers.iter().map(|l| l.fwd_sw as f64).sum::<f64>()
            / step.layers.iter().map(|l| l.fwd_hw as f64).sum::<f64>();
        let bwd_gain: f64 = step.layers.iter().map(|l| l.bwd_sw as f64).sum::<f64>()
            / step.layers.iter().map(|l| l.bwd_hw as f64).sum::<f64>();
        assert!(
            bwd_gain > fwd_gain,
            "bwd gain {bwd_gain} must beat fwd gain {fwd_gain}"
        );
        assert!(step.to_string().contains("dense0"));
    }

    #[test]
    fn efficiency_gain_is_positive() {
        let g = efficiency_gain(false).expect("gain");
        assert!(g > 2.0, "efficiency gain = {g}");
    }

    #[test]
    fn fault_sweep_recovers_exactly_and_charges_overhead() {
        let sweep = fault_sweep().expect("sweep");
        assert_eq!(sweep.rows.len(), 8);
        for r in &sweep.rows {
            assert!(
                r.exact,
                "{:?} @ {} per tile must stay bit-exact",
                r.mode, r.per_tile
            );
            if r.per_tile == 0 {
                assert_eq!(r.detected, 0, "{:?}: phantom detection", r.mode);
            } else {
                assert!(
                    r.injected > 0,
                    "{:?} @ {}: nothing landed",
                    r.mode,
                    r.per_tile
                );
            }
            match r.mode {
                // Fault-free replay pays only per-tile launch + checksum
                // overhead — well under a duplicated execution.
                FtMode::Replay if r.per_tile == 0 => {
                    assert!(r.overhead < 0.5, "overhead = {}", r.overhead);
                }
                // Duplication always at least doubles the compute.
                FtMode::Redundancy => assert!(r.overhead > 0.9, "overhead = {}", r.overhead),
                _ => {}
            }
        }
        let text = sweep.to_string();
        assert!(text.contains("Replay") && text.contains("Redundancy"));
    }

    #[test]
    fn batch_throughput_scales_with_workers() {
        let bt = batch_throughput(true).expect("batch throughput");
        assert_eq!(bt.points.len(), 4);
        assert_eq!(bt.scaling_violation(), None);
        // Total simulated work is invariant in the worker count.
        let busy = bt.points[0].busy_cycles;
        assert!(bt.points.iter().all(|p| p.busy_cycles == busy));
        // Both throughput kinds are present and sane.
        assert!(bt
            .points
            .iter()
            .all(|p| p.wall_jobs_per_sec.is_finite() && p.wall_jobs_per_sec > 0.0));
        let json = bt.to_json();
        assert!(json.contains("\"experiment\": \"batch_throughput\""));
        assert!(json.contains("\"workers\": 8"));
        assert!(json.contains("\"modeled_jobs_per_sec\""));
        assert!(json.contains("\"wall_jobs_per_sec\""));
        assert!(json.contains("\"wall_repeats\": 5"));
        assert!(bt.to_string().contains("jobs/s"));
        // The committed-artefact parser round-trips what to_json wrote,
        // and the guard passes against our own fresh measurement.
        let guard = PerfGuard {
            baseline_jobs_per_sec: parse_wall_baseline(&json).expect("baseline parses"),
            measured_jobs_per_sec: bt.points[0].wall_jobs_per_sec,
        };
        assert!((guard.ratio() - 1.0).abs() < 0.05, "self-ratio near 1.0");
        assert_eq!(guard.violation(), None);
    }

    #[test]
    fn service_saturation_degrades_gracefully_and_stays_deterministic() {
        let ss = service_saturation(true).expect("service saturation");
        assert_eq!(ss.points.len(), 4);
        assert_eq!(ss.degradation_violation(), None);
        // Light load admits everything; heavy load must not.
        let first = &ss.points[0];
        let last = ss.points.last().expect("points");
        assert!(last.rejection_per_mille >= first.rejection_per_mille);
        assert!(
            last.rejection_per_mille > 0 || last.evicted > 0,
            "heaviest load must visibly degrade"
        );
        let json = ss.to_json();
        assert!(json.contains("\"experiment\": \"service_saturation\""));
        assert!(json.contains("\"latency_p99\""));
        assert!(ss.to_string().contains("p95 (cyc)"));
    }

    #[test]
    fn degradation_slices_resume_to_the_exact_result() {
        let text = degradation().expect("degradation experiment");
        assert!(
            text.contains("CycleBudget"),
            "budgeted slices must degrade:\n{text}"
        );
        assert!(text.lines().count() >= 5);
    }
}

/// One crash point of the recovery sweep.
#[derive(Debug, Clone)]
pub struct RecoveryPoint {
    /// 0-based write operation at which the durable run was killed.
    pub crash_write: u64,
    /// Torn-tail bytes the recovery truncated from the journal.
    pub torn_bytes: u64,
    /// Intact journal records the recovery found.
    pub journal_records: u64,
    /// Submissions recovered (the causally closed script prefix).
    pub submissions_recovered: u64,
    /// Jobs whose journaled execution record made re-running unnecessary.
    pub jobs_reused: u64,
    /// Jobs resumed from a durable checkpoint generation.
    pub checkpoints_restored: u64,
    /// Executed cycles that did not have to be re-run.
    pub cycles_saved: u64,
    /// Typed repairs the recovery applied.
    pub repairs: usize,
    /// Whether the recovered report was byte-identical to a fresh,
    /// uninterrupted run over the recovered prefix.
    pub bit_exact: bool,
}

/// Crash-recovery artefact (`BENCH_recovery.json`): kill a durable
/// service run at a sweep of storage-write crash points and recover,
/// byte-comparing every recovered report against an uninterrupted run
/// over the recovered prefix and across host worker counts.
#[derive(Debug, Clone)]
pub struct RecoverySweep {
    /// Worker counts whose recovered reports were byte-compared.
    pub worker_counts: Vec<usize>,
    /// Total storage writes of the uninterrupted durable run.
    pub total_writes: u64,
    /// One point per crash write, ascending.
    pub points: Vec<RecoveryPoint>,
}

impl RecoverySweep {
    /// Renders the artefact as the JSON written to `BENCH_recovery.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"experiment\": \"crash_recovery\",\n");
        let workers: Vec<String> = self.worker_counts.iter().map(usize::to_string).collect();
        out.push_str(&format!(
            "  \"workers_compared\": [{}],\n",
            workers.join(", ")
        ));
        out.push_str(&format!("  \"total_writes\": {},\n", self.total_writes));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let sep = if i + 1 == self.points.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"crash_write\": {}, \"torn_bytes\": {}, \"journal_records\": {}, \
                 \"submissions_recovered\": {}, \"jobs_reused\": {}, \
                 \"checkpoints_restored\": {}, \"cycles_saved\": {}, \"repairs\": {}, \
                 \"bit_exact\": {}}}{}\n",
                p.crash_write,
                p.torn_bytes,
                p.journal_records,
                p.submissions_recovered,
                p.jobs_reused,
                p.checkpoints_restored,
                p.cycles_saved,
                p.repairs,
                p.bit_exact,
                sep,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The no-work-lost guard used by CI: every crash point must recover
    /// bit-exactly, and across the sweep the journal and the checkpoint
    /// store must each demonstrably save work (reused execution records
    /// at some point, a restored checkpoint at some other). Returns the
    /// violation, if any.
    pub fn no_work_lost_violation(&self) -> Option<String> {
        if let Some(p) = self.points.iter().find(|p| !p.bit_exact) {
            return Some(format!(
                "crash at write {} recovered to a report that differs from an \
                 uninterrupted run over its prefix",
                p.crash_write
            ));
        }
        if self.points.iter().all(|p| p.jobs_reused == 0) {
            return Some(
                "no crash point reused a journaled execution record — completed \
                 work was always re-run"
                    .to_owned(),
            );
        }
        if self.points.iter().all(|p| p.checkpoints_restored == 0) {
            return Some(
                "no crash point restored a durable checkpoint — in-flight work \
                 was always re-run from scratch"
                    .to_owned(),
            );
        }
        None
    }
}

impl fmt::Display for RecoverySweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Crash recovery ({} crash points over {} writes; recovered reports \
             byte-identical across {:?} workers)",
            self.points.len(),
            self.total_writes,
            self.worker_counts
        )?;
        writeln!(
            f,
            "{:>6} {:>5} {:>8} {:>5} {:>7} {:>9} {:>12} {:>8} {:>6}",
            "crash",
            "torn",
            "records",
            "subs",
            "reused",
            "restored",
            "cycles saved",
            "repairs",
            "exact"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>6} {:>5} {:>8} {:>5} {:>7} {:>9} {:>12} {:>8} {:>6}",
                p.crash_write,
                p.torn_bytes,
                p.journal_records,
                p.submissions_recovered,
                p.jobs_reused,
                p.checkpoints_restored,
                p.cycles_saved,
                p.repairs,
                p.bit_exact,
            )?;
        }
        Ok(())
    }
}

/// The quota-pressured, fault-striked script the recovery sweep kills
/// and recovers: a long preemptible victim (checkpoint generations), a
/// transiently faulted job (retries), tight-deadline interrupts and a
/// quota-bounced submission.
fn recovery_script(functional: &FunctionalGemm) -> (ServiceConfig, Vec<Submission>) {
    let config = ServiceConfig::new(1)
        .with_retry(ServiceRetry {
            max_retries: 1,
            backoff_cycles: 64,
        })
        .with_tenant(TenantConfig::new(0).with_priority(1).with_max_in_flight(1))
        .with_tenant(TenantConfig::new(7).with_priority(5));
    let long = GemmShape::new(12, 8, 12);
    let short = GemmShape::new(2, 2, 2);
    let est = functional.estimated_cycles(long).count();
    let short_est = functional.estimated_cycles(short).count();
    let strikes = vec![
        (
            est / 5,
            redmule::FaultSite::Pipe {
                col: 1,
                row: 0,
                stage: 0,
                bit: 3,
            },
        ),
        (
            est / 2,
            redmule::FaultSite::Pipe {
                col: 2,
                row: 1,
                stage: 0,
                bit: 9,
            },
        ),
    ];
    let mut script = vec![Submission::new(1, 0, 0, long)
        .with_seed(17)
        .with_faults(strikes)];
    for i in 0..2u64 {
        let at = (i + 1) * est / 3;
        script.push(Submission::new(100 + i, 7, at, short).with_deadline_cycle(at + short_est * 4));
        script.push(Submission::new(200 + i, 0, at + 1, short));
    }
    script.push(Submission::new(2, 0, est * 2, GemmShape::new(4, 4, 6)).with_seed(3));
    (config, script)
}

/// Kills a durable run of the quota-pressured recovery script at a sweep
/// of storage-write crash points (every write with `--full`, a stride of
/// them in smoke mode) and recovers each crash with host worker counts
/// 1, 2 and 8, byte-comparing the recovered reports against each other
/// and against an uninterrupted run over the recovered prefix.
///
/// # Errors
///
/// Returns an [`EngineError`] if a durable run fails for a non-crash
/// reason, a recovery errors out, or recovered reports diverge between
/// worker counts.
pub fn crash_recovery(smoke: bool) -> Result<RecoverySweep, EngineError> {
    let accel = AccelConfig::new(4, 2, 1);
    let functional = FunctionalGemm::new(accel);
    let (config, script) = recovery_script(&functional);
    let worker_counts = vec![1usize, 2, 8];
    let svc = |workers: usize| -> Result<ServiceSim, EngineError> {
        Ok(ServiceSim::new(config.clone())
            .map_err(|e| EngineError::InvalidJob(format!("service config: {e}")))?
            .with_engine(redmule::Engine::new(accel))
            .with_workers(workers))
    };
    let store_err =
        |e: redmule_service::ServiceError| EngineError::InvalidJob(format!("durable service: {e}"));

    let mut in_order = script.clone();
    in_order.sort_by_key(|s| (s.arrival_cycle, s.id));

    // Uninterrupted pass: the full write schedule of this exact script.
    let mut clean = MemBackend::new();
    svc(1)?
        .run_durable(&script, &mut clean)
        .map_err(store_err)?;
    let total_writes = clean.writes_done();
    let stride = if smoke { (total_writes / 8).max(1) } else { 1 };

    let mut points = Vec::new();
    let mut crash_write = 0;
    while crash_write < total_writes {
        let mut backend = MemBackend::new();
        StorageFaultPlan::new(crash_write)
            .with_fault(StorageFault::TornAppend {
                write_op: crash_write,
                keep_bytes: (crash_write as usize * 11) % 27,
            })
            .apply(&mut backend);
        if svc(1)?.run_durable(&script, &mut backend).is_ok() {
            return Err(EngineError::InvalidJob(format!(
                "crash plan at write {crash_write} did not abort the durable run"
            )));
        }
        backend.clear_crash();

        let mut reference: Option<String> = None;
        let mut point: Option<RecoveryPoint> = None;
        for &workers in &worker_counts {
            let recovery = svc(workers)?.recover(&mut backend).map_err(store_err)?;
            let json = recovery.report.to_canonical_json();
            match &reference {
                None => {
                    let k = recovery.recovery.submissions_recovered as usize;
                    let fresh = svc(1)?
                        .run(&in_order[..k])
                        .map_err(store_err)?
                        .to_canonical_json();
                    point = Some(RecoveryPoint {
                        crash_write,
                        torn_bytes: recovery.recovery.torn_bytes,
                        journal_records: recovery.recovery.journal_records,
                        submissions_recovered: recovery.recovery.submissions_recovered,
                        jobs_reused: recovery.recovery.jobs_reused,
                        checkpoints_restored: recovery.recovery.checkpoints_restored,
                        cycles_saved: recovery.recovery.cycles_saved,
                        repairs: recovery.recovery.repairs.len(),
                        bit_exact: json == fresh,
                    });
                    reference = Some(json);
                }
                Some(r) if *r != json => {
                    return Err(EngineError::InvalidJob(format!(
                        "recovered report bytes diverged at {workers} workers \
                         (crash write {crash_write})"
                    )))
                }
                Some(_) => {}
            }
        }
        if let Some(p) = point {
            points.push(p);
        }
        crash_write += stride;
    }
    Ok(RecoverySweep {
        worker_counts,
        total_writes,
        points,
    })
}
