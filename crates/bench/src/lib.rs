//! Benchmark harness regenerating every table and figure of the RedMulE
//! paper (DATE 2022).
//!
//! Each experiment of the evaluation section has a function here that
//! *runs the models* (cycle-accurate accelerator, software baseline,
//! area/power models, autoencoder training) and renders the same rows or
//! series the paper reports:
//!
//! | paper artefact | function |
//! |---|---|
//! | Table I | [`experiments::table1`] |
//! | Fig. 3a area breakdown | [`experiments::fig3a`] |
//! | Fig. 3b power breakdown | [`experiments::fig3b`] |
//! | Fig. 3c energy per MAC vs size | [`experiments::fig3c`] |
//! | Fig. 3d throughput vs size | [`experiments::fig3d`] |
//! | Fig. 4a HW vs SW vs ideal | [`experiments::fig4a`] |
//! | Fig. 4b area sweep over (H, L) | [`experiments::fig4b`] |
//! | Fig. 4c autoencoder per-layer | [`experiments::fig4c`] |
//! | Fig. 4d batching effect | [`experiments::fig4d`] |
//! | batch throughput scaling (`BENCH_batch.json`) | [`experiments::batch_throughput`] |
//! | service saturation (`BENCH_service.json`) | [`experiments::service_saturation`] |
//! | crash recovery (`BENCH_recovery.json`) | [`experiments::crash_recovery`] |
//!
//! The `figures` binary prints any subset (`cargo run --release -p
//! redmule-bench --bin figures -- all --full`); the Criterion benches in
//! `benches/` wrap the same functions and additionally measure simulator
//! throughput.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod workloads;
