//! Micro-benchmark: scalar `fma` fold vs the batched kernel's `fma_acc`
//! path on the same reduction rows.
//!
//! ```text
//! cargo bench -p redmule-fp16 --bench fma_kernel
//! ```
//!
//! Four variants over identical data:
//! * `scalar_fma` — one `arith::fma` call per step, classify + re-pack
//!   every time (what `FunctionalGemm` did before the batched kernel);
//! * `fma_acc` — pre-classified operands, accumulator kept unpacked
//!   between the per-step roundings;
//! * `fma_row_x16` — the GEMM inner-loop shape: one X operand broadcast
//!   against a 16-wide panel of accumulators;
//! * `fma_row_staged_x16` — the same shape through the structure-of-arrays
//!   vector kernel `FunctionalGemm` actually runs.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use redmule_fp16::arith::fma;
use redmule_fp16::kernel::{dot_acc, fma_row, fma_row_staged, Acc, Operand, Staged};
use redmule_fp16::{Round, F16};

const N: usize = 4096;

fn rows() -> (Vec<u16>, Vec<u16>) {
    let gen = |seed: u32| -> Vec<u16> {
        let mut state = seed | 1;
        (0..N)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                // Finite, mid-range exponents: the all-finite common case.
                0x2C00 | (state as u16 & 0x0FFF)
            })
            .collect()
    };
    (gen(0x1234_5678), gen(0x8765_4321))
}

fn bench_fma(c: &mut Criterion) {
    let (xs, ws) = rows();
    let xo: Vec<Operand> = xs.iter().map(|&v| Operand::from_bits(v)).collect();
    let wo: Vec<Operand> = ws.iter().map(|&v| Operand::from_bits(v)).collect();
    let xf: Vec<F16> = xs.iter().map(|&v| F16::from_bits(v)).collect();

    let mut g = c.benchmark_group("fma4096");
    g.bench_function("scalar_fma", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for (&a, &w) in xs.iter().zip(ws.iter()) {
                acc = fma(a, w, acc, Round::NearestEven);
            }
            black_box(acc)
        })
    });
    g.bench_function("fma_acc", |b| {
        b.iter(|| black_box(dot_acc(&xo, &wo, Acc::ZERO, Round::NearestEven).to_bits()))
    });
    g.bench_function("fma_row_x16", |b| {
        // 4096 steps spread over a 16-wide accumulator panel, matching the
        // paper instance's phase width: 256 row steps of 16 lanes.
        b.iter(|| {
            let mut acc = [Acc::ZERO; 16];
            for (chunk, &a) in wo.chunks_exact(16).zip(xf.iter().step_by(16)) {
                fma_row(
                    Operand::from_bits(a.to_bits()),
                    chunk,
                    &mut acc,
                    Round::NearestEven,
                );
            }
            black_box(acc[0].to_bits())
        })
    });
    g.bench_function("fma_row_staged_x16", |b| {
        // Same 256 x 16 walk through the SoA vector kernel: one staged X
        // row of 256 elements against a staged 256 x 16 W panel.
        let xst = Staged::from_bits_iter(xs.iter().step_by(16).copied());
        let wst = Staged::from_bits_iter(ws.iter().copied());
        b.iter(|| {
            let mut acc = [Acc::ZERO; 16];
            for l in 0..xst.len() {
                fma_row_staged(&xst, l, &wst, l * 16, &mut acc, Round::NearestEven);
            }
            black_box(acc[0].to_bits())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fma);
criterion_main!(benches);
