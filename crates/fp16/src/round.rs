//! Rounding modes for binary16 arithmetic.

use std::fmt;

/// IEEE 754 / RISC-V rounding mode.
///
/// The variants mirror the RISC-V `frm` encoding used by FPnew, the FPU that
/// implements RedMulE's FMA units. The accelerator itself always runs in
/// [`Round::NearestEven`]; the other modes exist so the softfloat can be
/// validated as a complete FPnew stand-in.
///
/// # Example
///
/// ```
/// use redmule_fp16::{F16, Round};
///
/// let a = F16::from_f32(1.0);
/// let tiny = F16::MIN_POSITIVE_SUBNORMAL;
/// // 1.0 + tiny rounds back down to 1.0 with RNE, but up with RUP.
/// assert_eq!(a.add_round(tiny, Round::NearestEven), a);
/// assert!(a.add_round(tiny, Round::Up) > a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Round {
    /// Round to nearest, ties to even (RNE, `frm = 000`). IEEE default.
    #[default]
    NearestEven,
    /// Round towards zero (RTZ, `frm = 001`).
    TowardZero,
    /// Round down, towards negative infinity (RDN, `frm = 010`).
    Down,
    /// Round up, towards positive infinity (RUP, `frm = 011`).
    Up,
    /// Round to nearest, ties away from zero (RMM, `frm = 100`).
    NearestMaxMagnitude,
}

impl Round {
    /// All rounding modes, in RISC-V `frm` encoding order.
    pub const ALL: [Round; 5] = [
        Round::NearestEven,
        Round::TowardZero,
        Round::Down,
        Round::Up,
        Round::NearestMaxMagnitude,
    ];

    /// RISC-V `frm` field encoding of this mode.
    ///
    /// # Example
    ///
    /// ```
    /// use redmule_fp16::Round;
    /// assert_eq!(Round::NearestEven.frm(), 0b000);
    /// assert_eq!(Round::NearestMaxMagnitude.frm(), 0b100);
    /// ```
    pub fn frm(self) -> u8 {
        match self {
            Round::NearestEven => 0b000,
            Round::TowardZero => 0b001,
            Round::Down => 0b010,
            Round::Up => 0b011,
            Round::NearestMaxMagnitude => 0b100,
        }
    }

    /// Decodes a RISC-V `frm` field.
    ///
    /// Returns `None` for the reserved encodings (5, 6) and the dynamic
    /// placeholder (7), which have no direct rounding behaviour.
    ///
    /// # Example
    ///
    /// ```
    /// use redmule_fp16::Round;
    /// assert_eq!(Round::from_frm(0b010), Some(Round::Down));
    /// assert_eq!(Round::from_frm(0b111), None);
    /// ```
    pub fn from_frm(frm: u8) -> Option<Round> {
        match frm {
            0b000 => Some(Round::NearestEven),
            0b001 => Some(Round::TowardZero),
            0b010 => Some(Round::Down),
            0b011 => Some(Round::Up),
            0b100 => Some(Round::NearestMaxMagnitude),
            _ => None,
        }
    }

    /// Whether a truncated significand must be incremented by one ulp.
    ///
    /// `sign` is the sign of the value being rounded, `lsb` the least
    /// significant kept bit, `round` the first discarded bit and `sticky` the
    /// OR of all remaining discarded bits.
    pub(crate) fn increments(self, sign: bool, lsb: bool, round: bool, sticky: bool) -> bool {
        match self {
            Round::NearestEven => round && (sticky || lsb),
            Round::TowardZero => false,
            Round::Down => sign && (round || sticky),
            Round::Up => !sign && (round || sticky),
            Round::NearestMaxMagnitude => round,
        }
    }

    /// Result chosen on overflow: `true` means saturate to the largest finite
    /// value, `false` means produce infinity.
    pub(crate) fn overflow_saturates(self, sign: bool) -> bool {
        match self {
            Round::NearestEven | Round::NearestMaxMagnitude => false,
            Round::TowardZero => true,
            Round::Down => !sign,
            Round::Up => sign,
        }
    }

    /// Sign of an exact-zero sum of operands with opposite signs.
    ///
    /// IEEE 754-2019 §6.3: the sign is `+0`, except in round-down where it is
    /// `-0`.
    pub(crate) fn exact_zero_sign(self) -> bool {
        matches!(self, Round::Down)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Round::NearestEven => "rne",
            Round::TowardZero => "rtz",
            Round::Down => "rdn",
            Round::Up => "rup",
            Round::NearestMaxMagnitude => "rmm",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frm_round_trips() {
        for mode in Round::ALL {
            assert_eq!(Round::from_frm(mode.frm()), Some(mode));
        }
    }

    #[test]
    fn reserved_frm_values_decode_to_none() {
        for frm in 5u8..=255 {
            assert_eq!(Round::from_frm(frm), None);
        }
    }

    #[test]
    fn default_is_nearest_even() {
        assert_eq!(Round::default(), Round::NearestEven);
    }

    #[test]
    fn rne_ties_to_even() {
        // lsb=0: tie stays (no increment); lsb=1: tie increments.
        assert!(!Round::NearestEven.increments(false, false, true, false));
        assert!(Round::NearestEven.increments(false, true, true, false));
        // Non-tie above half always increments.
        assert!(Round::NearestEven.increments(false, false, true, true));
        // Below half never increments.
        assert!(!Round::NearestEven.increments(false, true, false, true));
    }

    #[test]
    fn rmm_ties_away() {
        assert!(Round::NearestMaxMagnitude.increments(true, false, true, false));
        assert!(!Round::NearestMaxMagnitude.increments(true, false, false, true));
    }

    #[test]
    fn directed_modes_respect_sign() {
        // RDN rounds negative results away from zero (more negative).
        assert!(Round::Down.increments(true, false, false, true));
        assert!(!Round::Down.increments(false, false, false, true));
        // RUP is the mirror image.
        assert!(Round::Up.increments(false, false, false, true));
        assert!(!Round::Up.increments(true, false, false, true));
        // RTZ never increments.
        for &(s, l, r, st) in &[(false, true, true, true), (true, true, true, true)] {
            assert!(!Round::TowardZero.increments(s, l, r, st));
        }
    }

    #[test]
    fn overflow_behaviour_matches_ieee() {
        assert!(!Round::NearestEven.overflow_saturates(false));
        assert!(Round::TowardZero.overflow_saturates(true));
        assert!(Round::Down.overflow_saturates(false));
        assert!(!Round::Down.overflow_saturates(true));
        assert!(Round::Up.overflow_saturates(true));
        assert!(!Round::Up.overflow_saturates(false));
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = Round::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(names, ["rne", "rtz", "rdn", "rup", "rmm"]);
    }
}
