//! Bit-accurate IEEE 754 `binary16` ("FP16") software floating point.
//!
//! This crate is the numerical substrate of the RedMulE reproduction. The
//! paper's accelerator is built from FPnew fused multiply-add (FMA) units
//! operating on IEEE `binary16`; every arithmetic result produced by the
//! simulated datapath must therefore be *bit-identical* to what IEEE-compliant
//! FP16 hardware computes. Rust has no native `f16`, so this crate implements
//! the format from scratch with exact integer arithmetic:
//!
//! * [`F16`] — the 16-bit storage type with full classification,
//!   conversion, comparison and formatting support.
//! * [`arith`] — correctly rounded add/sub/mul/div/sqrt, and crucially a
//!   correctly rounded **fused** multiply-add ([`F16::mul_add`]) with a
//!   single rounding step, in all five RISC-V rounding modes.
//! * [`Round`] — the rounding-mode type (RNE, RTZ, RDN, RUP, RMM).
//! * [`vector`] — slice-level helpers (dot products, AXPY) and the
//!   **golden-model GEMM** ([`vector::gemm_golden`]) that the cycle-accurate
//!   accelerator model is verified against.
//! * [`E4M3`] / [`E5M2`] — bit-accurate OFP8 8-bit formats with exact
//!   widening and correctly rounded narrowing casts, and the storage
//!   [`Format`] selector for the accelerator's cast-in/cast-out datapath.
//!
//! # Fidelity notes
//!
//! * Subnormals are fully supported (FPnew in the PULP cluster configuration
//!   does not flush to zero for FP16).
//! * All NaN results are canonicalised to the quiet NaN `0x7E00`, matching
//!   FPnew's NaN-boxing-free canonical output.
//! * The default rounding mode everywhere is round-to-nearest-even, the mode
//!   used by the paper's training workloads.
//!
//! # Example
//!
//! ```
//! use redmule_fp16::F16;
//!
//! let a = F16::from_f32(1.5);
//! let b = F16::from_f32(2.25);
//! let c = F16::from_f32(-3.0);
//! // Fused multiply-add: a * b + c with a single rounding.
//! let z = a.mul_add(b, c);
//! assert_eq!(z.to_f32(), 1.5 * 2.25 - 3.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod arith;
mod f16;
mod fp8;
pub mod kernel;
mod round;
pub mod vector;

pub use f16::{FpCategory16, F16};
pub use fp8::{Format, E4M3, E5M2};
pub use round::Round;

/// Canonical quiet NaN produced by all invalid operations (matches FPnew).
pub const CANONICAL_QNAN: u16 = 0x7E00;
