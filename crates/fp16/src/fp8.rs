//! Bit-accurate OFP8 (FP8) softfloat types and the storage [`Format`]
//! selector for the cast-in/cast-out datapath.
//!
//! Two 8-bit formats from the Open Compute "OFP8" specification (the ones the
//! RedMulE journal follow-up adds via `redmule_castin`/`redmule_castout`):
//!
//! * [`E4M3`] — 4 exponent bits (bias 7), 3 mantissa bits. No infinities;
//!   the single NaN code per sign is `S.1111.111`, so the exponent field
//!   `1111` encodes *normal* values for every other mantissa. Max finite is
//!   448; finite overflow under nearest roundings produces NaN.
//! * [`E5M2`] — 5 exponent bits (bias 15, identical to binary16), 2 mantissa
//!   bits. A conventional IEEE-style format: it has infinities, max finite is
//!   57344, and finite overflow under nearest roundings produces infinity.
//!
//! Both types are thin wrappers over their `u8` bit pattern, mirroring
//! [`F16`]. Widening to binary16 (`to_f16`, the hardware `castin`) is exact
//! for every bit pattern; narrowing (`from_f16`, the hardware `castout`)
//! performs a single correctly-rounded step in any [`Round`] mode using the
//! same integer round/sticky machinery as the binary16 operations, so the
//! FP8↔FP16 round trip is lossless for all 256 patterns of either format.

use crate::arith::{self, Class, Unpacked};
use crate::round::Round;
use crate::F16;

const SIGN8: u8 = 0x80;

/// Static description of an FP8 format, shared by the narrowing path.
struct Spec {
    /// Mantissa (fraction) field width in bits.
    man_bits: u32,
    /// Exponent bias.
    bias: i32,
    /// Maximum unbiased exponent of a finite value.
    emax: i32,
    /// Magnitude encoding of the largest finite value.
    max_finite: u8,
    /// Magnitude encoding produced on non-saturating overflow
    /// (infinity for E5M2, NaN for E4M3 which has none).
    overflow_code: u8,
    /// Whether the all-ones code point is NaN rather than infinity, i.e.
    /// the top mantissa pattern of the top binade is unavailable (E4M3).
    top_code_is_nan: bool,
}

const E4M3_SPEC: Spec = Spec {
    man_bits: 3,
    bias: 7,
    emax: 8,
    max_finite: 0x7E,
    overflow_code: 0x7F,
    top_code_is_nan: true,
};

const E5M2_SPEC: Spec = Spec {
    man_bits: 2,
    bias: 15,
    emax: 15,
    max_finite: 0x7B,
    overflow_code: 0x7C,
    top_code_is_nan: false,
};

/// Narrows a finite, non-zero unpacked binary16 value to an FP8 magnitude
/// encoding (sign excluded), in a single correctly-rounded step.
fn narrow_finite(u: Unpacked, mode: Round, spec: &Spec) -> u8 {
    let sign8 = if u.sign { SIGN8 } else { 0 };
    // Value is sig * 2^q with sig normalised into [2^10, 2^11); the
    // exponent of its leading bit is therefore:
    let e = 10 + u.q;
    let emin = 1 - spec.bias;

    // Bits to discard from sig so the kept significand lands in the target
    // field: a fixed 10 - man_bits for normals, growing with the deficit
    // below emin for subnormals (gradual underflow).
    let drop = if e >= emin {
        10 - spec.man_bits as i32
    } else {
        (emin - spec.man_bits as i32) - u.q
    };
    debug_assert!(drop > 0);
    let sig = u64::from(u.sig);
    let (mut kept, round, sticky) = if drop >= 64 {
        (0, false, sig != 0)
    } else {
        let d = drop as u32;
        let kept = sig >> d;
        let round = (sig >> (d - 1)) & 1 != 0;
        let sticky = sig & ((1 << (d - 1)) - 1) != 0;
        (kept, round, sticky)
    };
    if mode.increments(u.sign, kept & 1 != 0, round, sticky) {
        kept += 1;
    }

    let hidden = 1u64 << spec.man_bits;
    if e < emin {
        // Subnormal result. A round-up carry to `hidden` encodes naturally
        // as the smallest normal (exponent field 1, mantissa 0).
        if kept == 0 {
            return sign8; // underflow to signed zero
        }
        return sign8 | kept as u8;
    }

    let mut e = e;
    if kept == hidden << 1 {
        // Carry out of the mantissa: renormalise.
        kept >>= 1;
        e += 1;
    }
    let overflows =
        e > spec.emax || (spec.top_code_is_nan && e == spec.emax && kept == (hidden << 1) - 1);
    if overflows {
        return if mode.overflow_saturates(u.sign) {
            sign8 | spec.max_finite
        } else {
            sign8 | spec.overflow_code
        };
    }
    sign8 | (((e + spec.bias) as u8) << spec.man_bits) | (kept as u8 & (hidden as u8 - 1))
}

/// An OFP8 E4M3 value: 1 sign, 4 exponent (bias 7), 3 mantissa bits.
///
/// E4M3 trades the infinities away for an extra binade of range: the
/// exponent field `1111` encodes normal values up to 448, and the single
/// NaN per sign sits at `S.1111.111`. Finite overflow under the nearest
/// rounding modes produces that NaN (OFP8 semantics); the directed modes
/// saturate to ±448 exactly like binary16 saturates to ±65504.
///
/// # Example
///
/// ```
/// use redmule_fp16::{E4M3, F16, Round};
///
/// let x = E4M3::from_f16(F16::from_f32(3.14), Round::NearestEven);
/// assert_eq!(x.to_f16().to_f32(), 3.25); // nearest E4M3 value
/// assert!(E4M3::from_f16(F16::from_f32(1.0e4), Round::NearestEven).is_nan());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct E4M3(u8);

impl E4M3 {
    /// Positive zero.
    pub const ZERO: E4M3 = E4M3(0x00);
    /// Negative zero.
    pub const NEG_ZERO: E4M3 = E4M3(0x80);
    /// One.
    pub const ONE: E4M3 = E4M3(0x38);
    /// Largest finite value, 448.
    pub const MAX: E4M3 = E4M3(0x7E);
    /// Smallest positive (subnormal) value, 2^-9.
    pub const MIN_POSITIVE_SUBNORMAL: E4M3 = E4M3(0x01);
    /// The (positive-signed) NaN. E4M3 has exactly one NaN code per sign.
    pub const NAN: E4M3 = E4M3(0x7F);

    /// Wraps a raw bit pattern.
    pub const fn from_bits(bits: u8) -> E4M3 {
        E4M3(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u8 {
        self.0
    }

    /// Whether this is one of the two NaN codes (`0x7F` / `0xFF`).
    pub const fn is_nan(self) -> bool {
        self.0 & 0x7F == 0x7F
    }

    /// Widens to binary16 (the hardware `castin` stage). Exact for every
    /// bit pattern: E4M3's entire value set embeds in binary16's normals.
    pub fn to_f16(self) -> F16 {
        let sign = u16::from(self.0 & SIGN8) << 8;
        let exp = u16::from(self.0 >> 3) & 0xF;
        let man = u16::from(self.0 & 0x7);
        if self.is_nan() {
            return F16::from_bits(sign | 0x7E00);
        }
        if exp == 0 {
            if man == 0 {
                return F16::from_bits(sign);
            }
            // Subnormal: value man * 2^-9. Normalise into binary16.
            let p = 15 - man.leading_zeros() as u16; // leading-bit index, 0..=2
            let frac = (man << (10 - p)) & 0x3FF;
            return F16::from_bits(sign | ((p + 6) << 10) | frac);
        }
        // Normal: rebias 7 -> 15, widen the mantissa field 3 -> 10.
        F16::from_bits(sign | ((exp + 8) << 10) | (man << 7))
    }

    /// Narrows a binary16 value in a single correctly-rounded step (the
    /// hardware `castout` stage). Overflow follows OFP8: NaN under the
    /// nearest modes, saturation to ±[`E4M3::MAX`] under the directed
    /// modes that saturate. Infinities, which E4M3 cannot represent,
    /// always become NaN.
    pub fn from_f16(v: F16, mode: Round) -> E4M3 {
        let bits = v.to_bits();
        let sign8 = ((bits >> 8) as u8) & SIGN8;
        match arith::classify(bits) {
            Class::Nan => E4M3(sign8 | 0x7F),
            Class::Inf { sign } => E4M3(if sign { 0xFF } else { 0x7F }),
            Class::Zero { sign } => E4M3(if sign { SIGN8 } else { 0 }),
            Class::Finite(u) => E4M3(narrow_finite(u, mode, &E4M3_SPEC)),
        }
    }
}

/// An OFP8 E5M2 value: 1 sign, 5 exponent (bias 15), 2 mantissa bits.
///
/// E5M2 shares binary16's exponent range exactly, so widening is a pure
/// left shift of the bit pattern by 8 and every binary16 value's top byte
/// is its nearest-even E5M2 neighbourhood. It keeps IEEE structure:
/// infinities exist and finite overflow under the nearest modes produces
/// them.
///
/// # Example
///
/// ```
/// use redmule_fp16::{E5M2, F16, Round};
///
/// let x = E5M2::from_f16(F16::from_f32(3.14), Round::NearestEven);
/// assert_eq!(x.to_f16().to_f32(), 3.0);
/// assert!(E5M2::from_f16(F16::from_f32(61440.0), Round::NearestEven).is_infinite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct E5M2(u8);

impl E5M2 {
    /// Positive zero.
    pub const ZERO: E5M2 = E5M2(0x00);
    /// Negative zero.
    pub const NEG_ZERO: E5M2 = E5M2(0x80);
    /// One.
    pub const ONE: E5M2 = E5M2(0x3C);
    /// Largest finite value, 57344.
    pub const MAX: E5M2 = E5M2(0x7B);
    /// Smallest positive (subnormal) value, 2^-16.
    pub const MIN_POSITIVE_SUBNORMAL: E5M2 = E5M2(0x01);
    /// Positive infinity.
    pub const INFINITY: E5M2 = E5M2(0x7C);
    /// Negative infinity.
    pub const NEG_INFINITY: E5M2 = E5M2(0xFC);
    /// The canonical quiet NaN (positive sign, quiet-bit payload).
    pub const NAN: E5M2 = E5M2(0x7E);

    /// Wraps a raw bit pattern.
    pub const fn from_bits(bits: u8) -> E5M2 {
        E5M2(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u8 {
        self.0
    }

    /// Whether this is a NaN (all-ones exponent, non-zero mantissa).
    pub const fn is_nan(self) -> bool {
        self.0 & 0x7C == 0x7C && self.0 & 0x3 != 0
    }

    /// Whether this is ±infinity.
    pub const fn is_infinite(self) -> bool {
        self.0 & 0x7F == 0x7C
    }

    /// Widens to binary16 (the hardware `castin` stage). Because E5M2 is
    /// binary16's top byte — same bias, same exponent width — this is
    /// exactly `bits << 8` and is exact for every bit pattern, subnormals
    /// and specials included.
    pub fn to_f16(self) -> F16 {
        F16::from_bits(u16::from(self.0) << 8)
    }

    /// Narrows a binary16 value in a single correctly-rounded step (the
    /// hardware `castout` stage). Overflow produces ±infinity under the
    /// nearest modes and saturates to ±[`E5M2::MAX`] under the directed
    /// modes that saturate. NaNs keep their sign and top payload bits,
    /// quietened so the result stays a NaN.
    pub fn from_f16(v: F16, mode: Round) -> E5M2 {
        let bits = v.to_bits();
        let sign8 = ((bits >> 8) as u8) & SIGN8;
        match arith::classify(bits) {
            Class::Nan => {
                // Keep the top two payload bits; force the quiet bit if
                // truncation would otherwise produce the infinity code.
                let mut payload = ((bits >> 8) as u8) & 0x3;
                if payload == 0 {
                    payload = 0x2;
                }
                E5M2(sign8 | 0x7C | payload)
            }
            Class::Inf { sign } => E5M2(if sign { 0xFC } else { 0x7C }),
            Class::Zero { sign } => E5M2(if sign { SIGN8 } else { 0 }),
            Class::Finite(u) => E5M2(narrow_finite(u, mode, &E5M2_SPEC)),
        }
    }
}

/// Storage format of a GEMM job's operands in TCDM.
///
/// Selects how X, W and Z elements are laid out in memory and cast at the
/// datapath boundary: [`Format::Fp16`] streams 2-byte elements straight into
/// the FMA core; the FP8 formats store 1-byte elements that are widened at
/// buffer fill (`castin`) and narrowed with round-to-nearest-even at store
/// drain (`castout`), while the accumulation core itself stays FP16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Format {
    /// IEEE binary16, the native datapath precision (2 bytes/element).
    #[default]
    Fp16,
    /// OFP8 E4M3 storage, widened/narrowed at the cast stages (1 byte).
    Fp8E4M3,
    /// OFP8 E5M2 storage, widened/narrowed at the cast stages (1 byte).
    Fp8E5M2,
}

impl Format {
    /// Every format, in register-tag order.
    pub const ALL: [Format; 3] = [Format::Fp16, Format::Fp8E4M3, Format::Fp8E5M2];

    /// Bytes per stored element.
    pub const fn elem_bytes(self) -> usize {
        match self {
            Format::Fp16 => 2,
            Format::Fp8E4M3 | Format::Fp8E5M2 => 1,
        }
    }

    /// Whether this is one of the 8-bit storage formats.
    pub const fn is_fp8(self) -> bool {
        !matches!(self, Format::Fp16)
    }

    /// Register-field / snapshot encoding of this format.
    pub const fn tag(self) -> u8 {
        match self {
            Format::Fp16 => 0,
            Format::Fp8E4M3 => 1,
            Format::Fp8E5M2 => 2,
        }
    }

    /// Decodes a register-field / snapshot tag; `None` for the reserved
    /// encoding 3 and anything wider.
    pub const fn from_tag(tag: u8) -> Option<Format> {
        match tag {
            0 => Some(Format::Fp16),
            1 => Some(Format::Fp8E4M3),
            2 => Some(Format::Fp8E5M2),
            _ => None,
        }
    }

    /// Short lowercase label used in reports and benchmark artefacts.
    pub const fn label(self) -> &'static str {
        match self {
            Format::Fp16 => "fp16",
            Format::Fp8E4M3 => "fp8e4m3",
            Format::Fp8E5M2 => "fp8e5m2",
        }
    }

    /// The value `v` becomes after a castout/castin round trip through this
    /// storage format with round-to-nearest-even (identity for `Fp16`).
    ///
    /// This is the quantisation a functional model must apply to match the
    /// engine bit-for-bit: operands pass through storage on the way in, and
    /// results pass through it on the way out.
    pub fn quantize(self, v: F16) -> F16 {
        match self {
            Format::Fp16 => v,
            Format::Fp8E4M3 => E4M3::from_f16(v, Round::NearestEven).to_f16(),
            Format::Fp8E5M2 => E5M2::from_f16(v, Round::NearestEven).to_f16(),
        }
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e4m3(bits: u16, mode: Round) -> u8 {
        E4M3::from_f16(F16::from_bits(bits), mode).to_bits()
    }

    fn e5m2(bits: u16, mode: Round) -> u8 {
        E5M2::from_f16(F16::from_bits(bits), mode).to_bits()
    }

    #[test]
    fn e4m3_named_constants_have_the_documented_bits() {
        assert_eq!(E4M3::ONE.to_f16().to_bits(), 0x3C00);
        assert_eq!(E4M3::MAX.to_f16().to_bits(), 0x5F00); // 448
        assert_eq!(E4M3::MIN_POSITIVE_SUBNORMAL.to_f16().to_bits(), 0x1800); // 2^-9
        assert!(E4M3::NAN.is_nan());
        assert!(E4M3::from_bits(0xFF).is_nan());
        assert!(!E4M3::MAX.is_nan());
    }

    #[test]
    fn e5m2_named_constants_have_the_documented_bits() {
        assert_eq!(E5M2::ONE.to_f16().to_bits(), 0x3C00);
        assert_eq!(E5M2::MAX.to_f16().to_bits(), 0x7B00); // 57344
        assert_eq!(E5M2::MIN_POSITIVE_SUBNORMAL.to_f16().to_bits(), 0x0100); // 2^-16
        assert!(E5M2::INFINITY.is_infinite());
        assert!(E5M2::NAN.is_nan());
        assert!(!E5M2::NAN.is_infinite());
    }

    #[test]
    fn e4m3_overflow_boundary_follows_ofp8() {
        // 464 = 0x5F40 is the midpoint between 448 (max finite) and the
        // would-be 480; RNE ties to the even mantissa, which is 448.
        assert_eq!(e4m3(0x5F40, Round::NearestEven), 0x7E);
        // One ulp above the midpoint rounds up and overflows to NaN.
        assert_eq!(e4m3(0x5F41, Round::NearestEven), 0x7F);
        // RMM ties away from zero: overflow to NaN at the midpoint.
        assert_eq!(e4m3(0x5F40, Round::NearestMaxMagnitude), 0x7F);
        // Directed saturating modes clamp to max finite.
        assert_eq!(e4m3(0x7BFF, Round::TowardZero), 0x7E);
        assert_eq!(e4m3(0x7BFF, Round::Down), 0x7E);
        assert_eq!(e4m3(0xFBFF, Round::Up), 0xFE);
        // ...while the non-saturating direction overflows to NaN.
        assert_eq!(e4m3(0x7BFF, Round::Up), 0x7F);
        // Infinity cannot be represented: always NaN, sign preserved.
        assert_eq!(e4m3(0x7C00, Round::TowardZero), 0x7F);
        assert_eq!(e4m3(0xFC00, Round::NearestEven), 0xFF);
    }

    #[test]
    fn e5m2_overflow_boundary_produces_infinity() {
        // 61440 = 0x7B80 is the midpoint between 57344 (max finite) and the
        // would-be 65536; the even side is 65536, so RNE overflows to Inf.
        assert_eq!(e5m2(0x7B80, Round::NearestEven), 0x7C);
        // Just below the midpoint stays at max finite.
        assert_eq!(e5m2(0x7B7F, Round::NearestEven), 0x7B);
        // Directed saturating modes clamp; the others produce Inf.
        assert_eq!(e5m2(0x7BFF, Round::TowardZero), 0x7B);
        assert_eq!(e5m2(0xFBFF, Round::Down), 0xFC);
        assert_eq!(e5m2(0x7BFF, Round::Up), 0x7C);
        // Real infinities pass through.
        assert_eq!(e5m2(0x7C00, Round::TowardZero), 0x7C);
        assert_eq!(e5m2(0xFC00, Round::TowardZero), 0xFC);
    }

    #[test]
    fn rne_ties_resolve_to_even_mantissas() {
        // 2.125 = 0x4040 is halfway between E4M3's 2.0 (man 000) and
        // 2.25 (man 001): even is 2.0.
        assert_eq!(e4m3(0x4040, Round::NearestEven), 0x40);
        // 2.375 = 0x40C0 is halfway between 2.25 and 2.5: even is 2.5.
        assert_eq!(e4m3(0x40C0, Round::NearestEven), 0x42);
        // RMM breaks both ties away from zero.
        assert_eq!(e4m3(0x4040, Round::NearestMaxMagnitude), 0x41);
        assert_eq!(e4m3(0x40C0, Round::NearestMaxMagnitude), 0x42);
    }

    #[test]
    fn subnormal_boundaries_underflow_gradually() {
        // Half of E4M3's smallest subnormal (2^-10 = 0x1400): RNE ties to
        // even (zero), RUP forces the smallest subnormal.
        assert_eq!(e4m3(0x1400, Round::NearestEven), 0x00);
        assert_eq!(e4m3(0x1400, Round::Up), 0x01);
        assert_eq!(e4m3(0x9400, Round::NearestEven), 0x80); // signed zero
        assert_eq!(e4m3(0x9400, Round::Down), 0x81);
        // Smallest binary16 subnormal is far below either FP8 format.
        assert_eq!(e4m3(0x0001, Round::NearestEven), 0x00);
        assert_eq!(e4m3(0x0001, Round::Up), 0x01);
        assert_eq!(e5m2(0x0001, Round::NearestEven), 0x00);
        // E5M2's smallest subnormal is exactly binary16's 2^-16.
        assert_eq!(e5m2(0x0100, Round::NearestEven), 0x01);
    }

    #[test]
    fn signed_zeros_survive_the_cast_in_both_directions() {
        for mode in Round::ALL {
            assert_eq!(e4m3(0x0000, mode), 0x00);
            assert_eq!(e4m3(0x8000, mode), 0x80);
            assert_eq!(e5m2(0x0000, mode), 0x00);
            assert_eq!(e5m2(0x8000, mode), 0x80);
        }
        assert_eq!(E4M3::NEG_ZERO.to_f16().to_bits(), 0x8000);
        assert_eq!(E5M2::NEG_ZERO.to_f16().to_bits(), 0x8000);
    }

    #[test]
    fn nan_narrowing_is_canonical_and_sign_preserving() {
        // E4M3 has a single NaN code per sign.
        assert_eq!(e4m3(0x7E01, Round::NearestEven), 0x7F);
        assert_eq!(e4m3(0xFFFF, Round::NearestEven), 0xFF);
        // E5M2 keeps the top payload bits; a payload that would truncate to
        // zero (turning NaN into Inf) gets the quiet bit forced instead.
        assert_eq!(e5m2(0x7E00, Round::NearestEven), 0x7E);
        assert_eq!(e5m2(0x7D00, Round::NearestEven), 0x7D);
        assert_eq!(e5m2(0x7C01, Round::NearestEven), 0x7E);
        assert_eq!(e5m2(0xFC01, Round::NearestEven), 0xFE);
        assert!(E5M2::from_bits(e5m2(0x7C01, Round::NearestEven)).is_nan());
    }

    #[test]
    fn e5m2_widen_is_the_top_byte() {
        for bits in 0u16..=0xFF {
            let wide = E5M2::from_bits(bits as u8).to_f16().to_bits();
            assert_eq!(wide, bits << 8);
        }
    }

    #[test]
    fn format_tags_round_trip_and_reserved_tag_is_rejected() {
        for format in Format::ALL {
            assert_eq!(Format::from_tag(format.tag()), Some(format));
        }
        assert_eq!(Format::from_tag(3), None);
        assert_eq!(Format::from_tag(0xFF), None);
    }

    #[test]
    fn format_reports_element_widths_and_labels() {
        assert_eq!(Format::Fp16.elem_bytes(), 2);
        assert_eq!(Format::Fp8E4M3.elem_bytes(), 1);
        assert_eq!(Format::Fp8E5M2.elem_bytes(), 1);
        assert!(!Format::Fp16.is_fp8());
        assert!(Format::Fp8E4M3.is_fp8());
        let labels: Vec<&str> = Format::ALL.iter().map(|f| f.label()).collect();
        assert_eq!(labels, ["fp16", "fp8e4m3", "fp8e5m2"]);
        assert_eq!(Format::default(), Format::Fp16);
    }

    #[test]
    fn quantize_is_identity_for_fp16_and_a_projection_for_fp8() {
        let v = F16::from_bits(0x3C01); // 1.0 + 1 ulp
        assert_eq!(Format::Fp16.quantize(v), v);
        let q = Format::Fp8E4M3.quantize(v);
        assert_eq!(q.to_bits(), 0x3C00); // snaps to 1.0
        assert_eq!(Format::Fp8E4M3.quantize(q), q); // idempotent
        let q = Format::Fp8E5M2.quantize(v);
        assert_eq!(q.to_bits(), 0x3C00);
        assert_eq!(Format::Fp8E5M2.quantize(q), q);
    }
}
