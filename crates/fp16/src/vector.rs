//! Slice-level FP16 kernels and the golden-model GEMM.
//!
//! The functions here define the *numerical contract* of the RedMulE
//! reproduction: the cycle-accurate accelerator model and the software
//! baseline must both produce results bit-identical to
//! [`gemm_golden`], because all three accumulate along the inner (`N`)
//! dimension in the same order with fused multiply-adds.

use crate::{Round, F16};

/// Dot product with sequential FMA accumulation (round-to-nearest-even).
///
/// Accumulation order is index order, matching a single RedMulE row ring.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Example
///
/// ```
/// use redmule_fp16::{F16, vector::dot};
/// let a: Vec<F16> = (1..=3).map(|v| F16::from(v as u8)).collect();
/// let b = vec![F16::TWO; 3];
/// assert_eq!(dot(&a, &b).to_f32(), 12.0);
/// ```
pub fn dot(a: &[F16], b: &[F16]) -> F16 {
    assert_eq!(a.len(), b.len(), "dot requires equal-length slices");
    a.iter()
        .zip(b)
        .fold(F16::ZERO, |acc, (&x, &y)| x.mul_add(y, acc))
}

/// `y[i] += alpha * x[i]` with fused multiply-add per element.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: F16, x: &[F16], y: &mut [F16]) {
    assert_eq!(x.len(), y.len(), "axpy requires equal-length slices");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = alpha.mul_add(xi, *yi);
    }
}

/// Element-wise maximum of each entry with zero (ReLU), preserving NaN.
pub fn relu(x: &mut [F16]) {
    for v in x.iter_mut() {
        if !v.is_nan() && v.is_sign_negative() && !v.is_zero() {
            *v = F16::ZERO;
        }
    }
}

/// Row-major matrix dimensions for [`gemm_golden`] and friends.
///
/// `Z (m x k) = X (m x n) * W (n x k)`, using the paper's naming: `X` is
/// `M x N`, `W` is `N x K`, `Z` is `M x K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Rows of `X` and `Z`.
    pub m: usize,
    /// Columns of `X` / rows of `W` (the reduction dimension).
    pub n: usize,
    /// Columns of `W` and `Z`.
    pub k: usize,
}

impl GemmShape {
    /// Creates a shape; any dimension may be zero (producing empty outputs).
    pub const fn new(m: usize, n: usize, k: usize) -> GemmShape {
        GemmShape { m, n, k }
    }

    /// Total number of MAC operations in the multiplication, `m * n * k`.
    pub const fn macs(&self) -> u64 {
        self.m as u64 * self.n as u64 * self.k as u64
    }

    /// Number of FP16 elements in `X`.
    pub const fn x_len(&self) -> usize {
        self.m * self.n
    }

    /// Number of FP16 elements in `W`.
    pub const fn w_len(&self) -> usize {
        self.n * self.k
    }

    /// Number of FP16 elements in `Z`.
    pub const fn z_len(&self) -> usize {
        self.m * self.k
    }

    /// Total FP16 memory footprint in bytes (`X + W + Z`).
    pub const fn footprint_bytes(&self) -> usize {
        2 * (self.x_len() + self.w_len() + self.z_len())
    }
}

impl std::fmt::Display for GemmShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}x{}] * [{}x{}]", self.m, self.n, self.n, self.k)
    }
}

/// Golden-model GEMM: `Z = X * W` with sequential FMA accumulation over `N`.
///
/// Matrices are row-major. Every simulated execution path (accelerator
/// datapath, software baseline) must be bit-identical to this function.
///
/// # Panics
///
/// Panics if slice lengths do not match `shape`.
///
/// # Example
///
/// ```
/// use redmule_fp16::{F16, vector::{gemm_golden, GemmShape}};
/// let shape = GemmShape::new(2, 2, 2);
/// let x = vec![F16::ONE; 4];
/// let w = vec![F16::TWO; 4];
/// let z = gemm_golden(shape, &x, &w);
/// assert!(z.iter().all(|v| v.to_f32() == 4.0));
/// ```
pub fn gemm_golden(shape: GemmShape, x: &[F16], w: &[F16]) -> Vec<F16> {
    gemm_golden_accumulate(shape, x, w, None)
}

/// Golden-model GEMM with an optional initial accumulator: `Z = X * W + Y`.
///
/// When `y` is `Some`, each output element starts from the corresponding `Y`
/// element instead of zero — RedMulE's "Z += X·W" accumulate mode (the
/// journal follow-up's GEMM extension).
///
/// # Panics
///
/// Panics if slice lengths do not match `shape`.
pub fn gemm_golden_accumulate(
    shape: GemmShape,
    x: &[F16],
    w: &[F16],
    y: Option<&[F16]>,
) -> Vec<F16> {
    assert_eq!(x.len(), shape.x_len(), "X has wrong length for {shape}");
    assert_eq!(w.len(), shape.w_len(), "W has wrong length for {shape}");
    if let Some(y) = y {
        assert_eq!(y.len(), shape.z_len(), "Y has wrong length for {shape}");
    }
    let mut z = vec![F16::ZERO; shape.z_len()];
    for i in 0..shape.m {
        for j in 0..shape.k {
            let mut acc = y.map_or(F16::ZERO, |y| y[i * shape.k + j]);
            for l in 0..shape.n {
                acc = x[i * shape.n + l].mul_add(w[l * shape.k + j], acc);
            }
            z[i * shape.k + j] = acc;
        }
    }
    z
}

/// Golden model for the **SIMD-2** software kernel (`vfmac.h`-style):
/// even and odd reduction indices accumulate in separate lanes that are
/// added once at the end, with a scalar tail when `N` is odd.
///
/// This is a *different numerical contract* than [`gemm_golden`] (lane
/// splitting changes the FP16 accumulation order); the SIMD baseline
/// variant in `redmule-cluster` is verified against this function.
///
/// # Panics
///
/// Panics if slice lengths do not match `shape`.
///
/// # Example
///
/// ```
/// use redmule_fp16::{F16, vector::{gemm_golden_simd2, GemmShape}};
/// let shape = GemmShape::new(1, 4, 1);
/// let x = vec![F16::ONE; 4];
/// let w = vec![F16::TWO; 4];
/// assert_eq!(gemm_golden_simd2(shape, &x, &w)[0].to_f32(), 8.0);
/// ```
pub fn gemm_golden_simd2(shape: GemmShape, x: &[F16], w: &[F16]) -> Vec<F16> {
    assert_eq!(x.len(), shape.x_len(), "X has wrong length for {shape}");
    assert_eq!(w.len(), shape.w_len(), "W has wrong length for {shape}");
    let mut z = vec![F16::ZERO; shape.z_len()];
    for i in 0..shape.m {
        for j in 0..shape.k {
            let pairs = shape.n / 2;
            let mut acc0 = F16::ZERO;
            let mut acc1 = F16::ZERO;
            for p in 0..pairs {
                let l = 2 * p;
                acc0 = x[i * shape.n + l].mul_add(w[l * shape.k + j], acc0);
                acc1 = x[i * shape.n + l + 1].mul_add(w[(l + 1) * shape.k + j], acc1);
            }
            let mut acc = acc0 + acc1;
            if shape.n % 2 == 1 {
                let l = shape.n - 1;
                acc = x[i * shape.n + l].mul_add(w[l * shape.k + j], acc);
            }
            z[i * shape.k + j] = acc;
        }
    }
    z
}

/// GEMM computed entirely in `f64` and rounded once at the end — a
/// *different* (more accurate) contract than [`gemm_golden`], used by tests
/// to bound FP16 accumulation error rather than to check bit-identity.
// modelcheck-allow: RM-FP-001 -- reference path: deliberately computes in f64
// to bound FP16 accumulation error in tests; never feeds the datapath.
pub fn gemm_f64_reference(shape: GemmShape, x: &[F16], w: &[F16]) -> Vec<F16> {
    assert_eq!(x.len(), shape.x_len(), "X has wrong length for {shape}");
    assert_eq!(w.len(), shape.w_len(), "W has wrong length for {shape}");
    let mut z = vec![F16::ZERO; shape.z_len()];
    for i in 0..shape.m {
        for j in 0..shape.k {
            let mut acc = 0.0f64;
            for l in 0..shape.n {
                acc += x[i * shape.n + l].to_f64() * w[l * shape.k + j].to_f64();
            }
            z[i * shape.k + j] = F16::from_f64_round(acc, Round::NearestEven);
        }
    }
    z
}

/// Transposes a row-major `rows x cols` matrix.
///
/// # Panics
///
/// Panics if `data.len() != rows * cols`.
pub fn transpose(data: &[F16], rows: usize, cols: usize) -> Vec<F16> {
    assert_eq!(data.len(), rows * cols, "transpose dimensions mismatch");
    let mut out = vec![F16::ZERO; data.len()];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = data[r * cols + c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f32) -> F16 {
        F16::from_f32(v)
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), F16::ZERO);
    }

    #[test]
    fn dot_accumulates_in_index_order() {
        // With FP16, ordering matters: (big + small) + -big loses the small
        // term, so a specific order is part of the contract.
        let big = f(2048.0);
        let one = F16::ONE;
        let a = [big, one, -big];
        let b = [F16::ONE, F16::ONE, F16::ONE];
        // 2048 + 1 = 2049 -> rounds to 2048 in FP16; then - 2048 = 0.
        assert_eq!(dot(&a, &b), F16::ZERO);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[F16::ONE], &[]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [F16::ONE, F16::TWO];
        let mut y = [f(10.0), f(20.0)];
        axpy(F16::TWO, &x, &mut y);
        assert_eq!(y[0], f(12.0));
        assert_eq!(y[1], f(24.0));
    }

    #[test]
    fn relu_zeroes_negatives_only() {
        let mut v = [f(-2.0), f(3.0), F16::NEG_ZERO, F16::NAN, F16::NEG_INFINITY];
        relu(&mut v);
        assert_eq!(v[0], F16::ZERO);
        assert_eq!(v[1], f(3.0));
        // -0 is not negative-valued; ReLU(x) = max(x, 0) keeps it as zero.
        assert!(v[2].is_zero());
        assert!(v[3].is_nan());
        assert_eq!(v[4], F16::ZERO);
    }

    #[test]
    fn shape_accounting() {
        let s = GemmShape::new(3, 4, 5);
        assert_eq!(s.macs(), 60);
        assert_eq!(s.x_len(), 12);
        assert_eq!(s.w_len(), 20);
        assert_eq!(s.z_len(), 15);
        assert_eq!(s.footprint_bytes(), 2 * (12 + 20 + 15));
        assert_eq!(s.to_string(), "[3x4] * [4x5]");
    }

    #[test]
    fn gemm_identity() {
        // X * I = X for a 3x3 identity.
        let shape = GemmShape::new(2, 3, 3);
        let x: Vec<F16> = (1..=6).map(|v| f(v as f32)).collect();
        let mut w = vec![F16::ZERO; 9];
        for i in 0..3 {
            w[i * 3 + i] = F16::ONE;
        }
        assert_eq!(gemm_golden(shape, &x, &w), x);
    }

    #[test]
    fn gemm_known_values() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let shape = GemmShape::new(2, 2, 2);
        let x: Vec<F16> = [1.0, 2.0, 3.0, 4.0].iter().map(|&v| f(v)).collect();
        let w: Vec<F16> = [5.0, 6.0, 7.0, 8.0].iter().map(|&v| f(v)).collect();
        let z = gemm_golden(shape, &x, &w);
        let expect = [19.0, 22.0, 43.0, 50.0];
        for (zi, &e) in z.iter().zip(&expect) {
            assert_eq!(zi.to_f32(), e);
        }
    }

    #[test]
    fn gemm_zero_dimensions_produce_empty_or_zero() {
        let z = gemm_golden(GemmShape::new(0, 4, 4), &[], &[F16::ONE; 16]);
        assert!(z.is_empty());
        // n = 0: inner loop is empty, so Z is all zeros.
        let z = gemm_golden(GemmShape::new(2, 0, 2), &[], &[]);
        assert_eq!(z, vec![F16::ZERO; 4]);
    }

    #[test]
    fn gemm_accumulate_starts_from_y() {
        let shape = GemmShape::new(1, 1, 1);
        let z = gemm_golden_accumulate(shape, &[f(3.0)], &[f(4.0)], Some(&[f(100.0)]));
        assert_eq!(z[0].to_f32(), 112.0);
    }

    #[test]
    #[should_panic(expected = "X has wrong length")]
    fn gemm_validates_input_lengths() {
        let _ = gemm_golden(GemmShape::new(2, 2, 2), &[F16::ONE], &[F16::ONE; 4]);
    }

    #[test]
    fn transpose_round_trips() {
        let data: Vec<F16> = (0..12).map(|v| f(v as f32)).collect();
        let t = transpose(&data, 3, 4);
        assert_eq!(transpose(&t, 4, 3), data);
        assert_eq!(t[0], data[0]);
        assert_eq!(t[1], data[4]); // (1,0) of original
    }

    #[test]
    fn simd2_golden_differs_only_by_lane_order() {
        // Values close to the FP16 precision edge expose the order change.
        let shape = GemmShape::new(2, 9, 3);
        let x: Vec<F16> = (0..shape.x_len())
            .map(|i| f(1.0 + (i % 5) as f32 / 1024.0))
            .collect();
        let w: Vec<F16> = (0..shape.w_len())
            .map(|i| f(1.0 - (i % 7) as f32 / 512.0))
            .collect();
        let scalar = gemm_golden(shape, &x, &w);
        let simd = gemm_golden_simd2(shape, &x, &w);
        // Same values to ~1 ulp, though not necessarily bit-identical.
        for (a, b) in scalar.iter().zip(&simd) {
            assert!((a.to_f64() - b.to_f64()).abs() <= 2.0 * 2f64.powi(-10) * a.to_f64().abs());
        }
    }

    #[test]
    fn simd2_golden_even_and_odd_n() {
        // Exact small cases, computable by hand.
        let x: Vec<F16> = [1.0, 2.0, 3.0, 4.0, 5.0].iter().map(|&v| f(v)).collect();
        let w: Vec<F16> = [1.0; 5].iter().map(|&v| f(v)).collect();
        // n = 4: lanes (1+3) and (2+4) -> 10.
        let z = gemm_golden_simd2(GemmShape::new(1, 4, 1), &x[..4], &w[..4]);
        assert_eq!(z[0].to_f32(), 10.0);
        // n = 5: lanes then tail 5 -> 15.
        let z = gemm_golden_simd2(GemmShape::new(1, 5, 1), &x, &w);
        assert_eq!(z[0].to_f32(), 15.0);
        // n = 1: pure tail.
        let z = gemm_golden_simd2(GemmShape::new(1, 1, 1), &x[..1], &w[..1]);
        assert_eq!(z[0].to_f32(), 1.0);
        // n = 0: zero.
        let z = gemm_golden_simd2(GemmShape::new(1, 0, 1), &[], &[]);
        assert_eq!(z[0], F16::ZERO);
    }

    #[test]
    fn fp16_accumulation_error_is_bounded_for_benign_data() {
        // For data in [0, 1) with n = 64, sequential FP16 accumulation stays
        // within a few ulps of the f64 reference.
        let shape = GemmShape::new(4, 64, 4);
        let x: Vec<F16> = (0..shape.x_len())
            .map(|i| f((i % 17) as f32 / 32.0))
            .collect();
        let w: Vec<F16> = (0..shape.w_len())
            .map(|i| f((i % 13) as f32 / 64.0))
            .collect();
        let z16 = gemm_golden(shape, &x, &w);
        let z64 = gemm_f64_reference(shape, &x, &w);
        for (a, b) in z16.iter().zip(&z64) {
            let rel = (a.to_f64() - b.to_f64()).abs() / b.to_f64().abs().max(1e-6);
            assert!(rel < 0.02, "relative error too large: {a:?} vs {b:?}");
        }
    }
}
