//! Batched softfloat FMA kernel: the wall-clock-fast path under
//! `FunctionalGemm`.
//!
//! The scalar [`arith::fma`](crate::arith::fma) re-classifies all three
//! operands, aligns and normalises with portable integer arithmetic, and
//! re-packs the result on every call. A GEMM reduction reuses the same
//! operands thousands of times — every X element against a whole panel of
//! outputs, every W element against a whole column of rows — and feeds
//! each FMA's output straight into the next one's addend. This module
//! exploits that structure while preserving the result bits exactly:
//!
//! * [`Operand`] classifies an input **once**; rows of pre-classified
//!   operands are built with [`Operand::classify_slice`] and reused freely.
//! * [`Acc`] keeps the running accumulator in `f64` form between FMA
//!   steps. Every step still performs the mandatory FP16 round — rounding
//!   order is the contract — but the pack-to-bits / classify-from-bits
//!   round trip between steps is gone.
//! * [`fma_acc`] dispatches on one combined tag test: the all-finite
//!   round-to-nearest-even common case runs a short branch-free hardware
//!   path, everything else (special values, directed rounding modes)
//!   falls back to the scalar softfloat `fma` on the packed encodings.
//!
//! # Why hardware `f64` is bit-exact here
//!
//! The fast path computes `t = a*b + acc` in `f64`. The product of two
//! binary16 significands has at most 22 bits, so `a*b` is **exact** in
//! `f64`; the addition then performs a single IEEE rounding of the exact
//! sum to 53 bits. Rounding that 53-bit result again to binary16's 11-bit
//! significand is an *innocuous double rounding*: a double-rounding
//! mismatch needs the exact sum to sit within half a 53-bit ulp of an
//! 11-bit rounding boundary without lying on it, and a sum of a 22-bit
//! product and an 11-bit addend never has enough significant bits to get
//! that close (53 well exceeds the 3·11+2 bound for FMA). The claim is
//! not taken on faith: every `fma_acc` in a debug build re-checks itself
//! against `arith::fma`, and the release kernel is locked by the frozen
//! FMA vectors, an exhaustive-pairs differential sweep and a class-aware
//! proptest.
//!
//! The equivalence contract:
//!
//! ```text
//! fma_acc(classify(a), classify(b), Acc::from_bits(c)).to_bits()
//!     == arith::fma(a, b, c)          for all a, b, c, and every mode
//! ```

use crate::arith::from_f64;
use crate::round::Round;

/// Tag ordering chosen so `Finite` is 0: the hot-path test for "both
/// multiplicands finite and non-zero" is a single `|` of the tags against
/// zero. (The accumulator needs no tag at all: IEEE `f64` arithmetic
/// propagates its infinities and NaNs exactly as the scalar FMA rules
/// require once the multiplicands are known finite, and the fast path's
/// exponent-range check routes every such result to the conversion tail.)
const TAG_FINITE: u8 = 0;
const TAG_ZERO: u8 = 1;
const TAG_INF: u8 = 2;
const TAG_NAN: u8 = 3;

/// Exact widening of a binary16 bit pattern to `f64`.
///
/// Branch-free for every finite value: reinterpreting the sign-stripped
/// halfword as the top of an `f32` significand and rescaling by `2^112`
/// is exact (power-of-two multiply), maps subnormals onto normal `f32`
/// values, and the `f32 -> f64` widening is lossless. Only the shared
/// infinity/NaN exponent takes a (well-predicted) branch.
// modelcheck-allow: RM-FP-001 -- lossless binary16 -> f64 widening via an
// exact power-of-two rescale; locked against `arith::to_f64` by the debug
// assertion below and the kernel differential tests.
#[inline]
fn widen(bits: u16) -> f64 {
    let out = if bits & 0x7C00 == 0x7C00 {
        if bits & 0x3FF != 0 {
            f64::NAN
        } else if bits >> 15 != 0 {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        }
    } else {
        let mag = f32::from_bits(u32::from(bits & 0x7FFF) << 13) * f32::from_bits(0x7780_0000);
        f64::from_bits(f64::from(mag).to_bits() | u64::from(bits >> 15) << 63)
    };
    debug_assert!(
        (out.is_nan() && crate::F16::from_bits(bits).is_nan())
            || out.to_bits() == crate::arith::to_f64(bits).to_bits(),
        "widen({bits:#06x}) diverged from arith::to_f64"
    );
    out
}

/// Exact narrowing of an `f64` value *known to be binary16-representable*
/// (or an infinity / NaN) back to its binary16 bit pattern — the inverse
/// of [`widen`], by the same power-of-two rescale run backwards. Because
/// the value never rounds, this replaces the general `from_f64`
/// conversion on the accumulator store path.
// modelcheck-allow: RM-FP-001 -- exact f64 -> binary16 narrowing of
// already-representable values; locked against `arith::from_f64` by the
// debug assertion in `Acc::to_bits` and the exhaustive round-trip test.
#[inline]
fn narrow(v: f64) -> u16 {
    let vb = v.to_bits();
    let sign = ((vb >> 63) as u16) << 15;
    if (vb >> 52) & 0x7FF == 0x7FF {
        if v.is_nan() {
            return crate::CANONICAL_QNAN;
        }
        return sign | 0x7C00;
    }
    // The magnitude rescaled by 2^-112 lands binary16 normals on f32
    // normals with the same biased exponent pattern and binary16
    // subnormals on f32 subnormals with the same fraction — both exact —
    // so the binary16 encoding is the f32 encoding shifted down 13 bits.
    let mag = (f64::from_bits(vb & !(1u64 << 63)) as f32) * f32::from_bits(0x0780_0000);
    sign | (mag.to_bits() >> 13) as u16
}

/// An FP16 input pre-classified for repeated use as an FMA multiplicand.
///
/// Classify once with [`Operand::from_bits`] (or a whole row with
/// [`Operand::classify_slice`]), then feed the copy to as many
/// [`fma_acc`] / [`fma_row`] steps as the schedule needs.
// modelcheck-allow: RM-FP-001 -- the f64 field is the exact (lossless)
// widening of a binary16 value; see the module docs for the bit-exactness
// argument and the differential locks.
#[derive(Debug, Clone, Copy)]
pub struct Operand {
    /// Exact `f64` widening of the value.
    v: f64,
    /// Original packed encoding, for the scalar fallback path.
    bits: u16,
    tag: u8,
}

impl Operand {
    /// Classifies a raw binary16 bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> Operand {
        let tag = if bits & 0x7C00 == 0x7C00 {
            if bits & 0x3FF != 0 {
                TAG_NAN
            } else {
                TAG_INF
            }
        } else if bits & 0x7FFF == 0 {
            TAG_ZERO
        } else {
            TAG_FINITE
        };
        Operand {
            v: widen(bits),
            bits,
            tag,
        }
    }

    /// Classifies a whole row of values in one pass.
    pub fn classify_slice(row: &[crate::F16]) -> Vec<Operand> {
        row.iter()
            .map(|v| Operand::from_bits(v.to_bits()))
            .collect()
    }
}

/// A running FMA accumulator held as the exact `f64` widening of a
/// binary16 value.
///
/// The value is always exactly one representable binary16 (or its
/// infinity / NaN) — the kernel rounds on every step, identically to the
/// scalar path — only the *encoding* work between steps is skipped. The
/// accumulator carries no class tag: with both multiplicands known finite
/// and non-zero, IEEE `f64` arithmetic propagates an infinite or NaN
/// accumulator exactly as the scalar FMA rules require, and every such
/// result lands in the fast path's out-of-range conversion tail.
// modelcheck-allow: RM-FP-001 -- the f64 field always holds an exactly
// binary16-representable value (or inf/NaN); see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct Acc {
    v: f64,
}

impl Acc {
    /// The accumulator for a fresh reduction (`+0`).
    pub const ZERO: Acc = Acc { v: 0.0 };

    /// Unpacks an initial accumulator value (the `Y` operand of
    /// `Z = X*W + Y`).
    #[inline]
    pub fn from_bits(bits: u16) -> Acc {
        Acc { v: widen(bits) }
    }

    /// Encodes the accumulated value back to binary16 bits. For any
    /// non-NaN input this inverts [`Acc::from_bits`] exactly (the value
    /// is always binary16-representable, so the conversion never rounds);
    /// NaNs encode to the canonical quiet NaN, matching every scalar
    /// operation.
    #[inline]
    pub fn to_bits(self) -> u16 {
        let out = narrow(self.v);
        debug_assert_eq!(
            out,
            from_f64(self.v, Round::NearestEven),
            "narrow diverged from from_f64 on {:#018x}",
            self.v.to_bits()
        );
        out
    }
}

/// One fused multiply-add step on pre-classified operands:
/// `a * b + acc`, rounded once under `mode`, result kept unpacked.
///
/// Bit-for-bit equivalent to `arith::fma(a, b, acc, mode)` on the packed
/// encodings — same single rounding, same NaN canonicalisation, same IEEE
/// zero- and infinity-sign rules. Debug builds assert exactly that on
/// every single call.
// modelcheck-allow: RM-FP-001 -- f64 fast path: exact 22-bit product, one
// hardware rounding, innocuous double rounding to binary16 (module docs);
// bit-exactness locked by per-call debug assertions and the exhaustive
// differential suite.
#[inline(always)]
pub fn fma_acc(a: Operand, b: Operand, acc: Acc, mode: Round) -> Acc {
    let out = if a.tag | b.tag == TAG_FINITE && matches!(mode, Round::NearestEven) {
        // Finite-multiplicand RNE fast path. `a.v * b.v` is exact (22-bit
        // product, never zero/inf/NaN), the addition is the single
        // hardware rounding of the exact sum. An infinite or NaN
        // accumulator propagates through the addition per IEEE rules —
        // identical to the scalar FMA's special-value rules here — and
        // surfaces as an out-of-range exponent handled by the cold tail.
        let t = a.v * b.v + acc.v;
        let tb = t.to_bits();
        let biased = ((tb >> 52) & 0x7FF) as i32;
        // Binary16 normal results have unbiased exponent in [-14, 15],
        // i.e. biased (f64) exponent in [1009, 1038]. Zero, subnormal and
        // overflowing results take the cold conversion path.
        if (biased - 1009) as u32 > 29 {
            round_out_of_range(t)
        } else {
            // Round the 52-bit fraction to binary16's 10 fraction bits in
            // place (kept lsb at bit 42, round bit at 41, sticky below)
            // with the add-and-truncate formulation of round-to-nearest-
            // even: adding `lsb + (half - 1)` carries into bit 42 exactly
            // when the discarded fraction exceeds half an ulp, or equals
            // it with an odd kept lsb. A significand carry ripples
            // straight into the exponent field, which is exactly the IEEE
            // renormalisation; only the overflow re-check remains.
            let lsb = (tb >> 42) & 1;
            let rb = (tb + lsb + ((1u64 << 41) - 1)) & !((1u64 << 42) - 1);
            if (rb >> 52) & 0x7FF > 1038 {
                inf_acc(tb >> 63 != 0)
            } else {
                Acc {
                    v: f64::from_bits(rb),
                }
            }
        }
    } else {
        fma_acc_slow(a, b, acc, mode)
    };
    debug_assert_eq!(
        out.to_bits(),
        crate::arith::fma(a.bits, b.bits, acc.to_bits(), mode),
        "fma_acc drifted from scalar fma: a={:#06x} b={:#06x} c={:#06x} mode={mode:?}",
        a.bits,
        b.bits,
        acc.to_bits(),
    );
    out
}

/// Cold tail of the fast path: the exact-to-53-bits sum `t` rounds to a
/// zero, subnormal or out-of-range binary16, or the accumulator carried
/// in an infinity / NaN that the hardware addition propagated. `from_f64`
/// performs exactly the required second rounding (gradual underflow and
/// NaN canonicalisation included); the double rounding stays innocuous
/// because subnormal results keep *fewer* than 11 bits.
// modelcheck-allow: RM-FP-001 -- re-uses the trusted f64-to-binary16
// conversion for the rare out-of-range results.
#[cold]
fn round_out_of_range(t: f64) -> Acc {
    Acc::from_bits(from_f64(t, Round::NearestEven))
}

// modelcheck-allow: RM-FP-001 -- constant f64 infinities.
#[inline]
fn inf_acc(sign: bool) -> Acc {
    // Round-to-nearest-even overflows to infinity (never saturates).
    Acc {
        v: if sign {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        },
    }
}

/// Fallback for special values and directed rounding modes: one scalar
/// softfloat `fma` on the packed encodings. This is the exact pre-kernel
/// code path, so every NaN / infinity / signed-zero rule and every
/// rounding mode agrees by construction.
#[cold]
fn fma_acc_slow(a: Operand, b: Operand, acc: Acc, mode: Round) -> Acc {
    Acc::from_bits(crate::arith::fma(a.bits, b.bits, acc.to_bits(), mode))
}

/// One reduction step for a whole row of accumulators:
/// `acc[j] = a * w[j] + acc[j]` for every `j`.
///
/// This is the GEMM inner loop shape: one X element (classified once) is
/// broadcast against a contiguous row of pre-classified W operands. The
/// per-element FMA order of each accumulator chain is untouched — the row
/// form only reorders *between* independent output elements.
#[inline]
pub fn fma_row(a: Operand, w: &[Operand], acc: &mut [Acc], mode: Round) {
    debug_assert_eq!(w.len(), acc.len());
    for (acc, &b) in acc.iter_mut().zip(w.iter()) {
        *acc = fma_acc(a, b, *acc, mode);
    }
}

/// An operand matrix staged in structure-of-arrays form: the exact `f64`
/// widening of every element for the vector fast path, plus the original
/// packed encodings for the scalar fallback.
///
/// Built once per matrix with [`Staged::from_bits_iter`]; consumed by
/// [`fma_row_staged`], which reads a contiguous row slice per reduction
/// step. Unlike [`Operand`] rows, the value lane is a flat `f64` array —
/// stride 8, no tags interleaved — which is what lets the compiler
/// vectorise the row kernel.
// modelcheck-allow: RM-FP-001 -- the f64 lane holds exact (lossless)
// widenings of the binary16 elements; see the module docs for the
// bit-exactness argument and the differential locks.
#[derive(Debug, Clone)]
pub struct Staged {
    vals: Vec<f64>,
    bits: Vec<u16>,
}

impl Staged {
    /// Stages a matrix from its packed binary16 encodings.
    pub fn from_bits_iter(it: impl Iterator<Item = u16>) -> Staged {
        let bits: Vec<u16> = it.collect();
        Staged {
            vals: bits.iter().map(|&b| widen(b)).collect(),
            bits,
        }
    }

    /// Number of staged elements.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }
}

/// One broadcast reduction step over a whole row of accumulators with
/// staged operands: `acc[j] = x[xi] * w[w0 + j] + acc[j]`, each lane
/// rounded once under `mode` — bit-for-bit `arith::fma` per lane, exactly
/// like [`fma_row`].
///
/// The round-to-nearest-even common case runs a branchless two-pass
/// vector kernel over the flat `f64` lanes; any lane whose result leaves
/// the binary16 normal range — which includes every special operand or
/// accumulator, since infinities and NaNs surface as an all-ones `f64`
/// exponent in the sum — reverts the whole row to the scalar
/// [`fma_acc`] path on the packed encodings.
#[inline]
pub fn fma_row_staged(x: &Staged, xi: usize, w: &Staged, w0: usize, acc: &mut [Acc], mode: Round) {
    if !matches!(mode, Round::NearestEven) {
        fma_row_slow(x, xi, w, w0, acc, mode);
        return;
    }
    let a = x.vals[xi];
    let n = acc.len();
    let mut j = 0;
    while j < n {
        let c = CHUNK.min(n - j);
        if !fma_chunk_fast(a, &w.vals[w0 + j..w0 + j + c], &mut acc[j..j + c]) {
            fma_row_slow(x, xi, w, w0 + j, &mut acc[j..j + c], mode);
        }
        j += c;
    }
}

/// Scalar redo of a (sub)row on the packed encodings: the pre-kernel code
/// path, handling every special value and rounding mode.
#[cold]
fn fma_row_slow(x: &Staged, xi: usize, w: &Staged, w0: usize, acc: &mut [Acc], mode: Round) {
    let a = Operand::from_bits(x.bits[xi]);
    let wb = &w.bits[w0..w0 + acc.len()];
    for (c, &b) in acc.iter_mut().zip(wb.iter()) {
        *c = fma_acc(a, Operand::from_bits(b), *c, mode);
    }
}

/// Maximum lanes per vector-kernel chunk: bounds the stack undo buffer
/// and the blast radius of a scalar redo.
const CHUNK: usize = 32;

/// Branchless vector core of [`fma_row_staged`]: attempts one chunk of at
/// most [`CHUNK`] lanes on the `f64` fast path, restoring `acc` untouched
/// and returning `false` if *any* lane falls outside the binary16
/// normal-result range.
///
/// Every lane is verified as it is computed: the sum's biased exponent
/// must sit in the binary16 normal window `[1009, 1038]` before rounding
/// and at most `1038` after the rounding carry. Zero, subnormal and
/// overflowing results fail the window, and so does every infinity or NaN
/// in any operand or accumulator (their sums carry the all-ones
/// exponent), which is why the loop needs no classification tags. The
/// loop is straight-line arithmetic over stride-8 lanes, which the
/// compiler vectorises; original accumulator values are spilled to a
/// stack buffer so a failed chunk unwinds exactly.
// modelcheck-allow: RM-FP-001 -- f64 vector fast path dispatcher; see
// `fma_chunk_fast_portable` for the bit-exactness argument.
#[inline]
fn fma_chunk_fast(a: f64, w: &[f64], acc: &mut [Acc]) -> bool {
    // The portable loop is straight-line IEEE f64 arithmetic and integer
    // bit manipulation, so recompiling it with wider vector units changes
    // which instructions execute but not a single result bit. The x86-64
    // baseline (SSE2) lacks the 64-bit vector compares the range check
    // needs, so the loop only vectorises when AVX2 is known available —
    // detected once at runtime, skipped under Miri (which interprets the
    // portable path).
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 availability is verified by the runtime detection
        // above; the function body is the safe portable loop, merely
        // compiled with the wider instruction set enabled.
        return unsafe { fma_chunk_fast_avx2(a, w, acc) };
    }
    fma_chunk_fast_portable(a, w, acc)
}

/// The portable chunk loop recompiled with AVX2 codegen enabled, so the
/// compiler auto-vectorises it four `f64` lanes wide.
// modelcheck-allow: RM-FP-001 -- identical safe code to
// `fma_chunk_fast_portable`, only the enabled instruction set differs.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[target_feature(enable = "avx2")]
unsafe fn fma_chunk_fast_avx2(a: f64, w: &[f64], acc: &mut [Acc]) -> bool {
    fma_chunk_fast_portable(a, w, acc)
}

// modelcheck-allow: RM-FP-001 -- f64 vector fast path: exact 22-bit
// products, one hardware rounding per lane, innocuous double rounding to
// binary16 (module docs); locked lane-for-lane against `arith::fma` by
// the debug assertion below and the kernel differential tests.
#[inline(always)]
fn fma_chunk_fast_portable(a: f64, w: &[f64], acc: &mut [Acc]) -> bool {
    const HALF_M1: u64 = (1u64 << 41) - 1;
    const TRUNC: u64 = !((1u64 << 42) - 1);
    debug_assert!(w.len() == acc.len() && acc.len() <= CHUNK);
    let mut saved = [0.0f64; CHUNK];
    let mut ok = true;
    for ((c, &b), s) in acc.iter_mut().zip(w.iter()).zip(saved.iter_mut()) {
        *s = c.v;
        let tb = (a * b + c.v).to_bits();
        let pre = ((tb >> 52) & 0x7FF).wrapping_sub(1009);
        let rb = tb + ((tb >> 42) & 1) + HALF_M1;
        // Bitwise `&`, not `&&`: keeps the check branch-free so the loop
        // stays straight-line vector code.
        ok &= (pre <= 29) & ((rb >> 52) & 0x7FF <= 1038);
        #[cfg(debug_assertions)]
        if pre <= 29 && (rb >> 52) & 0x7FF <= 1038 {
            debug_assert_eq!(
                narrow(f64::from_bits(rb & TRUNC)),
                crate::arith::fma(narrow(a), narrow(b), narrow(c.v), Round::NearestEven),
                "vector lane drifted from scalar fma: a={a} b={b} c={}",
                c.v,
            );
        }
        c.v = f64::from_bits(rb & TRUNC);
    }
    if !ok {
        // Rare unwind: put the chunk back exactly as it was so the caller
        // can redo it on the scalar path.
        for (c, &s) in acc.iter_mut().zip(saved.iter()) {
            c.v = s;
        }
    }
    ok
}

/// Full dot-product fold: `init + sum_i x[i] * w[i]`, accumulating through
/// one FP16 rounding per step in index order — exactly
/// `fold(fma)` on the packed encodings.
pub fn dot_acc(x: &[Operand], w: &[Operand], init: Acc, mode: Round) -> Acc {
    debug_assert_eq!(x.len(), w.len());
    let mut acc = init;
    for (&a, &b) in x.iter().zip(w.iter()) {
        acc = fma_acc(a, b, acc, mode);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::fma;
    use crate::{CANONICAL_QNAN, F16};

    fn step(a: u16, b: u16, c: u16, mode: Round) -> u16 {
        fma_acc(
            Operand::from_bits(a),
            Operand::from_bits(b),
            Acc::from_bits(c),
            mode,
        )
        .to_bits()
    }

    #[test]
    fn acc_round_trips_every_non_nan_pattern() {
        for bits in 0u16..=0xFFFF {
            let acc = Acc::from_bits(bits);
            if F16::from_bits(bits).is_nan() {
                assert_eq!(acc.to_bits(), CANONICAL_QNAN);
            } else {
                assert_eq!(acc.to_bits(), bits, "bits={bits:#06x}");
            }
        }
    }

    #[test]
    fn matches_scalar_fma_on_directed_specials() {
        let specials = [
            0x0000u16, 0x8000, 0x3C00, 0xBC00, 0x0001, 0x8001, 0x03FF, 0x0400, 0x7BFF, 0xFBFF,
            0x7C00, 0xFC00, 0x7E00, 0x7C01, 0x3C01, 0x4000,
        ];
        for &a in &specials {
            for &b in &specials {
                for &c in &specials {
                    for mode in Round::ALL {
                        assert_eq!(
                            step(a, b, c, mode),
                            fma(a, b, c, mode),
                            "a={a:#06x} b={b:#06x} c={c:#06x} mode={mode:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chained_accumulation_matches_fold_of_fma() {
        // A long alternating-sign chain with cancellation, kept unpacked
        // throughout, must match feeding every intermediate through bits.
        let xs: Vec<u16> = (0..64u16).map(|i| 0x3C00 + (i * 37) % 512).collect();
        let ws: Vec<u16> = (0..64u16)
            .map(|i| (0xBC00 + (i * 91) % 512) ^ ((i & 1) << 15))
            .collect();
        for mode in Round::ALL {
            let xo: Vec<Operand> = xs.iter().map(|&v| Operand::from_bits(v)).collect();
            let wo: Vec<Operand> = ws.iter().map(|&v| Operand::from_bits(v)).collect();
            let fast = dot_acc(&xo, &wo, Acc::ZERO, mode).to_bits();
            let mut slow = 0u16;
            for (&a, &b) in xs.iter().zip(ws.iter()) {
                slow = fma(a, b, slow, mode);
            }
            assert_eq!(fast, slow, "mode={mode:?}");
        }
    }

    #[test]
    fn staged_rows_match_scalar_fma_lane_for_lane() {
        // Mixed rows: normals, zeros, subnormals, infinities, NaNs and
        // near-boundary exponents, walked as repeated broadcast steps with
        // every accumulator chain checked against fold-of-`fma`.
        let pool = [
            0x3C00u16, 0xBC00, 0x0000, 0x8000, 0x0001, 0x83FF, 0x0400, 0x7BFF, 0xFBFF, 0x7C00,
            0xFC00, 0x7E00, 0x3C01, 0x4000, 0x1400, 0x2E66,
        ];
        let n = 24;
        let k = 16;
        let xs: Vec<u16> = (0..n).map(|i| pool[(i * 7 + 3) % pool.len()]).collect();
        let ws: Vec<u16> = (0..n * k).map(|i| pool[(i * 5 + 1) % pool.len()]).collect();
        let x = Staged::from_bits_iter(xs.iter().copied());
        let w = Staged::from_bits_iter(ws.iter().copied());
        assert_eq!((x.len(), w.len()), (n, n * k));
        assert!(!x.is_empty());
        for mode in Round::ALL {
            let mut acc = vec![Acc::ZERO; k];
            let mut slow = vec![0u16; k];
            for l in 0..n {
                fma_row_staged(&x, l, &w, l * k, &mut acc, mode);
                for (j, s) in slow.iter_mut().enumerate() {
                    *s = fma(xs[l], ws[l * k + j], *s, mode);
                }
            }
            let got: Vec<u16> = acc.iter().map(|a| a.to_bits()).collect();
            assert_eq!(got, slow, "mode={mode:?}");
        }
    }

    #[test]
    fn staged_rows_handle_range_edges() {
        // Rows engineered to straddle the fast path's exponent window:
        // overflow to infinity, cancellation to zero, gradual underflow.
        let cases: [(&[u16], &[u16], u16); 3] = [
            // 60000 * 2 overflows binary16 -> +inf.
            (&[0x7BFF], &[0x4000], 0x0000),
            // 1.0 * 1.0 + (-1.0) cancels to exactly +0.
            (&[0x3C00], &[0x3C00], 0xBC00),
            // min_subnormal * 0.5 underflows onto the subnormal grid.
            (&[0x0001], &[0x3800], 0x0000),
        ];
        for (xs, ws, y0) in cases {
            let x = Staged::from_bits_iter(xs.iter().copied());
            let w = Staged::from_bits_iter(ws.iter().copied());
            let mut acc = [Acc::from_bits(y0)];
            fma_row_staged(&x, 0, &w, 0, &mut acc, Round::NearestEven);
            assert_eq!(
                acc[0].to_bits(),
                fma(xs[0], ws[0], y0, Round::NearestEven),
                "xs={xs:#06x?} ws={ws:#06x?} y0={y0:#06x}"
            );
        }
    }

    #[test]
    fn fma_row_applies_one_step_per_column() {
        let a = Operand::from_bits(0x4000); // 2.0
        let w: Vec<Operand> = [0x3C00u16, 0xBC00, 0x0000, 0x7C00]
            .iter()
            .map(|&v| Operand::from_bits(v))
            .collect();
        let mut acc = vec![Acc::from_bits(0x3800); 4]; // 0.5
        fma_row(a, &w, &mut acc, Round::NearestEven);
        let got: Vec<u16> = acc.iter().map(|a| a.to_bits()).collect();
        let want: Vec<u16> = [0x3C00u16, 0xBC00, 0x0000, 0x7C00]
            .iter()
            .map(|&b| fma(0x4000, b, 0x3800, Round::NearestEven))
            .collect();
        assert_eq!(got, want);
    }
}
