//! The [`F16`] storage type: IEEE 754 binary16.

use std::cmp::Ordering;
use std::fmt;
use std::num::ParseFloatError;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

use crate::arith;
use crate::round::Round;
use crate::CANONICAL_QNAN;

/// An IEEE 754 `binary16` ("half precision", FP16) floating-point number.
///
/// `F16` stores the raw 16-bit pattern and performs all arithmetic through
/// the exact softfloat in [`crate::arith`], so results are bit-identical to
/// IEEE-compliant FP16 hardware such as the FPnew FMA units inside RedMulE.
///
/// The `std::ops` operators round to nearest-even (the accelerator's mode);
/// explicit-mode variants (`add_round`, `mul_round`, …) expose the full
/// RISC-V rounding-mode set.
///
/// # Example
///
/// ```
/// use redmule_fp16::F16;
///
/// let x = F16::from_f32(0.1);
/// // binary16 has ~3 decimal digits of precision:
/// assert!((x.to_f32() - 0.1).abs() < 1e-4);
/// assert_eq!(F16::from_f32(2.0) * F16::from_f32(3.0), F16::from_f32(6.0));
/// ```
#[derive(Clone, Copy, Default)]
pub struct F16(u16);

/// Classification of an [`F16`] value, mirroring [`std::num::FpCategory`].
///
/// # Example
///
/// ```
/// use redmule_fp16::{F16, FpCategory16};
/// assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.classify(), FpCategory16::Subnormal);
/// assert_eq!(F16::INFINITY.classify(), FpCategory16::Infinite);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpCategory16 {
    /// Positive or negative zero.
    Zero,
    /// A denormalised value (no hidden bit, exponent field zero).
    Subnormal,
    /// A regular normalised value.
    Normal,
    /// Positive or negative infinity.
    Infinite,
    /// Not a number.
    Nan,
}

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Negative one.
    pub const NEG_ONE: F16 = F16(0xBC00);
    /// Two.
    pub const TWO: F16 = F16(0x4000);
    /// One half.
    pub const HALF: F16 = F16(0x3800);
    /// Largest finite value, `65504.0`.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest finite value, `-65504.0`.
    pub const MIN: F16 = F16(0xFBFF);
    /// Smallest positive normal value, `2^-14`.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, `2^-24`.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon, `2^-10`.
    pub const EPSILON: F16 = F16(0x1400);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// The canonical quiet NaN (`0x7E00`), as produced by FPnew.
    pub const NAN: F16 = F16(CANONICAL_QNAN);

    /// Creates an `F16` from its raw bit pattern.
    ///
    /// # Example
    ///
    /// ```
    /// use redmule_fp16::F16;
    /// assert_eq!(F16::from_bits(0x3C00), F16::ONE);
    /// ```
    #[inline]
    pub const fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    ///
    /// # Example
    ///
    /// ```
    /// use redmule_fp16::F16;
    /// assert_eq!(F16::ONE.to_bits(), 0x3C00);
    /// ```
    #[inline]
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    // modelcheck-allow: RM-FP-001 -- host-float conversion boundary:
    // delegates to the bit-pattern converter in `arith`.
    #[inline]
    pub fn from_f32(v: f32) -> F16 {
        F16(arith::from_f32(v, Round::NearestEven))
    }

    /// Converts from `f32` in an explicit rounding mode.
    // modelcheck-allow: RM-FP-001 -- host-float conversion boundary:
    // delegates to the bit-pattern converter in `arith`.
    #[inline]
    pub fn from_f32_round(v: f32, mode: Round) -> F16 {
        F16(arith::from_f32(v, mode))
    }

    /// Converts from `f64` with round-to-nearest-even.
    // modelcheck-allow: RM-FP-001 -- host-float conversion boundary:
    // delegates to the bit-pattern converter in `arith`.
    #[inline]
    pub fn from_f64(v: f64) -> F16 {
        F16(arith::from_f64(v, Round::NearestEven))
    }

    /// Converts from `f64` in an explicit rounding mode.
    // modelcheck-allow: RM-FP-001 -- host-float conversion boundary:
    // delegates to the bit-pattern converter in `arith`.
    #[inline]
    pub fn from_f64_round(v: f64, mode: Round) -> F16 {
        F16(arith::from_f64(v, mode))
    }

    /// Converts to `f32`. This widening conversion is always exact.
    // modelcheck-allow: RM-FP-001 -- host-float conversion boundary: exact
    // binary16 -> f32 widening via `arith::to_f32`.
    #[inline]
    pub fn to_f32(self) -> f32 {
        arith::to_f32(self.0)
    }

    /// Converts to `f64`. This widening conversion is always exact.
    // modelcheck-allow: RM-FP-001 -- host-float conversion boundary: exact
    // binary16 -> f64 widening via `arith::to_f64`.
    #[inline]
    pub fn to_f64(self) -> f64 {
        arith::to_f64(self.0)
    }

    /// Fused multiply-add, `self * b + c`, with a single rounding
    /// (round-to-nearest-even).
    ///
    /// This is the primitive each of RedMulE's FMA units executes per cycle.
    ///
    /// # Example
    ///
    /// ```
    /// use redmule_fp16::F16;
    /// let acc = F16::from_f32(10.0).mul_add(F16::from_f32(0.5), F16::ONE);
    /// assert_eq!(acc, F16::from_f32(6.0));
    /// ```
    #[inline]
    pub fn mul_add(self, b: F16, c: F16) -> F16 {
        F16(arith::fma(self.0, b.0, c.0, Round::NearestEven))
    }

    /// Fused multiply-add in an explicit rounding mode.
    #[inline]
    pub fn mul_add_round(self, b: F16, c: F16, mode: Round) -> F16 {
        F16(arith::fma(self.0, b.0, c.0, mode))
    }

    /// Addition in an explicit rounding mode.
    #[inline]
    pub fn add_round(self, rhs: F16, mode: Round) -> F16 {
        F16(arith::add(self.0, rhs.0, mode))
    }

    /// Subtraction in an explicit rounding mode.
    #[inline]
    pub fn sub_round(self, rhs: F16, mode: Round) -> F16 {
        F16(arith::sub(self.0, rhs.0, mode))
    }

    /// Multiplication in an explicit rounding mode.
    #[inline]
    pub fn mul_round(self, rhs: F16, mode: Round) -> F16 {
        F16(arith::mul(self.0, rhs.0, mode))
    }

    /// Division in an explicit rounding mode.
    #[inline]
    pub fn div_round(self, rhs: F16, mode: Round) -> F16 {
        F16(arith::div(self.0, rhs.0, mode))
    }

    /// Correctly rounded square root (round-to-nearest-even).
    ///
    /// # Example
    ///
    /// ```
    /// use redmule_fp16::F16;
    /// assert_eq!(F16::from_f32(9.0).sqrt(), F16::from_f32(3.0));
    /// ```
    #[inline]
    pub fn sqrt(self) -> F16 {
        F16(arith::sqrt(self.0, Round::NearestEven))
    }

    /// Square root in an explicit rounding mode.
    #[inline]
    pub fn sqrt_round(self, mode: Round) -> F16 {
        F16(arith::sqrt(self.0, mode))
    }

    /// `true` if this value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// `true` if this value is positive or negative infinity.
    #[inline]
    pub fn is_infinite(self) -> bool {
        (self.0 & 0x7FFF) == 0x7C00
    }

    /// `true` if this value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & 0x7C00) != 0x7C00
    }

    /// `true` if this value is positive or negative zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        (self.0 & 0x7FFF) == 0
    }

    /// `true` if this value is subnormal (denormalised).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// `true` if this value is a normal number (not zero, subnormal,
    /// infinite or NaN).
    #[inline]
    pub fn is_normal(self) -> bool {
        let exp = self.0 & 0x7C00;
        exp != 0 && exp != 0x7C00
    }

    /// `true` if the sign bit is set (including `-0` and negative NaN
    /// patterns).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// `true` if the sign bit is clear.
    #[inline]
    pub fn is_sign_positive(self) -> bool {
        !self.is_sign_negative()
    }

    /// Classifies the value.
    pub fn classify(self) -> FpCategory16 {
        let exp = self.0 & 0x7C00;
        let frac = self.0 & 0x03FF;
        match (exp, frac) {
            (0x7C00, 0) => FpCategory16::Infinite,
            (0x7C00, _) => FpCategory16::Nan,
            (0, 0) => FpCategory16::Zero,
            (0, _) => FpCategory16::Subnormal,
            _ => FpCategory16::Normal,
        }
    }

    /// Absolute value (clears the sign bit; a NaN stays NaN).
    #[inline]
    pub fn abs(self) -> F16 {
        F16(self.0 & 0x7FFF)
    }

    /// Returns a value with the magnitude of `self` and the sign of `sign`.
    #[inline]
    pub fn copysign(self, sign: F16) -> F16 {
        F16((self.0 & 0x7FFF) | (sign.0 & 0x8000))
    }

    /// Returns `1.0` or `-1.0` by sign, or NaN for NaN input. Zero returns
    /// a signed one, matching `f32::signum`.
    pub fn signum(self) -> F16 {
        if self.is_nan() {
            F16::NAN
        } else if self.is_sign_negative() {
            F16::NEG_ONE
        } else {
            F16::ONE
        }
    }

    /// IEEE `minNum`: the smaller operand; a single NaN loses.
    pub fn min(self, other: F16) -> F16 {
        match (self.is_nan(), other.is_nan()) {
            (true, true) => F16::NAN,
            (true, false) => other,
            (false, true) => self,
            (false, false) => {
                // -0 < +0 for min/max purposes.
                if self.total_key() <= other.total_key() {
                    self
                } else {
                    other
                }
            }
        }
    }

    /// IEEE `maxNum`: the larger operand; a single NaN loses.
    pub fn max(self, other: F16) -> F16 {
        match (self.is_nan(), other.is_nan()) {
            (true, true) => F16::NAN,
            (true, false) => other,
            (false, true) => self,
            (false, false) => {
                if self.total_key() >= other.total_key() {
                    self
                } else {
                    other
                }
            }
        }
    }

    /// Clamps `self` into `[lo, hi]` (NaN propagates).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn clamp(self, lo: F16, hi: F16) -> F16 {
        assert!(
            !lo.is_nan() && !hi.is_nan() && lo.total_key() <= hi.total_key(),
            "clamp requires ordered, non-NaN bounds"
        );
        if self.is_nan() {
            F16::NAN
        } else if self.total_key() < lo.total_key() {
            lo
        } else if self.total_key() > hi.total_key() {
            hi
        } else {
            self
        }
    }

    /// Reciprocal, `1.0 / self`, round-to-nearest-even.
    #[inline]
    pub fn recip(self) -> F16 {
        F16::ONE / self
    }

    /// IEEE 754 `totalOrder` comparison (like [`f32::total_cmp`]).
    ///
    /// # Example
    ///
    /// ```
    /// use redmule_fp16::F16;
    /// use std::cmp::Ordering;
    /// assert_eq!(F16::NEG_ZERO.total_cmp(F16::ZERO), Ordering::Less);
    /// ```
    pub fn total_cmp(self, other: F16) -> Ordering {
        self.total_key().cmp(&other.total_key())
    }

    /// Monotone integer key implementing the IEEE total order.
    fn total_key(self) -> i32 {
        let bits = self.0 as i32;
        if bits & 0x8000 != 0 {
            // Negative range reversed and mapped strictly below zero, so
            // -0 (0x8000) becomes -1 and negative NaNs sort lowest.
            -(bits & 0x7FFF) - 1
        } else {
            bits
        }
    }

    /// The next representable value towards `+inf` (saturates at `+inf`;
    /// NaN propagates). Useful for ulp-level test oracles.
    pub fn next_up(self) -> F16 {
        if self.is_nan() || self == F16::INFINITY {
            return self;
        }
        if self == F16::NEG_ZERO || self == F16::ZERO {
            return F16::MIN_POSITIVE_SUBNORMAL;
        }
        if self.is_sign_negative() {
            F16(self.0 - 1)
        } else {
            F16(self.0 + 1)
        }
    }

    /// The next representable value towards `-inf` (saturates at `-inf`;
    /// NaN propagates).
    pub fn next_down(self) -> F16 {
        if self.is_nan() || self == F16::NEG_INFINITY {
            return self;
        }
        if self == F16::NEG_ZERO || self == F16::ZERO {
            return F16(0x8001);
        }
        if self.is_sign_negative() {
            F16(self.0 + 1)
        } else {
            F16(self.0 - 1)
        }
    }
}

impl PartialEq for F16 {
    /// IEEE equality: NaN compares unequal to everything (including itself)
    /// and `+0 == -0`.
    fn eq(&self, other: &F16) -> bool {
        if self.is_nan() || other.is_nan() {
            false
        } else if self.is_zero() && other.is_zero() {
            true
        } else {
            self.0 == other.0
        }
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &F16) -> Option<Ordering> {
        if self.is_nan() || other.is_nan() {
            None
        } else if self.is_zero() && other.is_zero() {
            Some(Ordering::Equal)
        } else {
            Some(self.total_key().cmp(&other.total_key()))
        }
    }
}

impl Neg for F16 {
    type Output = F16;
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $func:path) => {
        impl $trait for F16 {
            type Output = F16;
            fn $method(self, rhs: F16) -> F16 {
                F16($func(self.0, rhs.0, Round::NearestEven))
            }
        }
        impl $assign_trait for F16 {
            fn $assign_method(&mut self, rhs: F16) {
                *self = $trait::$method(*self, rhs);
            }
        }
    };
}

impl_binop!(Add, add, AddAssign, add_assign, arith::add);
impl_binop!(Sub, sub, SubAssign, sub_assign, arith::sub);
impl_binop!(Mul, mul, MulAssign, mul_assign, arith::mul);
impl_binop!(Div, div, DivAssign, div_assign, arith::div);

// modelcheck-allow: RM-FP-001 -- host-float conversion boundary: exact
// widening, delegates to `to_f32`.
impl From<F16> for f32 {
    fn from(v: F16) -> f32 {
        v.to_f32()
    }
}

// modelcheck-allow: RM-FP-001 -- host-float conversion boundary: exact
// widening, delegates to `to_f64`.
impl From<F16> for f64 {
    fn from(v: F16) -> f64 {
        v.to_f64()
    }
}

// modelcheck-allow: RM-FP-001 -- host-float conversion boundary: every i8 is
// exactly representable in f32 and in binary16; one exact hop each.
impl From<i8> for F16 {
    /// Lossless: every `i8` is exactly representable in binary16.
    fn from(v: i8) -> F16 {
        F16::from_f32(f32::from(v))
    }
}

// modelcheck-allow: RM-FP-001 -- host-float conversion boundary: every u8 is
// exactly representable in f32 and in binary16; one exact hop each.
impl From<u8> for F16 {
    /// Lossless: every `u8` is exactly representable in binary16.
    fn from(v: u8) -> F16 {
        F16::from_f32(f32::from(v))
    }
}

// modelcheck-allow: RM-FP-001 -- host-float conversion boundary: parses via
// f64 and performs a single correct rounding to binary16.
impl FromStr for F16 {
    type Err = ParseFloatError;

    /// Parses via `f64` and rounds once to binary16.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ParseFloatError`] for syntactically invalid
    /// input.
    fn from_str(s: &str) -> Result<F16, ParseFloatError> {
        Ok(F16::from_f64(s.parse::<f64>()?))
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({}; {:#06x})", self.to_f32(), self.0)
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f32(), f)
    }
}

impl fmt::LowerHex for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::TWO.to_f32(), 2.0);
        assert_eq!(F16::HALF.to_f32(), 0.5);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN.to_f32(), -65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f64(), 2.0f64.powi(-14));
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f64(), 2.0f64.powi(-24));
        assert_eq!(F16::EPSILON.to_f64(), 2.0f64.powi(-10));
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
    }

    #[test]
    fn ieee_equality_semantics() {
        assert_ne!(F16::NAN, F16::NAN);
        assert_eq!(F16::ZERO, F16::NEG_ZERO);
        assert_eq!(F16::ONE, F16::ONE);
        assert_ne!(F16::ONE, F16::TWO);
    }

    #[test]
    fn partial_ord_semantics() {
        assert!(F16::ONE < F16::TWO);
        assert!(F16::NEG_ONE < F16::ONE);
        assert!(F16::NEG_INFINITY < F16::MIN);
        assert!(F16::MAX < F16::INFINITY);
        assert_eq!(F16::NAN.partial_cmp(&F16::ONE), None);
        assert_eq!(F16::ZERO.partial_cmp(&F16::NEG_ZERO), Some(Ordering::Equal));
    }

    #[test]
    fn total_cmp_orders_zeros_and_nan() {
        assert_eq!(F16::NEG_ZERO.total_cmp(F16::ZERO), Ordering::Less);
        assert_eq!(F16::NAN.total_cmp(F16::INFINITY), Ordering::Greater);
        assert_eq!(F16::NEG_INFINITY.total_cmp(F16::MIN), Ordering::Less);
    }

    #[test]
    fn classification() {
        assert_eq!(F16::ZERO.classify(), FpCategory16::Zero);
        assert_eq!(F16::NEG_ZERO.classify(), FpCategory16::Zero);
        assert_eq!(F16::ONE.classify(), FpCategory16::Normal);
        assert_eq!(
            F16::MIN_POSITIVE_SUBNORMAL.classify(),
            FpCategory16::Subnormal
        );
        assert_eq!(F16::INFINITY.classify(), FpCategory16::Infinite);
        assert_eq!(F16::NAN.classify(), FpCategory16::Nan);
        assert!(F16::MIN_POSITIVE_SUBNORMAL.is_subnormal());
        assert!(!F16::MIN_POSITIVE.is_subnormal());
        assert!(F16::MIN_POSITIVE.is_normal());
    }

    #[test]
    fn sign_helpers() {
        assert!(F16::NEG_ZERO.is_sign_negative());
        assert!(F16::ZERO.is_sign_positive());
        assert_eq!((-F16::ONE).to_f32(), -1.0);
        assert_eq!(F16::NEG_ONE.abs(), F16::ONE);
        assert_eq!(F16::ONE.copysign(F16::NEG_ZERO), F16::NEG_ONE);
        assert_eq!(F16::from_f32(-5.0).signum(), F16::NEG_ONE);
        assert!(F16::NAN.signum().is_nan());
    }

    #[test]
    fn min_max_nan_loses() {
        let a = F16::from_f32(3.0);
        assert_eq!(a.min(F16::NAN), a);
        assert_eq!(F16::NAN.max(a), a);
        assert!(F16::NAN.min(F16::NAN).is_nan());
        assert_eq!(F16::ONE.min(F16::TWO), F16::ONE);
        assert_eq!(F16::ONE.max(F16::TWO), F16::TWO);
        // min(-0, +0) must pick -0 by bit pattern.
        assert_eq!(F16::ZERO.min(F16::NEG_ZERO).to_bits(), 0x8000);
        assert_eq!(F16::NEG_ZERO.max(F16::ZERO).to_bits(), 0x0000);
    }

    #[test]
    fn clamp_behaviour() {
        let lo = F16::from_f32(-1.0);
        let hi = F16::ONE;
        assert_eq!(F16::from_f32(5.0).clamp(lo, hi), hi);
        assert_eq!(F16::from_f32(-5.0).clamp(lo, hi), lo);
        assert_eq!(F16::HALF.clamp(lo, hi), F16::HALF);
        assert!(F16::NAN.clamp(lo, hi).is_nan());
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn clamp_panics_on_inverted_bounds() {
        let _ = F16::ONE.clamp(F16::TWO, F16::ONE);
    }

    #[test]
    fn next_up_down_walk_the_lattice() {
        assert_eq!(F16::ZERO.next_up(), F16::MIN_POSITIVE_SUBNORMAL);
        assert_eq!(F16::ZERO.next_down().to_bits(), 0x8001);
        assert_eq!(F16::MAX.next_up(), F16::INFINITY);
        assert_eq!(F16::INFINITY.next_up(), F16::INFINITY);
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.next_down(), F16::ZERO);
        let x = F16::ONE;
        assert!(x.next_up() > x);
        assert!(x.next_down() < x);
        assert_eq!(x.next_up().next_down(), x);
    }

    #[test]
    fn operators_round_to_nearest_even() {
        assert_eq!(F16::ONE + F16::ONE, F16::TWO);
        assert_eq!(F16::TWO - F16::ONE, F16::ONE);
        assert_eq!(F16::TWO * F16::HALF, F16::ONE);
        assert_eq!(F16::ONE / F16::TWO, F16::HALF);
        let mut acc = F16::ZERO;
        acc += F16::ONE;
        acc *= F16::TWO;
        acc -= F16::HALF;
        acc /= F16::HALF;
        assert_eq!(acc.to_f32(), 3.0);
    }

    #[test]
    fn parse_and_display() {
        let v: F16 = "1.5".parse().expect("valid float literal");
        assert_eq!(v, F16::from_f32(1.5));
        assert!("xyz".parse::<F16>().is_err());
        assert_eq!(F16::from_f32(1.5).to_string(), "1.5");
        assert_eq!(format!("{:#06x}", F16::ONE), "0x3c00");
        assert_eq!(format!("{:b}", F16::TWO), "100000000000000");
    }

    #[test]
    fn lossless_integer_conversions() {
        for v in i8::MIN..=i8::MAX {
            assert_eq!(F16::from(v).to_f32(), f32::from(v));
        }
        for v in u8::MIN..=u8::MAX {
            assert_eq!(F16::from(v).to_f32(), f32::from(v));
        }
    }

    #[test]
    fn recip_and_sqrt() {
        assert_eq!(F16::TWO.recip(), F16::HALF);
        assert_eq!(F16::from_f32(16.0).sqrt(), F16::from_f32(4.0));
    }

    #[test]
    fn debug_is_never_empty() {
        assert!(!format!("{:?}", F16::NAN).is_empty());
        assert_eq!(format!("{:?}", F16::ONE), "F16(1; 0x3c00)");
    }
}
