//! Correctly rounded binary16 arithmetic on raw bit patterns.
//!
//! Everything in this module operates on `u16` IEEE 754 binary16 bit
//! patterns and performs **exact integer arithmetic** followed by a single
//! rounding step, exactly like a hardware FPU datapath. The fused
//! multiply-add ([`fma`]) is the operation RedMulE's datapath is made of; the
//! other operations complete the FPnew-equivalent operation set.
//!
//! The functions here are the free-function layer; prefer the methods on
//! [`F16`](crate::F16) (e.g. [`F16::mul_add`](crate::F16::mul_add)) in
//! application code.

use crate::round::Round;
use crate::CANONICAL_QNAN;

/// Number of fraction bits in binary16.
pub const FRAC_BITS: u32 = 10;
/// Exponent bias of binary16.
pub const EXP_BIAS: i32 = 15;
/// Maximum unbiased exponent of a finite binary16 value.
pub const EXP_MAX: i32 = 15;
/// Minimum unbiased exponent of a *normal* binary16 value.
pub const EXP_MIN: i32 = -14;

const SIGN_MASK: u16 = 0x8000;
const EXP_MASK: u16 = 0x7C00;
const FRAC_MASK: u16 = 0x03FF;
const HIDDEN_BIT: u32 = 1 << FRAC_BITS;

/// A finite, non-zero binary16 value decomposed as `(-1)^sign * sig * 2^q`
/// with `sig` in `[2^10, 2^11)` (i.e. normalised).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Unpacked {
    pub sign: bool,
    /// Exponent of the least significant bit of `sig`.
    pub q: i32,
    /// Normalised significand, `2^10 <= sig < 2^11`.
    pub sig: u32,
}

/// Coarse class of a raw binary16 bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Class {
    Nan,
    Inf { sign: bool },
    Zero { sign: bool },
    Finite(Unpacked),
}

/// Classifies and unpacks a raw bit pattern.
pub(crate) fn classify(bits: u16) -> Class {
    let sign = bits & SIGN_MASK != 0;
    let exp_field = (bits & EXP_MASK) >> FRAC_BITS;
    let frac = u32::from(bits & FRAC_MASK);
    match exp_field {
        0x1F => {
            if frac != 0 {
                Class::Nan
            } else {
                Class::Inf { sign }
            }
        }
        0 => {
            if frac == 0 {
                Class::Zero { sign }
            } else {
                // Subnormal: value = frac * 2^-24. Normalise.
                let shift = frac.leading_zeros() - HIDDEN_BIT.leading_zeros();
                Class::Finite(Unpacked {
                    sign,
                    q: 1 - EXP_BIAS - FRAC_BITS as i32 - shift as i32,
                    sig: frac << shift,
                })
            }
        }
        e => Class::Finite(Unpacked {
            sign,
            q: i32::from(e) - EXP_BIAS - FRAC_BITS as i32,
            sig: HIDDEN_BIT | frac,
        }),
    }
}

pub(crate) fn pack_inf(sign: bool) -> u16 {
    if sign {
        SIGN_MASK | EXP_MASK
    } else {
        EXP_MASK
    }
}

pub(crate) fn pack_zero(sign: bool) -> u16 {
    if sign {
        SIGN_MASK
    } else {
        0
    }
}

pub(crate) fn pack_max_finite(sign: bool) -> u16 {
    // 0x7BFF = 65504.0
    pack_zero(sign) | 0x7BFF
}

/// A correctly rounded binary16 value before encoding, as produced by
/// [`round_core`]: the single source of truth shared by the scalar
/// [`round_pack`] (which encodes to bits) and the batched kernel's
/// accumulator (which stays unpacked between FMA steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Rounded {
    /// `(-1)^sign * sig * 2^q`; `sig` is either normalised
    /// (`2^10 <= sig < 2^11`, `q >= -24`) or a subnormal count of `2^-24`
    /// units (`sig <= 2^10`, `q == -24`). `sig == 0` means the magnitude
    /// rounded all the way down to a (signed) zero.
    Finite { sign: bool, q: i32, sig: u32 },
    /// Magnitude above the largest finite value; resolves per mode to
    /// max-finite or infinity (see [`overflow`]).
    Overflow { sign: bool },
}

/// Rounds the exact value `(-1)^sign * mag * 2^q` (with `mag != 0`) to the
/// nearest representable binary16 under `mode`, without encoding.
///
/// This is the single rounding step shared by every operation; it implements
/// normalisation, gradual underflow into subnormals, round-up carry
/// propagation and overflow detection. Encoding (and mode-dependent overflow
/// saturation) happens in [`round_pack`] / the kernel's packers.
#[inline]
pub(crate) fn round_core(sign: bool, mag: u128, q: i32, mode: Round) -> Rounded {
    debug_assert!(mag != 0, "round_core requires a non-zero magnitude");
    let msb = 127 - mag.leading_zeros() as i32;
    let e = msb + q; // value is in [2^e, 2^(e+1))

    if e > EXP_MAX {
        return Rounded::Overflow { sign };
    }

    // Number of low bits to discard so the kept significand has its leading
    // bit at position 10 (normal) or is expressed in units of 2^-24
    // (subnormal).
    let drop = if e >= EXP_MIN {
        msb - FRAC_BITS as i32
    } else {
        -(EXP_BIAS - 1 + FRAC_BITS as i32) - q // = -24 - q
    };

    let (mut kept, round, sticky) = if drop <= 0 {
        // Exact: shift left cannot lose bits (drop >= -127 always in range).
        ((mag << (-drop) as u32) as u32, false, false)
    } else {
        let d = drop as u32;
        let kept = shr_or_zero(mag, d) as u32;
        let round = d >= 1 && (shr_or_zero(mag, d - 1) & 1) != 0;
        let sticky = if d >= 2 {
            mag & low_mask(d - 1) != 0
        } else {
            false
        };
        (kept, round, sticky)
    };

    if mode.increments(sign, kept & 1 != 0, round, sticky) {
        kept += 1;
    }

    if e >= EXP_MIN {
        let mut e = e;
        if kept == (HIDDEN_BIT << 1) {
            kept >>= 1;
            e += 1;
            if e > EXP_MAX {
                return Rounded::Overflow { sign };
            }
        }
        debug_assert!((HIDDEN_BIT..HIDDEN_BIT << 1).contains(&kept));
        Rounded::Finite {
            sign,
            q: e - FRAC_BITS as i32,
            sig: kept,
        }
    } else {
        // Subnormal result; `kept` counts units of 2^-24. If rounding carried
        // into 2^10 the value is, conveniently, exactly the minimum normal
        // number; if it rounded to 0 the result is a signed zero.
        debug_assert!(kept <= HIDDEN_BIT);
        Rounded::Finite {
            sign,
            q: -(EXP_BIAS - 1 + FRAC_BITS as i32), // -24
            sig: kept,
        }
    }
}

/// Rounds the exact value `(-1)^sign * mag * 2^q` (with `mag != 0`) to the
/// nearest representable binary16 under `mode`, producing the result bits.
pub(crate) fn round_pack(sign: bool, mag: u128, q: i32, mode: Round) -> u16 {
    match round_core(sign, mag, q, mode) {
        Rounded::Finite { sign, q, sig } => pack_finite(sign, q, sig),
        Rounded::Overflow { sign } => overflow(sign, mode),
    }
}

/// Encodes a finite `(-1)^sign * sig * 2^q` that is exactly representable
/// in binary16 (any [`Rounded::Finite`], or any value produced by
/// [`classify`]). `sig == 0` encodes the signed zero.
pub(crate) fn pack_finite(sign: bool, q: i32, sig: u32) -> u16 {
    debug_assert!(sig < HIDDEN_BIT << 1);
    if sig >= HIDDEN_BIT {
        let e = q + FRAC_BITS as i32;
        if e >= EXP_MIN {
            debug_assert!(e <= EXP_MAX);
            let exp_field = (e + EXP_BIAS) as u16;
            pack_zero(sign) | (exp_field << FRAC_BITS) | (sig as u16 & FRAC_MASK)
        } else {
            // classify-normalised subnormal: denormalise back to units of
            // 2^-24. The normalisation only shifted left, so this is exact.
            pack_zero(sign) | ((sig >> (EXP_MIN - e)) as u16)
        }
    } else {
        // Subnormal count of 2^-24 units (or zero).
        debug_assert!(sig == 0 || q == -(EXP_BIAS - 1 + FRAC_BITS as i32));
        pack_zero(sign) | sig as u16
    }
}

pub(crate) fn overflow(sign: bool, mode: Round) -> u16 {
    if mode.overflow_saturates(sign) {
        pack_max_finite(sign)
    } else {
        pack_inf(sign)
    }
}

fn shr_or_zero(v: u128, by: u32) -> u128 {
    if by >= 128 {
        0
    } else {
        v >> by
    }
}

fn low_mask(bits: u32) -> u128 {
    if bits >= 128 {
        u128::MAX
    } else {
        (1u128 << bits) - 1
    }
}

/// Fused multiply-add: computes `a * b + c` with a **single** rounding.
///
/// This is the exact operation performed by each FMA unit in RedMulE's
/// datapath every cycle. All IEEE 754 special cases are handled:
///
/// * any NaN input (or an invalid operation) produces the canonical quiet
///   NaN `0x7E00`;
/// * `0 * inf` is invalid regardless of `c`;
/// * `inf * finite + inf` of opposite signs is invalid;
/// * exact zero results take the IEEE sign (`+0`, or `-0` in round-down).
pub fn fma(a: u16, b: u16, c: u16, mode: Round) -> u16 {
    let (ca, cb, cc) = (classify(a), classify(b), classify(c));

    if matches!(ca, Class::Nan) || matches!(cb, Class::Nan) || matches!(cc, Class::Nan) {
        return CANONICAL_QNAN;
    }

    // Product sign (valid for all non-NaN inputs).
    let sa = sign_of(ca);
    let sb = sign_of(cb);
    let sp = sa ^ sb;

    // Infinity handling in the product.
    let a_inf = matches!(ca, Class::Inf { .. });
    let b_inf = matches!(cb, Class::Inf { .. });
    let a_zero = matches!(ca, Class::Zero { .. });
    let b_zero = matches!(cb, Class::Zero { .. });

    if (a_inf && b_zero) || (a_zero && b_inf) {
        return CANONICAL_QNAN; // 0 * inf
    }
    if a_inf || b_inf {
        // Product is +-inf.
        return match cc {
            Class::Inf { sign } if sign != sp => CANONICAL_QNAN,
            _ => pack_inf(sp),
        };
    }
    if let Class::Inf { sign } = cc {
        return pack_inf(sign);
    }

    // Product is finite. Compute it exactly.
    let prod = match (ca, cb) {
        (Class::Finite(ua), Class::Finite(ub)) => {
            Some((u64::from(ua.sig) * u64::from(ub.sig), ua.q + ub.q))
        }
        _ => None, // a or b is zero
    };

    match (prod, cc) {
        (None, Class::Zero { sign: sc }) => {
            // (+-0 * x) + +-0: exact zero; sign by IEEE addition rules.
            if sp == sc {
                pack_zero(sp)
            } else {
                pack_zero(mode.exact_zero_sign())
            }
        }
        (None, Class::Finite(_)) => {
            // 0 + c: result is c (re-packed verbatim).
            c
        }
        (Some((mp, qp)), Class::Zero { .. }) => round_pack(sp, u128::from(mp), qp, mode),
        (Some((mp, qp)), Class::Finite(uc)) => {
            let sc = uc.sign;
            let qc = uc.q;
            let q_min = qp.min(qc);
            // Exact signed sum in fixed point at scale 2^q_min. The largest
            // alignment span is ~58 bits against a 22-bit product, well
            // within i128.
            let vp = i128::from(mp) << (qp - q_min) as u32;
            let vc = i128::from(uc.sig) << (qc - q_min) as u32;
            let sum = sgn(sp, vp) + sgn(sc, vc);
            if sum == 0 {
                pack_zero(mode.exact_zero_sign())
            } else {
                let sign = sum < 0;
                round_pack(sign, sum.unsigned_abs(), q_min, mode)
            }
        }
        // modelcheck-allow: RM-PANIC-001 -- NaN/Inf operands are classified and
        // returned before this match; the arm is statically dead.
        (_, Class::Nan | Class::Inf { .. }) => unreachable!("handled above"),
    }
}

fn sgn(negative: bool, v: i128) -> i128 {
    if negative {
        -v
    } else {
        v
    }
}

fn sign_of(c: Class) -> bool {
    match c {
        Class::Nan => false,
        Class::Inf { sign } | Class::Zero { sign } => sign,
        Class::Finite(u) => u.sign,
    }
}

/// Correctly rounded addition `a + b`.
///
/// Implemented as `fma(a, 1.0, b)`; the FMA path is exact, so this is a true
/// single-rounding IEEE addition.
pub fn add(a: u16, b: u16, mode: Round) -> u16 {
    const ONE: u16 = 0x3C00;
    fma(a, ONE, b, mode)
}

/// Correctly rounded subtraction `a - b`.
pub fn sub(a: u16, b: u16, mode: Round) -> u16 {
    add(a, b ^ SIGN_MASK, mode)
}

/// Correctly rounded multiplication `a * b`.
///
/// Not implemented via [`fma`] with a zero addend: the addition step would
/// rewrite the sign of an exact `-0` product (`-0 + +0 = +0` in RNE), while
/// IEEE multiplication must preserve the product sign.
pub fn mul(a: u16, b: u16, mode: Round) -> u16 {
    let (ca, cb) = (classify(a), classify(b));
    if matches!(ca, Class::Nan) || matches!(cb, Class::Nan) {
        return CANONICAL_QNAN;
    }
    let sign = sign_of(ca) ^ sign_of(cb);
    match (ca, cb) {
        (Class::Inf { .. }, Class::Zero { .. }) | (Class::Zero { .. }, Class::Inf { .. }) => {
            CANONICAL_QNAN
        }
        (Class::Inf { .. }, _) | (_, Class::Inf { .. }) => pack_inf(sign),
        (Class::Zero { .. }, _) | (_, Class::Zero { .. }) => pack_zero(sign),
        (Class::Finite(ua), Class::Finite(ub)) => {
            let prod = u64::from(ua.sig) * u64::from(ub.sig);
            round_pack(sign, u128::from(prod), ua.q + ub.q, mode)
        }
        // modelcheck-allow: RM-PANIC-001 -- NaN operands are classified and
        // returned before this match; the arm is statically dead.
        (Class::Nan, _) | (_, Class::Nan) => unreachable!("NaN handled above"),
    }
}

/// Correctly rounded division `a / b`.
///
/// Division is not part of RedMulE's datapath but completes the
/// FPnew-equivalent scalar operation set used by the software baseline.
pub fn div(a: u16, b: u16, mode: Round) -> u16 {
    let (ca, cb) = (classify(a), classify(b));
    if matches!(ca, Class::Nan) || matches!(cb, Class::Nan) {
        return CANONICAL_QNAN;
    }
    let sign = sign_of(ca) ^ sign_of(cb);
    match (ca, cb) {
        (Class::Inf { .. }, Class::Inf { .. }) => CANONICAL_QNAN,
        (Class::Zero { .. }, Class::Zero { .. }) => CANONICAL_QNAN,
        (Class::Inf { .. }, _) => pack_inf(sign),
        (_, Class::Zero { .. }) => pack_inf(sign),
        (Class::Zero { .. }, _) => pack_zero(sign),
        (_, Class::Inf { .. }) => pack_zero(sign),
        (Class::Finite(ua), Class::Finite(ub)) => {
            // 20 extra quotient bits leave >= 9 bits under the round bit, so
            // OR-ing the remainder sticky into bit 0 is safe.
            let num = u64::from(ua.sig) << 20;
            let den = u64::from(ub.sig);
            let mut quo = num / den;
            if num % den != 0 {
                quo |= 1;
            }
            round_pack(sign, u128::from(quo), ua.q - ub.q - 20, mode)
        }
        // modelcheck-allow: RM-PANIC-001 -- NaN operands are classified and
        // returned before this match; the arm is statically dead.
        (Class::Nan, _) | (_, Class::Nan) => unreachable!("NaN handled above"),
    }
}

/// Correctly rounded square root.
pub fn sqrt(a: u16, mode: Round) -> u16 {
    match classify(a) {
        Class::Nan => CANONICAL_QNAN,
        Class::Zero { sign } => pack_zero(sign), // sqrt(+-0) = +-0
        Class::Inf { sign: false } => pack_inf(false),
        Class::Inf { sign: true } => CANONICAL_QNAN,
        Class::Finite(u) if u.sign => CANONICAL_QNAN,
        Class::Finite(mut u) => {
            // Make the exponent even so it halves exactly.
            if u.q & 1 != 0 {
                u.sig <<= 1;
                u.q -= 1;
            }
            // 32 extra bits of radicand -> 16 extra result bits.
            let radicand = u128::from(u.sig) << 32;
            let mut root = isqrt(radicand);
            if root * root != radicand {
                root |= 1; // sticky, >= 10 bits under the round bit
            }
            round_pack(false, root, u.q / 2 - 16, mode)
        }
    }
}

fn isqrt(v: u128) -> u128 {
    if v < 2 {
        return v;
    }
    // Newton's method seeded from the bit length; converges in a few steps.
    let mut x = 1u128 << (128 - v.leading_zeros()).div_ceil(2);
    loop {
        let next = (x + v / x) >> 1;
        if next >= x {
            return x;
        }
        x = next;
    }
}

/// Converts an `f32` to binary16 bits with a single correct rounding.
// modelcheck-allow: RM-FP-001 -- host-float conversion boundary: operates on
// IEEE bit patterns only (to_bits + integer round_pack), no native arithmetic.
pub fn from_f32(v: f32, mode: Round) -> u16 {
    let bits = v.to_bits();
    let sign = bits >> 31 != 0;
    let exp_field = (bits >> 23) & 0xFF;
    let frac = bits & 0x7F_FFFF;
    match exp_field {
        0xFF => {
            if frac != 0 {
                CANONICAL_QNAN
            } else {
                pack_inf(sign)
            }
        }
        0 => {
            if frac == 0 {
                pack_zero(sign)
            } else {
                round_pack(sign, u128::from(frac), -149, mode)
            }
        }
        e => round_pack(
            sign,
            u128::from(frac | 0x80_0000),
            e as i32 - 127 - 23,
            mode,
        ),
    }
}

/// Converts an `f64` to binary16 bits with a single correct rounding.
// modelcheck-allow: RM-FP-001 -- host-float conversion boundary: operates on
// IEEE bit patterns only (to_bits + integer round_pack), no native arithmetic.
pub fn from_f64(v: f64, mode: Round) -> u16 {
    let bits = v.to_bits();
    let sign = bits >> 63 != 0;
    let exp_field = (bits >> 52) & 0x7FF;
    let frac = bits & 0xF_FFFF_FFFF_FFFF;
    match exp_field {
        0x7FF => {
            if frac != 0 {
                CANONICAL_QNAN
            } else {
                pack_inf(sign)
            }
        }
        0 => {
            if frac == 0 {
                pack_zero(sign)
            } else {
                round_pack(sign, u128::from(frac), -1074, mode)
            }
        }
        e => round_pack(
            sign,
            u128::from(frac | (1u64 << 52)),
            e as i32 - 1023 - 52,
            mode,
        ),
    }
}

/// Converts binary16 bits to `f32` (always exact).
// modelcheck-allow: RM-FP-001 -- host-float conversion boundary: every
// binary16 value is exactly representable in f32, so widening is lossless.
pub fn to_f32(bits: u16) -> f32 {
    match classify(bits) {
        Class::Nan => f32::NAN,
        Class::Inf { sign } => {
            if sign {
                f32::NEG_INFINITY
            } else {
                f32::INFINITY
            }
        }
        Class::Zero { sign } => {
            if sign {
                -0.0
            } else {
                0.0
            }
        }
        Class::Finite(u) => {
            let mag = u.sig as f32 * (u.q as f32).exp2();
            if u.sign {
                -mag
            } else {
                mag
            }
        }
    }
}

/// Converts binary16 bits to `f64` (always exact).
// modelcheck-allow: RM-FP-001 -- host-float conversion boundary: every
// binary16 value is exactly representable in f64, so widening is lossless.
pub fn to_f64(bits: u16) -> f64 {
    match classify(bits) {
        Class::Nan => f64::NAN,
        Class::Inf { sign } => {
            if sign {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        }
        Class::Zero { sign } => {
            if sign {
                -0.0
            } else {
                0.0
            }
        }
        Class::Finite(u) => {
            let mag = u.sig as f64 * (u.q as f64).exp2();
            if u.sign {
                -mag
            } else {
                mag
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ONE: u16 = 0x3C00;
    const TWO: u16 = 0x4000;
    const HALF: u16 = 0x3800;
    const MAX: u16 = 0x7BFF; // 65504
    const MIN_SUB: u16 = 0x0001; // 2^-24
    const INF: u16 = 0x7C00;
    const NINF: u16 = 0xFC00;
    const NZERO: u16 = 0x8000;

    fn f(v: f32) -> u16 {
        from_f32(v, Round::NearestEven)
    }

    #[test]
    fn unpack_normal() {
        let Class::Finite(u) = classify(ONE) else {
            panic!("1.0 must be finite")
        };
        assert!(!u.sign);
        assert_eq!(u.sig, 1 << 10);
        assert_eq!(u.q, -10);
    }

    #[test]
    fn unpack_subnormal_normalises() {
        let Class::Finite(u) = classify(MIN_SUB) else {
            panic!("min subnormal must be finite")
        };
        assert_eq!(u.sig, 1 << 10);
        assert_eq!(u.q, -34); // 2^10 * 2^-34 = 2^-24
    }

    #[test]
    fn simple_products() {
        assert_eq!(mul(TWO, TWO, Round::NearestEven), f(4.0));
        assert_eq!(mul(HALF, HALF, Round::NearestEven), f(0.25));
        assert_eq!(mul(f(-3.0), f(3.0), Round::NearestEven), f(-9.0));
    }

    #[test]
    fn simple_sums() {
        assert_eq!(add(ONE, ONE, Round::NearestEven), TWO);
        assert_eq!(add(f(1.5), f(2.5), Round::NearestEven), f(4.0));
        assert_eq!(sub(f(2.5), f(1.5), Round::NearestEven), ONE);
    }

    #[test]
    fn fma_single_rounding_differs_from_two_roundings() {
        // Choose a, b, c so that round(a*b) + c differs from fma(a, b, c).
        // a = 1 + 2^-10 (ulp above one), b = 1 + 2^-10:
        // a*b = 1 + 2^-9 + 2^-20 exactly; rounded mul gives 1 + 2^-9.
        // With c = -(1 + 2^-9), fma = 2^-20 but mul-then-add = 0.
        let a = 0x3C01;
        let b = 0x3C01;
        let c = from_f64(-(1.0 + 2.0f64.powi(-9)), Round::NearestEven);
        let fused = fma(a, b, c, Round::NearestEven);
        let split = add(mul(a, b, Round::NearestEven), c, Round::NearestEven);
        assert_eq!(to_f64(fused), 2.0f64.powi(-20));
        assert_eq!(to_f64(split), 0.0);
    }

    #[test]
    fn nan_propagates_canonically() {
        for op in [add, sub, mul, div] {
            assert_eq!(op(CANONICAL_QNAN, ONE, Round::NearestEven), CANONICAL_QNAN);
            assert_eq!(op(ONE, 0x7E01, Round::NearestEven), CANONICAL_QNAN);
        }
        assert_eq!(fma(ONE, ONE, 0xFFFF, Round::NearestEven), CANONICAL_QNAN);
    }

    #[test]
    fn invalid_operations_produce_qnan() {
        assert_eq!(fma(0, INF, ONE, Round::NearestEven), CANONICAL_QNAN); // 0*inf
        assert_eq!(fma(INF, NZERO, ONE, Round::NearestEven), CANONICAL_QNAN);
        assert_eq!(fma(INF, ONE, NINF, Round::NearestEven), CANONICAL_QNAN); // inf - inf
        assert_eq!(add(INF, NINF, Round::NearestEven), CANONICAL_QNAN);
        assert_eq!(div(INF, NINF, Round::NearestEven), CANONICAL_QNAN);
        assert_eq!(div(0, NZERO, Round::NearestEven), CANONICAL_QNAN);
        assert_eq!(sqrt(f(-1.0), Round::NearestEven), CANONICAL_QNAN);
    }

    #[test]
    fn infinity_arithmetic() {
        assert_eq!(add(INF, ONE, Round::NearestEven), INF);
        assert_eq!(fma(INF, TWO, f(-5.0), Round::NearestEven), INF);
        assert_eq!(fma(NINF, TWO, NINF, Round::NearestEven), NINF);
        assert_eq!(div(ONE, 0, Round::NearestEven), INF);
        assert_eq!(div(f(-1.0), 0, Round::NearestEven), NINF);
        assert_eq!(div(ONE, INF, Round::NearestEven), 0);
    }

    #[test]
    fn exact_zero_sign_rules() {
        // (+1 * +1) + (-1) = exact +0 in RNE, -0 in RDN.
        assert_eq!(fma(ONE, ONE, f(-1.0), Round::NearestEven), 0);
        assert_eq!(fma(ONE, ONE, f(-1.0), Round::Down), NZERO);
        // (+0) + (+0) keeps the sign; (+0) + (-0) is +0 (RNE).
        assert_eq!(add(0, 0, Round::NearestEven), 0);
        assert_eq!(add(NZERO, NZERO, Round::NearestEven), NZERO);
        assert_eq!(add(0, NZERO, Round::NearestEven), 0);
        assert_eq!(add(0, NZERO, Round::Down), NZERO);
        // 0 * x + (-0), product +0: signs differ -> +0 in RNE.
        assert_eq!(fma(0, ONE, NZERO, Round::NearestEven), 0);
        // 0 * x + (-0), product -0: signs agree -> -0.
        assert_eq!(fma(NZERO, ONE, NZERO, Round::NearestEven), NZERO);
    }

    #[test]
    fn overflow_per_mode() {
        assert_eq!(mul(MAX, TWO, Round::NearestEven), INF);
        assert_eq!(mul(MAX, TWO, Round::TowardZero), MAX);
        assert_eq!(mul(MAX, TWO, Round::Down), MAX);
        assert_eq!(mul(MAX, TWO, Round::Up), INF);
        let neg_max = MAX | NZERO;
        assert_eq!(mul(neg_max, TWO, Round::Down), NINF);
        assert_eq!(mul(neg_max, TWO, Round::Up), neg_max);
    }

    #[test]
    fn overflow_by_rounding_at_binade_edge() {
        // 65520 is the midpoint between 65504 (max) and 65536: RNE rounds to
        // even = 65536 -> infinity. 65519 rounds down to 65504.
        assert_eq!(from_f32(65520.0, Round::NearestEven), INF);
        assert_eq!(from_f32(65519.0, Round::NearestEven), MAX);
        assert_eq!(from_f32(65520.0, Round::TowardZero), MAX);
    }

    #[test]
    fn gradual_underflow() {
        // min_normal / 2 is the largest subnormal's neighbourhood.
        let min_normal = 0x0400;
        let half_min = div(min_normal, TWO, Round::NearestEven);
        assert_eq!(half_min, 0x0200); // 2^-15 = subnormal 0.1000000000
                                      // Smallest subnormal halves to zero under RNE (tie to even).
        assert_eq!(div(MIN_SUB, TWO, Round::NearestEven), 0);
        assert_eq!(div(MIN_SUB, TWO, Round::Up), MIN_SUB);
        // Subnormal + subnormal is exact.
        assert_eq!(add(MIN_SUB, MIN_SUB, Round::NearestEven), 0x0002);
    }

    #[test]
    fn subnormal_rounds_up_to_min_normal() {
        // Largest subnormal + smallest subnormal = min normal exactly.
        let max_sub = 0x03FF;
        assert_eq!(add(max_sub, MIN_SUB, Round::NearestEven), 0x0400);
    }

    #[test]
    fn division_basics() {
        assert_eq!(div(f(6.0), f(3.0), Round::NearestEven), TWO);
        assert_eq!(div(ONE, f(3.0), Round::NearestEven), f(1.0 / 3.0));
        assert_eq!(div(f(-7.5), f(2.5), Round::NearestEven), f(-3.0));
    }

    #[test]
    fn sqrt_basics() {
        assert_eq!(sqrt(f(4.0), Round::NearestEven), TWO);
        assert_eq!(sqrt(f(2.0), Round::NearestEven), f(2.0f32.sqrt()));
        assert_eq!(sqrt(0, Round::NearestEven), 0);
        assert_eq!(sqrt(NZERO, Round::NearestEven), NZERO);
        assert_eq!(sqrt(INF, Round::NearestEven), INF);
        // Subnormal square root.
        assert_eq!(
            to_f64(sqrt(MIN_SUB, Round::NearestEven)),
            from_f64_roundtrip(2.0f64.powi(-24).sqrt())
        );
    }

    fn from_f64_roundtrip(v: f64) -> f64 {
        to_f64(from_f64(v, Round::NearestEven))
    }

    #[test]
    fn conversion_round_trips_all_finite_values() {
        for bits in 0u16..=0xFFFF {
            match classify(bits) {
                Class::Nan => continue,
                _ => {
                    assert_eq!(from_f32(to_f32(bits), Round::NearestEven), bits);
                    assert_eq!(from_f64(to_f64(bits), Round::NearestEven), bits);
                }
            }
        }
    }

    #[test]
    fn f32_conversion_rounds_correctly() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10: ties to even.
        assert_eq!(from_f32(1.0 + 2.0f32.powi(-11), Round::NearestEven), ONE);
        // Slightly above the tie rounds up.
        assert_eq!(
            from_f32(
                1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-20),
                Round::NearestEven
            ),
            0x3C01
        );
        assert_eq!(from_f32(1.0 + 2.0f32.powi(-11), Round::Up), 0x3C01);
        assert_eq!(from_f32(-(1.0 + 2.0f32.powi(-11)), Round::Down), 0xBC01);
    }

    #[test]
    fn tiny_f32_flushes_by_rounding_only() {
        // 2^-25 is halfway to the smallest subnormal: RNE ties to even = 0.
        assert_eq!(from_f32(2.0f32.powi(-25), Round::NearestEven), 0);
        // Just above the halfway point rounds to the min subnormal.
        assert_eq!(
            from_f32(2.0f32.powi(-25) * 1.0001, Round::NearestEven),
            MIN_SUB
        );
        assert_eq!(from_f32(2.0f32.powi(-25), Round::Up), MIN_SUB);
    }

    /// Exhaustive check of `add` against an f64 reference. The sum of two
    /// binary16 values is exactly representable in f64, so rounding the f64
    /// sum once is the correctly rounded result.
    #[test]
    fn add_matches_f64_reference_exhaustive_slice() {
        // Full 2^32 is too slow for a unit test; stride through the space and
        // concentrate on interesting neighbourhoods.
        let interesting: Vec<u16> = (0u16..=0xFFFF).step_by(251).chain(0x03F8..0x0408).collect();
        for &a in &interesting {
            for &b in &interesting {
                if matches!(classify(a), Class::Nan) || matches!(classify(b), Class::Nan) {
                    continue;
                }
                let got = add(a, b, Round::NearestEven);
                let want = from_f64(to_f64(a) + to_f64(b), Round::NearestEven);
                // Skip invalid (inf - inf): reference produces NaN too but
                // compares unequal bitwise only if non-canonical.
                let ref_nan = (to_f64(a) + to_f64(b)).is_nan();
                if ref_nan {
                    assert_eq!(got, CANONICAL_QNAN, "a={a:#06x} b={b:#06x}");
                } else {
                    assert_eq!(got, want, "a={a:#06x} b={b:#06x}");
                }
            }
        }
    }

    /// Exhaustive check of `mul` against an f64 reference (products of two
    /// 11-bit significands are exact in f64).
    #[test]
    fn mul_matches_f64_reference_exhaustive_slice() {
        let interesting: Vec<u16> = (0u16..=0xFFFF).step_by(257).chain(0x7BF0..0x7C00).collect();
        for &a in &interesting {
            for &b in &interesting {
                if matches!(classify(a), Class::Nan) || matches!(classify(b), Class::Nan) {
                    continue;
                }
                let ref_val = to_f64(a) * to_f64(b);
                let got = mul(a, b, Round::NearestEven);
                if ref_val.is_nan() {
                    assert_eq!(got, CANONICAL_QNAN, "a={a:#06x} b={b:#06x}");
                } else {
                    let want = from_f64(ref_val, Round::NearestEven);
                    assert_eq!(got, want, "a={a:#06x} b={b:#06x}");
                }
            }
        }
    }

    #[test]
    fn isqrt_exact_squares() {
        for v in [0u128, 1, 4, 9, 1 << 40, (1u128 << 60) + 2 * (1 << 30) + 1] {
            let r = isqrt(v);
            assert!(r * r <= v);
            assert!((r + 1) * (r + 1) > v);
        }
    }
}
