//! Exhaustive verification of single-operand operations over the entire
//! binary16 space, plus dense grids for two-operand operations.
//!
//! The f64 references are valid oracles: every FP16 value converts to f64
//! exactly, and for division and square root the 2p+2 double-rounding
//! theorem (53 >> 2*11+2) makes round(f64-op) the correctly rounded FP16
//! result.

use redmule_fp16::{arith, Round, CANONICAL_QNAN, F16};

fn all_patterns() -> impl Iterator<Item = u16> {
    0u16..=0xFFFF
}

fn is_nan_bits(bits: u16) -> bool {
    (bits & 0x7C00) == 0x7C00 && (bits & 0x03FF) != 0
}

#[test]
fn sqrt_exhaustive_vs_f64() {
    for bits in all_patterns() {
        let got = arith::sqrt(bits, Round::NearestEven);
        if is_nan_bits(bits) {
            assert_eq!(got, CANONICAL_QNAN, "sqrt(NaN) at {bits:#06x}");
            continue;
        }
        let x = arith::to_f64(bits);
        let want_val = x.sqrt();
        if want_val.is_nan() {
            assert_eq!(got, CANONICAL_QNAN, "sqrt({x}) at {bits:#06x}");
        } else {
            let want = arith::from_f64(want_val, Round::NearestEven);
            assert_eq!(got, want, "sqrt({x}) at {bits:#06x}");
        }
    }
}

#[test]
fn reciprocal_exhaustive_vs_f64() {
    const ONE: u16 = 0x3C00;
    for bits in all_patterns() {
        let got = arith::div(ONE, bits, Round::NearestEven);
        if is_nan_bits(bits) {
            assert_eq!(got, CANONICAL_QNAN);
            continue;
        }
        let x = arith::to_f64(bits);
        let want = arith::from_f64(1.0 / x, Round::NearestEven);
        assert_eq!(got, want, "1/{x} at {bits:#06x}");
    }
}

#[test]
fn negation_and_abs_exhaustive() {
    for bits in all_patterns() {
        let v = F16::from_bits(bits);
        assert_eq!((-v).to_bits(), bits ^ 0x8000);
        assert_eq!(v.abs().to_bits(), bits & 0x7FFF);
        assert_eq!((-(-v)).to_bits(), bits);
    }
}

#[test]
fn classification_is_total_and_consistent() {
    for bits in all_patterns() {
        let v = F16::from_bits(bits);
        let cats = [
            v.is_nan(),
            v.is_infinite(),
            v.is_zero(),
            v.is_subnormal(),
            v.is_normal(),
        ];
        assert_eq!(
            cats.iter().filter(|&&c| c).count(),
            1,
            "exactly one class at {bits:#06x}"
        );
        assert_eq!(v.is_finite(), !v.is_nan() && !v.is_infinite());
        // Agreement with the f32 classification.
        if !v.is_nan() {
            let f = v.to_f32();
            assert_eq!(v.is_infinite(), f.is_infinite(), "{bits:#06x}");
            assert_eq!(v.is_zero(), f == 0.0, "{bits:#06x}");
        }
    }
}

#[test]
fn doubling_and_halving_exhaustive_vs_f64() {
    const TWO: u16 = 0x4000;
    for bits in all_patterns() {
        if is_nan_bits(bits) {
            continue;
        }
        let x = arith::to_f64(bits);
        let doubled = arith::mul(bits, TWO, Round::NearestEven);
        assert_eq!(
            doubled,
            arith::from_f64(x * 2.0, Round::NearestEven),
            "2*{x}"
        );
        let halved = arith::div(bits, TWO, Round::NearestEven);
        assert_eq!(
            halved,
            arith::from_f64(x / 2.0, Round::NearestEven),
            "{x}/2"
        );
    }
}

#[test]
fn addition_dense_grid_vs_f64() {
    // A structured set of second operands covering every regime.
    let b_set: Vec<u16> = vec![
        0x0000, 0x8000, 0x0001, 0x8001, 0x03FF, 0x0400, 0x3C00, 0xBC00, 0x3C01, 0x4000, 0x7BFF,
        0xFBFF, 0x7C00, 0xFC00, 0x1400, 0x9400,
    ];
    for a in all_patterns().step_by(7) {
        if is_nan_bits(a) {
            continue;
        }
        let av = arith::to_f64(a);
        for &b in &b_set {
            let got = arith::add(a, b, Round::NearestEven);
            let exact = av + arith::to_f64(b);
            if exact.is_nan() {
                assert_eq!(got, CANONICAL_QNAN, "a={a:#06x} b={b:#06x}");
            } else {
                let want = arith::from_f64(exact, Round::NearestEven);
                // +0/-0 compare equal numerically; bit-compare except when
                // both are zeros of different sign conventions.
                if !(got & 0x7FFF == 0 && want & 0x7FFF == 0) {
                    assert_eq!(got, want, "a={a:#06x} b={b:#06x}");
                }
            }
        }
    }
}

#[test]
fn fma_dense_grid_has_single_rounding() {
    // fma(a, b, c) with c = -round(a*b) never loses the residual unless it
    // is exactly zero: a classic single-rounding witness applied densely.
    for a in (0x3C00u16..0x4400).step_by(3) {
        for b in (0x3C00u16..0x4400).step_by(7) {
            let prod = arith::mul(a, b, Round::NearestEven);
            let c = prod ^ 0x8000; // -round(a*b)
            let fused = arith::fma(a, b, c, Round::NearestEven);
            // Exact residual: a*b - round(a*b) in f64 (all values exact).
            let exact = arith::to_f64(a) * arith::to_f64(b) + arith::to_f64(c);
            let want = arith::from_f64(exact, Round::NearestEven);
            // The residual has few significant bits, so the f64 reference
            // is exact here.
            if !(fused & 0x7FFF == 0 && want & 0x7FFF == 0) {
                assert_eq!(fused, want, "a={a:#06x} b={b:#06x}");
            }
        }
    }
}

#[test]
fn all_rounding_modes_bracket_exhaustively() {
    // For every finite pattern, dividing by 3 produces an inexact result;
    // the five modes must bracket it correctly.
    const THREE: u16 = 0x4200;
    for bits in all_patterns().step_by(5) {
        if is_nan_bits(bits) || (bits & 0x7FFF) == 0x7C00 {
            continue;
        }
        let exact = arith::to_f64(bits) / 3.0;
        let dn = arith::to_f64(arith::div(bits, THREE, Round::Down));
        let up = arith::to_f64(arith::div(bits, THREE, Round::Up));
        let tz = arith::to_f64(arith::div(bits, THREE, Round::TowardZero));
        let ne = arith::to_f64(arith::div(bits, THREE, Round::NearestEven));
        assert!(dn <= exact || dn == f64::NEG_INFINITY, "{bits:#06x}");
        assert!(up >= exact || up == f64::INFINITY, "{bits:#06x}");
        assert!(tz.abs() <= exact.abs() || tz.is_infinite(), "{bits:#06x}");
        assert!(ne >= dn && ne <= up, "{bits:#06x}");
    }
}
