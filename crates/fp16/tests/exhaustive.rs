//! Exhaustive verification of single-operand operations over the entire
//! binary16 space, plus dense grids for two-operand operations.
//!
//! The f64 references are valid oracles: every FP16 value converts to f64
//! exactly, and for division and square root the 2p+2 double-rounding
//! theorem (53 >> 2*11+2) makes round(f64-op) the correctly rounded FP16
//! result.

use redmule_fp16::{arith, Round, CANONICAL_QNAN, E4M3, E5M2, F16};

fn all_patterns() -> impl Iterator<Item = u16> {
    0u16..=0xFFFF
}

fn is_nan_bits(bits: u16) -> bool {
    (bits & 0x7C00) == 0x7C00 && (bits & 0x03FF) != 0
}

#[test]
fn sqrt_exhaustive_vs_f64() {
    for bits in all_patterns() {
        let got = arith::sqrt(bits, Round::NearestEven);
        if is_nan_bits(bits) {
            assert_eq!(got, CANONICAL_QNAN, "sqrt(NaN) at {bits:#06x}");
            continue;
        }
        let x = arith::to_f64(bits);
        let want_val = x.sqrt();
        if want_val.is_nan() {
            assert_eq!(got, CANONICAL_QNAN, "sqrt({x}) at {bits:#06x}");
        } else {
            let want = arith::from_f64(want_val, Round::NearestEven);
            assert_eq!(got, want, "sqrt({x}) at {bits:#06x}");
        }
    }
}

#[test]
fn reciprocal_exhaustive_vs_f64() {
    const ONE: u16 = 0x3C00;
    for bits in all_patterns() {
        let got = arith::div(ONE, bits, Round::NearestEven);
        if is_nan_bits(bits) {
            assert_eq!(got, CANONICAL_QNAN);
            continue;
        }
        let x = arith::to_f64(bits);
        let want = arith::from_f64(1.0 / x, Round::NearestEven);
        assert_eq!(got, want, "1/{x} at {bits:#06x}");
    }
}

#[test]
fn negation_and_abs_exhaustive() {
    for bits in all_patterns() {
        let v = F16::from_bits(bits);
        assert_eq!((-v).to_bits(), bits ^ 0x8000);
        assert_eq!(v.abs().to_bits(), bits & 0x7FFF);
        assert_eq!((-(-v)).to_bits(), bits);
    }
}

#[test]
fn classification_is_total_and_consistent() {
    for bits in all_patterns() {
        let v = F16::from_bits(bits);
        let cats = [
            v.is_nan(),
            v.is_infinite(),
            v.is_zero(),
            v.is_subnormal(),
            v.is_normal(),
        ];
        assert_eq!(
            cats.iter().filter(|&&c| c).count(),
            1,
            "exactly one class at {bits:#06x}"
        );
        assert_eq!(v.is_finite(), !v.is_nan() && !v.is_infinite());
        // Agreement with the f32 classification.
        if !v.is_nan() {
            let f = v.to_f32();
            assert_eq!(v.is_infinite(), f.is_infinite(), "{bits:#06x}");
            assert_eq!(v.is_zero(), f == 0.0, "{bits:#06x}");
        }
    }
}

#[test]
fn doubling_and_halving_exhaustive_vs_f64() {
    const TWO: u16 = 0x4000;
    for bits in all_patterns() {
        if is_nan_bits(bits) {
            continue;
        }
        let x = arith::to_f64(bits);
        let doubled = arith::mul(bits, TWO, Round::NearestEven);
        assert_eq!(
            doubled,
            arith::from_f64(x * 2.0, Round::NearestEven),
            "2*{x}"
        );
        let halved = arith::div(bits, TWO, Round::NearestEven);
        assert_eq!(
            halved,
            arith::from_f64(x / 2.0, Round::NearestEven),
            "{x}/2"
        );
    }
}

#[test]
fn addition_dense_grid_vs_f64() {
    // A structured set of second operands covering every regime.
    let b_set: Vec<u16> = vec![
        0x0000, 0x8000, 0x0001, 0x8001, 0x03FF, 0x0400, 0x3C00, 0xBC00, 0x3C01, 0x4000, 0x7BFF,
        0xFBFF, 0x7C00, 0xFC00, 0x1400, 0x9400,
    ];
    for a in all_patterns().step_by(7) {
        if is_nan_bits(a) {
            continue;
        }
        let av = arith::to_f64(a);
        for &b in &b_set {
            let got = arith::add(a, b, Round::NearestEven);
            let exact = av + arith::to_f64(b);
            if exact.is_nan() {
                assert_eq!(got, CANONICAL_QNAN, "a={a:#06x} b={b:#06x}");
            } else {
                let want = arith::from_f64(exact, Round::NearestEven);
                // +0/-0 compare equal numerically; bit-compare except when
                // both are zeros of different sign conventions.
                if !(got & 0x7FFF == 0 && want & 0x7FFF == 0) {
                    assert_eq!(got, want, "a={a:#06x} b={b:#06x}");
                }
            }
        }
    }
}

#[test]
fn fma_dense_grid_has_single_rounding() {
    // fma(a, b, c) with c = -round(a*b) never loses the residual unless it
    // is exactly zero: a classic single-rounding witness applied densely.
    for a in (0x3C00u16..0x4400).step_by(3) {
        for b in (0x3C00u16..0x4400).step_by(7) {
            let prod = arith::mul(a, b, Round::NearestEven);
            let c = prod ^ 0x8000; // -round(a*b)
            let fused = arith::fma(a, b, c, Round::NearestEven);
            // Exact residual: a*b - round(a*b) in f64 (all values exact).
            let exact = arith::to_f64(a) * arith::to_f64(b) + arith::to_f64(c);
            let want = arith::from_f64(exact, Round::NearestEven);
            // The residual has few significant bits, so the f64 reference
            // is exact here.
            if !(fused & 0x7FFF == 0 && want & 0x7FFF == 0) {
                assert_eq!(fused, want, "a={a:#06x} b={b:#06x}");
            }
        }
    }
}

#[test]
fn all_rounding_modes_bracket_exhaustively() {
    // For every finite pattern, dividing by 3 produces an inexact result;
    // the five modes must bracket it correctly.
    const THREE: u16 = 0x4200;
    for bits in all_patterns().step_by(5) {
        if is_nan_bits(bits) || (bits & 0x7FFF) == 0x7C00 {
            continue;
        }
        let exact = arith::to_f64(bits) / 3.0;
        let dn = arith::to_f64(arith::div(bits, THREE, Round::Down));
        let up = arith::to_f64(arith::div(bits, THREE, Round::Up));
        let tz = arith::to_f64(arith::div(bits, THREE, Round::TowardZero));
        let ne = arith::to_f64(arith::div(bits, THREE, Round::NearestEven));
        assert!(dn <= exact || dn == f64::NEG_INFINITY, "{bits:#06x}");
        assert!(up >= exact || up == f64::INFINITY, "{bits:#06x}");
        assert!(tz.abs() <= exact.abs() || tz.is_infinite(), "{bits:#06x}");
        assert!(ne >= dn && ne <= up, "{bits:#06x}");
    }
}

// ---------------------------------------------------------------------------
// FP8 casts: the E4M3/E5M2 spaces are tiny (256 patterns) and the binary16
// space is small (65536 patterns), so both directions are verified over
// their *entire* domains against first-principles f64 references. Every FP8
// and FP16 value converts to f64 exactly, and the midpoint of two adjacent
// FP8 values is exactly representable, so f64 comparison is a valid oracle.
// ---------------------------------------------------------------------------

/// Magnitude of the FP8 encoding `enc` (sign bit stripped), from the
/// IEEE interchange formula — independent of the library's bit fiddling.
fn fp8_mag(enc: u32, man_bits: i32, bias: i32) -> f64 {
    let man = (enc & ((1u32 << man_bits) - 1)) as f64;
    let exp = (enc >> man_bits) as i32;
    if exp == 0 {
        man * (2f64).powi(1 - bias - man_bits)
    } else {
        (1.0 + man * (2f64).powi(-man_bits)) * (2f64).powi(exp - bias)
    }
}

/// The magnitude ladder `enc -> |value|` for encodings `0..=top`, where
/// `top` is the first non-finite code (E4M3's NaN 0x7F, E5M2's Inf 0x7C)
/// treated as the virtual next rung: 480 and 65536 respectively. Rounding
/// *onto* the top rung is exactly the overflow condition.
fn fp8_ladder(man_bits: i32, bias: i32, top: usize) -> Vec<f64> {
    (0..=top)
        .map(|e| fp8_mag(e as u32, man_bits, bias))
        .collect()
}

/// Reference narrowing of a finite binary16 pattern: walk the magnitude
/// ladder in f64, pick the rounded rung per IEEE semantics, then apply the
/// OFP8 overflow policy when the rounding lands on the virtual top rung.
fn fp8_narrow_ref(bits: u16, mode: Round, mags: &[f64], max_code: u8, overflow_code: u8) -> u8 {
    let neg = bits & 0x8000 != 0;
    let sign8 = if neg { 0x80u8 } else { 0 };
    let a = arith::to_f64(bits).abs();
    let top = mags.len() - 1;

    let chosen = if a >= mags[top] {
        top
    } else {
        let lo = mags.partition_point(|&m| m <= a) - 1;
        if mags[lo] == a {
            lo
        } else {
            let hi = lo + 1;
            let mid = 0.5 * (mags[lo] + mags[hi]); // exact: few significand bits
            match mode {
                Round::NearestEven => {
                    if a < mid {
                        lo
                    } else if a > mid {
                        hi
                    } else if lo % 2 == 0 {
                        lo
                    } else {
                        hi
                    }
                }
                Round::NearestMaxMagnitude => {
                    if a < mid {
                        lo
                    } else {
                        hi
                    }
                }
                Round::TowardZero => lo,
                Round::Down => {
                    if neg {
                        hi
                    } else {
                        lo
                    }
                }
                Round::Up => {
                    if neg {
                        lo
                    } else {
                        hi
                    }
                }
            }
        }
    };

    if chosen == top {
        // IEEE overflow: the directed modes that round towards zero on
        // this sign saturate to the largest finite value; the rest take
        // the format's overflow code (NaN for E4M3, Inf for E5M2).
        let saturates = match mode {
            Round::TowardZero => true,
            Round::Down => !neg,
            Round::Up => neg,
            Round::NearestEven | Round::NearestMaxMagnitude => false,
        };
        if saturates {
            sign8 | max_code
        } else {
            sign8 | overflow_code
        }
    } else {
        sign8 | chosen as u8
    }
}

#[test]
fn fp8_widen_is_exact_for_all_256_patterns() {
    let e4 = fp8_ladder(3, 7, 0x7F);
    let e5 = fp8_ladder(2, 15, 0x7C);
    for p in 0..=0xFFu8 {
        let sign = if p & 0x80 != 0 { -1.0 } else { 1.0 };
        let enc = (p & 0x7F) as usize;

        // E4M3: one NaN per sign, everything else finite.
        let w = E4M3::from_bits(p).to_f16();
        if enc == 0x7F {
            assert!(w.is_nan(), "E4M3 NaN widen at {p:#04x}");
            assert_eq!(w.to_bits() & 0x8000 != 0, p & 0x80 != 0, "{p:#04x}");
        } else {
            assert_eq!(
                arith::to_f64(w.to_bits()),
                sign * e4[enc],
                "E4M3 widen at {p:#04x}"
            );
        }

        // E5M2: widening is the pure shift its docs promise, and the
        // shifted value is numerically the ladder value.
        let w = E5M2::from_bits(p).to_f16();
        assert_eq!(w.to_bits(), u16::from(p) << 8, "E5M2 widen at {p:#04x}");
        if enc < 0x7C {
            assert_eq!(
                arith::to_f64(w.to_bits()),
                sign * e5[enc],
                "E5M2 widen at {p:#04x}"
            );
        } else if enc == 0x7C {
            assert!(w.is_infinite(), "E5M2 Inf widen at {p:#04x}");
        } else {
            assert!(w.is_nan(), "E5M2 NaN widen at {p:#04x}");
        }
    }
}

#[test]
fn fp8_round_trips_all_256_patterns_in_every_mode() {
    // Widen-then-narrow must be the identity on the full FP8 space, in
    // every rounding mode: the widened value is exact, so no rounding may
    // move it, and the NaN narrowing must reproduce the original payload.
    for p in 0..=0xFFu8 {
        for mode in Round::ALL {
            assert_eq!(
                E4M3::from_f16(E4M3::from_bits(p).to_f16(), mode).to_bits(),
                p,
                "E4M3 round trip at {p:#04x} under {mode:?}"
            );
            assert_eq!(
                E5M2::from_f16(E5M2::from_bits(p).to_f16(), mode).to_bits(),
                p,
                "E5M2 round trip at {p:#04x} under {mode:?}"
            );
        }
    }
}

#[test]
fn e4m3_narrow_exhaustive_vs_f64_reference() {
    let mags = fp8_ladder(3, 7, 0x7F);
    for bits in all_patterns() {
        let sign8 = ((bits >> 8) as u8) & 0x80;
        for mode in Round::ALL {
            let got = E4M3::from_f16(F16::from_bits(bits), mode).to_bits();
            // E4M3 has no infinities: both NaN and Inf inputs collapse to
            // the format's single signed NaN code.
            let want = if is_nan_bits(bits) || (bits & 0x7FFF) == 0x7C00 {
                sign8 | 0x7F
            } else {
                fp8_narrow_ref(bits, mode, &mags, 0x7E, 0x7F)
            };
            assert_eq!(got, want, "E4M3 narrow at {bits:#06x} under {mode:?}");
        }
    }
}

#[test]
fn e5m2_narrow_exhaustive_vs_f64_reference() {
    let mags = fp8_ladder(2, 15, 0x7C);
    for bits in all_patterns() {
        let sign8 = ((bits >> 8) as u8) & 0x80;
        for mode in Round::ALL {
            let got = E5M2::from_f16(F16::from_bits(bits), mode).to_bits();
            let want = if is_nan_bits(bits) {
                // Sign and top payload bits survive, quietened so the
                // result never collides with the infinity code.
                let payload = ((bits >> 8) as u8) & 0x3;
                sign8 | 0x7C | if payload == 0 { 0x2 } else { payload }
            } else if (bits & 0x7FFF) == 0x7C00 {
                sign8 | 0x7C
            } else {
                fp8_narrow_ref(bits, mode, &mags, 0x7B, 0x7C)
            };
            assert_eq!(got, want, "E5M2 narrow at {bits:#06x} under {mode:?}");
        }
    }
}

#[test]
fn fp8_narrow_landmark_values() {
    // Pin the textbook OFP8 cases by hand, independent of the ladder.
    let f = |v: f32| F16::from_f32(v);
    // 464 is the exact midpoint of E4M3's 448 and the virtual 480 rung.
    assert_eq!(E4M3::from_f16(f(464.0), Round::NearestEven).to_bits(), 0x7E);
    assert!(E4M3::from_f16(f(464.0), Round::NearestMaxMagnitude).is_nan());
    assert_eq!(E4M3::from_f16(f(464.0), Round::TowardZero).to_bits(), 0x7E);
    assert!(E4M3::from_f16(f(500.0), Round::NearestEven).is_nan());
    assert_eq!(E4M3::from_f16(f(-500.0), Round::Up).to_bits(), 0xFE);
    // 61440 is the midpoint of E5M2's 57344 and the virtual 65536 rung;
    // the even side is the infinity, so RNE overflows.
    assert!(E5M2::from_f16(f(61440.0), Round::NearestEven).is_infinite());
    assert_eq!(
        E5M2::from_f16(f(61440.0), Round::TowardZero).to_bits(),
        0x7B
    );
    assert_eq!(E5M2::from_f16(f(-61440.0), Round::Up).to_bits(), 0xFB);
    // Smallest subnormals: E4M3 2^-9, E5M2 2^-16.
    assert_eq!(
        E4M3::MIN_POSITIVE_SUBNORMAL.to_f16().to_bits(),
        arith::from_f64((2f64).powi(-9), Round::NearestEven)
    );
    assert_eq!(
        E5M2::MIN_POSITIVE_SUBNORMAL.to_f16().to_bits(),
        arith::from_f64((2f64).powi(-16), Round::NearestEven)
    );
}
