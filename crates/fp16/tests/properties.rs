//! Property-based tests for the binary16 softfloat.
//!
//! The key oracle here is independent of the implementation: exact values of
//! FP16 operands (and of FP16 products) are integers when scaled by `2^48`,
//! so `a*b + c` can be evaluated exactly in `i128` and rounded by a
//! brute-force scan over every finite binary16 value. If the production
//! `fma` agrees with that scan on random inputs (including subnormals), the
//! single-rounding claim holds.

use proptest::prelude::*;
use redmule_fp16::{arith, kernel, Round, F16};

/// Exact value of a finite F16 scaled by 2^48, as an integer.
fn scaled_exact(v: F16) -> i128 {
    let f = v.to_f64();
    let scaled = f * 2f64.powi(48);
    // Every finite f16 times 2^48 is an integer <= 65504 * 2^48 < 2^65,
    // exactly representable in f64? No: 65504*2^48 has 17+48 bits = 65 bits
    // of magnitude but only 11 significant bits, so it IS exact in f64.
    debug_assert_eq!(scaled.fract(), 0.0);
    scaled as i128
}

/// Brute-force correctly rounded FP16 (RNE) of `v / 2^48`.
fn round_scaled_rne(v: i128) -> F16 {
    if v == 0 {
        return F16::ZERO;
    }
    let (sign, mag) = (v < 0, v.unsigned_abs());
    // Overflow threshold: 65520 * 2^48 (midpoint between 65504 and 65536).
    let max_scaled = 65504u128 << 48;
    let threshold = 65520u128 << 48;
    if mag >= threshold {
        // At the exact midpoint RNE ties to the "even" 65536, i.e. infinity.
        return if sign {
            F16::NEG_INFINITY
        } else {
            F16::INFINITY
        };
    }
    if mag > max_scaled {
        // Between max finite and the tie point: rounds to max finite.
        return if sign { F16::MIN } else { F16::MAX };
    }
    // Scan all finite non-negative patterns for the nearest value.
    let mut best_bits = 0u16;
    let mut best_dist = u128::MAX;
    for bits in 0u16..0x7C00 {
        let val = F16::from_bits(bits);
        let scaled = scaled_exact(val).unsigned_abs();
        let dist = scaled.abs_diff(mag);
        if dist < best_dist {
            best_dist = dist;
            best_bits = bits;
        } else if dist == best_dist {
            // Tie: choose even significand.
            if bits & 1 == 0 {
                best_bits = bits;
            }
        }
    }
    let out = F16::from_bits(best_bits);
    if sign && best_bits != 0 {
        -out
    } else if sign {
        // Exactly -0 never reaches here (v != 0), but keep the sign anyway.
        F16::NEG_ZERO
    } else {
        out
    }
}

/// Strategy over all finite FP16 bit patterns (normals and subnormals).
fn finite_f16() -> impl Strategy<Value = F16> {
    any::<u16>().prop_filter_map("finite", |bits| {
        let v = F16::from_bits(bits);
        v.is_finite().then_some(v)
    })
}

/// Strategy biased towards small exponents so subnormal paths get exercised.
fn tiny_f16() -> impl Strategy<Value = F16> {
    (0u16..0x0C00, any::<bool>()).prop_map(|(mag, neg)| {
        let v = F16::from_bits(mag);
        if neg {
            -v
        } else {
            v
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// FMA must equal the exact i128 computation rounded once (RNE).
    /// Operands are scaled by 2^24 (exact integers), so `a*b + c` in units
    /// of 2^-48 fits comfortably in i128.
    #[test]
    fn fma_is_correctly_rounded(a in finite_f16(), b in finite_f16(), c in finite_f16()) {
        let exact48 = scale24(a) * scale24(b) + (scale24(c) << 24);
        let want = round_scaled_rne(exact48);
        let got = a.mul_add(b, c);
        if want.is_zero() && got.is_zero() {
            // Sign-of-zero is covered by dedicated unit tests.
        } else {
            prop_assert_eq!(got.to_bits(), want.to_bits(),
                "a={:?} b={:?} c={:?}", a, b, c);
        }
    }

    /// Same check concentrated in the subnormal neighbourhood.
    #[test]
    fn fma_is_correctly_rounded_near_zero(a in tiny_f16(), b in tiny_f16(), c in tiny_f16()) {
        let exact48 = scale24(a) * scale24(b) + (scale24(c) << 24);
        let want = round_scaled_rne(exact48);
        let got = a.mul_add(b, c);
        if !(want.is_zero() && got.is_zero()) {
            prop_assert_eq!(got.to_bits(), want.to_bits(),
                "a={:?} b={:?} c={:?}", a, b, c);
        }
    }

    /// Addition agrees with the exact f64 sum rounded once.
    #[test]
    fn add_matches_f64(a in finite_f16(), b in finite_f16()) {
        let want = F16::from_f64(a.to_f64() + b.to_f64());
        let got = a + b;
        if !(want.is_zero() && got.is_zero()) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    /// Multiplication agrees with the exact f64 product rounded once.
    #[test]
    fn mul_matches_f64(a in finite_f16(), b in finite_f16()) {
        let want = F16::from_f64(a.to_f64() * b.to_f64());
        prop_assert_eq!((a * b).to_bits(), want.to_bits());
    }

    /// Division agrees with a 2-ulp-safe reference: the f64 quotient of two
    /// f16 values has at most 21 significant quotient bits of interest and
    /// f64's 53-bit quotient rounds identically (2p+2 double-rounding rule).
    #[test]
    fn div_matches_f64(a in finite_f16(), b in finite_f16()) {
        prop_assume!(!b.is_zero());
        let want = F16::from_f64(a.to_f64() / b.to_f64());
        let got = a / b;
        if !(want.is_zero() && got.is_zero()) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    /// sqrt agrees with the f64 reference (same 2p+2 argument).
    #[test]
    fn sqrt_matches_f64(a in finite_f16()) {
        prop_assume!(a.is_sign_positive());
        let want = F16::from_f64(a.to_f64().sqrt());
        prop_assert_eq!(a.sqrt().to_bits(), want.to_bits());
    }

    /// Widening then narrowing is the identity for every finite value.
    #[test]
    fn f32_round_trip(a in finite_f16()) {
        prop_assert_eq!(F16::from_f32(a.to_f32()).to_bits(), a.to_bits());
        prop_assert_eq!(F16::from_f64(a.to_f64()).to_bits(), a.to_bits());
    }

    /// Narrowing an arbitrary f64 brackets correctly in every rounding mode.
    #[test]
    fn f64_narrowing_brackets(v in -1e6f64..1e6f64, mode_idx in 0usize..5) {
        let mode = Round::ALL[mode_idx];
        let r = F16::from_f64_round(v, mode).to_f64();
        match mode {
            Round::TowardZero => prop_assert!(r.abs() <= v.abs()),
            Round::Down => prop_assert!(r <= v),
            Round::Up => prop_assert!(r >= v),
            Round::NearestEven | Round::NearestMaxMagnitude => {
                // Nearest: |r - v| <= half an ulp of r's binade; cheap bound:
                // within one f16 epsilon relative error or one min-subnormal.
                let tol = (r.abs() * 2f64.powi(-10)).max(2f64.powi(-25));
                prop_assert!((r - v).abs() <= tol, "v={v} r={r}");
            }
        }
    }

    /// Addition and multiplication are bitwise commutative for non-NaN.
    #[test]
    fn add_mul_commute(a in finite_f16(), b in finite_f16()) {
        prop_assert_eq!((a + b).to_bits(), (b + a).to_bits());
        prop_assert_eq!((a * b).to_bits(), (b * a).to_bits());
    }

    /// Comparisons agree with the f64 ordering.
    #[test]
    fn ordering_matches_f64(a in finite_f16(), b in finite_f16()) {
        prop_assert_eq!(a.partial_cmp(&b), a.to_f64().partial_cmp(&b.to_f64()));
    }

    /// x.next_up() is the smallest value strictly greater than x.
    #[test]
    fn next_up_is_adjacent(a in finite_f16()) {
        let up = a.next_up();
        if up.is_finite() {
            prop_assert!(up > a || (a == F16::MAX && up.is_infinite()));
            // No representable value lies strictly between.
            prop_assert!(up.to_f64() > a.to_f64());
            prop_assert_eq!(F16::from_f64((up.to_f64() + a.to_f64()) / 2.0).to_f64(),
                // midpoint rounds to one of the two endpoints
                if F16::from_f64((up.to_f64() + a.to_f64()) / 2.0) == a { a.to_f64() } else { up.to_f64() });
        }
    }

    /// Rounding-mode envelope: RDN <= RNE <= RUP for any fma inputs.
    #[test]
    fn directed_modes_bracket_nearest(a in finite_f16(), b in finite_f16(), c in finite_f16()) {
        let dn = arith::fma(a.to_bits(), b.to_bits(), c.to_bits(), Round::Down);
        let ne = arith::fma(a.to_bits(), b.to_bits(), c.to_bits(), Round::NearestEven);
        let up = arith::fma(a.to_bits(), b.to_bits(), c.to_bits(), Round::Up);
        let (dn, ne, up) = (F16::from_bits(dn), F16::from_bits(ne), F16::from_bits(up));
        prop_assert!(dn.to_f64() <= ne.to_f64());
        prop_assert!(ne.to_f64() <= up.to_f64());
        // And RTZ is the one of RDN/RUP closer to zero.
        let tz = F16::from_bits(arith::fma(a.to_bits(), b.to_bits(), c.to_bits(), Round::TowardZero));
        prop_assert!(tz.to_f64().abs() <= dn.to_f64().abs().max(up.to_f64().abs()));
    }
}

/// Exact value of a finite F16 scaled by 2^24 (fits in i64 range easily).
fn scale24(v: F16) -> i128 {
    let f = v.to_f64() * 2f64.powi(24);
    debug_assert_eq!(f.fract(), 0.0, "f16 * 2^24 must be an integer");
    f as i128
}

/// Strategy over *any* FP16 bit pattern, weighted so the special classes
/// (NaN, infinities, zeros, subnormals) appear often enough to exercise
/// every kernel dispatch arm in a short run.
fn any_class_f16() -> impl Strategy<Value = u16> {
    prop_oneof![
        4 => any::<u16>(),
        1 => prop::sample::select(vec![
            0x0000u16, 0x8000, 0x7C00, 0xFC00, 0x7E00, 0x7C01, 0xFE55,
            0x0001, 0x8001, 0x03FF, 0x83FF, 0x0400, 0x7BFF, 0xFBFF,
        ]),
        1 => (0u16..0x0400).prop_map(|m| m | 0x8000), // negative subnormals
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The batched kernel's row fold must equal the scalar fold of `fma`
    /// over the same row, in every rounding mode — including rows salted
    /// with NaN/Inf/zero/subnormal operands and special initial
    /// accumulators.
    #[test]
    fn fma_acc_row_fold_matches_scalar_fma_fold(
        xs in prop::collection::vec(any_class_f16(), 0..48),
        ws in prop::collection::vec(any_class_f16(), 0..48),
        init in any_class_f16(),
        mode in prop::sample::select(Round::ALL.to_vec()),
    ) {
        let len = xs.len().min(ws.len());
        let (xs, ws) = (&xs[..len], &ws[..len]);
        let xo: Vec<kernel::Operand> = xs.iter().map(|&v| kernel::Operand::from_bits(v)).collect();
        let wo: Vec<kernel::Operand> = ws.iter().map(|&v| kernel::Operand::from_bits(v)).collect();
        let fast = kernel::dot_acc(&xo, &wo, kernel::Acc::from_bits(init), mode).to_bits();
        let mut slow = init;
        for (&a, &b) in xs.iter().zip(ws.iter()) {
            slow = arith::fma(a, b, slow, mode);
        }
        // A NaN that survives zero steps stays un-canonicalised in the
        // scalar fold but canonicalises through Acc; both encode the same
        // value class.
        if len == 0 && F16::from_bits(init).is_nan() {
            prop_assert!(F16::from_bits(fast).is_nan());
        } else {
            prop_assert_eq!(fast, slow, "len={} mode={:?}", len, mode);
        }
    }

    /// Step-level agreement on fully random (possibly special) operands.
    #[test]
    fn fma_acc_step_matches_fma(
        a in any_class_f16(), b in any_class_f16(), c in any_class_f16(),
        mode in prop::sample::select(Round::ALL.to_vec()),
    ) {
        let got = kernel::fma_acc(
            kernel::Operand::from_bits(a),
            kernel::Operand::from_bits(b),
            kernel::Acc::from_bits(c),
            mode,
        ).to_bits();
        prop_assert_eq!(got, arith::fma(a, b, c, mode));
    }
}
