//! Differential lock of the batched kernel against the scalar `fma`.
//!
//! [`fma_acc`] must be bit-for-bit equivalent to `arith::fma` on the packed
//! encodings — every rounding mode, every special-value combination. Three
//! locks, in increasing breadth:
//!
//! 1. the 200 frozen FMA vectors (`tests/vectors/fma.txt`) replayed through
//!    the kernel — the same ground truth that pins the scalar path;
//! 2. an exhaustive-pairs sweep: **every** one of the 65 536 bit patterns
//!    in one operand slot against a class-covering set in the other two
//!    slots, rotated through all three positions;
//! 3. a dense pseudo-random soak across all five rounding modes.

use redmule_fp16::arith::fma;
use redmule_fp16::kernel::{fma_acc, Acc, Operand};
use redmule_fp16::Round;

const VECTORS_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/vectors/fma.txt");

fn step(a: u16, b: u16, c: u16, mode: Round) -> u16 {
    fma_acc(
        Operand::from_bits(a),
        Operand::from_bits(b),
        Acc::from_bits(c),
        mode,
    )
    .to_bits()
}

fn parse_mode(s: &str) -> Option<Round> {
    Some(match s {
        "rne" => Round::NearestEven,
        "rtz" => Round::TowardZero,
        "rdn" => Round::Down,
        "rup" => Round::Up,
        "rmm" => Round::NearestMaxMagnitude,
        _ => return None,
    })
}

/// Lock 1: the frozen vectors are ground truth for the kernel too.
#[test]
fn kernel_matches_frozen_fma_vectors() {
    let text = std::fs::read_to_string(VECTORS_PATH).expect("frozen vector file");
    let mut checked = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(fields.len(), 5, "line {}: {line}", lineno + 1);
        let parse = |s: &str| u16::from_str_radix(s, 16).expect("hex field");
        let (a, b, c) = (parse(fields[0]), parse(fields[1]), parse(fields[2]));
        let mode = parse_mode(fields[3]).expect("mode field");
        let expected = parse(fields[4]);
        assert_eq!(
            step(a, b, c, mode),
            expected,
            "line {}: fma_acc({a:#06x}, {b:#06x}, {c:#06x}, {mode:?})",
            lineno + 1
        );
        checked += 1;
    }
    assert!(
        checked >= 200,
        "expected >= 200 frozen vectors, got {checked}"
    );
}

/// Class-covering probe set for the non-exhaustive operand slots: zeros,
/// ones, subnormal edges, normal edges, max finite, infinities, NaNs, and
/// a few odd-significand values that exercise tie-breaking.
fn probes() -> [u16; 14] {
    [
        0x0000, 0x8000, // +-0
        0x3C00, 0xBC01, // +-1-ish (odd significand on the negative side)
        0x0001, 0x8001, // min subnormals
        0x03FF, // max subnormal
        0x0400, // min normal
        0x7BFF, 0xFBFF, // +-max finite
        0x7C00, 0xFC00, // +-inf
        0x7E00, 0x7C01, // canonical and signalling-pattern NaN
    ]
}

/// Lock 2: exhaustive pairs. All 2^16 bit patterns sweep through each
/// operand position in turn, against every (probe, probe) pair in the
/// other two slots — ~38M FMA comparisons under RNE.
#[test]
fn kernel_matches_fma_exhaustively_per_slot() {
    let probes = probes();
    let mode = Round::NearestEven;
    for sweep in (0u32..=0xFFFF).map(|v| v as u16) {
        for &p in &probes {
            for &q in &probes {
                assert_eq!(
                    step(sweep, p, q, mode),
                    fma(sweep, p, q, mode),
                    "a-slot sweep a={sweep:#06x} b={p:#06x} c={q:#06x}"
                );
                assert_eq!(
                    step(p, sweep, q, mode),
                    fma(p, sweep, q, mode),
                    "b-slot sweep a={p:#06x} b={sweep:#06x} c={q:#06x}"
                );
                assert_eq!(
                    step(p, q, sweep, mode),
                    fma(p, q, sweep, mode),
                    "c-slot sweep a={p:#06x} b={q:#06x} c={sweep:#06x}"
                );
            }
        }
    }
}

/// Lock 3: dense pseudo-random soak over all five rounding modes (the
/// exhaustive sweep above fixes RNE; modes differ only in the shared
/// rounding core, but the equivalence claim is per mode).
#[test]
fn kernel_matches_fma_randomly_in_every_mode() {
    let mut state = 0x1234_5678u32;
    let mut next = move || {
        // xorshift32: deterministic, dependency-free.
        state ^= state << 13;
        state ^= state >> 17;
        state ^= state << 5;
        state
    };
    for _ in 0..200_000 {
        let r = next();
        let a = (r & 0xFFFF) as u16;
        let b = (r >> 16) as u16;
        let c = (next() & 0xFFFF) as u16;
        for mode in Round::ALL {
            assert_eq!(
                step(a, b, c, mode),
                fma(a, b, c, mode),
                "a={a:#06x} b={b:#06x} c={c:#06x} mode={mode:?}"
            );
        }
    }
}
