//! Directed FMA test vectors, checked in at `tests/vectors/fma.txt`.
//!
//! The file was generated **once** from the softfloat reference
//! ([`redmule_fp16::arith::fma`]) by the `#[ignore]`d
//! `regenerate_vectors` test and committed; from then on it is ground
//! truth. `checked_in_vectors_match_exactly` replays every line and
//! asserts bit-exact equality, so any change to rounding, subnormal
//! handling or NaN propagation shows up as a diff against the frozen
//! file rather than silently moving the reference.
//!
//! Line format: `a b c mode expected` (hex bit patterns, mode one of
//! `rne rtz rdn rup rmm`); `#` starts a comment.

use redmule_fp16::arith::fma;
use redmule_fp16::Round;

const VECTORS_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/vectors/fma.txt");

fn mode_name(mode: Round) -> &'static str {
    match mode {
        Round::NearestEven => "rne",
        Round::TowardZero => "rtz",
        Round::Down => "rdn",
        Round::Up => "rup",
        Round::NearestMaxMagnitude => "rmm",
    }
}

fn parse_mode(s: &str) -> Option<Round> {
    Some(match s {
        "rne" => Round::NearestEven,
        "rtz" => Round::TowardZero,
        "rdn" => Round::Down,
        "rup" => Round::Up,
        "rmm" => Round::NearestMaxMagnitude,
        _ => return None,
    })
}

/// The directed inputs: every case the checked-in file covers, grouped
/// by the corner it aims at.
fn directed_inputs() -> Vec<(u16, u16, u16, Round)> {
    let mut cases: Vec<(u16, u16, u16, Round)> = Vec::new();
    let all = Round::ALL;

    // --- RNE ties ------------------------------------------------------
    // 1.0 + 2^-11 sits exactly halfway between 1.0 and 1.0 + ulp;
    // 0x3C01 + 2^-11 is the odd-significand mirror. 0x1000 = 2^-11.
    for c in [0x3C00u16, 0x3C01, 0x3C02, 0x3C03] {
        for mode in all {
            cases.push((0x3C00, 0x1000, c, mode));
        }
    }
    // Halfway products: (1 + 2^-5)^2 has a bit landing on the round bit.
    for (a, b) in [(0x3C20u16, 0x3C20u16), (0x3C10, 0x3C10), (0x3C01, 0x3C01)] {
        for mode in all {
            cases.push((a, b, 0x0000, mode));
        }
    }

    // --- Subnormal flush boundaries ------------------------------------
    // minsub * 0.5 is a tie at half the smallest subnormal: RNE flushes
    // to +0, Up keeps 0x0001 — the flush boundary itself.
    for mode in all {
        cases.push((0x0001, 0x3800, 0x0000, mode)); // minsub * 0.5
        cases.push((0x8001, 0x3800, 0x0000, mode)); // -minsub * 0.5
        cases.push((0x0001, 0x3C00, 0x0000, mode)); // minsub exactly
        cases.push((0x0400, 0x3800, 0x0000, mode)); // minnormal * 0.5 -> subnormal
        cases.push((0x0401, 0x3800, 0x0000, mode)); // just above the boundary
        cases.push((0x03FF, 0x3C00, 0x0001, mode)); // maxsub + minsub -> minnormal
        cases.push((0x0200, 0x3C00, 0x0200, mode)); // subnormal + subnormal
        cases.push((0x0001, 0x0001, 0x0000, mode)); // minsub^2: total underflow
        cases.push((0x0001, 0x0001, 0x8000, mode)); // underflow onto -0
    }

    // --- NaN propagation -----------------------------------------------
    let qnan = 0x7E00u16;
    let snan = 0x7C01u16;
    let neg_nan = 0xFE77u16;
    for mode in [Round::NearestEven, Round::TowardZero] {
        for (a, b, c) in [
            (qnan, 0x3C00, 0x3C00),
            (0x3C00, qnan, 0x3C00),
            (0x3C00, 0x3C00, qnan),
            (snan, 0x3C00, 0x3C00),
            (0x3C00, snan, 0x3C00),
            (0x3C00, 0x3C00, snan),
            (neg_nan, 0x0000, 0x7C00),
            (qnan, snan, neg_nan),
            (qnan, 0x7C00, 0x0000),
        ] {
            cases.push((a, b, c, mode));
        }
    }

    // --- Inf arithmetic and Inf - Inf ----------------------------------
    let inf = 0x7C00u16;
    let ninf = 0xFC00u16;
    for mode in all {
        cases.push((inf, 0x3C00, ninf, mode)); // +Inf + -Inf -> NaN
        cases.push((inf, 0xBC00, inf, mode)); // -Inf + +Inf -> NaN
        cases.push((inf, 0x0000, 0x3C00, mode)); // Inf * 0 -> NaN
        cases.push((0x0000, ninf, 0x0000, mode)); // 0 * -Inf -> NaN
        cases.push((inf, 0x3C00, 0x3C00, mode)); // Inf stays Inf
        cases.push((0x3C00, 0x3C00, ninf, mode)); // finite + -Inf -> -Inf
    }

    // --- Overflow saturation, per rounding mode ------------------------
    // MAX * 2 overflows: RNE/RMM/Up -> +Inf, RTZ/Down -> MAX. Mirrored
    // for the negative side.
    for mode in all {
        cases.push((0x7BFF, 0x4000, 0x0000, mode)); // MAX * 2
        cases.push((0xFBFF, 0x4000, 0x0000, mode)); // -MAX * 2
        cases.push((0x7BFF, 0x3C00, 0x7BFF, mode)); // MAX + MAX
        cases.push((0x7BFF, 0x3C01, 0x0000, mode)); // barely over
    }

    // --- Signed zeros ---------------------------------------------------
    for mode in all {
        cases.push((0x0000, 0x3C00, 0x8000, mode)); // +0 + -0 (mode-dependent!)
        cases.push((0x8000, 0x3C00, 0x0000, mode)); // -0 + +0
        cases.push((0x8000, 0x3C00, 0x8000, mode)); // -0 + -0 = -0
        cases.push((0xBC00, 0x0000, 0x0000, mode)); // -1 * +0 + +0
    }

    // --- Deterministic seeded fill up to ~200 cases ---------------------
    let mut state = 0x1234_5678_9ABC_DEF0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    while cases.len() < 200 {
        let r = next();
        let mode = Round::ALL[(r >> 48) as usize % 5];
        cases.push((r as u16, (r >> 16) as u16, (r >> 32) as u16, mode));
    }
    cases
}

fn render_vectors() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str(
        "# Directed FP16 FMA vectors: a b c mode expected (hex bit patterns).\n\
         # Generated from the softfloat reference by fma_vectors.rs::regenerate_vectors\n\
         # and FROZEN: a diff in existing lines means the rounding behaviour moved.\n",
    );
    for (a, b, c, mode) in directed_inputs() {
        let expected = fma(a, b, c, mode);
        let _ = writeln!(
            out,
            "{a:04x} {b:04x} {c:04x} {} {expected:04x}",
            mode_name(mode)
        );
    }
    out
}

/// Without `REGEN_FMA_VECTORS=1` this is a dry-run: it renders the file
/// from the reference and asserts it matches what is checked in (the
/// nightly CI drift check). With the variable set — only when adding
/// new directed cases — it (re)writes `tests/vectors/fma.txt`; review
/// the diff, existing lines changing means the reference moved.
#[test]
#[ignore = "slow-path drift check; nightly CI runs it via --include-ignored"]
fn regenerate_vectors() {
    let out = render_vectors();
    let exists = std::path::Path::new(VECTORS_PATH).exists();
    if std::env::var_os("REGEN_FMA_VECTORS").is_some() || !exists {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/vectors");
        std::fs::create_dir_all(dir).expect("create vectors dir");
        std::fs::write(VECTORS_PATH, out).expect("write fma.txt");
    } else {
        let current = std::fs::read_to_string(VECTORS_PATH).expect("read fma.txt");
        assert_eq!(
            current, out,
            "the softfloat reference no longer reproduces the frozen vectors; \
             if the change is intentional, regenerate with REGEN_FMA_VECTORS=1 \
             and review the diff"
        );
    }
}

/// Every checked-in vector must match the implementation bit-exactly.
#[test]
fn checked_in_vectors_match_exactly() {
    let text = std::fs::read_to_string(VECTORS_PATH)
        .unwrap_or_else(|e| panic!("cannot read {VECTORS_PATH}: {e}"));
    let mut checked = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        assert_eq!(
            fields.len(),
            5,
            "{VECTORS_PATH}:{}: expected `a b c mode expected`",
            lineno + 1
        );
        let parse = |s: &str| u16::from_str_radix(s, 16).expect("hex field");
        let (a, b, c) = (parse(fields[0]), parse(fields[1]), parse(fields[2]));
        let mode = parse_mode(fields[3])
            .unwrap_or_else(|| panic!("{VECTORS_PATH}:{}: bad mode {}", lineno + 1, fields[3]));
        let expected = parse(fields[4]);
        let got = fma(a, b, c, mode);
        assert_eq!(
            got,
            expected,
            "{VECTORS_PATH}:{}: fma({a:#06x}, {b:#06x}, {c:#06x}, {}) = {got:#06x}, \
             file says {expected:#06x}",
            lineno + 1,
            mode_name(mode),
        );
        checked += 1;
    }
    assert!(
        checked >= 200,
        "only {checked} vectors in {VECTORS_PATH}; the directed set is ~200"
    );
}

/// The directed input list itself stays in sync with the file size —
/// guards against the generator and the checked-in file drifting apart.
#[test]
fn directed_set_covers_every_category() {
    let inputs = directed_inputs();
    assert!(inputs.len() >= 200);
    let has = |f: &dyn Fn(&(u16, u16, u16, Round)) -> bool| inputs.iter().any(|t| f(t));
    assert!(has(&|&(a, ..)| a == 0x0001), "subnormal boundary cases");
    assert!(has(&|&(a, ..)| a == 0x7E00), "quiet NaN cases");
    assert!(has(&|&(a, ..)| a == 0x7C01), "signalling NaN cases");
    assert!(
        has(&|&(a, _, c, _)| a == 0x7C00 && c == 0xFC00),
        "Inf - Inf cases"
    );
    assert!(has(&|&(a, ..)| a == 0x7BFF), "overflow saturation cases");
    for mode in Round::ALL {
        assert!(has(&|&(.., m)| m == mode), "mode {mode:?} is exercised");
    }
}
