//! Directed FP8 cast vectors, checked in at `tests/vectors/e4m3.txt`
//! and `tests/vectors/e5m2.txt`.
//!
//! Each file was generated **once** from the softfloat reference
//! ([`redmule_fp16::E4M3::from_f16`] / [`redmule_fp16::E5M2::from_f16`])
//! by the `#[ignore]`d `regenerate_vectors` test and committed; from then
//! on it is ground truth. `checked_in_vectors_match_exactly` replays
//! every line and asserts bit-exact equality, so any change to the
//! narrowing rounding, the OFP8 overflow policy or the NaN payload
//! handling shows up as a diff against the frozen files rather than
//! silently moving the reference.
//!
//! Line format: `a mode expected` — `a` the binary16 input (4 hex
//! digits), `mode` one of `rne rtz rdn rup rmm`, `expected` the FP8
//! result (2 hex digits); `#` starts a comment.

use redmule_fp16::{Round, E4M3, E5M2, F16};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Fp8Kind {
    E4M3,
    E5M2,
}

impl Fp8Kind {
    const ALL: [Fp8Kind; 2] = [Fp8Kind::E4M3, Fp8Kind::E5M2];

    fn path(self) -> &'static str {
        match self {
            Fp8Kind::E4M3 => concat!(env!("CARGO_MANIFEST_DIR"), "/tests/vectors/e4m3.txt"),
            Fp8Kind::E5M2 => concat!(env!("CARGO_MANIFEST_DIR"), "/tests/vectors/e5m2.txt"),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Fp8Kind::E4M3 => "E4M3",
            Fp8Kind::E5M2 => "E5M2",
        }
    }

    fn narrow(self, bits: u16, mode: Round) -> u8 {
        let v = F16::from_bits(bits);
        match self {
            Fp8Kind::E4M3 => E4M3::from_f16(v, mode).to_bits(),
            Fp8Kind::E5M2 => E5M2::from_f16(v, mode).to_bits(),
        }
    }
}

fn mode_name(mode: Round) -> &'static str {
    match mode {
        Round::NearestEven => "rne",
        Round::TowardZero => "rtz",
        Round::Down => "rdn",
        Round::Up => "rup",
        Round::NearestMaxMagnitude => "rmm",
    }
}

fn parse_mode(s: &str) -> Option<Round> {
    Some(match s {
        "rne" => Round::NearestEven,
        "rtz" => Round::TowardZero,
        "rdn" => Round::Down,
        "rup" => Round::Up,
        "rmm" => Round::NearestMaxMagnitude,
        _ => return None,
    })
}

/// The directed binary16 inputs for one format: every case the
/// checked-in file covers, grouped by the corner it aims at.
fn directed_inputs(kind: Fp8Kind) -> Vec<(u16, Round)> {
    let mut cases: Vec<(u16, Round)> = Vec::new();
    let all = Round::ALL;
    let push_all = |cases: &mut Vec<(u16, Round)>, bits: &[u16]| {
        for &b in bits {
            for mode in all {
                cases.push((b, mode));
            }
        }
    };

    // --- Zeros and exact small values ----------------------------------
    push_all(&mut cases, &[0x0000, 0x8000, 0x3C00, 0xBC00, 0x4000]);

    // --- Format-specific ties, ulp steps and range edges ---------------
    match kind {
        Fp8Kind::E4M3 => push_all(
            &mut cases,
            &[
                0x3C40, // 1 + 1/16: tie between 1.0 (even) and 1.125 (odd)
                0x3CC0, // 1 + 3/16: tie between 1.125 (odd) and 1.25 (even)
                0x3C41, // just above the first tie
                0x5F00, // 448 = E4M3 MAX, exact
                0x5F40, // 464: tie between MAX and the virtual 480 rung
                0x5F41, // just above the overflow tie
                0xDF40, // -464: the mirrored overflow tie
                0x1800, // 2^-9 = E4M3 min subnormal, exact
                0x1400, // 2^-10: tie at half the min subnormal
                0x1000, // 2^-11: under half, rounds by mode only via rup
                0x1C00, // 2^-8 = two min subnormals
                0x1A00, // 1.5 * 2^-9: tie between one and two min subnormals
                0x2000, // 2^-7 = E4M3 min normal
                0x1F00, // just under the min normal: subnormal result
            ],
        ),
        Fp8Kind::E5M2 => push_all(
            &mut cases,
            &[
                0x3C80, // 1 + 1/8: tie between 1.0 (even) and 1.25 (odd)
                0x3D80, // 1 + 3/8: tie between 1.25 (odd) and 1.5 (even)
                0x3C81, // just above the first tie
                0x7800, // 57344 = E5M2 MAX, exact
                0x7B80, // 61440: tie between MAX and the virtual 65536 rung
                0x7B81, // just above the overflow tie
                0xFB80, // -61440: the mirrored overflow tie
                0x0100, // 2^-16 = E5M2 min subnormal, exact
                0x0080, // 2^-17: tie at half the min subnormal
                0x0040, // 2^-18: under half
                0x0180, // 1.5 * 2^-16: tie between one and two min subnormals
                0x0400, // 2^-14 = E5M2 min normal (binary16's too)
                0x03FF, // binary16's max subnormal: subnormal in E5M2 too
            ],
        ),
    }

    // --- Specials: infinities and NaN payloads -------------------------
    // E4M3 collapses Inf to NaN; E5M2 keeps it. NaN payload narrowing
    // differs per format — the frozen file pins both policies.
    push_all(
        &mut cases,
        &[
            0x7C00, 0xFC00, // +/-Inf
            0x7E00, 0xFE00, // canonical qNaN, both signs
            0x7C01, 0xFC01, // sNaN with a low payload bit only
            0x7D00, // NaN, payload top bits 01
            0x7F33, // NaN, payload top bits 11 plus noise
            0xFE77, // -NaN with mixed payload
        ],
    );

    // --- Overflow far past the range -----------------------------------
    push_all(&mut cases, &[0x7BFF, 0xFBFF, 0x7801, 0xF801]);

    // --- Deterministic seeded fill up to ~220 cases --------------------
    let mut state = match kind {
        Fp8Kind::E4M3 => E4M3_SEED,
        Fp8Kind::E5M2 => E5M2_SEED,
    };
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    while cases.len() < 220 {
        let r = next();
        let mode = Round::ALL[(r >> 48) as usize % 5];
        cases.push((r as u16, mode));
    }
    cases
}

const E4M3_SEED: u64 = 0xE4F8_0001_2345_6789;
const E5M2_SEED: u64 = 0xE5F8_0002_BCDE_F012;

fn render_vectors(kind: Fp8Kind) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Directed binary16 -> {} cast vectors: a mode expected (hex bit patterns).\n\
         # Generated from the softfloat reference by fp8_vectors.rs::regenerate_vectors\n\
         # and FROZEN: a diff in existing lines means the narrowing behaviour moved.",
        kind.name()
    );
    for (a, mode) in directed_inputs(kind) {
        let expected = kind.narrow(a, mode);
        let _ = writeln!(out, "{a:04x} {} {expected:02x}", mode_name(mode));
    }
    out
}

/// Without `REGEN_FP8_VECTORS=1` this is a dry-run: it renders both files
/// from the reference and asserts they match what is checked in (the
/// nightly CI drift check). With the variable set — only when adding new
/// directed cases — it (re)writes `tests/vectors/e4m3.txt` and
/// `e5m2.txt`; review the diff, existing lines changing means the
/// reference moved.
#[test]
#[ignore = "slow-path drift check; nightly CI runs it via --include-ignored"]
fn regenerate_vectors() {
    for kind in Fp8Kind::ALL {
        let out = render_vectors(kind);
        let path = kind.path();
        let exists = std::path::Path::new(path).exists();
        if std::env::var_os("REGEN_FP8_VECTORS").is_some() || !exists {
            let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/vectors");
            std::fs::create_dir_all(dir).expect("create vectors dir");
            std::fs::write(path, out).expect("write fp8 vectors");
        } else {
            let current = std::fs::read_to_string(path).expect("read fp8 vectors");
            assert_eq!(
                current,
                out,
                "the {} reference no longer reproduces the frozen vectors; \
                 if the change is intentional, regenerate with REGEN_FP8_VECTORS=1 \
                 and review the diff",
                kind.name()
            );
        }
    }
}

/// Every checked-in vector must match the implementation bit-exactly.
#[test]
fn checked_in_vectors_match_exactly() {
    for kind in Fp8Kind::ALL {
        let path = kind.path();
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        let mut checked = 0usize;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            assert_eq!(
                fields.len(),
                3,
                "{path}:{}: expected `a mode expected`",
                lineno + 1
            );
            let a = u16::from_str_radix(fields[0], 16).expect("hex input");
            let mode = parse_mode(fields[1])
                .unwrap_or_else(|| panic!("{path}:{}: bad mode {}", lineno + 1, fields[1]));
            let expected = u8::from_str_radix(fields[2], 16).expect("hex expected");
            let got = kind.narrow(a, mode);
            assert_eq!(
                got,
                expected,
                "{path}:{}: {}::from_f16({a:#06x}, {}) = {got:#04x}, file says {expected:#04x}",
                lineno + 1,
                kind.name(),
                mode_name(mode),
            );
            checked += 1;
        }
        assert!(
            checked >= 220,
            "only {checked} vectors in {path}; the directed set is ~220"
        );
    }
}

/// The directed input list itself stays in sync with the files — guards
/// against the generator and the checked-in vectors drifting apart.
#[test]
fn directed_set_covers_every_category() {
    for kind in Fp8Kind::ALL {
        let inputs = directed_inputs(kind);
        assert!(inputs.len() >= 220);
        let has = |f: &dyn Fn(&(u16, Round)) -> bool| inputs.iter().any(|t| f(t));
        assert!(has(&|&(a, _)| a == 0x7C00), "+Inf case ({kind:?})");
        assert!(has(&|&(a, _)| a == 0x7E00), "quiet NaN case ({kind:?})");
        assert!(
            has(&|&(a, _)| a == 0x7C01),
            "signalling NaN case ({kind:?})"
        );
        let overflow_tie = match kind {
            Fp8Kind::E4M3 => 0x5F40,
            Fp8Kind::E5M2 => 0x7B80,
        };
        assert!(
            has(&|&(a, _)| a == overflow_tie),
            "overflow-boundary tie case ({kind:?})"
        );
        let half_minsub = match kind {
            Fp8Kind::E4M3 => 0x1400,
            Fp8Kind::E5M2 => 0x0080,
        };
        assert!(
            has(&|&(a, _)| a == half_minsub),
            "underflow-tie case ({kind:?})"
        );
        for mode in Round::ALL {
            assert!(has(&|&(_, m)| m == mode), "mode {mode:?} ({kind:?})");
        }
    }
}
