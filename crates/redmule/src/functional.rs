//! Fast functional backend: bit-exact GEMM results without per-cycle
//! simulation.
//!
//! [`FunctionalGemm`] computes `Z = X * W (+ Y)` by walking the *same*
//! schedule as the cycle-accurate engine — `L x phase_width` output tiles
//! in row-major tile order, H-wide reduction phases over N, one FP16 FMA
//! per reduction element in index order through the crate softfloat — but
//! skips the streamer, buffers and datapath pipeline entirely. Because the
//! datapath's row ring accumulates each output element through exactly
//! that FMA sequence (see [`Engine`](crate::Engine)), the functional
//! result is **bit-identical** to [`Engine::run`](crate::Engine::run) and
//! to `redmule_fp16::vector::gemm_golden`; only the cycle count differs
//! (here an analytical estimate instead of a measurement).
//!
//! Bit-exactness with the cycle model is a hard invariant, enforced by
//! the differential conformance harness (`tests/conformance.rs` at the
//! workspace root) in addition to the unit tests below.
//!
//! Use it when throughput of *results* matters more than cycle accuracy:
//! batched execution, conformance fuzzing, or network training loops that
//! only occasionally need a cycle-accurate calibration run.

use crate::config::AccelConfig;
use crate::engine::EngineError;
use redmule_fp16::vector::GemmShape;
use redmule_fp16::{Format, F16};
use redmule_hwsim::Cycle;
use redmule_obs::{EventLog, TraceEvent};
use std::borrow::Cow;

/// Which execution model a GEMM runs on.
///
/// Both kinds produce bit-identical `Z`; they differ only in speed and in
/// the fidelity of the reported cycle count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The cycle-accurate engine: exact cycles, slow (simulates every
    /// clock edge).
    #[default]
    CycleAccurate,
    /// [`FunctionalGemm`]: identical numerics, cycles from the analytical
    /// performance model, orders of magnitude faster on the host.
    Functional,
}

impl BackendKind {
    /// Short stable label (`"cycle"` / `"functional"`), used in reports
    /// and benchmark artefacts.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::CycleAccurate => "cycle",
            BackendKind::Functional => "functional",
        }
    }
}

/// Outcome of a functional GEMM run.
#[derive(Debug, Clone)]
pub struct FunctionalRun {
    /// The output matrix (`m x k`, row-major) — bit-identical to the
    /// cycle-accurate engine's result for the same operands.
    pub z: Vec<F16>,
    /// Analytical cycle estimate from the paper's performance model (the
    /// same model the supervisor uses for degradation decisions); not a
    /// measurement.
    pub estimated_cycles: Cycle,
    /// Useful FMA operations (`M*N*K`).
    pub macs: u64,
}

/// The functional (untimed) GEMM model for one accelerator instance.
///
/// # Example
///
/// ```
/// use redmule::{Accelerator, FunctionalGemm};
/// use redmule_fp16::{vector::GemmShape, F16};
///
/// let shape = GemmShape::new(5, 11, 7);
/// let x: Vec<F16> = (0..shape.x_len()).map(|i| F16::from_f32(i as f32 / 8.0)).collect();
/// let w: Vec<F16> = (0..shape.w_len()).map(|i| F16::from_f32(0.5 - i as f32 / 64.0)).collect();
/// let fast = FunctionalGemm::paper_instance().run(shape, &x, &w)?;
/// let slow = Accelerator::paper_instance().gemm(shape, &x, &w)?;
/// assert_eq!(
///     fast.z.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
///     slow.z.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
/// );
/// # Ok::<(), redmule::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FunctionalGemm {
    cfg: AccelConfig,
}

impl FunctionalGemm {
    /// A functional model of the paper's instance (`H=4, L=8, P=3`).
    pub fn paper_instance() -> FunctionalGemm {
        FunctionalGemm::new(AccelConfig::paper())
    }

    /// A functional model of a custom instance. The instance parameters
    /// only affect the cycle estimate and the tile walk order — never the
    /// numerics, which are schedule-invariant by construction.
    pub fn new(cfg: AccelConfig) -> FunctionalGemm {
        FunctionalGemm { cfg }
    }

    /// The modelled instance parameters.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Computes `Z = X * W`.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when an operand slice length does
    /// not match `shape`.
    pub fn run(
        &self,
        shape: GemmShape,
        x: &[F16],
        w: &[F16],
    ) -> Result<FunctionalRun, EngineError> {
        self.run_inner(shape, Format::Fp16, x, w, None)
    }

    /// Computes `Z = X * W + Y` (accumulate mode).
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when an operand slice length does
    /// not match `shape` (`Y` must be `m x k`).
    pub fn run_accumulate(
        &self,
        shape: GemmShape,
        x: &[F16],
        w: &[F16],
        y: &[F16],
    ) -> Result<FunctionalRun, EngineError> {
        self.run_inner(shape, Format::Fp16, x, w, Some(y))
    }

    /// Computes `Z = X * W` with operands stored in `format`.
    ///
    /// Models the cast-in/cast-out datapath exactly: operands are
    /// projected through the storage format (castout at staging, castin
    /// widening at buffer fill), accumulated in FP16, and the result is
    /// projected through the format again (castout at store drain, castin
    /// at readback) — so the output is bit-identical to staging the same
    /// FP16 slices for [`crate::Engine::run`] and reading the workspace
    /// back widened.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when an operand slice length does
    /// not match `shape`.
    pub fn run_format(
        &self,
        shape: GemmShape,
        format: Format,
        x: &[F16],
        w: &[F16],
    ) -> Result<FunctionalRun, EngineError> {
        self.run_inner(shape, format, x, w, None)
    }

    /// Computes `Z = X * W + Y` with operands stored in `format`
    /// (see [`FunctionalGemm::run_format`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when an operand slice length does
    /// not match `shape` (`Y` must be `m x k`).
    pub fn run_accumulate_format(
        &self,
        shape: GemmShape,
        format: Format,
        x: &[F16],
        w: &[F16],
        y: &[F16],
    ) -> Result<FunctionalRun, EngineError> {
        self.run_inner(shape, format, x, w, Some(y))
    }

    /// Analytical cycle estimate for `shape` on this instance, exact
    /// against [`crate::Engine::run`] for uncontended fault-free runs
    /// (pinned by the `cycle_model` regression tests):
    ///
    /// * each tile computes for `tile_len = H*(P+1) + n_phases*pw` cycles
    ///   and W-group prefetch hides every tile-boundary stall, so the
    ///   `n_tiles` compute blocks are back to back;
    /// * the initial pipeline fill costs `min(N,H)` W loads plus
    ///   `min(M,L)` X loads before the first FMA issues;
    /// * the final drain stores the last tile's `rows_last` live rows at
    ///   one per cycle, the first overlapping the last compute tick
    ///   (`rows_last - 1` extra cycles);
    /// * empty-reduction jobs (`N == 0`) flush one tile per cycle while
    ///   stores drain in parallel: `max(n_tiles, M * ceil(K/pw))`.
    ///
    /// The same model backs
    /// [`crate::EngineSession::estimated_remaining_cycles`].
    pub fn estimated_cycles(&self, shape: GemmShape) -> Cycle {
        self.estimated_cycles_format(shape, Format::Fp16)
    }

    /// Analytical cycle estimate for `shape` with operands stored in
    /// `format` (see [`FunctionalGemm::estimated_cycles`] for the base
    /// model). Bandwidth is byte-denominated: with half-width FP8 elements
    /// the streamer serves two transactions per granted beat, so the fill
    /// and drain terms — the only memory-bound parts of an uncontended
    /// schedule — halve (rounded up) while the compute blocks are
    /// unchanged. FP8 therefore never estimates slower than FP16 on the
    /// same shape.
    pub fn estimated_cycles_format(&self, shape: GemmShape, format: Format) -> Cycle {
        let cfg = &self.cfg;
        let beat: u64 = if format.is_fp8() { 2 } else { 1 };
        let pw = cfg.phase_width();
        let n_phases = shape.n.div_ceil(cfg.h);
        let tiles_m = shape.m.div_ceil(cfg.l);
        let tiles_k = shape.k.div_ceil(pw);
        let n_tiles = (tiles_m * tiles_k) as u64;
        if n_tiles == 0 {
            return Cycle::new(0); // degenerate M == 0 or K == 0: no output
        }
        if n_phases == 0 {
            let store_rows = ((shape.m * tiles_k) as u64).div_ceil(beat);
            return Cycle::new(n_tiles.max(store_rows));
        }
        let tile_len = (cfg.h * cfg.latency() + n_phases * pw) as u64;
        let fill = ((shape.n.min(cfg.h) + shape.m.min(cfg.l)) as u64).div_ceil(beat);
        // Drain: the last tile's stores leave at `beat` rows per cycle,
        // minus the one store that overlaps the final compute cycle —
        // `ceil(rows/beat) - 1`, which degenerates to `rows - 1` for FP16.
        let rows_last = (shape.m - (tiles_m - 1) * cfg.l) as u64;
        Cycle::new(n_tiles * tile_len + fill + rows_last.div_ceil(beat).saturating_sub(1))
    }

    /// Synthesises a tile-granular trace from the analytical model: one
    /// `TileStart`/`TileEnd` pair per output tile in the engine's
    /// enumeration order (L-row bands, phase-width panels, row-major),
    /// each spanning the model's back-to-back `tile_len` compute block.
    /// A pure function of shape and configuration, so batch traces of
    /// functional jobs stay worker-count invariant.
    pub fn synthetic_events(&self, shape: GemmShape) -> EventLog {
        let cfg = &self.cfg;
        let pw = cfg.phase_width().max(1);
        let n_phases = shape.n.div_ceil(cfg.h.max(1));
        let tile_len = (cfg.h * cfg.latency() + n_phases * pw) as u64;
        let mut log = EventLog::new();
        let mut tile = 0u32;
        for row0 in (0..shape.m).step_by(cfg.l.max(1)) {
            for k0 in (0..shape.k).step_by(pw) {
                // Empty-reduction tiles flush one per cycle; compute
                // tiles run back to back for tile_len cycles each.
                let (start, end) = if n_phases == 0 {
                    (u64::from(tile), u64::from(tile))
                } else {
                    let t = u64::from(tile);
                    (t * tile_len, (t + 1) * tile_len - 1)
                };
                log.push(TraceEvent::TileStart {
                    cycle: start,
                    tile,
                    row0: row0 as u32,
                    rows: (shape.m - row0).min(cfg.l) as u32,
                    cols: (shape.k - k0).min(pw) as u32,
                });
                log.push(TraceEvent::TileEnd { cycle: end, tile });
                tile += 1;
            }
        }
        log
    }

    fn run_inner(
        &self,
        shape: GemmShape,
        format: Format,
        x: &[F16],
        w: &[F16],
        y: Option<&[F16]>,
    ) -> Result<FunctionalRun, EngineError> {
        check_len("X", shape.x_len(), x.len())?;
        check_len("W", shape.w_len(), w.len())?;
        if let Some(y) = y {
            check_len("Y", shape.z_len(), y.len())?;
        }

        // Operands pass through TCDM storage on the way in: quantise them
        // through the format once, exactly as castout-at-staging followed
        // by castin-at-buffer-fill does (identity for FP16).
        let x = quantized(format, x);
        let w = quantized(format, w);
        let y = y.map(|y| quantized(format, y));
        let (x, w, y) = (&*x, &*w, y.as_deref());

        let (m, n, k) = (shape.m, shape.n, shape.k);
        let cfg = &self.cfg;
        let pw = cfg.phase_width();
        let n_phases = n.div_ceil(cfg.h);
        let mut z = vec![F16::ZERO; shape.z_len()];

        // The engine's tile enumeration: L-row bands, phase_width-column
        // panels, row-major. Within a tile, outputs retire z-row-major;
        // each output element folds its N reduction terms in index order
        // through H-wide phases — the exact FMA sequence the datapath's
        // row ring performs, so rounding is identical step by step.
        // Padding lanes (beyond `rows_live`/`cols_live`/`n`) are
        // clock-gated in hardware and simply not computed here.
        for row0 in (0..m).step_by(cfg.l.max(1)) {
            for k0 in (0..k).step_by(pw.max(1)) {
                let rows_live = (m - row0).min(cfg.l);
                let cols_live = (k - k0).min(pw);
                for r in 0..rows_live {
                    let i = row0 + r;
                    for c in 0..cols_live {
                        let j = k0 + c;
                        let mut acc = y.map_or(F16::ZERO, |y| y[i * k + j]);
                        for phase in 0..n_phases {
                            for lane in 0..cfg.h {
                                let l = phase * cfg.h + lane;
                                if l < n {
                                    acc = x[i * n + l].mul_add(w[l * k + j], acc);
                                }
                            }
                        }
                        // Results pass through storage on the way out:
                        // castout narrowing at store drain, castin widening
                        // at readback (identity for FP16).
                        z[i * k + j] = format.quantize(acc);
                    }
                }
            }
        }

        Ok(FunctionalRun {
            z,
            estimated_cycles: self.estimated_cycles_format(shape, format),
            macs: shape.macs(),
        })
    }
}

/// Projects a slice through the storage format (castout + castin), or
/// borrows it unchanged for the native FP16 format.
fn quantized(format: Format, v: &[F16]) -> Cow<'_, [F16]> {
    if format.is_fp8() {
        Cow::Owned(v.iter().map(|&e| format.quantize(e)).collect())
    } else {
        Cow::Borrowed(v)
    }
}

fn check_len(operand: &'static str, expected: usize, got: usize) -> Result<(), EngineError> {
    if expected == got {
        Ok(())
    } else {
        Err(EngineError::ShapeMismatch {
            operand,
            expected,
            got,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use redmule_fp16::vector::gemm_golden;

    fn bits(z: &[F16]) -> Vec<u16> {
        z.iter().map(|v| v.to_bits()).collect()
    }

    fn operands(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
        let gen = |len: usize, s: u32| -> Vec<F16> {
            (0..len)
                .map(|i| {
                    let h =
                        ((i as u32).wrapping_mul(2654435761) ^ s.wrapping_mul(0x85EB_CA6B)) >> 16;
                    F16::from_f32((h % 97) as f32 / 32.0 - 1.5)
                })
                .collect()
        };
        (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xABCD))
    }

    #[test]
    fn matches_golden_and_engine_on_aligned_and_ragged_shapes() {
        for (m, n, k) in [
            (8, 16, 16), // exactly one tile
            (16, 32, 32),
            (1, 1, 1),
            (5, 11, 7),   // ragged in every dimension
            (9, 4, 17),   // crosses both tile boundaries
            (20, 24, 20), // multiple tiles each way
        ] {
            let shape = GemmShape::new(m, n, k);
            let (x, w) = operands(shape, (m * 1000 + n * 10 + k) as u32);
            let fast = FunctionalGemm::paper_instance()
                .run(shape, &x, &w)
                .expect("functional run");
            let golden = gemm_golden(shape, &x, &w);
            let hw = Accelerator::paper_instance()
                .gemm(shape, &x, &w)
                .expect("engine run");
            assert_eq!(bits(&fast.z), bits(&golden), "vs golden at {m}x{n}x{k}");
            assert_eq!(bits(&fast.z), bits(&hw.z), "vs engine at {m}x{n}x{k}");
            assert_eq!(fast.macs, shape.macs());
            assert!(fast.estimated_cycles.count() > 0);
        }
    }

    #[test]
    fn accumulate_matches_engine() {
        let shape = GemmShape::new(10, 12, 18);
        let (x, w) = operands(shape, 7);
        let y: Vec<F16> = (0..shape.z_len())
            .map(|i| F16::from_f32((i % 9) as f32 / 4.0 - 1.0))
            .collect();
        let fast = FunctionalGemm::paper_instance()
            .run_accumulate(shape, &x, &w, &y)
            .expect("functional accumulate");
        let hw = Accelerator::paper_instance()
            .gemm_accumulate(shape, &x, &w, &y)
            .expect("engine accumulate");
        assert_eq!(bits(&fast.z), bits(&hw.z));
    }

    #[test]
    fn special_values_match_engine() {
        // NaN / Inf / subnormal operands must flow through the identical
        // FMA special-case logic in both models.
        let shape = GemmShape::new(4, 8, 6);
        let specials = [
            F16::NAN,
            F16::INFINITY,
            F16::NEG_INFINITY,
            F16::MIN_POSITIVE_SUBNORMAL,
            F16::NEG_ZERO,
            F16::MAX,
        ];
        let x: Vec<F16> = (0..shape.x_len())
            .map(|i| specials[i % specials.len()])
            .collect();
        let w: Vec<F16> = (0..shape.w_len())
            .map(|i| specials[(i * 5 + 1) % specials.len()])
            .collect();
        let fast = FunctionalGemm::paper_instance()
            .run(shape, &x, &w)
            .expect("functional run");
        let hw = Accelerator::paper_instance()
            .gemm(shape, &x, &w)
            .expect("engine run");
        assert_eq!(bits(&fast.z), bits(&hw.z));
    }

    #[test]
    fn empty_reduction_matches_engine() {
        // N == 0: the output is all zeros (or Y in accumulate mode).
        let shape = GemmShape::new(3, 0, 5);
        let fast = FunctionalGemm::paper_instance()
            .run(shape, &[], &[])
            .expect("functional run");
        assert!(fast.z.iter().all(|v| v.to_bits() == 0));
        assert_eq!(fast.macs, 0);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let shape = GemmShape::new(2, 2, 2);
        let bad = vec![F16::ONE; 3];
        let good = vec![F16::ONE; 4];
        let f = FunctionalGemm::paper_instance();
        assert!(matches!(
            f.run(shape, &bad, &good),
            Err(EngineError::ShapeMismatch { operand: "X", .. })
        ));
        assert!(matches!(
            f.run(shape, &good, &bad),
            Err(EngineError::ShapeMismatch { operand: "W", .. })
        ));
        assert!(matches!(
            f.run_accumulate(shape, &good, &good, &bad),
            Err(EngineError::ShapeMismatch { operand: "Y", .. })
        ));
    }

    #[test]
    fn estimate_tracks_the_supervisor_model() {
        // One paper-instance tile: tile_len = H*latency + n_phases*pw = 80
        // compute cycles, plus min(N,H) + min(M,L) = 12 fill cycles and
        // rows_last - 1 = 7 drain cycles.
        let f = FunctionalGemm::paper_instance();
        let shape = GemmShape::new(8, 16, 16);
        assert_eq!(f.estimated_cycles(shape).count(), 80 + 4 + 8 + 7);
        // Four tiles: the compute blocks scale linearly but fill and drain
        // are paid once per run, not once per tile.
        let quad = GemmShape::new(16, 16, 32);
        assert_eq!(f.estimated_cycles(quad).count(), 4 * 80 + 4 + 8 + 7);
        // Empty reduction: tiles flush one per cycle against the M-row
        // store drain, whichever dominates.
        let empty = GemmShape::new(16, 0, 32);
        assert_eq!(f.estimated_cycles(empty).count(), 32);
        // Degenerate empty output.
        assert_eq!(f.estimated_cycles(GemmShape::new(0, 4, 8)).count(), 0);
    }

    #[test]
    fn backend_kind_labels() {
        assert_eq!(BackendKind::CycleAccurate.label(), "cycle");
        assert_eq!(BackendKind::Functional.label(), "functional");
        assert_eq!(BackendKind::default(), BackendKind::CycleAccurate);
    }
}
