//! Fast functional backend: bit-exact GEMM results without per-cycle
//! simulation.
//!
//! [`FunctionalGemm`] computes `Z = X * W (+ Y)` by walking the *same*
//! schedule as the cycle-accurate engine — `L x phase_width` output tiles
//! in row-major tile order, H-wide reduction phases over N, one FP16 FMA
//! per reduction element in index order through the crate softfloat — but
//! skips the streamer, buffers and datapath pipeline entirely. Because the
//! datapath's row ring accumulates each output element through exactly
//! that FMA sequence (see [`Engine`](crate::Engine)), the functional
//! result is **bit-identical** to [`Engine::run`](crate::Engine::run) and
//! to `redmule_fp16::vector::gemm_golden`; only the cycle count differs
//! (here an analytical estimate instead of a measurement).
//!
//! Execution is staged through a [`FunctionalPlan`]: operands are cast
//! through the storage format and pre-staged into the batched kernel's
//! structure-of-arrays [`Staged`] form **once**, then every output element
//! folds its reduction through `redmule_fp16::kernel::fma_row_staged` —
//! the per-element FMA order (the bit-exactness contract) is untouched;
//! only work *between* independent output elements is restructured for
//! speed and vectorisation. The plan exposes
//! pure per-tile ([`FunctionalPlan::compute_tile`]) and per-band
//! ([`FunctionalPlan::compute_band_into`]) entry points so hosts can
//! partition a job across threads with deterministic writeback.
//!
//! Bit-exactness with the cycle model is a hard invariant, enforced by
//! the differential conformance harness (`tests/conformance.rs` at the
//! workspace root) in addition to the unit tests below.
//!
//! Use it when throughput of *results* matters more than cycle accuracy:
//! batched execution, conformance fuzzing, or network training loops that
//! only occasionally need a cycle-accurate calibration run.

use crate::config::AccelConfig;
use crate::engine::EngineError;
use redmule_fp16::kernel::{fma_row_staged, Acc, Staged};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::{Format, Round, F16};
use redmule_hwsim::Cycle;
use redmule_obs::{EventLog, TraceEvent};

/// Which execution model a GEMM runs on.
///
/// Both kinds produce bit-identical `Z`; they differ only in speed and in
/// the fidelity of the reported cycle count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The cycle-accurate engine: exact cycles, slow (simulates every
    /// clock edge).
    #[default]
    CycleAccurate,
    /// [`FunctionalGemm`]: identical numerics, cycles from the analytical
    /// performance model, orders of magnitude faster on the host.
    Functional,
}

impl BackendKind {
    /// Short stable label (`"cycle"` / `"functional"`), used in reports
    /// and benchmark artefacts.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::CycleAccurate => "cycle",
            BackendKind::Functional => "functional",
        }
    }
}

/// Outcome of a functional GEMM run.
#[derive(Debug, Clone)]
pub struct FunctionalRun {
    /// The output matrix (`m x k`, row-major) — bit-identical to the
    /// cycle-accurate engine's result for the same operands.
    pub z: Vec<F16>,
    /// Analytical cycle estimate from the paper's performance model (the
    /// same model the supervisor uses for degradation decisions); not a
    /// measurement.
    pub estimated_cycles: Cycle,
    /// Useful FMA operations (`M*N*K`).
    pub macs: u64,
}

/// The functional (untimed) GEMM model for one accelerator instance.
///
/// # Example
///
/// ```
/// use redmule::{Accelerator, FunctionalGemm};
/// use redmule_fp16::{vector::GemmShape, F16};
///
/// let shape = GemmShape::new(5, 11, 7);
/// let x: Vec<F16> = (0..shape.x_len()).map(|i| F16::from_f32(i as f32 / 8.0)).collect();
/// let w: Vec<F16> = (0..shape.w_len()).map(|i| F16::from_f32(0.5 - i as f32 / 64.0)).collect();
/// let fast = FunctionalGemm::paper_instance().run(shape, &x, &w)?;
/// let slow = Accelerator::paper_instance().gemm(shape, &x, &w)?;
/// assert_eq!(
///     fast.z.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
///     slow.z.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
/// );
/// # Ok::<(), redmule::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FunctionalGemm {
    cfg: AccelConfig,
}

impl FunctionalGemm {
    /// A functional model of the paper's instance (`H=4, L=8, P=3`).
    pub fn paper_instance() -> FunctionalGemm {
        FunctionalGemm::new(AccelConfig::paper())
    }

    /// A functional model of a custom instance. The instance parameters
    /// only affect the cycle estimate and the tile walk order — never the
    /// numerics, which are schedule-invariant by construction.
    pub fn new(cfg: AccelConfig) -> FunctionalGemm {
        FunctionalGemm { cfg }
    }

    /// The modelled instance parameters.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Computes `Z = X * W`.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when an operand slice length does
    /// not match `shape`.
    pub fn run(
        &self,
        shape: GemmShape,
        x: &[F16],
        w: &[F16],
    ) -> Result<FunctionalRun, EngineError> {
        self.run_inner(shape, Format::Fp16, x, w, None)
    }

    /// Computes `Z = X * W + Y` (accumulate mode).
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when an operand slice length does
    /// not match `shape` (`Y` must be `m x k`).
    pub fn run_accumulate(
        &self,
        shape: GemmShape,
        x: &[F16],
        w: &[F16],
        y: &[F16],
    ) -> Result<FunctionalRun, EngineError> {
        self.run_inner(shape, Format::Fp16, x, w, Some(y))
    }

    /// Computes `Z = X * W` with operands stored in `format`.
    ///
    /// Models the cast-in/cast-out datapath exactly: operands are
    /// projected through the storage format (castout at staging, castin
    /// widening at buffer fill), accumulated in FP16, and the result is
    /// projected through the format again (castout at store drain, castin
    /// at readback) — so the output is bit-identical to staging the same
    /// FP16 slices for [`crate::Engine::run`] and reading the workspace
    /// back widened.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when an operand slice length does
    /// not match `shape`.
    pub fn run_format(
        &self,
        shape: GemmShape,
        format: Format,
        x: &[F16],
        w: &[F16],
    ) -> Result<FunctionalRun, EngineError> {
        self.run_inner(shape, format, x, w, None)
    }

    /// Computes `Z = X * W + Y` with operands stored in `format`
    /// (see [`FunctionalGemm::run_format`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when an operand slice length does
    /// not match `shape` (`Y` must be `m x k`).
    pub fn run_accumulate_format(
        &self,
        shape: GemmShape,
        format: Format,
        x: &[F16],
        w: &[F16],
        y: &[F16],
    ) -> Result<FunctionalRun, EngineError> {
        self.run_inner(shape, format, x, w, Some(y))
    }

    /// Stages a job for execution: casts the operands through the storage
    /// format and pre-classifies them into the batched kernel's operand
    /// form, exactly once. The returned [`FunctionalPlan`] computes any
    /// tile or band of the output independently (and therefore in
    /// parallel, on the host's initiative) with bit-identical results.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when an operand slice length does
    /// not match `shape` (`Y` must be `m x k`).
    pub fn plan(
        &self,
        shape: GemmShape,
        format: Format,
        x: &[F16],
        w: &[F16],
        y: Option<&[F16]>,
    ) -> Result<FunctionalPlan, EngineError> {
        check_len("X", shape.x_len(), x.len())?;
        check_len("W", shape.w_len(), w.len())?;
        if let Some(y) = y {
            check_len("Y", shape.z_len(), y.len())?;
        }
        // Operands pass through TCDM storage on the way in: quantise them
        // through the format once, exactly as castout-at-staging followed
        // by castin-at-buffer-fill does (identity for FP16), fused with
        // the one-time kernel staging.
        let stage = |v: &F16| format.quantize(*v).to_bits();
        Ok(FunctionalPlan {
            shape,
            format,
            l: self.cfg.l,
            pw: self.cfg.phase_width(),
            xo: Staged::from_bits_iter(x.iter().map(stage)),
            wo: Staged::from_bits_iter(w.iter().map(stage)),
            y: y.map(|y| y.iter().map(|&v| format.quantize(v)).collect()),
        })
    }

    /// Analytical cycle estimate for `shape` on this instance, exact
    /// against [`crate::Engine::run`] for uncontended fault-free runs
    /// (pinned by the `cycle_model` regression tests):
    ///
    /// * each tile computes for `tile_len = H*(P+1) + n_phases*pw` cycles
    ///   and W-group prefetch hides every tile-boundary stall, so the
    ///   `n_tiles` compute blocks are back to back;
    /// * the initial pipeline fill costs `min(N,H)` W loads plus
    ///   `min(M,L)` X loads before the first FMA issues;
    /// * the final drain stores the last tile's `rows_last` live rows at
    ///   one per cycle, the first overlapping the last compute tick
    ///   (`rows_last - 1` extra cycles);
    /// * empty-reduction jobs (`N == 0`) flush one tile per cycle while
    ///   stores drain in parallel: `max(n_tiles, M * ceil(K/pw))`.
    ///
    /// The same model backs
    /// [`crate::EngineSession::estimated_remaining_cycles`].
    pub fn estimated_cycles(&self, shape: GemmShape) -> Cycle {
        self.estimated_cycles_format(shape, Format::Fp16)
    }

    /// Analytical cycle estimate for `shape` with operands stored in
    /// `format` (see [`FunctionalGemm::estimated_cycles`] for the base
    /// model). Bandwidth is byte-denominated: with half-width FP8 elements
    /// the streamer serves two transactions per granted beat, so the fill
    /// and drain terms — the only memory-bound parts of an uncontended
    /// schedule — halve (rounded up) while the compute blocks are
    /// unchanged. FP8 therefore never estimates slower than FP16 on the
    /// same shape.
    pub fn estimated_cycles_format(&self, shape: GemmShape, format: Format) -> Cycle {
        let cfg = &self.cfg;
        let beat: u64 = if format.is_fp8() { 2 } else { 1 };
        let pw = cfg.phase_width();
        let n_phases = shape.n.div_ceil(cfg.h);
        let tiles_m = shape.m.div_ceil(cfg.l);
        let tiles_k = shape.k.div_ceil(pw);
        let n_tiles = (tiles_m * tiles_k) as u64;
        if n_tiles == 0 {
            return Cycle::new(0); // degenerate M == 0 or K == 0: no output
        }
        if n_phases == 0 {
            let store_rows = ((shape.m * tiles_k) as u64).div_ceil(beat);
            return Cycle::new(n_tiles.max(store_rows));
        }
        let tile_len = (cfg.h * cfg.latency() + n_phases * pw) as u64;
        let fill = ((shape.n.min(cfg.h) + shape.m.min(cfg.l)) as u64).div_ceil(beat);
        // Drain: the last tile's stores leave at `beat` rows per cycle,
        // minus the one store that overlaps the final compute cycle —
        // `ceil(rows/beat) - 1`, which degenerates to `rows - 1` for FP16.
        let rows_last = (shape.m - (tiles_m - 1) * cfg.l) as u64;
        Cycle::new(n_tiles * tile_len + fill + rows_last.div_ceil(beat).saturating_sub(1))
    }

    /// Synthesises a tile-granular trace from the analytical model for
    /// FP16 storage; see [`FunctionalGemm::synthetic_events_format`].
    pub fn synthetic_events(&self, shape: GemmShape) -> EventLog {
        self.synthetic_events_format(shape, Format::Fp16)
    }

    /// Synthesises a tile-granular trace from the analytical model: one
    /// `TileStart`/`TileEnd` pair per output tile in the engine's
    /// enumeration order (L-row bands, phase-width panels, row-major).
    ///
    /// The spans mirror [`FunctionalGemm::estimated_cycles_format`] term
    /// for term: compute blocks start after the initial `fill` beats and
    /// run back to back, and the final tile's span stretches through the
    /// store drain so that the trace ends exactly at
    /// `estimated_cycles_format(shape, format) - 1`. A pure function of
    /// shape, format and configuration, so batch traces of functional
    /// jobs stay worker-count invariant.
    pub fn synthetic_events_format(&self, shape: GemmShape, format: Format) -> EventLog {
        let cfg = &self.cfg;
        let beat: u64 = if format.is_fp8() { 2 } else { 1 };
        let pw = cfg.phase_width();
        let n_phases = shape.n.div_ceil(cfg.h);
        let tiles_m = shape.m.div_ceil(cfg.l);
        let tiles_k = shape.k.div_ceil(pw);
        let n_tiles = (tiles_m * tiles_k) as u32;
        let tile_len = (cfg.h * cfg.latency() + n_phases * pw) as u64;
        let fill = ((shape.n.min(cfg.h) + shape.m.min(cfg.l)) as u64).div_ceil(beat);
        let total = self.estimated_cycles_format(shape, format).count();
        let mut log = EventLog::new();
        let mut tile = 0u32;
        for row0 in (0..shape.m).step_by(cfg.l) {
            for k0 in (0..shape.k).step_by(pw) {
                // Empty-reduction tiles flush one per cycle; compute
                // tiles start after the fill and run back to back for
                // tile_len cycles each.
                let (start, mut end) = if n_phases == 0 {
                    (u64::from(tile), u64::from(tile))
                } else {
                    let t = u64::from(tile);
                    (fill + t * tile_len, fill + (t + 1) * tile_len - 1)
                };
                if tile + 1 == n_tiles {
                    // The last tile's stores drain through the model's
                    // final cycles; its span closes the trace at the
                    // estimate's last cycle.
                    end = total.saturating_sub(1);
                }
                log.push(TraceEvent::TileStart {
                    cycle: start,
                    tile,
                    row0: row0 as u32,
                    rows: (shape.m - row0).min(cfg.l) as u32,
                    cols: (shape.k - k0).min(pw) as u32,
                });
                log.push(TraceEvent::TileEnd { cycle: end, tile });
                tile += 1;
            }
        }
        log
    }

    fn run_inner(
        &self,
        shape: GemmShape,
        format: Format,
        x: &[F16],
        w: &[F16],
        y: Option<&[F16]>,
    ) -> Result<FunctionalRun, EngineError> {
        let plan = self.plan(shape, format, x, w, y)?;
        let mut z = vec![F16::ZERO; shape.z_len()];
        for (band, chunk) in z.chunks_mut(plan.band_stride()).enumerate() {
            plan.compute_band_into(band, chunk);
        }
        Ok(FunctionalRun {
            z,
            estimated_cycles: self.estimated_cycles_format(shape, format),
            macs: shape.macs(),
        })
    }
}

/// A staged functional GEMM: operands cast through the storage format and
/// pre-classified for the batched kernel, ready to compute any part of
/// the output independently.
///
/// Created by [`FunctionalGemm::plan`]. The plan is immutable; every
/// compute entry point is a pure function of the plan and the requested
/// region, so hosts may compute disjoint regions concurrently and write
/// them back in any order with bit-identical results.
#[derive(Debug, Clone)]
pub struct FunctionalPlan {
    shape: GemmShape,
    format: Format,
    /// Band height (the instance's `L`).
    l: usize,
    /// Panel width (the instance's `phase_width`).
    pw: usize,
    /// Cast-in, pre-staged X (`m x n`, row-major, structure-of-arrays).
    xo: Staged,
    /// Cast-in, pre-staged W (`n x k`, row-major, structure-of-arrays).
    wo: Staged,
    /// Cast-in Y accumulator initialiser (`m x k`, row-major), if any.
    y: Option<Vec<F16>>,
}

impl FunctionalPlan {
    /// The job's shape.
    pub fn shape(&self) -> GemmShape {
        self.shape
    }

    /// Number of L-row output bands (`ceil(m / L)`). A band is one row of
    /// tiles and owns the contiguous `Z` slice `[band*L*k, ..)`.
    pub fn n_bands(&self) -> usize {
        self.shape.m.div_ceil(self.l)
    }

    /// Number of output tiles in the engine's enumeration order.
    pub fn n_tiles(&self) -> usize {
        self.n_bands() * self.shape.k.div_ceil(self.pw)
    }

    /// Elements of `Z` covered by one full band (`L * k`); the final band
    /// may be shorter. This is the chunk size for
    /// [`FunctionalPlan::compute_band_into`] writeback partitioning.
    pub fn band_stride(&self) -> usize {
        // A zero-area output has no bands to split; any non-zero stride
        // keeps `chunks_mut` well-formed on the empty `Z`.
        (self.l * self.shape.k).max(1)
    }

    /// Computes one output tile (engine enumeration order: L-row bands,
    /// phase-width panels, row-major) and returns its `rows_live x
    /// cols_live` row-major block. Pure: depends only on the plan and
    /// `tile_idx`.
    ///
    /// Tiles with `tile_idx >= n_tiles()` return an empty block.
    pub fn compute_tile(&self, tile_idx: usize) -> Vec<F16> {
        let (k, n) = (self.shape.k, self.shape.n);
        let tiles_k = k.div_ceil(self.pw);
        if tiles_k == 0 || tile_idx >= self.n_tiles() {
            return Vec::new();
        }
        let row0 = (tile_idx / tiles_k) * self.l;
        let k0 = (tile_idx % tiles_k) * self.pw;
        let rows_live = (self.shape.m - row0).min(self.l);
        let cols_live = (k - k0).min(self.pw);
        if n == 0 {
            return self.passthrough_block(row0, rows_live, k0, cols_live);
        }
        let mut accs = self.band_accs(row0, rows_live, k0, cols_live);
        for l in 0..n {
            for (r, arow) in accs.chunks_exact_mut(cols_live).enumerate() {
                fma_row_staged(
                    &self.xo,
                    (row0 + r) * n + l,
                    &self.wo,
                    l * k + k0,
                    arow,
                    Round::NearestEven,
                );
            }
        }
        accs.iter().map(|a| self.cast_out(*a)).collect()
    }

    /// Computes one full band of output tiles straight into `out`, which
    /// must be the band's contiguous `Z` slice (`rows_live * k` elements —
    /// exactly what `z.chunks_mut(plan.band_stride())` yields). Pure in
    /// the functional sense: the contents written depend only on the plan
    /// and `band_idx`, never on execution order, so disjoint bands may be
    /// computed concurrently.
    ///
    /// The per-element reduction folds its N terms in index order — the
    /// H-wide phase walk of the datapath visits `l = phase*H + lane`,
    /// skipping the clock-gated lanes past `N`, which is precisely
    /// `l = 0..n` — so every output element rounds identically to the
    /// cycle-accurate engine, element by element, step by step.
    pub fn compute_band_into(&self, band_idx: usize, out: &mut [F16]) {
        let (k, n) = (self.shape.k, self.shape.n);
        let row0 = band_idx * self.l;
        debug_assert!(row0 < self.shape.m || out.is_empty());
        let rows_live = (self.shape.m.saturating_sub(row0)).min(self.l);
        debug_assert_eq!(out.len(), rows_live * k);
        if n == 0 {
            out.copy_from_slice(&self.passthrough_block(row0, rows_live, 0, k));
            return;
        }
        let mut accs = self.band_accs(row0, rows_live, 0, k);
        for l in 0..n {
            // One W row serves every live output row of the band; the
            // staged kernel slices it once per call, keeping the vector
            // inner loop bounds-check free.
            for (r, arow) in accs.chunks_exact_mut(k).enumerate() {
                fma_row_staged(
                    &self.xo,
                    (row0 + r) * n + l,
                    &self.wo,
                    l * k,
                    arow,
                    Round::NearestEven,
                );
            }
        }
        for (z, acc) in out.iter_mut().zip(accs.iter()) {
            *z = self.cast_out(*acc);
        }
    }

    /// Zero-step pass-through for an empty reduction (`N == 0`): no FMA
    /// ever fires, so `Z` is the cast-in `Y` (or zero) *bit for bit*.
    /// Routing it through the kernel's widen/narrow round-trip would
    /// canonicalize NaN payloads and signs the datapath preserves.
    fn passthrough_block(&self, row0: usize, rows: usize, k0: usize, cols: usize) -> Vec<F16> {
        let k = self.shape.k;
        match &self.y {
            Some(y) => {
                let mut out = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    let base = (row0 + r) * k + k0;
                    out.extend_from_slice(&y[base..base + cols]);
                }
                out
            }
            None => vec![F16::ZERO; rows * cols],
        }
    }

    /// Accumulator block for rows `[row0, row0+rows)` x columns
    /// `[k0, k0+cols)`, initialised from the cast-in `Y` (or zero).
    fn band_accs(&self, row0: usize, rows: usize, k0: usize, cols: usize) -> Vec<Acc> {
        let k = self.shape.k;
        match &self.y {
            Some(y) => {
                let mut accs = Vec::with_capacity(rows * cols);
                for r in 0..rows {
                    let yrow = &y[(row0 + r) * k + k0..(row0 + r) * k + k0 + cols];
                    accs.extend(yrow.iter().map(|v| Acc::from_bits(v.to_bits())));
                }
                accs
            }
            None => vec![Acc::ZERO; rows * cols],
        }
    }

    /// Results pass through storage on the way out: castout narrowing at
    /// store drain, castin widening at readback (identity for FP16).
    fn cast_out(&self, acc: Acc) -> F16 {
        self.format.quantize(F16::from_bits(acc.to_bits()))
    }
}

fn check_len(operand: &'static str, expected: usize, got: usize) -> Result<(), EngineError> {
    if expected == got {
        Ok(())
    } else {
        Err(EngineError::ShapeMismatch {
            operand,
            expected,
            got,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accelerator::Accelerator;
    use redmule_fp16::vector::gemm_golden;

    fn bits(z: &[F16]) -> Vec<u16> {
        z.iter().map(|v| v.to_bits()).collect()
    }

    fn operands(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
        let gen = |len: usize, s: u32| -> Vec<F16> {
            (0..len)
                .map(|i| {
                    let h =
                        ((i as u32).wrapping_mul(2654435761) ^ s.wrapping_mul(0x85EB_CA6B)) >> 16;
                    F16::from_f32((h % 97) as f32 / 32.0 - 1.5)
                })
                .collect()
        };
        (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xABCD))
    }

    #[test]
    fn matches_golden_and_engine_on_aligned_and_ragged_shapes() {
        for (m, n, k) in [
            (8, 16, 16), // exactly one tile
            (16, 32, 32),
            (1, 1, 1),
            (5, 11, 7),   // ragged in every dimension
            (9, 4, 17),   // crosses both tile boundaries
            (20, 24, 20), // multiple tiles each way
        ] {
            let shape = GemmShape::new(m, n, k);
            let (x, w) = operands(shape, (m * 1000 + n * 10 + k) as u32);
            let fast = FunctionalGemm::paper_instance()
                .run(shape, &x, &w)
                .expect("functional run");
            let golden = gemm_golden(shape, &x, &w);
            let hw = Accelerator::paper_instance()
                .gemm(shape, &x, &w)
                .expect("engine run");
            assert_eq!(bits(&fast.z), bits(&golden), "vs golden at {m}x{n}x{k}");
            assert_eq!(bits(&fast.z), bits(&hw.z), "vs engine at {m}x{n}x{k}");
            assert_eq!(fast.macs, shape.macs());
            assert!(fast.estimated_cycles.count() > 0);
        }
    }

    #[test]
    fn tiles_assemble_to_the_full_result() {
        // compute_tile is pure and covers the output exactly: stitching
        // every tile back together reproduces run() bit for bit.
        for (m, n, k) in [(8, 16, 16), (5, 11, 7), (20, 24, 20), (3, 0, 5)] {
            let shape = GemmShape::new(m, n, k);
            let (x, w) = operands(shape, 42);
            let f = FunctionalGemm::paper_instance();
            let full = f.run(shape, &x, &w).expect("functional run");
            let plan = f
                .plan(shape, Format::Fp16, &x, &w, None)
                .expect("plan stages");
            let cfg = f.config();
            let (pw, tiles_k) = (cfg.phase_width(), k.div_ceil(cfg.phase_width()));
            let mut stitched = vec![F16::ZERO; shape.z_len()];
            for t in 0..plan.n_tiles() {
                let block = plan.compute_tile(t);
                let row0 = (t / tiles_k) * cfg.l;
                let k0 = (t % tiles_k) * pw;
                let cols = (k - k0).min(pw);
                for (r, brow) in block.chunks(cols).enumerate() {
                    stitched[(row0 + r) * k + k0..(row0 + r) * k + k0 + cols].copy_from_slice(brow);
                }
            }
            assert_eq!(bits(&stitched), bits(&full.z), "at {m}x{n}x{k}");
            assert!(plan.compute_tile(plan.n_tiles()).is_empty());
        }
    }

    #[test]
    fn accumulate_matches_engine() {
        let shape = GemmShape::new(10, 12, 18);
        let (x, w) = operands(shape, 7);
        let y: Vec<F16> = (0..shape.z_len())
            .map(|i| F16::from_f32((i % 9) as f32 / 4.0 - 1.0))
            .collect();
        let fast = FunctionalGemm::paper_instance()
            .run_accumulate(shape, &x, &w, &y)
            .expect("functional accumulate");
        let hw = Accelerator::paper_instance()
            .gemm_accumulate(shape, &x, &w, &y)
            .expect("engine accumulate");
        assert_eq!(bits(&fast.z), bits(&hw.z));
    }

    #[test]
    fn special_values_match_engine() {
        // NaN / Inf / subnormal operands must flow through the identical
        // FMA special-case logic in both models.
        let shape = GemmShape::new(4, 8, 6);
        let specials = [
            F16::NAN,
            F16::INFINITY,
            F16::NEG_INFINITY,
            F16::MIN_POSITIVE_SUBNORMAL,
            F16::NEG_ZERO,
            F16::MAX,
        ];
        let x: Vec<F16> = (0..shape.x_len())
            .map(|i| specials[i % specials.len()])
            .collect();
        let w: Vec<F16> = (0..shape.w_len())
            .map(|i| specials[(i * 5 + 1) % specials.len()])
            .collect();
        let fast = FunctionalGemm::paper_instance()
            .run(shape, &x, &w)
            .expect("functional run");
        let hw = Accelerator::paper_instance()
            .gemm(shape, &x, &w)
            .expect("engine run");
        assert_eq!(bits(&fast.z), bits(&hw.z));
    }

    #[test]
    fn empty_reduction_matches_engine() {
        // N == 0: the output is all zeros (or Y in accumulate mode).
        let shape = GemmShape::new(3, 0, 5);
        let fast = FunctionalGemm::paper_instance()
            .run(shape, &[], &[])
            .expect("functional run");
        assert!(fast.z.iter().all(|v| v.to_bits() == 0));
        assert_eq!(fast.macs, 0);
    }

    #[test]
    fn empty_reduction_passes_y_through_bit_exactly() {
        // Zero FMA steps means Z == Y bit for bit — including NaN
        // payloads and signs, which the kernel's f64 round-trip would
        // canonicalize if Y were routed through it.
        let shape = GemmShape::new(2, 0, 3);
        let y: Vec<F16> = [0x7D16u16, 0xFE00, 0x8000, 0x7C00, 0x0001, 0x3C00]
            .iter()
            .map(|&b| F16::from_bits(b))
            .collect();
        let fast = FunctionalGemm::paper_instance()
            .run_accumulate(shape, &[], &[], &y)
            .expect("functional run");
        assert_eq!(bits(&fast.z), bits(&y));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let shape = GemmShape::new(2, 2, 2);
        let bad = vec![F16::ONE; 3];
        let good = vec![F16::ONE; 4];
        let f = FunctionalGemm::paper_instance();
        assert!(matches!(
            f.run(shape, &bad, &good),
            Err(EngineError::ShapeMismatch { operand: "X", .. })
        ));
        assert!(matches!(
            f.run(shape, &good, &bad),
            Err(EngineError::ShapeMismatch { operand: "W", .. })
        ));
        assert!(matches!(
            f.run_accumulate(shape, &good, &good, &bad),
            Err(EngineError::ShapeMismatch { operand: "Y", .. })
        ));
    }

    #[test]
    fn estimate_tracks_the_supervisor_model() {
        // One paper-instance tile: tile_len = H*latency + n_phases*pw = 80
        // compute cycles, plus min(N,H) + min(M,L) = 12 fill cycles and
        // rows_last - 1 = 7 drain cycles.
        let f = FunctionalGemm::paper_instance();
        let shape = GemmShape::new(8, 16, 16);
        assert_eq!(f.estimated_cycles(shape).count(), 80 + 4 + 8 + 7);
        // Four tiles: the compute blocks scale linearly but fill and drain
        // are paid once per run, not once per tile.
        let quad = GemmShape::new(16, 16, 32);
        assert_eq!(f.estimated_cycles(quad).count(), 4 * 80 + 4 + 8 + 7);
        // Empty reduction: tiles flush one per cycle against the M-row
        // store drain, whichever dominates.
        let empty = GemmShape::new(16, 0, 32);
        assert_eq!(f.estimated_cycles(empty).count(), 32);
        // Degenerate empty output.
        assert_eq!(f.estimated_cycles(GemmShape::new(0, 4, 8)).count(), 0);
    }

    #[test]
    fn synthetic_trace_spans_the_full_estimate() {
        // The trace is the model: the first tile starts right after the
        // fill, tiles are back to back, and the last TileEnd lands on the
        // estimate's final cycle — for every format and ragged shape.
        let f = FunctionalGemm::paper_instance();
        for format in [Format::Fp16, Format::Fp8E4M3, Format::Fp8E5M2] {
            for (m, n, k) in [
                (8, 16, 16),
                (16, 16, 32),
                (5, 11, 7),
                (20, 24, 20),
                (16, 0, 32),
            ] {
                let shape = GemmShape::new(m, n, k);
                let log = f.synthetic_events_format(shape, format);
                let total = f.estimated_cycles_format(shape, format).count();
                let beat = if format.is_fp8() { 2 } else { 1 };
                let starts: Vec<u64> = log
                    .events()
                    .iter()
                    .filter_map(|e| match e {
                        TraceEvent::TileStart { cycle, .. } => Some(*cycle),
                        _ => None,
                    })
                    .collect();
                let ends: Vec<u64> = log
                    .events()
                    .iter()
                    .filter_map(|e| match e {
                        TraceEvent::TileEnd { cycle, .. } => Some(*cycle),
                        _ => None,
                    })
                    .collect();
                assert!(!ends.is_empty(), "at {m}x{n}x{k}");
                if n > 0 {
                    let fill = ((n.min(4) + m.min(8)) as u64).div_ceil(beat);
                    assert_eq!(starts[0], fill, "fill offset at {m}x{n}x{k} {format:?}");
                }
                assert_eq!(
                    ends.last().copied().unwrap() + 1,
                    total,
                    "trace end vs estimate at {m}x{n}x{k} {format:?}"
                );
                // Spans are ordered and non-overlapping tile to tile.
                for t in 1..starts.len() {
                    assert!(starts[t] > ends[t - 1] || n == 0, "overlap at tile {t}");
                }
            }
        }
    }

    #[test]
    fn backend_kind_labels() {
        assert_eq!(BackendKind::CycleAccurate.label(), "cycle");
        assert_eq!(BackendKind::Functional.label(), "functional");
        assert_eq!(BackendKind::default(), BackendKind::CycleAccurate);
    }
}
