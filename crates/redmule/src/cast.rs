//! The cast-in/cast-out stages between TCDM storage and the FP16 datapath.
//!
//! Models the RTL's `redmule_castin`/`redmule_castout` modules: operands may
//! be stored in TCDM in a narrower [`Format`] than the datapath precision.
//! On the way in, every element is widened to FP16 (`castin`; exact for both
//! FP8 formats), fed through the unchanged FP16 FMA core, and on the way out
//! narrowed back to the storage format with round-to-nearest-even
//! (`castout`, the FPU's default mode — the single rounding the real cast
//! unit performs).
//!
//! The slice helpers are the software-visible counterpart: they lay a matrix
//! of FP16 values out in TCDM in the job's storage format
//! ([`castout_slice`]) and read it back widened ([`castin_slice`]), which is
//! what the accelerator front end uses to stage workspaces and collect
//! results for any format.

use redmule_cluster::{MemError, Tcdm};
use redmule_fp16::{Format, Round, E4M3, E5M2, F16};

/// Reads one element stored at `addr` in `format`, widened to FP16.
///
/// Widening is exact: every FP8 bit pattern (subnormals, infinities and
/// NaNs included) has a unique FP16 image.
///
/// # Errors
///
/// [`MemError`] when the access leaves the TCDM (or, for FP16 storage, is
/// misaligned).
pub fn castin(mem: &Tcdm, format: Format, addr: u32) -> Result<F16, MemError> {
    Ok(match format {
        Format::Fp16 => mem.read_f16(addr)?,
        Format::Fp8E4M3 => E4M3::from_bits(mem.read_u8(addr)?).to_f16(),
        Format::Fp8E5M2 => E5M2::from_bits(mem.read_u8(addr)?).to_f16(),
    })
}

/// Narrows one FP16 element to `format` with round-to-nearest-even and
/// stores it at `addr`.
///
/// # Errors
///
/// [`MemError`] when the access leaves the TCDM (or, for FP16 storage, is
/// misaligned).
pub fn castout(mem: &mut Tcdm, format: Format, addr: u32, value: F16) -> Result<(), MemError> {
    match format {
        Format::Fp16 => mem.write_f16(addr, value),
        Format::Fp8E4M3 => mem.write_u8(addr, E4M3::from_f16(value, Round::NearestEven).to_bits()),
        Format::Fp8E5M2 => mem.write_u8(addr, E5M2::from_f16(value, Round::NearestEven).to_bits()),
    }
}

/// Stores a dense slice of FP16 values at `addr` in `format`
/// (elements are `format.elem_bytes()` apart).
///
/// # Errors
///
/// As [`castout`]; partial writes are possible on error.
pub fn castout_slice(
    mem: &mut Tcdm,
    format: Format,
    addr: u32,
    data: &[F16],
) -> Result<(), MemError> {
    let esz = format.elem_bytes() as u32;
    for (i, v) in data.iter().enumerate() {
        castout(mem, format, addr + esz * i as u32, *v)?;
    }
    Ok(())
}

/// Reads `n` densely stored elements at `addr` in `format`, widened to FP16.
///
/// # Errors
///
/// As [`castin`].
pub fn castin_slice(mem: &Tcdm, format: Format, addr: u32, n: usize) -> Result<Vec<F16>, MemError> {
    let esz = format.elem_bytes() as u32;
    (0..n)
        .map(|i| castin(mem, format, addr + esz * i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redmule_cluster::ClusterConfig;

    fn mem() -> Tcdm {
        Tcdm::new(&ClusterConfig::default())
    }

    #[test]
    fn fp16_path_is_the_plain_halfword_access() {
        let mut m = mem();
        let v = F16::from_bits(0x3C01);
        castout(&mut m, Format::Fp16, 8, v).unwrap();
        assert_eq!(m.read_u16(8).unwrap(), 0x3C01);
        assert_eq!(castin(&m, Format::Fp16, 8).unwrap(), v);
    }

    #[test]
    fn fp8_round_trips_are_lossless_for_stored_values() {
        let mut m = mem();
        for format in [Format::Fp8E4M3, Format::Fp8E5M2] {
            for bits in 0u16..=0xFF {
                m.write_u8(0, bits as u8).unwrap();
                let wide = castin(&m, format, 0).unwrap();
                castout(&mut m, format, 1, wide).unwrap();
                assert_eq!(
                    m.read_u8(1).unwrap(),
                    bits as u8,
                    "{format} pattern {bits:#04x}"
                );
            }
        }
    }

    #[test]
    fn castout_narrows_with_nearest_even() {
        let mut m = mem();
        // 1.0 + 1 ulp snaps back to 1.0 in either FP8 format.
        castout(&mut m, Format::Fp8E4M3, 0, F16::from_bits(0x3C01)).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), E4M3::ONE.to_bits());
        // Finite overflow follows OFP8: NaN for E4M3, Inf for E5M2.
        castout(&mut m, Format::Fp8E4M3, 0, F16::MAX).unwrap();
        assert!(E4M3::from_bits(m.read_u8(0).unwrap()).is_nan());
        castout(&mut m, Format::Fp8E5M2, 0, F16::MAX).unwrap();
        assert!(E5M2::from_bits(m.read_u8(0).unwrap()).is_infinite());
    }

    #[test]
    fn slices_pack_at_element_pitch() {
        let mut m = mem();
        let data: Vec<F16> = (0..5).map(|i| F16::from_f32(i as f32)).collect();
        castout_slice(&mut m, Format::Fp8E4M3, 3, &data).unwrap();
        // Bytes are packed contiguously from an unaligned base address.
        assert_eq!(m.read_u8(3).unwrap(), 0x00);
        assert_eq!(m.read_u8(4).unwrap(), E4M3::ONE.to_bits());
        let back = castin_slice(&m, Format::Fp8E4M3, 3, 5).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The FP16 path keeps the 2-byte pitch.
        castout_slice(&mut m, Format::Fp16, 64, &data).unwrap();
        let back = castin_slice(&m, Format::Fp16, 64, 5).unwrap();
        assert_eq!(back[4].to_bits(), data[4].to_bits());
    }
}
