//! RedMulE's three internal buffers.
//!
//! * [`XBuffer`] — holds, for each of the `L` datapath rows, the current
//!   chunk of `H*(P+1)` X-operands (one per future column-phase slot), plus
//!   a staging chunk the Streamer fills ahead of time. The paper: "a
//!   X-Buffer that changes all the L inputs of a column once every
//!   H*(P+1) cycles".
//! * [`WBuffer`] — `H` shift registers, each broadcasting one W element per
//!   cycle to the `L` FMAs of its column, reloaded with a fresh group of
//!   `H*(P+1)` elements once per phase (one memory access every `P+1`
//!   cycles in aggregate).
//! * [`ZBuffer`] — collects the `L x H*(P+1)` output tile while the store
//!   accesses are interleaved into free memory slots.

use redmule_fp16::F16;
use redmule_hwsim::faults::flip_bit16;
use redmule_hwsim::ShiftRegister;

fn flip_f16(value: &mut F16, bit: u8) {
    *value = F16::from_bits(flip_bit16(value.to_bits(), bit));
}

/// Double-buffered X operand storage.
///
/// # Example
///
/// ```
/// use redmule::buffers::XBuffer;
/// use redmule_fp16::F16;
///
/// let mut xb = XBuffer::new(2, 4); // L = 2 rows, chunks of 4 elements
/// xb.stage_row(0, vec![F16::ONE; 4]);
/// xb.stage_row(1, vec![F16::TWO; 4]);
/// assert!(xb.staging_complete());
/// xb.swap();
/// assert_eq!(xb.operand(0, 2), F16::ONE);
/// ```
#[derive(Debug, Clone)]
pub struct XBuffer {
    l: usize,
    chunk: usize,
    current: Vec<Option<Vec<F16>>>,
    staging: Vec<Option<Vec<F16>>>,
}

impl XBuffer {
    /// Creates an empty buffer for `l` rows with `chunk` elements per row.
    ///
    /// # Panics
    ///
    /// Panics if `l` or `chunk` is zero.
    pub fn new(l: usize, chunk: usize) -> XBuffer {
        assert!(l > 0 && chunk > 0, "buffer dimensions must be positive");
        XBuffer {
            l,
            chunk,
            current: vec![None; l],
            staging: vec![None; l],
        }
    }

    /// Deposits a freshly loaded chunk for `row` into the staging half.
    ///
    /// # Panics
    ///
    /// Panics if the row index or data length is wrong, or the staging slot
    /// is already full (the Streamer must not over-fetch).
    pub fn stage_row(&mut self, row: usize, data: Vec<F16>) {
        assert!(row < self.l, "row {row} out of range");
        assert_eq!(data.len(), self.chunk, "chunk length mismatch");
        assert!(
            self.staging[row].is_none(),
            "staging slot for row {row} already full"
        );
        self.staging[row] = Some(data);
    }

    /// `true` when `row`'s staging slot is free to receive a load.
    pub fn staging_free(&self, row: usize) -> bool {
        self.staging[row].is_none()
    }

    /// `true` when every row's staging chunk has arrived.
    pub fn staging_complete(&self) -> bool {
        self.staging.iter().all(Option::is_some)
    }

    /// Read access to the staging slots, for session snapshots.
    pub(crate) fn staging_slots(&self) -> &[Option<Vec<F16>>] {
        &self.staging
    }

    /// Makes the staged chunks current (consumed chunk is dropped).
    ///
    /// # Panics
    ///
    /// Panics unless [`XBuffer::staging_complete`]; callers stall instead.
    pub fn swap(&mut self) {
        assert!(self.staging_complete(), "swap before staging completed");
        for (cur, stage) in self.current.iter_mut().zip(&mut self.staging) {
            *cur = stage.take();
        }
    }

    /// Reads the X operand at `idx` within `row`'s current chunk.
    ///
    /// # Panics
    ///
    /// Panics if no chunk is current or indices are out of range.
    pub fn operand(&self, row: usize, idx: usize) -> F16 {
        // modelcheck-allow: RM-PANIC-001 -- documented schedule invariant (see
        // # Panics): the datapath stalls while no chunk is current, so a miss
        // here is a scheduler bug that must not be silently absorbed.
        self.current[row]
            .as_ref()
            .expect("no current chunk; datapath should have stalled")[idx]
    }

    /// Flips `bit` of the operand at `idx` within `row`'s **current**
    /// chunk. Returns `false` (fault masked) when no chunk is current or an
    /// index is out of range.
    pub fn corrupt_current(&mut self, row: usize, idx: usize, bit: u8) -> bool {
        match self
            .current
            .get_mut(row)
            .and_then(Option::as_mut)
            .and_then(|c| c.get_mut(idx))
        {
            Some(v) => {
                flip_f16(v, bit);
                true
            }
            None => false,
        }
    }

    /// Clears both halves (soft reset between jobs).
    pub fn reset(&mut self) {
        self.current.iter_mut().for_each(|c| *c = None);
        self.staging.iter_mut().for_each(|c| *c = None);
    }
}

/// Per-column W broadcast registers with one staged group each.
#[derive(Debug, Clone)]
pub struct WBuffer {
    group: usize,
    current: Vec<ShiftRegister<F16>>,
    staging: Vec<Option<Vec<F16>>>,
}

impl WBuffer {
    /// Creates the buffer for `h` columns with `group` elements per
    /// register.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `group` is zero.
    pub fn new(h: usize, group: usize) -> WBuffer {
        assert!(h > 0 && group > 0, "buffer dimensions must be positive");
        WBuffer {
            group,
            current: (0..h).map(|_| ShiftRegister::new(group)).collect(),
            staging: vec![None; h],
        }
    }

    /// Deposits a loaded W group for `col` into staging.
    ///
    /// # Panics
    ///
    /// Panics if the column index or length is wrong, or staging is full.
    pub fn stage_group(&mut self, col: usize, data: Vec<F16>) {
        assert_eq!(data.len(), self.group, "group length mismatch");
        assert!(
            self.staging[col].is_none(),
            "staging for column {col} already full"
        );
        self.staging[col] = Some(data);
    }

    /// `true` when `col` can accept a staged group.
    pub fn staging_free(&self, col: usize) -> bool {
        self.staging[col].is_none()
    }

    /// Read access to the staging slots, for session snapshots.
    pub(crate) fn staging_slots(&self) -> &[Option<Vec<F16>>] {
        &self.staging
    }

    /// `true` when `col`'s shift register has been fully drained (used by
    /// the single-buffered ablation policy to forbid prefetch).
    pub fn register_empty(&self, col: usize) -> bool {
        self.current[col].is_empty()
    }

    /// Moves `col`'s staged group into its (drained) shift register.
    /// Returns `false` (and changes nothing) when the group has not
    /// arrived yet — the datapath stalls.
    ///
    /// # Panics
    ///
    /// Panics if the register still holds elements (a schedule bug).
    pub fn activate(&mut self, col: usize) -> bool {
        match self.staging[col].take() {
            Some(data) => {
                // modelcheck-allow: RM-PANIC-001 -- documented schedule
                // invariant (see # Panics): activate() only runs after the
                // register drained; a violation is a scheduler bug.
                self.current[col]
                    .load(data)
                    .expect("register drained before reload");
                true
            }
            None => false,
        }
    }

    /// Broadcasts (shifts out) the next W element of `col`.
    ///
    /// # Panics
    ///
    /// Panics if the register is empty (a schedule bug: `activate` governs
    /// phase starts).
    pub fn broadcast(&mut self, col: usize) -> F16 {
        // modelcheck-allow: RM-PANIC-001 -- documented schedule invariant (see
        // # Panics): the datapath stalls on W underrun, so an empty register
        // here is a scheduler bug.
        self.current[col]
            .shift()
            .expect("W register underrun; datapath should have stalled")
    }

    /// Flips `bit` of the `elem`-th element of `col`'s **staged** group.
    /// Returns `false` (fault masked) when nothing is staged there.
    pub fn corrupt_staged(&mut self, col: usize, elem: usize, bit: u8) -> bool {
        match self
            .staging
            .get_mut(col)
            .and_then(Option::as_mut)
            .and_then(|g| g.get_mut(elem))
        {
            Some(v) => {
                flip_f16(v, bit);
                true
            }
            None => false,
        }
    }

    /// Flips `bit` of the `idx`-th pending element (0 = next broadcast) of
    /// `col`'s active shift register. Returns `false` when out of range.
    pub fn corrupt_register(&mut self, col: usize, idx: usize, bit: u8) -> bool {
        match self.current.get_mut(col).and_then(|r| r.get_mut(idx)) {
            Some(v) => {
                flip_f16(v, bit);
                true
            }
            None => false,
        }
    }

    /// Clears registers and staging (soft reset).
    pub fn reset(&mut self) {
        for r in &mut self.current {
            // modelcheck-allow: RM-ERR-001 -- name collision: the register
            // row's `reset` returns unit, not the engine's Result.
            r.reset();
        }
        self.staging.iter_mut().for_each(|s| *s = None);
    }
}

/// Output tile collector.
#[derive(Debug, Clone)]
pub struct ZBuffer {
    width: usize,
    rows: Vec<Vec<F16>>,
    occupied: bool,
}

impl ZBuffer {
    /// Creates a buffer of `l` rows by `width` elements.
    ///
    /// # Panics
    ///
    /// Panics if `l` or `width` is zero.
    pub fn new(l: usize, width: usize) -> ZBuffer {
        assert!(l > 0 && width > 0, "buffer dimensions must be positive");
        ZBuffer {
            width,
            rows: vec![vec![F16::ZERO; width]; l],
            occupied: false,
        }
    }

    /// `true` while a completed tile is waiting to be stored.
    pub fn is_occupied(&self) -> bool {
        self.occupied
    }

    /// Records the output element for (`row`, `col`).
    ///
    /// # Panics
    ///
    /// Panics when the buffer still holds a previous, un-stored tile or the
    /// indices are out of range.
    pub fn record(&mut self, row: usize, col: usize, value: F16) {
        assert!(!self.occupied, "Z-buffer overwritten before store");
        assert!(col < self.width, "column {col} out of range");
        self.rows[row][col] = value;
    }

    /// Marks the tile complete: no more records until it is released.
    pub fn seal(&mut self) {
        self.occupied = true;
    }

    /// Reads a sealed row for storing.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not sealed.
    pub fn row(&self, row: usize) -> &[F16] {
        assert!(self.occupied, "reading an unsealed Z-buffer");
        &self.rows[row]
    }

    /// Releases the buffer after all stores were issued.
    pub fn release(&mut self) {
        self.occupied = false;
    }

    /// Flips `bit` of the element at (`row`, `col`). Returns `false` when
    /// an index is out of range.
    pub fn corrupt(&mut self, row: usize, col: usize, bit: u8) -> bool {
        match self.rows.get_mut(row).and_then(|r| r.get_mut(col)) {
            Some(v) => {
                flip_f16(v, bit);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_buffer_double_buffers() {
        let mut xb = XBuffer::new(2, 4);
        assert!(!xb.staging_complete());
        assert!(xb.staging_free(0));
        xb.stage_row(0, vec![F16::ONE; 4]);
        assert!(!xb.staging_free(0));
        xb.stage_row(1, vec![F16::TWO; 4]);
        xb.swap();
        assert_eq!(xb.operand(0, 3), F16::ONE);
        assert_eq!(xb.operand(1, 0), F16::TWO);
        // Staging is free again for the next chunk while current is in use.
        assert!(xb.staging_free(0));
        xb.stage_row(0, vec![F16::HALF; 4]);
        assert_eq!(xb.operand(0, 0), F16::ONE, "current chunk unchanged");
    }

    #[test]
    #[should_panic(expected = "swap before staging completed")]
    fn x_swap_requires_all_rows() {
        let mut xb = XBuffer::new(2, 4);
        xb.stage_row(0, vec![F16::ONE; 4]);
        xb.swap();
    }

    #[test]
    #[should_panic(expected = "already full")]
    fn x_stage_rejects_overfetch() {
        let mut xb = XBuffer::new(1, 2);
        xb.stage_row(0, vec![F16::ONE; 2]);
        xb.stage_row(0, vec![F16::ONE; 2]);
    }

    #[test]
    fn x_reset_clears() {
        let mut xb = XBuffer::new(1, 2);
        xb.stage_row(0, vec![F16::ONE; 2]);
        xb.swap();
        xb.reset();
        assert!(xb.staging_free(0));
    }

    #[test]
    fn w_buffer_stages_and_broadcasts_in_order() {
        let mut wb = WBuffer::new(2, 3);
        assert!(!wb.activate(0), "no staged group yet");
        let g: Vec<F16> = [1.0, 2.0, 3.0].iter().map(|&v| F16::from_f32(v)).collect();
        wb.stage_group(0, g.clone());
        assert!(!wb.staging_free(0));
        assert!(wb.activate(0));
        assert!(wb.staging_free(0), "activation frees the staging slot");
        assert_eq!(wb.broadcast(0).to_f32(), 1.0);
        assert_eq!(wb.broadcast(0).to_f32(), 2.0);
        assert_eq!(wb.broadcast(0).to_f32(), 3.0);
        // Register drained: next group can activate.
        wb.stage_group(0, g);
        assert!(wb.activate(0));
    }

    #[test]
    #[should_panic(expected = "underrun")]
    fn w_broadcast_panics_on_empty_register() {
        let mut wb = WBuffer::new(1, 2);
        let _ = wb.broadcast(0);
    }

    #[test]
    #[should_panic(expected = "drained before reload")]
    fn w_activate_panics_mid_group() {
        let mut wb = WBuffer::new(1, 2);
        wb.stage_group(0, vec![F16::ONE; 2]);
        assert!(wb.activate(0));
        wb.broadcast(0); // one element still inside
        wb.stage_group(0, vec![F16::ONE; 2]);
        let _ = wb.activate(0);
    }

    #[test]
    fn z_buffer_lifecycle() {
        let mut zb = ZBuffer::new(2, 3);
        assert!(!zb.is_occupied());
        zb.record(0, 0, F16::ONE);
        zb.record(1, 2, F16::TWO);
        zb.seal();
        assert!(zb.is_occupied());
        assert_eq!(zb.row(0)[0], F16::ONE);
        assert_eq!(zb.row(1)[2], F16::TWO);
        zb.release();
        assert!(!zb.is_occupied());
        zb.record(0, 1, F16::HALF); // usable again
    }

    #[test]
    #[should_panic(expected = "overwritten before store")]
    fn z_record_rejected_while_sealed() {
        let mut zb = ZBuffer::new(1, 1);
        zb.seal();
        zb.record(0, 0, F16::ONE);
    }

    #[test]
    #[should_panic(expected = "unsealed")]
    fn z_row_requires_seal() {
        let zb = ZBuffer::new(1, 1);
        let _ = zb.row(0);
    }
}
