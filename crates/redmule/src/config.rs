//! Accelerator instance parameters.

use std::fmt;

/// Design-time parameters of a RedMulE instance.
///
/// The datapath is an array of `L` rows by `H` columns of FP16 FMA units,
/// each with `P` internal pipeline registers (latency `P + 1`). The paper's
/// prototype is `H = 4, L = 8, P = 3`: 32 FMAs, which with 16-bit operands
/// needs a 256-bit memory payload plus one extra 32-bit port for unaligned
/// accesses — the 9-port HCI shallow branch.
///
/// # Example
///
/// ```
/// use redmule::AccelConfig;
///
/// let cfg = AccelConfig::paper();
/// assert_eq!(cfg.fma_count(), 32);
/// assert_eq!(cfg.phase_width(), 16);
/// assert_eq!(cfg.memory_ports(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccelConfig {
    /// Columns of FMAs per row (chained; the last feeds back to the first).
    pub h: usize,
    /// Rows of FMAs (each computes one Z row slice).
    pub l: usize,
    /// Internal pipeline registers per FMA (latency is `p + 1`).
    pub p: usize,
}

impl AccelConfig {
    /// The paper's prototype instance: `H = 4, L = 8, P = 3`.
    pub const fn paper() -> AccelConfig {
        AccelConfig { h: 4, l: 8, p: 3 }
    }

    /// Creates a custom instance.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(h: usize, l: usize, p: usize) -> AccelConfig {
        let cfg = AccelConfig { h, l, p };
        // modelcheck-allow: RM-PANIC-001 -- documented constructor contract: a
        // zero dimension is a programming error; validate() is the fallible
        // path for untrusted input.
        cfg.validate().expect("invalid accelerator configuration");
        cfg
    }

    /// Checks the parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.h == 0 {
            return Err("H (columns) must be at least 1".into());
        }
        if self.l == 0 {
            return Err("L (rows) must be at least 1".into());
        }
        // P may be zero: a combinational FMA with a single output register.
        Ok(())
    }

    /// Total number of FMA units, `H * L`.
    pub const fn fma_count(&self) -> usize {
        self.h * self.l
    }

    /// FMA latency in cycles, `P + 1`.
    pub const fn latency(&self) -> usize {
        self.p + 1
    }

    /// Elements processed per row pass: `H * (P + 1)`.
    ///
    /// This is simultaneously (a) the number of Z elements each row
    /// computes per pass, (b) the width in FP16 elements of every memory
    /// transaction, and (c) the number of cycles an X operand is held
    /// steady.
    pub const fn phase_width(&self) -> usize {
        self.h * (self.p + 1)
    }

    /// 32-bit TCDM ports required: the payload (`phase_width` 16-bit
    /// elements) plus one port for non-word-aligned accesses.
    pub const fn memory_ports(&self) -> usize {
        self.phase_width() * 16 / 32 + 1
    }

    /// Ideal throughput bound in MACs per cycle (= number of FMAs).
    pub const fn ideal_macs_per_cycle(&self) -> usize {
        self.fma_count()
    }
}

impl Default for AccelConfig {
    fn default() -> AccelConfig {
        AccelConfig::paper()
    }
}

impl fmt::Display for AccelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RedMulE H={} L={} P={} ({} FMAs)",
            self.h,
            self.l,
            self.p,
            self.fma_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_derived_quantities() {
        let c = AccelConfig::paper();
        assert_eq!(c.fma_count(), 32);
        assert_eq!(c.latency(), 4);
        assert_eq!(c.phase_width(), 16);
        assert_eq!(c.memory_ports(), 9);
        assert_eq!(c.ideal_macs_per_cycle(), 32);
        assert_eq!(AccelConfig::default(), c);
    }

    #[test]
    fn widening_h_adds_two_ports() {
        // The paper: H 4 -> 5 adds 4 pipeline slots per row, increasing the
        // bandwidth need by two 32-bit ports (9 -> 11).
        let c = AccelConfig::new(5, 8, 3);
        assert_eq!(c.phase_width(), 20);
        assert_eq!(c.memory_ports(), 11);
    }

    #[test]
    fn area_sweep_configs_are_constructible() {
        for (h, l) in [(2, 4), (4, 8), (8, 16), (8, 32), (16, 32)] {
            let c = AccelConfig::new(h, l, 3);
            assert_eq!(c.fma_count(), h * l);
        }
    }

    #[test]
    fn zero_latency_pipeline_allowed() {
        let c = AccelConfig::new(4, 8, 0);
        assert_eq!(c.latency(), 1);
        assert_eq!(c.phase_width(), 4);
    }

    #[test]
    #[should_panic(expected = "invalid accelerator configuration")]
    fn zero_h_rejected() {
        let _ = AccelConfig::new(0, 8, 3);
    }

    #[test]
    fn validate_reports_l() {
        assert!(AccelConfig { h: 1, l: 0, p: 0 }.validate().is_err());
    }

    #[test]
    fn display_mentions_shape() {
        let s = AccelConfig::paper().to_string();
        assert!(s.contains("H=4") && s.contains("32 FMAs"));
    }
}
