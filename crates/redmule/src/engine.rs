//! The execution engine: Scheduler + Streamer + Controller.
//!
//! This module drives the [`Datapath`] cycle by cycle against the cluster
//! TCDM through the HCI shallow port, reproducing the paper's working
//! principle (§II-C) exactly:
//!
//! * the output matrix is processed in tiles of `L` rows by `H*(P+1)`
//!   columns;
//! * within a tile, the reduction dimension is covered in *phases* of `H`
//!   elements; each column of FMAs is offset from the previous by the FMA
//!   latency `P+1`, and the last column's results ring back into the first;
//! * the **W buffer** needs one wide memory access every `P+1` cycles;
//!   **X refills** and **Z stores** are interleaved into the free slots
//!   between two adjacent W accesses (Fig. 2c);
//! * the whole array clock-gates (stalls) when a buffer misses its
//!   deadline, so performance degradation under port contention emerges
//!   naturally.
//!
//! Numerical results are produced by the datapath's bit-accurate FMA units
//! and are therefore identical to [`redmule_fp16::vector::gemm_golden`].

use crate::buffers::{WBuffer, XBuffer, ZBuffer};
use crate::cast;
use crate::config::AccelConfig;
use crate::datapath::{Acc0, ColumnCtrl, Datapath};
use crate::decode::{decode_container, ContainerSpec, DecodeError};
use crate::faults::FaultInjector;
use crate::regfile::Job;
use redmule_cluster::{Hci, MemError, Tcdm};
use redmule_fp16::F16;
use redmule_hwsim::snapshot::{fnv1a64, Snapshot, SnapshotError, StateReader, StateWriter};
use redmule_hwsim::stream::{Handshake, StreamMonitor};
use redmule_hwsim::{Cycle, FaultLog, FaultPhase, Stats};
use redmule_obs::{Channel, EventLog, Phase, PhaseCycles, TraceEvent, TraceSink};
use std::cell::Cell;
use std::fmt;

/// Error produced by [`Engine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The job descriptor is malformed (alignment).
    InvalidJob(String),
    /// An operand slice length does not match the job shape.
    ShapeMismatch {
        /// Which operand mismatched (`"X"`, `"W"`, `"Y"` or `"Z"`).
        operand: &'static str,
        /// Element count the shape requires.
        expected: usize,
        /// Element count the caller supplied.
        got: usize,
    },
    /// A read or write targeted an unmapped HWPE register offset.
    UnmappedRegister {
        /// The offending byte offset into the register file.
        offset: u32,
    },
    /// An operand access left the TCDM.
    Memory(MemError),
    /// The engine made no forward progress within its watchdog window —
    /// a hung schedule (e.g. dropped interconnect transactions), reported
    /// instead of spinning forever.
    Watchdog {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Consecutive cycles without forward progress.
        stalled_for: u64,
    },
    /// Fault-tolerant execution exhausted its retry budget on one tile;
    /// the corruption recurs on every replay (a persistent fault).
    FaultUnrecoverable {
        /// Index of the tile that never produced a clean result.
        tile: usize,
        /// Number of attempts made (initial run plus replays).
        attempts: u32,
    },
    /// Checkpointing or resuming a session failed: the session was not at
    /// a snapshottable point, the snapshot bytes are damaged, or they were
    /// taken under a different engine configuration.
    Snapshot(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidJob(msg) => write!(f, "invalid job: {msg}"),
            EngineError::ShapeMismatch {
                operand,
                expected,
                got,
            } => write!(
                f,
                "operand {operand} has wrong length: shape requires {expected} elements, got {got}"
            ),
            EngineError::UnmappedRegister { offset } => {
                write!(f, "access to unmapped HWPE register {offset:#x}")
            }
            EngineError::Memory(e) => write!(f, "memory access failed: {e}"),
            EngineError::Watchdog { cycle, stalled_for } => write!(
                f,
                "engine watchdog fired at cycle {cycle}: no forward progress for \
                 {stalled_for} cycles"
            ),
            EngineError::FaultUnrecoverable { tile, attempts } => write!(
                f,
                "tile {tile} still corrupted after {attempts} attempts; fault is persistent"
            ),
            EngineError::Snapshot(msg) => write!(f, "session snapshot: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<MemError> for EngineError {
    fn from(e: MemError) -> EngineError {
        EngineError::Memory(e)
    }
}

impl From<SnapshotError> for EngineError {
    fn from(e: SnapshotError) -> EngineError {
        EngineError::Snapshot(e.to_string())
    }
}

impl From<DecodeError> for EngineError {
    fn from(e: DecodeError) -> EngineError {
        EngineError::Snapshot(e.to_string())
    }
}

/// Optional per-cycle port-activity traces (Fig. 2c observability).
#[derive(Debug, Clone)]
pub struct EngineTrace {
    /// W-load port handshakes, one entry per cycle.
    pub w: StreamMonitor,
    /// X-load port handshakes.
    pub x: StreamMonitor,
    /// Z-store port handshakes.
    pub z: StreamMonitor,
    /// Buffer/datapath occupancy, one sample per cycle (Fig. 2d-style
    /// pipeline observability).
    pub occupancy: Vec<OccupancySample>,
}

/// One cycle of internal state, recorded when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySample {
    /// The datapath was clock-gated this cycle waiting for a buffer.
    pub stalled: bool,
    /// W staging slots currently holding a prefetched group (0..=H).
    pub w_staged: u8,
    /// X staging rows currently filled (0..=L).
    pub x_staged: u8,
    /// Z rows waiting in the store queue.
    pub z_pending: u8,
}

/// Outcome of one accelerator job.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total wall-clock cycles from trigger to completion (including the
    /// final Z drain).
    pub cycles: Cycle,
    /// Useful FMA operations (`M*N*K`; padding lanes are excluded — they
    /// are clock-gated in hardware). The raw lane activity is available as
    /// the `lane_macs` stat.
    pub macs: u64,
    /// Cycles the datapath spent clock-gated waiting for a buffer.
    pub stall_cycles: u64,
    /// Per-phase cycle attribution (compute / refill / stall / fill /
    /// drain). Exactly one category is charged per executed cycle, so
    /// `phases.total()` equals `cycles.count()` — a schedule invariant the
    /// test-suite pins. Also mirrored into `stats` as `phase_*` keys.
    pub phases: PhaseCycles,
    /// Event counters (`w_loads`, `x_loads`, `z_stores`, `port_idle`, ...).
    pub stats: Stats,
    /// Per-cycle port traces when the engine was built with
    /// [`Engine::with_trace`].
    pub trace: Option<EngineTrace>,
    /// Cycle-stamped fault activity (empty on fault-free runs). Feed it to
    /// [`redmule_hwsim::FaultLog::dump_vcd`] for waveform inspection.
    pub faults: FaultLog,
}

impl RunReport {
    /// Achieved MACs per cycle.
    // modelcheck-allow: RM-FP-001 -- telemetry: throughput ratio reported to
    // humans and benchmarks; never feeds back into model state.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles.count() == 0 {
            return 0.0;
        }
        self.macs as f64 / self.cycles.count() as f64
    }

    /// Fraction of the ideal `H*L` MACs/cycle achieved.
    // modelcheck-allow: RM-FP-001 -- telemetry: utilization ratio reported to
    // humans and benchmarks; never feeds back into model state.
    pub fn utilization(&self, cfg: &AccelConfig) -> f64 {
        self.macs_per_cycle() / cfg.ideal_macs_per_cycle() as f64
    }
}

/// One output tile: `rows_live x cols_live` live elements at
/// (`row0`, `k0`).
#[derive(Debug, Clone, Copy)]
struct Tile {
    row0: usize,
    k0: usize,
    rows_live: usize,
    cols_live: usize,
}

/// A pending Z-row store: one wide transaction.
#[derive(Debug, Clone)]
struct StoreReq {
    addr: u32,
    data: Vec<F16>,
}

/// A candidate streamer transaction for one beat of the shallow port.
#[derive(Clone, Copy)]
enum Pick {
    /// W group load: (tile, phase, column).
    W(usize, usize, usize),
    /// Z preload row in accumulate mode: (tile, row).
    ZPre(usize, usize),
    /// X row load: (tile, chunk, row).
    X(usize, usize, usize),
    /// Drain the head of the store queue.
    ZStore,
}

/// Streamer policy, for design-choice ablations.
///
/// The paper's design interleaves X loads and Z stores into the free
/// memory slots between two adjacent W loads (Fig. 2c) and prefetches one
/// W group ahead per column. The alternative policies quantify those
/// choices:
///
/// * [`StreamerPolicy::HalfBandwidth`] — the port issues at most every
///   other cycle, emulating a shallow branch of half the width (the
///   paper's discussion of how H > 4 escalates port count);
/// * [`StreamerPolicy::SingleBufferedW`] — W groups may only be fetched
///   once the column's shift register has fully drained (no prefetch),
///   so every phase boundary stalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamerPolicy {
    /// Paper behaviour: interleaved slots, prefetched W groups.
    #[default]
    Interleaved,
    /// Ablation: half the shallow-branch bandwidth.
    HalfBandwidth,
    /// Ablation: no W-group prefetch (single-buffered registers).
    SingleBufferedW,
}

/// The cycle-accurate accelerator engine.
///
/// # Example
///
/// ```
/// use redmule::{AccelConfig, Engine, Job};
/// use redmule_cluster::{ClusterConfig, Hci, Tcdm};
/// use redmule_fp16::F16;
///
/// let ccfg = ClusterConfig::default();
/// let mut mem = Tcdm::new(&ccfg);
/// let mut hci = Hci::new(&ccfg);
/// // Z(2x2) = X(2x2) * W(2x2), all ones -> all 2.0.
/// for i in 0..4 {
///     mem.write_f16(2 * i, F16::ONE)?;        // X at 0x00
///     mem.write_f16(0x100 + 2 * i, F16::ONE)?; // W at 0x100
/// }
/// let engine = Engine::new(AccelConfig::paper());
/// let job = Job::new(0x0, 0x100, 0x200, 2, 2, 2);
/// let report = engine.run(job, &mut mem, &mut hci).expect("job runs");
/// assert_eq!(mem.read_f16(0x200)?.to_f32(), 2.0);
/// assert!(report.cycles.count() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: AccelConfig,
    trace: bool,
    policy: StreamerPolicy,
    watchdog: u64,
}

/// Default watchdog window: cycles without forward progress before a run
/// aborts with [`EngineError::Watchdog`]. Far beyond any legitimate stall
/// (worst-case arbitration starvation is bounded by the rotation period).
pub const DEFAULT_WATCHDOG: u64 = 10_000;

impl Engine {
    /// Creates an engine for the given instance parameters.
    pub fn new(cfg: AccelConfig) -> Engine {
        Engine {
            cfg,
            trace: false,
            policy: StreamerPolicy::Interleaved,
            watchdog: DEFAULT_WATCHDOG,
        }
    }

    /// Selects the streamer slot-allocation policy (ablation support).
    #[must_use]
    pub fn with_streamer_policy(self, policy: StreamerPolicy) -> Engine {
        Engine { policy, ..self }
    }

    /// Enables per-cycle port tracing (costly on long runs; intended for
    /// schedule verification and waveform export).
    #[must_use]
    pub fn with_trace(self) -> Engine {
        Engine {
            trace: true,
            ..self
        }
    }

    /// Overrides the watchdog window (cycles without forward progress
    /// before the run aborts with [`EngineError::Watchdog`]).
    #[must_use]
    pub fn with_watchdog(self, cycles: u64) -> Engine {
        Engine {
            watchdog: cycles.max(1),
            ..self
        }
    }

    /// The instance parameters.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Executes a job to completion against the TCDM.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidJob`] for malformed descriptors and
    /// [`EngineError::Memory`] when an operand address leaves the TCDM.
    pub fn run(&self, job: Job, mem: &mut Tcdm, hci: &mut Hci) -> Result<RunReport, EngineError> {
        let mut session = self.start(job)?;
        while !session.is_finished() {
            session.tick(mem, hci, &[])?;
        }
        Ok(session.finish())
    }

    /// Like [`Engine::run`], but records the typed trace-event stream
    /// (see [`TraceEvent`]) alongside the report. For custom sinks (ring
    /// buffers, counters) use [`EngineSession::attach_sink`] directly.
    ///
    /// # Errors
    ///
    /// As [`Engine::run`].
    pub fn run_logged(
        &self,
        job: Job,
        mem: &mut Tcdm,
        hci: &mut Hci,
    ) -> Result<(RunReport, EventLog), EngineError> {
        let mut session = self.start(job)?;
        session.attach_sink(Box::new(EventLog::new()));
        while !session.is_finished() {
            session.tick(mem, hci, &[])?;
        }
        let events = session
            .detach_sink()
            .and_then(EventLog::from_sink)
            .unwrap_or_default();
        Ok((session.finish(), events))
    }

    /// Starts a job as a steppable [`EngineSession`] for co-simulation with
    /// concurrent core traffic on the interconnect.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidJob`] for malformed descriptors.
    pub fn start(&self, job: Job) -> Result<EngineSession, EngineError> {
        job.validate().map_err(EngineError::InvalidJob)?;
        Ok(EngineSession::new(
            Sim::new(self.cfg, job, self.trace, self.policy),
            self.watchdog,
        ))
    }

    /// Like [`Engine::start`], but arms a [`FaultInjector`] whose scheduled
    /// transients strike the datapath, buffers and memory as the job runs.
    /// The injector's log ends up in [`RunReport::faults`].
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidJob`] for malformed descriptors.
    pub fn start_with_faults(
        &self,
        job: Job,
        injector: FaultInjector,
    ) -> Result<EngineSession, EngineError> {
        job.validate().map_err(EngineError::InvalidJob)?;
        let mut sim = Sim::new(self.cfg, job, self.trace, self.policy);
        sim.injector = Some(injector);
        Ok(EngineSession::new(sim, self.watchdog))
    }

    /// Executes a job to completion with an armed [`FaultInjector`].
    ///
    /// This is raw injection with **no** detection or recovery — the
    /// corrupted results land in memory as hardware would produce them.
    /// For protected execution see `Engine::run_ft`.
    ///
    /// # Errors
    ///
    /// As [`Engine::run`], plus [`EngineError::Watchdog`] when an injected
    /// fault (e.g. dropped transactions) hangs the schedule.
    pub fn run_with_faults(
        &self,
        job: Job,
        mem: &mut Tcdm,
        hci: &mut Hci,
        injector: FaultInjector,
    ) -> Result<RunReport, EngineError> {
        let mut session = self.start_with_faults(job, injector)?;
        while !session.is_finished() {
            session.tick(mem, hci, &[])?;
        }
        Ok(session.finish())
    }

    /// Rebuilds a running [`EngineSession`] from a snapshot taken by
    /// [`EngineSession::checkpoint`]. Driving the resumed session to
    /// completion is bit-identical to never having interrupted the
    /// original — results, cycle counts and fault telemetry all match
    /// (the caller must restore the matching TCDM/HCI state alongside).
    ///
    /// # Errors
    ///
    /// [`EngineError::Snapshot`] when the snapshot is damaged, was taken
    /// under different instance parameters or a different streamer policy,
    /// or this engine has per-cycle tracing enabled (traces are not
    /// serialised, so a resumed trace would be incomplete).
    pub fn resume(&self, state: &SessionState) -> Result<EngineSession, EngineError> {
        if self.trace {
            return Err(EngineError::Snapshot(
                "cannot resume into a tracing engine: per-cycle traces are not serialised"
                    .to_string(),
            ));
        }
        let mut r = StateReader::new(&state.payload);
        let (h, l, p): (usize, usize, usize) = r.get()?;
        if (h, l, p) != (self.cfg.h, self.cfg.l, self.cfg.p) {
            return Err(EngineError::Snapshot(format!(
                "snapshot is for an H={h} L={l} P={p} instance, engine is H={} L={} P={}",
                self.cfg.h, self.cfg.l, self.cfg.p
            )));
        }
        let policy = policy_from_tag(r.get::<u8>()?)?;
        if policy != self.policy {
            return Err(EngineError::Snapshot(format!(
                "snapshot was taken under streamer policy {policy:?}, engine uses {:?}",
                self.policy
            )));
        }
        let job = Job::load_state(&mut r)?;
        job.validate()
            .map_err(|e| EngineError::Snapshot(format!("snapshot job invalid: {e}")))?;
        let cycle: u64 = r.get()?;
        let stalled_for: u64 = r.get()?;

        let mut sim = Sim::new(self.cfg, job, false, self.policy);
        let corrupt = |what: &str| EngineError::Snapshot(format!("corrupt snapshot: {what}"));
        sim.compute_tile = r.get()?;
        if sim.compute_tile > sim.tiles.len() {
            return Err(corrupt("tile cursor past the end of the tile grid"));
        }
        sim.w_cursor = r.get()?;
        sim.x_cursor = r.get()?;
        sim.zpre_cursor = r.get()?;
        sim.zpre_ready_tile = r.get()?;
        let zpre: Vec<Vec<u16>> = r.get()?;
        if zpre.len() != sim.cfg.l || zpre.iter().any(|row| row.len() != sim.pw) {
            return Err(corrupt("Z-preload geometry mismatch"));
        }
        sim.zpre = zpre.into_iter().map(f16_from_bits).collect();
        let stores: Vec<(u32, Vec<u16>)> = r.get()?;
        sim.store_queue = stores
            .into_iter()
            .map(|(addr, data)| StoreReq {
                addr,
                data: f16_from_bits(data),
            })
            .collect();
        let x_staging: Vec<Option<Vec<u16>>> = r.get()?;
        if x_staging.len() != sim.cfg.l || x_staging.iter().flatten().any(|row| row.len() != sim.pw)
        {
            return Err(corrupt("X staging geometry mismatch"));
        }
        for (row, slot) in x_staging.into_iter().enumerate() {
            if let Some(data) = slot {
                sim.xb.stage_row(row, f16_from_bits(data));
            }
        }
        let w_staging: Vec<Option<Vec<u16>>> = r.get()?;
        if w_staging.len() != sim.cfg.h || w_staging.iter().flatten().any(|g| g.len() != sim.pw) {
            return Err(corrupt("W staging geometry mismatch"));
        }
        for (col, slot) in w_staging.into_iter().enumerate() {
            if let Some(data) = slot {
                sim.wb.stage_group(col, f16_from_bits(data));
            }
        }
        let w_inflight: Option<(usize, Vec<u16>)> = r.get()?;
        if let Some((col, group)) = &w_inflight {
            if *col >= sim.cfg.h || group.len() != sim.pw {
                return Err(corrupt("in-flight W group geometry mismatch"));
            }
        }
        sim.w_inflight = w_inflight.map(|(col, group)| (col, f16_from_bits(group)));
        sim.stats.restore_state(&mut r)?;
        sim.useful_macs = r.get()?;
        sim.stall_cycles = r.get()?;
        sim.phases.restore_state(&mut r)?;
        let dp_macs: u64 = r.get()?;
        sim.dp.restore_macs(dp_macs);
        match r.get::<u8>()? {
            0 => {}
            1 => {
                let mut injector = FaultInjector::default();
                injector.restore_state(&mut r)?;
                sim.injector = Some(injector);
            }
            t => return Err(corrupt(&format!("unknown injector tag {t}"))),
        }
        r.expect_end()?;

        let mut session = EngineSession::new(sim, self.watchdog);
        session.cycle = cycle;
        session.stalled_for = stalled_for;
        session.last_sig = (cycle > 0).then(|| session.sim.progress_sig());
        Ok(session)
    }
}

/// Container magic identifying serialised engine sessions.
const SESSION_MAGIC: [u8; 4] = *b"RMSS";

/// Version of the session snapshot payload format. Bumped whenever the
/// serialised state layout changes; old snapshots are rejected rather than
/// misread. Version 3 appended the job's operand [`Format`] tag to the
/// serialised descriptor.
///
/// [`Format`]: redmule_fp16::Format
pub const SESSION_STATE_VERSION: u32 = 3;

/// Envelope description of the `RMSS` session container, for the typed
/// decoder.
const SESSION_CONTAINER: ContainerSpec = ContainerSpec {
    name: "session",
    magic: SESSION_MAGIC,
    version: SESSION_STATE_VERSION,
};

/// A versioned, checksummed snapshot of an in-flight [`EngineSession`],
/// taken at a tile boundary by [`EngineSession::checkpoint`] and turned
/// back into a running session by [`Engine::resume`].
///
/// Snapshots are only taken at tile boundaries, where the datapath
/// pipelines are drained, the W shift registers are empty and the Z
/// accumulation buffer holds no live tile — so the serialised state is the
/// scheduler cursors, the staged/in-flight operand groups, the pending
/// store queue, the counters and the fault-injector position, which is
/// everything needed for a bit-exact resume.
///
/// The wire format is `"RMSS"` magic, a little-endian format version, a
/// length-prefixed payload and an FNV-1a-64 checksum of the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionState {
    payload: Vec<u8>,
}

impl SessionState {
    /// Serialises the snapshot into a self-describing byte container.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 24);
        out.extend_from_slice(&SESSION_MAGIC);
        out.extend_from_slice(&SESSION_STATE_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&fnv1a64(&self.payload).to_le_bytes());
        out
    }

    /// Parses a container produced by [`SessionState::to_bytes`],
    /// verifying magic, version and checksum.
    ///
    /// # Errors
    ///
    /// A typed [`DecodeError`] on any structural damage: wrong magic,
    /// unsupported version, truncation, trailing bytes or checksum
    /// mismatch. Never panics, whatever the input.
    pub fn from_bytes(bytes: &[u8]) -> Result<SessionState, DecodeError> {
        let payload = decode_container(SESSION_CONTAINER, bytes)?;
        Ok(SessionState { payload })
    }

    /// Size of the serialised payload in bytes (excluding the container
    /// header and checksum).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }
}

fn policy_tag(policy: StreamerPolicy) -> u8 {
    match policy {
        StreamerPolicy::Interleaved => 0,
        StreamerPolicy::HalfBandwidth => 1,
        StreamerPolicy::SingleBufferedW => 2,
    }
}

fn policy_from_tag(tag: u8) -> Result<StreamerPolicy, EngineError> {
    Ok(match tag {
        0 => StreamerPolicy::Interleaved,
        1 => StreamerPolicy::HalfBandwidth,
        2 => StreamerPolicy::SingleBufferedW,
        t => {
            return Err(EngineError::Snapshot(format!(
                "unknown streamer-policy tag {t}"
            )))
        }
    })
}

fn f16_bits(values: &[F16]) -> Vec<u16> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn f16_from_bits(bits: Vec<u16>) -> Vec<F16> {
    bits.into_iter().map(F16::from_bits).collect()
}

/// A running accelerator job that advances one clock at a time, sharing
/// the HCI with other initiators.
///
/// Each [`EngineSession::tick`] performs one cycle of the whole
/// accelerator (datapath + streamer) and arbitrates the streamer's wide
/// access against any core/DMA requests the caller submits for that same
/// cycle — the real tightly-coupled execution the cluster was designed
/// for.
///
/// # Example
///
/// ```
/// use redmule::{AccelConfig, Engine, Job};
/// use redmule_cluster::{ClusterConfig, Hci, Initiator, Tcdm};
/// use redmule_fp16::F16;
///
/// let ccfg = ClusterConfig::default();
/// let mut mem = Tcdm::new(&ccfg);
/// let mut hci = Hci::new(&ccfg);
/// for i in 0..4 {
///     mem.write_f16(2 * i, F16::ONE)?;
///     mem.write_f16(0x100 + 2 * i, F16::ONE)?;
/// }
/// let engine = Engine::new(AccelConfig::paper());
/// let mut session = engine.start(Job::new(0, 0x100, 0x200, 2, 2, 2))?;
/// while !session.is_finished() {
///     // Core 0 polls some flag in bank 0 every cycle, contending with
///     // the accelerator's wide accesses.
///     let tick = session.tick(&mut mem, &mut hci, &[(Initiator::Core(0), 0x40)])?;
///     let _core_served = tick.log_granted[0];
/// }
/// let report = session.finish();
/// assert!(report.cycles.count() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
// modelcheck: snapshot(save = checkpoint, load = resume)
#[derive(Debug)]
pub struct EngineSession {
    sim: Sim,
    cycle: u64,
    // modelcheck-allow: RM-SNAP-001 -- derived: recomputed from sim.tiles
    // by EngineSession::new on resume.
    no_work: bool,
    // modelcheck-allow: RM-SNAP-001 -- derived: the cycle bound is a pure
    // function of (cfg, job), recomputed by EngineSession::new on resume.
    bound: u64,
    // modelcheck-allow: RM-SNAP-001 -- engine configuration, not job
    // state: resume() reinstalls the *resuming* engine's watchdog.
    watchdog: u64,
    // modelcheck-allow: RM-SNAP-001 -- derived: recomputed from the
    // restored scheduler cursors (progress_sig) at the end of resume().
    last_sig: Option<ProgressSig>,
    stalled_for: u64,
    // modelcheck-allow: RM-SNAP-001 -- telemetry: trace sinks are attached
    // per session by the caller and intentionally not serialised; a resumed
    // session starts unsinked (see DESIGN.md §12).
    sink: Option<Box<dyn TraceSink>>,
    // modelcheck-allow: RM-SNAP-001 -- telemetry cache: monotonicity clamp
    // for estimated_remaining_cycles; resets to the no-estimate-yet state
    // on resume, which only relaxes the clamp.
    est_clamp: Cell<u64>,
}

/// Snapshot of every scheduler cursor; two equal consecutive snapshots mean
/// the cycle made no forward progress (the watchdog's liveness signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProgressSig {
    tile: usize,
    t: usize,
    started: bool,
    stores: usize,
    w: (usize, usize, usize),
    x: (usize, usize, usize),
    zp: (usize, usize),
    zready: usize,
}

/// What one datapath tick did, for per-cycle attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CycleKind {
    /// The datapath advanced: an FMA phase issued or a tile flushed.
    Advance,
    /// All tiles are computed; only the store queue still drains.
    DrainOnly,
    /// The datapath was clock-gated; the payload is the schedule-level
    /// cause (`Fill`, `Refill` or `Drain`). The tick loop upgrades it to
    /// `Stall` when the streamer's request was denied this same cycle.
    Stalled(Phase),
}

/// Pre-tick counter snapshot used to reconstruct trace events from deltas
/// (only taken when a sink is attached).
#[derive(Debug, Clone, Copy)]
struct TickObs {
    tile: usize,
    started: bool,
    w_loads: u64,
    x_loads: u64,
    z_preloads: u64,
    z_stores: u64,
    port_conflicts: u64,
    faults: usize,
}

/// Outcome of one [`EngineSession::tick`].
#[derive(Debug, Clone)]
pub struct TickResult {
    /// Grant for each submitted logarithmic-branch request, in order.
    pub log_granted: Vec<bool>,
    /// Whether the job completed on this cycle.
    pub finished: bool,
}

impl EngineSession {
    fn new(sim: Sim, watchdog: u64) -> EngineSession {
        let no_work = sim.tiles.is_empty();
        let bound =
            10_000 + 64 * sim.tiles.len() as u64 * (sim.tile_len() as u64 + sim.cfg.l as u64 + 4);
        EngineSession {
            sim,
            cycle: 0,
            no_work,
            bound,
            watchdog,
            last_sig: None,
            stalled_for: 0,
            sink: None,
            est_clamp: Cell::new(u64::MAX),
        }
    }

    /// Attaches a trace sink; subsequent ticks emit typed
    /// [`TraceEvent`]s into it. At most one sink is held — attaching
    /// replaces (and drops) any previous sink. With no sink attached the
    /// event-assembly path is skipped entirely (tracing is zero-cost when
    /// disabled); the [`PhaseCycles`] ledger is always on either way.
    pub fn attach_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the current sink, if any. Use
    /// [`EventLog::from_sink`] to recover a concrete event log.
    pub fn detach_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// `true` while a trace sink is attached.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// The per-phase cycle attribution accumulated so far.
    pub fn phase_cycles(&self) -> PhaseCycles {
        self.sim.phases
    }

    /// `true` once the job has fully drained (further ticks are no-ops).
    pub fn is_finished(&self) -> bool {
        self.no_work || self.sim.finished()
    }

    /// Advances the accelerator one cycle; `log_requests` are core/DMA
    /// accesses contending on the interconnect this same cycle.
    ///
    /// # Errors
    ///
    /// [`EngineError::Memory`] when an operand access leaves the TCDM;
    /// [`EngineError::Watchdog`] when the schedule makes no forward
    /// progress for a full watchdog window (see [`Engine::with_watchdog`])
    /// or exceeds its structural cycle bound — a hung interconnect or a
    /// scheduler bug, reported instead of spinning forever.
    pub fn tick(
        &mut self,
        mem: &mut Tcdm,
        hci: &mut Hci,
        log_requests: &[(redmule_cluster::Initiator, u32)],
    ) -> Result<TickResult, EngineError> {
        if self.is_finished() {
            return Ok(TickResult {
                log_granted: vec![false; log_requests.len()],
                finished: true,
            });
        }
        // Contention can legitimately stretch execution by up to the
        // rotation period; scale the structural bound accordingly.
        if self.cycle >= self.bound * 8 {
            self.emit_watchdog();
            return Err(EngineError::Watchdog {
                cycle: self.cycle,
                stalled_for: self.stalled_for,
            });
        }
        self.sim.inject_cycle_faults(self.cycle, mem);
        self.sim.stage_pads();
        let stalls_before = self.sim.stall_cycles;
        let conflicts_before = self.sim.stats.get("port_conflicts");
        let pre = self.sink.is_some().then(|| self.observe_pre_tick());
        let kind = if self.sim.n_phases == 0 {
            self.sim.flush_empty_reduction_tile(mem)?
        } else {
            self.sim.compute_cycle()
        };
        let log_granted = self
            .sim
            .streamer_cycle(mem, hci, self.cycle, log_requests)?;
        // Attribute this cycle to exactly one category. A datapath stall
        // whose memory request was denied this same cycle is charged to
        // interconnect contention (`Stall`) rather than the schedule-level
        // cause it would otherwise carry.
        let phase = match kind {
            CycleKind::Advance => Phase::Compute,
            CycleKind::DrainOnly => Phase::Drain,
            CycleKind::Stalled(cause) => {
                if self.sim.stats.get("port_conflicts") > conflicts_before {
                    Phase::Stall
                } else {
                    cause
                }
            }
        };
        if let Some(trace) = &mut self.sim.trace {
            let w_staged = (0..self.sim.cfg.h)
                .filter(|&h| !self.sim.wb.staging_free(h))
                .count();
            let x_staged = (0..self.sim.cfg.l)
                .filter(|&r| !self.sim.xb.staging_free(r))
                .count();
            trace.occupancy.push(OccupancySample {
                stalled: self.sim.stall_cycles > stalls_before,
                w_staged: w_staged as u8,
                x_staged: x_staged as u8,
                z_pending: self.sim.store_queue.len() as u8,
            });
        }
        let sig = self.sim.progress_sig();
        if self.last_sig == Some(sig) {
            self.stalled_for += 1;
            if self.stalled_for >= self.watchdog {
                self.emit_watchdog();
                return Err(EngineError::Watchdog {
                    cycle: self.cycle,
                    stalled_for: self.stalled_for,
                });
            }
        } else {
            self.last_sig = Some(sig);
            self.stalled_for = 0;
        }
        self.sim.phases.add(phase);
        if let Some(pre) = pre {
            self.emit_tick_events(&pre, kind, phase);
        }
        self.cycle = self.cycle.saturating_add(1);
        Ok(TickResult {
            log_granted,
            finished: self.is_finished(),
        })
    }

    /// Counter snapshot taken before a tick so events can be
    /// reconstructed from deltas afterwards. Only assembled when a sink is
    /// attached.
    fn observe_pre_tick(&self) -> TickObs {
        let s = &self.sim;
        TickObs {
            tile: s.compute_tile,
            started: s.started,
            w_loads: s.stats.get("w_loads"),
            x_loads: s.stats.get("x_loads"),
            z_preloads: s.stats.get("z_preloads"),
            z_stores: s.stats.get("z_stores"),
            port_conflicts: s.stats.get("port_conflicts"),
            faults: s
                .injector
                .as_ref()
                .map_or(0, |inj| inj.log().events().len()),
        }
    }

    /// Emits the typed trace events for the cycle that just executed,
    /// derived from the pre/post counter deltas.
    fn emit_tick_events(&mut self, pre: &TickObs, kind: CycleKind, phase: Phase) {
        let Some(sink) = self.sink.as_mut() else {
            return;
        };
        let s = &self.sim;
        let cycle = self.cycle;
        if s.n_phases > 0 {
            if !pre.started && s.started {
                let tile = s.tiles[pre.tile];
                sink.emit(&TraceEvent::TileStart {
                    cycle,
                    tile: pre.tile as u32,
                    row0: tile.row0 as u32,
                    rows: tile.rows_live as u32,
                    cols: tile.cols_live as u32,
                });
            }
            if s.compute_tile > pre.tile {
                sink.emit(&TraceEvent::TileEnd {
                    cycle,
                    tile: pre.tile as u32,
                });
            }
        } else if s.compute_tile > pre.tile {
            // Empty-reduction tiles flush in a single cycle.
            let tile = s.tiles[pre.tile];
            sink.emit(&TraceEvent::TileStart {
                cycle,
                tile: pre.tile as u32,
                row0: tile.row0 as u32,
                rows: tile.rows_live as u32,
                cols: tile.cols_live as u32,
            });
            sink.emit(&TraceEvent::TileEnd {
                cycle,
                tile: pre.tile as u32,
            });
        }
        for (channel, before, after) in [
            (Channel::W, pre.w_loads, s.stats.get("w_loads")),
            (Channel::ZPre, pre.z_preloads, s.stats.get("z_preloads")),
            (Channel::X, pre.x_loads, s.stats.get("x_loads")),
        ] {
            if after > before {
                sink.emit(&TraceEvent::Refill {
                    cycle,
                    channel,
                    seq: after,
                });
            }
        }
        if s.stats.get("z_stores") > pre.z_stores {
            sink.emit(&TraceEvent::StoreDrain {
                cycle,
                pending: s.store_queue.len() as u32,
            });
        }
        if s.stats.get("port_conflicts") > pre.port_conflicts {
            sink.emit(&TraceEvent::HciStall { cycle });
        }
        if matches!(kind, CycleKind::Stalled(_)) {
            sink.emit(&TraceEvent::Stall { cycle, phase });
        }
        if let Some(inj) = &s.injector {
            for fe in &inj.log().events()[pre.faults..] {
                sink.emit(&TraceEvent::Fault {
                    cycle: fe.cycle,
                    class: fe.class,
                    phase: fe.phase,
                });
            }
        }
    }

    /// Emits a watchdog trip event (just before the session aborts with
    /// [`EngineError::Watchdog`]).
    fn emit_watchdog(&mut self) {
        let cycle = self.cycle;
        let stalled_for = self.stalled_for;
        if let Some(sink) = self.sink.as_mut() {
            sink.emit(&TraceEvent::Watchdog { cycle, stalled_for });
        }
    }

    /// Consumes the session, producing the final report.
    ///
    /// # Panics
    ///
    /// Panics if the job has not finished (drive [`EngineSession::tick`]
    /// until [`EngineSession::is_finished`]).
    pub fn finish(mut self) -> RunReport {
        assert!(self.is_finished(), "job still in flight");
        self.sim.stats.add("stall_cycles", self.sim.stall_cycles);
        self.sim.stats.add("macs", self.sim.useful_macs);
        self.sim.stats.add("lane_macs", self.sim.dp.macs());
        for (label, cycles) in self.sim.phases.iter() {
            self.sim.stats.add(&format!("phase_{label}"), cycles);
        }
        debug_assert_eq!(
            self.sim.phases.total(),
            self.cycle,
            "phase attribution must cover every executed cycle exactly once"
        );
        debug_assert_eq!(
            self.sim.useful_macs,
            self.sim.job.shape().macs(),
            "useful-MAC accounting must cover the job exactly"
        );
        let faults = self
            .sim
            .injector
            .take()
            .map(FaultInjector::into_log)
            .unwrap_or_default();
        if !faults.is_empty() {
            self.sim
                .stats
                .add("faults_injected", faults.count(FaultPhase::Injected));
        }
        RunReport {
            cycles: Cycle::new(self.cycle),
            macs: self.sim.useful_macs,
            stall_cycles: self.sim.stall_cycles,
            phases: self.sim.phases,
            stats: self.sim.stats,
            trace: self.sim.trace,
            faults,
        }
    }

    /// Cycles executed so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Output tiles whose computation has fully completed.
    pub fn tiles_completed(&self) -> usize {
        self.sim.compute_tile.min(self.sim.tiles.len())
    }

    /// Total output tiles in the job's tile grid.
    pub fn tiles_total(&self) -> usize {
        self.sim.tiles.len()
    }

    /// `true` when the session sits on a tile boundary — the next compute
    /// cycle would be the first of a fresh tile (or the job is draining
    /// its final stores). At a boundary the datapath pipelines are
    /// drained and the W/Z buffers hold no live tile state, which is what
    /// makes [`EngineSession::checkpoint`] possible.
    pub fn at_tile_boundary(&self) -> bool {
        self.sim.t_local == 0 && !self.sim.started
    }

    /// Analytical estimate of the cycles still needed to finish the job,
    /// from the calibrated schedule model (exact on uncontended fault-free
    /// runs): each remaining tile costs its compute length `tile_len =
    /// H*(P+1) + n_phases*H*(P+1)`, prefetch hides every boundary stall,
    /// the initial pipeline fill costs `min(N,H) + min(M,L)` operand
    /// loads, and the final drain retires the last tile's remaining rows
    /// at one store per cycle (the first overlapping the last compute
    /// tick). Empty-reduction jobs (`N == 0`) flush one tile per cycle in
    /// parallel with the store drain.
    ///
    /// The returned value is monotonically non-increasing across a run
    /// (contention can only delay completion, never un-finish work; a
    /// clamp enforces this across re-ordering edge cases) and never
    /// exceeds the actual remaining cycles by more than one tile. Used for
    /// graceful degradation when a supervisor cuts a run short.
    pub fn estimated_remaining_cycles(&self) -> u64 {
        let clamped = self.estimate_remaining_raw().min(self.est_clamp.get());
        self.est_clamp.set(clamped);
        clamped
    }

    fn estimate_remaining_raw(&self) -> u64 {
        if self.is_finished() {
            return 0;
        }
        let s = &self.sim;
        // With half-width FP8 elements the streamer serves two transactions
        // per granted beat, so fill loads and store drains retire in pairs.
        let beat: u64 = if s.job.format.is_fp8() { 2 } else { 1 };
        if s.compute_tile >= s.tiles.len() {
            // Only queued stores remain; they retire `beat` per cycle.
            return (s.store_queue.len() as u64).div_ceil(beat);
        }
        if s.n_phases == 0 {
            // One tile flushes per cycle while stores drain in parallel.
            let tiles_left = (s.tiles.len() - s.compute_tile) as u64;
            let store_rows: u64 = s.tiles[s.compute_tile..]
                .iter()
                .map(|t| t.rows_live as u64)
                .sum();
            return tiles_left.max((store_rows + s.store_queue.len() as u64).div_ceil(beat));
        }
        let tile_len = s.tile_len() as u64;
        let tiles_after = (s.tiles.len() - s.compute_tile - 1) as u64;
        // Mid-tile `t_local` is always < tile_len (it wraps on completion).
        let current = tile_len - (s.t_local as u64).min(tile_len);
        // The last tile's stores leave `beat` rows per cycle, minus the
        // store overlapping the final compute cycle (`rows - 1` for FP16).
        let drain = s
            .tiles
            .last()
            .map_or(0, |t| (t.rows_live as u64).div_ceil(beat).saturating_sub(1));
        // Initial pipeline fill: only before the very first tile starts.
        let fill = if s.compute_tile == 0 && !s.started {
            ((s.job.n.min(s.cfg.h) + s.job.m.min(s.cfg.l)) as u64).div_ceil(beat)
        } else {
            0
        };
        let compute_path = tiles_after * tile_len + current + drain + fill;
        // The store queue drains at most `beat` rows per cycle, so it
        // lower-bounds the remaining time under heavy contention backlog.
        compute_path.max((s.store_queue.len() as u64).div_ceil(beat))
    }

    /// Serialises the session into a [`SessionState`] snapshot.
    ///
    /// Only legal at a tile boundary ([`EngineSession::at_tile_boundary`])
    /// — between tiles the micro-architectural state collapses to the
    /// scheduler cursors, staged operands and pending stores, so a resumed
    /// run is bit-identical to an uninterrupted one. The TCDM and HCI are
    /// *not* included; callers snapshot those alongside (see the runtime
    /// crate's checkpoint container).
    ///
    /// # Errors
    ///
    /// [`EngineError::Snapshot`] when called mid-tile or on a session with
    /// per-cycle tracing enabled (traces are not serialised).
    ///
    /// Takes `&mut self` only to emit a [`TraceEvent::Checkpoint`] into an
    /// attached sink; the simulation state itself is not modified.
    pub fn checkpoint(&mut self) -> Result<SessionState, EngineError> {
        let s = &self.sim;
        if s.trace.is_some() {
            return Err(EngineError::Snapshot(
                "cannot checkpoint a tracing session: per-cycle traces are not serialised"
                    .to_string(),
            ));
        }
        if !self.at_tile_boundary() {
            return Err(EngineError::Snapshot(format!(
                "not at a tile boundary (tile {}, local cycle {})",
                s.compute_tile, s.t_local
            )));
        }
        debug_assert!(s.dp.is_drained(), "datapath must drain between tiles");
        debug_assert!(
            !s.zb.is_occupied(),
            "Z buffer must be released between tiles"
        );
        let mut w = StateWriter::new();
        w.put(&(s.cfg.h, s.cfg.l, s.cfg.p));
        w.put(&policy_tag(s.policy));
        s.job.save_state(&mut w);
        w.put(&self.cycle);
        w.put(&self.stalled_for);
        w.put(&s.compute_tile);
        w.put(&s.w_cursor);
        w.put(&s.x_cursor);
        w.put(&s.zpre_cursor);
        w.put(&s.zpre_ready_tile);
        w.put(
            &s.zpre
                .iter()
                .map(|row| f16_bits(row))
                .collect::<Vec<Vec<u16>>>(),
        );
        w.put(
            &s.store_queue
                .iter()
                .map(|req| (req.addr, f16_bits(&req.data)))
                .collect::<Vec<(u32, Vec<u16>)>>(),
        );
        let staged = |slots: &[Option<Vec<F16>>]| -> Vec<Option<Vec<u16>>> {
            slots
                .iter()
                .map(|slot| slot.as_deref().map(f16_bits))
                .collect()
        };
        w.put(&staged(s.xb.staging_slots()));
        w.put(&staged(s.wb.staging_slots()));
        w.put(
            &s.w_inflight
                .as_ref()
                .map(|(col, group)| (*col, f16_bits(group))),
        );
        s.stats.save_state(&mut w);
        w.put(&s.useful_macs);
        w.put(&s.stall_cycles);
        s.phases.save_state(&mut w);
        w.put(&s.dp.macs());
        match &s.injector {
            None => w.put(&0u8),
            Some(injector) => {
                w.put(&1u8);
                injector.save_state(&mut w);
            }
        }
        let tile = self.sim.compute_tile as u32;
        let cycle = self.cycle;
        if let Some(sink) = self.sink.as_mut() {
            sink.emit(&TraceEvent::Checkpoint { cycle, tile });
        }
        Ok(SessionState {
            payload: w.finish(),
        })
    }

    /// A [`RunReport`] covering the work done *so far*, for a session that
    /// will not run to completion (deadline hit, cancellation). Unlike
    /// [`EngineSession::finish`] this does not consume the session, never
    /// panics mid-flight and skips the full-job MAC accounting check.
    pub fn partial_report(&self) -> RunReport {
        let mut stats = self.sim.stats.clone();
        stats.add("stall_cycles", self.sim.stall_cycles);
        stats.add("macs", self.sim.useful_macs);
        stats.add("lane_macs", self.sim.dp.macs());
        for (label, cycles) in self.sim.phases.iter() {
            stats.add(&format!("phase_{label}"), cycles);
        }
        let faults = self
            .sim
            .injector
            .as_ref()
            .map(|injector| injector.log().clone())
            .unwrap_or_default();
        if !faults.is_empty() {
            stats.add("faults_injected", faults.count(FaultPhase::Injected));
        }
        RunReport {
            cycles: Cycle::new(self.cycle),
            macs: self.sim.useful_macs,
            stall_cycles: self.sim.stall_cycles,
            phases: self.sim.phases,
            stats,
            trace: None,
            faults,
        }
    }
}

/// All mutable state of one job execution.
// modelcheck: snapshot(save = checkpoint, load = resume)
#[derive(Debug)]
struct Sim {
    cfg: AccelConfig,
    job: Job,
    // modelcheck-allow: RM-SNAP-001 -- derived: recomputed from cfg by
    // Sim::new on resume.
    pw: usize,
    // modelcheck-allow: RM-SNAP-001 -- derived: recomputed from cfg by
    // Sim::new on resume.
    lat: usize,
    // modelcheck-allow: RM-SNAP-001 -- derived: recomputed from the job
    // shape by Sim::new on resume.
    n_phases: usize,
    // modelcheck-allow: RM-SNAP-001 -- derived: the tile grid is a pure
    // function of (cfg, job), rebuilt by Sim::new on resume.
    tiles: Vec<Tile>,

    dp: Datapath,
    xb: XBuffer,
    wb: WBuffer,
    // modelcheck-allow: RM-SNAP-001 -- drained: checkpoints are only taken
    // at tile boundaries, where the Z buffer holds no live tile (asserted
    // in checkpoint()).
    zb: ZBuffer,

    /// Tile currently being computed and its local cycle.
    compute_tile: usize,
    // modelcheck-allow: RM-SNAP-001 -- drained: at a tile boundary the
    // local cycle is 0 (enforced by at_tile_boundary before serialising).
    t_local: usize,
    // modelcheck-allow: RM-SNAP-001 -- drained: at a tile boundary the
    // next tile has not started (enforced by at_tile_boundary).
    started: bool,

    /// W generator cursor: (tile, phase, col) in deadline order.
    w_cursor: (usize, usize, usize),
    /// X generator cursor: (tile, chunk, row).
    x_cursor: (usize, usize, usize),
    /// Z preload cursor: (tile, row); the preload always targets the
    /// currently computing tile (accumulate mode only).
    zpre_cursor: (usize, usize),
    zpre: Vec<Vec<F16>>,
    zpre_ready_tile: usize,

    /// Pending Z stores.
    store_queue: std::collections::VecDeque<StoreReq>,

    stats: Stats,
    useful_macs: u64,
    stall_cycles: u64,
    /// Always-on per-cycle attribution ledger: exactly one [`Phase`] is
    /// charged per executed cycle.
    phases: PhaseCycles,
    trace: Option<EngineTrace>,
    policy: StreamerPolicy,
    /// Single-buffered-W ablation: a loaded group spends one cycle in
    /// flight before it can be staged (no prefetch hides this latency).
    w_inflight: Option<(usize, Vec<F16>)>,
    /// Armed fault injector (None on fault-free runs).
    injector: Option<FaultInjector>,
}

impl Sim {
    fn new(cfg: AccelConfig, job: Job, trace: bool, policy: StreamerPolicy) -> Sim {
        let pw = cfg.phase_width();
        let lat = cfg.latency();
        let n_phases = job.n.div_ceil(cfg.h);
        let mut tiles = Vec::new();
        for row0 in (0..job.m).step_by(cfg.l) {
            for k0 in (0..job.k).step_by(pw) {
                tiles.push(Tile {
                    row0,
                    k0,
                    rows_live: (job.m - row0).min(cfg.l),
                    cols_live: (job.k - k0).min(pw),
                });
            }
        }
        Sim {
            cfg,
            job,
            pw,
            lat,
            n_phases,
            dp: Datapath::new(cfg),
            xb: XBuffer::new(cfg.l, pw),
            wb: WBuffer::new(cfg.h, pw),
            zb: ZBuffer::new(cfg.l, pw),
            compute_tile: 0,
            t_local: 0,
            started: false,
            w_cursor: (0, 0, 0),
            x_cursor: (0, 0, 0),
            zpre_cursor: (0, 0),
            zpre: vec![vec![F16::ZERO; pw]; cfg.l],
            zpre_ready_tile: usize::MAX,
            store_queue: std::collections::VecDeque::new(),
            stats: Stats::new(),
            useful_macs: 0,
            stall_cycles: 0,
            phases: PhaseCycles::new(),
            trace: trace.then(|| EngineTrace {
                w: StreamMonitor::new("w_load"),
                x: StreamMonitor::new("x_load"),
                z: StreamMonitor::new("z_store"),
                occupancy: Vec::new(),
            }),
            policy,
            w_inflight: None,
            injector: None,
            tiles,
        }
    }

    /// Applies all cycle-addressed faults due this cycle (FMA pipeline
    /// registers and TCDM words).
    fn inject_cycle_faults(&mut self, cycle: u64, mem: &mut Tcdm) {
        if let Some(inj) = self.injector.as_mut() {
            inj.on_cycle(cycle, &mut self.dp, mem);
        }
    }

    fn progress_sig(&self) -> ProgressSig {
        ProgressSig {
            tile: self.compute_tile,
            t: self.t_local,
            started: self.started,
            stores: self.store_queue.len(),
            w: self.w_cursor,
            x: self.x_cursor,
            zp: self.zpre_cursor,
            zready: self.zpre_ready_tile,
        }
    }

    /// Number of X chunks per tile.
    fn n_chunks(&self) -> usize {
        self.n_phases.div_ceil(self.lat)
    }

    /// Total compute length of one tile in datapath cycles.
    fn tile_len(&self) -> usize {
        self.cfg.h * self.lat + self.n_phases * self.pw
    }

    fn finished(&self) -> bool {
        self.compute_tile >= self.tiles.len() && self.store_queue.is_empty()
    }

    /// N == 0: every output tile is all zeros (or the preloaded Z in
    /// accumulate mode). One tile is flushed per cycle.
    fn flush_empty_reduction_tile(&mut self, _mem: &mut Tcdm) -> Result<CycleKind, EngineError> {
        if self.compute_tile >= self.tiles.len() {
            return Ok(CycleKind::DrainOnly);
        }
        if self.zb.is_occupied() {
            return Ok(CycleKind::Stalled(Phase::Drain));
        }
        if self.job.accumulate && self.zpre_ready_tile != self.compute_tile {
            // Wait for the Z preload of this tile to finish streaming in.
            return Ok(CycleKind::Stalled(Phase::Refill));
        }
        let tile = self.tiles[self.compute_tile];
        for r in 0..tile.rows_live {
            for j in 0..self.pw {
                let v = if self.job.accumulate {
                    self.zpre[r][j]
                } else {
                    F16::ZERO
                };
                self.zb.record(r, j, v);
            }
        }
        self.zb.seal();
        self.enqueue_stores(tile);
        self.zb.release();
        self.compute_tile += 1;
        self.zpre_ready_tile = usize::MAX;
        self.zpre_cursor = (self.compute_tile, 0);
        Ok(CycleKind::Advance)
    }

    /// One datapath cycle (or a stall).
    fn compute_cycle(&mut self) -> CycleKind {
        if self.compute_tile >= self.tiles.len() {
            return CycleKind::DrainOnly;
        }
        let tile = self.tiles[self.compute_tile];
        let t = self.t_local;
        let pw = self.pw;
        let lat = self.lat;
        let h_count = self.cfg.h;
        let final_start = h_count * lat + (self.n_phases - 1) * pw;

        // ---- Stall checks (clock gate) ----
        if !self.started {
            // Tile start: chunk 0 staged, W group for column 0 staged,
            // Z buffer free, and (accumulate) the Z preload completed.
            if self.zb.is_occupied() {
                // Previous tile's outputs still hold the Z buffer.
                self.stall_cycles = self.stall_cycles.saturating_add(1);
                return CycleKind::Stalled(Phase::Drain);
            }
            if !self.xb.staging_complete()
                || self.wb.staging_free(0)
                || (self.job.accumulate && self.zpre_ready_tile != self.compute_tile)
            {
                // Pipeline fill: waiting for the tile's first operands.
                self.stall_cycles = self.stall_cycles.saturating_add(1);
                return CycleKind::Stalled(Phase::Fill);
            }
            self.xb.swap();
            self.started = true;
        } else {
            // Column phase starts needing a staged W group this cycle.
            for h in 0..h_count {
                let t_col = t as i64 - (h * lat) as i64;
                if t_col >= 0
                    && (t_col as usize) < self.n_phases * pw
                    && (t_col as usize).is_multiple_of(pw)
                    && self.wb.staging_free(h)
                {
                    self.stall_cycles = self.stall_cycles.saturating_add(1);
                    return CycleKind::Stalled(Phase::Refill);
                }
            }
            // Chunk boundary: column 0 entering phase c*lat needs the next
            // X chunk staged.
            if t < self.n_phases * pw && t.is_multiple_of(pw) {
                let phase = t / pw;
                if phase > 0 && phase.is_multiple_of(lat) {
                    if !self.xb.staging_complete() {
                        self.stall_cycles = self.stall_cycles.saturating_add(1);
                        return CycleKind::Stalled(Phase::Refill);
                    }
                    self.xb.swap();
                }
            }
            // Entering the final output window with the Z buffer still
            // draining the previous tile.
            if t == final_start && self.zb.is_occupied() {
                self.stall_cycles = self.stall_cycles.saturating_add(1);
                return CycleKind::Stalled(Phase::Drain);
            }
        }

        // ---- Build per-column control ----
        let mut ctrl: Vec<ColumnCtrl> = Vec::with_capacity(h_count);
        for h in 0..h_count {
            let t_col = t as i64 - (h * lat) as i64;
            if t_col < 0 || t_col as usize >= self.n_phases * pw {
                ctrl.push(ColumnCtrl::default());
                continue;
            }
            let t_col = t_col as usize;
            let phase = t_col / pw;
            let j = t_col % pw;
            let n_idx = phase * h_count + h;
            let pad = n_idx >= self.job.n;
            if !pad && j < tile.cols_live {
                // Useful work this cycle: one MAC per live row of this
                // column (padding lanes are clock-gated in real hardware).
                self.useful_macs += tile.rows_live as u64;
            }
            if j == 0 {
                let ok = self.wb.activate(h);
                debug_assert!(ok, "stall check guarantees the staged group");
            }
            let w_elem = self.wb.broadcast(h);
            let set_x = if j == 0 {
                let chunk_elem = (phase % lat) * h_count + h;
                Some(
                    (0..self.cfg.l)
                        .map(|r| self.xb.operand(r, chunk_elem))
                        .collect(),
                )
            } else {
                None
            };
            ctrl.push(ColumnCtrl {
                w: Some(w_elem),
                set_x,
                passthrough: pad,
            });
        }

        let acc0 = if t < pw {
            if self.job.accumulate {
                Acc0::Init((0..self.cfg.l).map(|r| self.zpre[r][t]).collect())
            } else {
                Acc0::Zero
            }
        } else {
            Acc0::Ring
        };

        let outs = self.dp.tick(&ctrl, &acc0);

        // ---- Capture finished outputs ----
        if t >= final_start && t < final_start + pw {
            let j = t - final_start;
            for (r, v) in outs.iter().enumerate() {
                // modelcheck-allow: RM-PANIC-001 -- schedule invariant: during
                // the final-phase window every datapath column emits a value;
                // a bubble here means the cycle-accurate schedule is broken.
                self.zb.record(r, j, v.expect("final-phase output present"));
            }
        }

        self.t_local += 1;
        if self.t_local == self.tile_len() {
            // Tile complete: seal outputs, queue the stores, advance.
            self.zb.seal();
            self.enqueue_stores(tile);
            self.zb.release();
            self.compute_tile += 1;
            self.t_local = 0;
            self.started = false;
            if self.job.accumulate {
                self.zpre_ready_tile = usize::MAX;
                self.zpre_cursor = (self.compute_tile, 0);
            }
        }
        CycleKind::Advance
    }

    fn enqueue_stores(&mut self, tile: Tile) {
        let esz = self.job.format.elem_bytes() as u32;
        for r in 0..tile.rows_live {
            let addr = self.job.z_addr + esz * ((tile.row0 + r) * self.job.z_ld() + tile.k0) as u32;
            let data = self.zb.row(r)[..tile.cols_live].to_vec();
            self.store_queue.push_back(StoreReq { addr, data });
        }
    }

    /// Stages W pad groups (reduction rows beyond N) and X pad rows
    /// (datapath rows beyond M) without consuming memory slots: the
    /// hardware generates these zeros locally.
    fn stage_pads(&mut self) {
        // W pads.
        while let Some((tile, phase, col)) = self.w_head() {
            let n_idx = phase * self.cfg.h + col;
            let _ = tile;
            if n_idx < self.job.n || !self.wb.staging_free(col) {
                break;
            }
            self.wb.stage_group(col, vec![F16::ZERO; self.pw]);
            self.advance_w();
        }
        // X pads.
        while let Some((tile_idx, chunk, row)) = self.x_head() {
            let tile = self.tiles[tile_idx];
            let _ = chunk;
            if row < tile.rows_live || !self.xb.staging_free(row) {
                break;
            }
            self.xb.stage_row(row, vec![F16::ZERO; self.pw]);
            self.advance_x();
        }
    }

    /// Head of the W generator, or `None` when all groups are issued.
    fn w_head(&self) -> Option<(usize, usize, usize)> {
        let (tile, phase, col) = self.w_cursor;
        (self.n_phases > 0 && tile < self.tiles.len()).then_some((tile, phase, col))
    }

    fn advance_w(&mut self) {
        let (mut tile, mut phase, mut col) = self.w_cursor;
        col += 1;
        if col == self.cfg.h {
            col = 0;
            phase += 1;
            if phase == self.n_phases {
                phase = 0;
                tile += 1;
            }
        }
        self.w_cursor = (tile, phase, col);
    }

    fn x_head(&self) -> Option<(usize, usize, usize)> {
        let (tile, chunk, row) = self.x_cursor;
        (self.n_phases > 0 && tile < self.tiles.len()).then_some((tile, chunk, row))
    }

    fn advance_x(&mut self) {
        let (mut tile, mut chunk, mut row) = self.x_cursor;
        row += 1;
        if row == self.cfg.l {
            row = 0;
            chunk += 1;
            if chunk == self.n_chunks() {
                chunk = 0;
                tile += 1;
            }
        }
        self.x_cursor = (tile, chunk, row);
    }

    fn zpre_head(&self) -> Option<(usize, usize)> {
        if !self.job.accumulate {
            return None;
        }
        let (tile, row) = self.zpre_cursor;
        (tile < self.tiles.len()).then_some((tile, row))
    }

    /// Selects the next transaction for the shallow port, priority
    /// W > Z-preload > X > Z-store, or `None` when every stream is idle.
    fn select_pick(&self) -> Option<Pick> {
        if let Some((tile, phase, col)) = self.w_head().filter(|&(_, phase, col)| {
            phase * self.cfg.h + col < self.job.n
                && self.wb.staging_free(col)
                && (self.policy != StreamerPolicy::SingleBufferedW
                    || (self.wb.register_empty(col) && self.w_inflight.is_none()))
        }) {
            Some(Pick::W(tile, phase, col))
        } else if let Some((tile, row)) = self
            .zpre_head()
            .filter(|&(tile, _)| tile == self.compute_tile && tile != self.zpre_ready_tile)
        {
            Some(Pick::ZPre(tile, row))
        } else if let Some((tile, chunk, row)) = self
            .x_head()
            .filter(|&(t, _, row)| row < self.tiles[t].rows_live && self.xb.staging_free(row))
        {
            Some(Pick::X(tile, chunk, row))
        } else if !self.store_queue.is_empty() {
            Some(Pick::ZStore)
        } else {
            None
        }
    }

    /// TCDM byte address of the first element a pick touches.
    fn pick_addr(&self, pick: Pick) -> u32 {
        let esz = self.job.format.elem_bytes() as u32;
        match pick {
            Pick::W(tile, phase, col) => {
                let n_idx = phase * self.cfg.h + col;
                self.job.w_addr + esz * (n_idx * self.job.w_ld() + self.tiles[tile].k0) as u32
            }
            Pick::ZPre(tile, row) => {
                let t = self.tiles[tile];
                self.job.z_addr + esz * ((t.row0 + row) * self.job.z_ld() + t.k0) as u32
            }
            Pick::X(tile, chunk, row) => {
                let t = self.tiles[tile];
                self.job.x_addr + esz * ((t.row0 + row) * self.job.x_ld() + chunk * self.pw) as u32
            }
            // modelcheck-allow: RM-PANIC-001 -- arbitration invariant:
            // Pick::ZStore is only selected when the store queue is
            // non-empty (checked when building the pick).
            Pick::ZStore => self.store_queue.front().expect("queue checked").addr,
        }
    }

    /// One streamer cycle: issue at most one wide access over the shallow
    /// port, priority W > Z-preload > X > Z-store. With an FP8 operand
    /// format the elements are half-width, so one granted 256-bit beat
    /// carries two picks' worth of elements: a second transaction is
    /// served on the same grant (the castin/castout stages repack bytes,
    /// doubling effective bandwidth — the journal follow-up's headline).
    fn streamer_cycle(
        &mut self,
        mem: &mut Tcdm,
        hci: &mut Hci,
        cycle: u64,
        log_requests: &[(redmule_cluster::Initiator, u32)],
    ) -> Result<Vec<bool>, EngineError> {
        if self.policy == StreamerPolicy::HalfBandwidth && cycle % 2 == 1 {
            self.stats.incr("port_gated");
            self.record_stream_trace(' ', false);
            let grants = hci.arbitrate(log_requests, None);
            return Ok(grants.log_granted);
        }

        // Single-buffered-W ablation: deliver last cycle's load first; the
        // port is free again this cycle for other streams.
        if let Some((col, group)) = self.w_inflight.take() {
            self.wb.stage_group(col, group);
        }

        let Some(pick) = self.select_pick() else {
            self.stats.incr("port_idle");
            self.record_stream_trace(' ', false);
            let grants = hci.arbitrate(log_requests, None);
            return Ok(grants.log_granted);
        };
        let kind = match pick {
            Pick::W(..) => 'w',
            Pick::ZPre(..) => 'p',
            Pick::X(..) => 'x',
            Pick::ZStore => 'z',
        };

        // The shallow port is a single wide transaction; arbitration with
        // concurrent core traffic happens in the HCI.
        let addr = self.pick_addr(pick);
        let grants = hci.arbitrate(log_requests, Some(addr));
        if !grants.shallow_granted {
            self.stats.incr("port_conflicts");
            self.record_stream_trace(kind, false);
            return Ok(grants.log_granted);
        }

        self.serve_pick(pick, mem, cycle)?;
        if self.job.format.is_fp8() {
            // Half-width elements: a second pick rides the same granted
            // beat (no extra HCI arbitration — it is one wide access).
            if let Some(second) = self.select_pick() {
                self.serve_pick(second, mem, cycle)?;
                self.stats.incr("fp8_pair_beats");
            }
        }

        self.record_stream_trace(kind, true);
        Ok(grants.log_granted)
    }

    /// Completes one picked transaction: reads operands through the castin
    /// stage (widening FP8 storage to FP16) or drains one store row
    /// through the castout stage (narrowing FP16 results to the job's
    /// storage format).
    fn serve_pick(&mut self, pick: Pick, mem: &mut Tcdm, cycle: u64) -> Result<(), EngineError> {
        let format = self.job.format;
        let esz = format.elem_bytes() as u32;
        match pick {
            Pick::W(tile, phase, col) => {
                let n_idx = phase * self.cfg.h + col;
                let t = self.tiles[tile];
                let mut group = Vec::with_capacity(self.pw);
                for jj in 0..self.pw {
                    let kk = t.k0 + jj;
                    group.push(if kk < self.job.k {
                        cast::castin(
                            mem,
                            format,
                            self.job.w_addr + esz * (n_idx * self.job.w_ld() + kk) as u32,
                        )?
                    } else {
                        F16::ZERO
                    });
                }
                if let Some(inj) = self.injector.as_mut() {
                    inj.on_w_load(cycle, phase, col, &mut group);
                }
                if self.policy == StreamerPolicy::SingleBufferedW {
                    self.w_inflight = Some((col, group));
                } else {
                    self.wb.stage_group(col, group);
                }
                self.advance_w();
                self.stats.incr("w_loads");
            }
            Pick::ZPre(tile, row) => {
                let t = self.tiles[tile];
                for jj in 0..self.pw {
                    let kk = t.k0 + jj;
                    self.zpre[row][jj] = if row < t.rows_live && kk < self.job.k {
                        cast::castin(
                            mem,
                            format,
                            self.job.z_addr + esz * ((t.row0 + row) * self.job.z_ld() + kk) as u32,
                        )?
                    } else {
                        F16::ZERO
                    };
                }
                self.zpre_cursor.1 += 1;
                if self.zpre_cursor.1 == self.cfg.l {
                    self.zpre_ready_tile = tile;
                    self.zpre_cursor = (tile, 0);
                }
                self.stats.incr("z_preloads");
            }
            Pick::X(tile, chunk, row) => {
                let t = self.tiles[tile];
                let mut data = Vec::with_capacity(self.pw);
                for e in 0..self.pw {
                    let n_idx = chunk * self.pw + e;
                    data.push(if n_idx < self.job.n {
                        cast::castin(
                            mem,
                            format,
                            self.job.x_addr
                                + esz * ((t.row0 + row) * self.job.x_ld() + n_idx) as u32,
                        )?
                    } else {
                        F16::ZERO
                    });
                }
                if let Some(inj) = self.injector.as_mut() {
                    inj.on_x_load(cycle, chunk, row, &mut data);
                }
                self.xb.stage_row(row, data);
                self.advance_x();
                self.stats.incr("x_loads");
            }
            Pick::ZStore => {
                // modelcheck-allow: RM-PANIC-001 -- arbitration invariant:
                // Pick::ZStore is only selected when the store queue is
                // non-empty (checked when building the pick).
                let StoreReq { addr, mut data } =
                    self.store_queue.pop_front().expect("queue checked");
                if let Some(inj) = self.injector.as_mut() {
                    inj.on_z_store(cycle, &mut data);
                }
                for (jj, v) in data.iter().enumerate() {
                    cast::castout(mem, format, addr + esz * jj as u32, *v)?;
                }
                self.stats.incr("z_stores");
            }
        }
        Ok(())
    }

    /// Records one cycle of port activity per stream. `kind` identifies
    /// which stream drove the port this cycle (`'w'`, `'x'`, `'z'`, `'p'`
    /// for Z-preload, or `' '` for an idle slot); `fired` is whether the
    /// HCI granted the transaction.
    fn record_stream_trace(&mut self, kind: char, fired: bool) {
        let Some(trace) = &mut self.trace else { return };
        let active = if fired {
            Handshake::FIRE
        } else {
            Handshake {
                valid: true,
                ready: false,
            }
        };
        trace
            .w
            .record(if kind == 'w' { active } else { Handshake::IDLE });
        trace
            .x
            .record(if kind == 'x' { active } else { Handshake::IDLE });
        // Z preloads share the Z port direction bookkeeping.
        trace.z.record(if kind == 'z' || kind == 'p' {
            active
        } else {
            Handshake::IDLE
        });
    }
}
