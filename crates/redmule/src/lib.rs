//! Cycle-accurate behavioural model of **RedMulE** — the Reduced-precision
//! matrix Multiplication Engine (DATE 2022).
//!
//! RedMulE is a parametric FP16 matrix-multiplication accelerator designed
//! as a Hardware Processing Engine tightly coupled to a PULP cluster. This
//! crate reproduces it at cycle granularity:
//!
//! * [`AccelConfig`] — the design-time parameters `H` (columns), `L`
//!   (rows), `P` (FMA pipeline registers); the paper instance is
//!   `H=4, L=8, P=3` (32 FMAs, 9 TCDM ports).
//! * [`datapath`] — the semi-systolic FMA array with row-ring
//!   accumulation, bit-accurate through [`redmule_fp16`].
//! * [`buffers`] — the X / W / Z buffers of Fig. 1.
//! * [`cast`] — the castin/castout stages of the journal follow-up:
//!   FP8 ([`Format`] E4M3 / E5M2) operand storage widened and narrowed
//!   around the unchanged FP16 datapath.
//! * [`faults`] — seeded fault injection and the RedMulE-FT replay /
//!   redundancy protection modes.
//! * [`Engine`] — scheduler + streamer + controller implementing the
//!   memory-access schedule of Fig. 2c against the cluster TCDM/HCI.
//! * [`RegFile`] and [`Job`] — the HWPE peripheral interface the cores
//!   program.
//! * [`Accelerator`] — the top-level facade.
//! * [`FunctionalGemm`] — the fast functional backend: bit-identical
//!   results without per-cycle simulation, selected via [`BackendKind`].
//!
//! # Quick start
//!
//! ```
//! use redmule::Accelerator;
//! use redmule_fp16::{vector::GemmShape, F16};
//!
//! let accel = Accelerator::paper_instance();
//! let shape = GemmShape::new(16, 32, 16);
//! let x = vec![F16::from_f32(0.5); shape.x_len()];
//! let w = vec![F16::from_f32(2.0); shape.w_len()];
//! let run = accel.gemm(shape, &x, &w)?;
//! assert_eq!(run.z[0].to_f32(), 32.0);
//! println!(
//!     "{} cycles, {:.1} MAC/cycle",
//!     run.report.cycles,
//!     run.report.macs_per_cycle()
//! );
//! # Ok::<(), redmule::EngineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod accelerator;
pub mod buffers;
pub mod cast;
mod config;
pub mod datapath;
pub mod decode;
mod engine;
pub mod faults;
mod functional;
mod l2;
pub mod regfile;

pub use accelerator::{stage_gemm_workspace, stage_gemm_workspace_in, Accelerator, GemmRun};
pub use config::AccelConfig;
pub use decode::DecodeError;
pub use engine::{
    Engine, EngineError, EngineSession, EngineTrace, OccupancySample, RunReport, SessionState,
    StreamerPolicy, TickResult, DEFAULT_WATCHDOG, SESSION_STATE_VERSION,
};
pub use faults::{
    FaultInjector, FaultPlan, FaultSite, FaultSpec, FtConfig, FtMode, TransientTarget,
};
pub use functional::{BackendKind, FunctionalGemm, FunctionalPlan, FunctionalRun};
pub use l2::{L2TiledGemm, TileShape, TiledReport};
pub use regfile::{Job, RegFile};

/// Operand storage [`Format`] re-exported from [`redmule_fp16`]: jobs can
/// keep X/W/Z in TCDM as FP16 or as OFP8 FP8 (E4M3 / E5M2), cast at the
/// [`cast`] stages around the FP16 datapath.
///
/// [`Format`]: redmule_fp16::Format
pub use redmule_fp16::Format;

/// Observability vocabulary re-exported from [`redmule_obs`] so engine
/// callers can attach sinks and consume [`RunReport::phases`] without a
/// direct dependency on the obs crate.
pub mod obs {
    pub use redmule_obs::{
        chrome_trace, validate_chrome_trace, Channel, ChromeTraceSummary, CounterSink, EventLog,
        Phase, PhaseCycles, RejectReason, RingSink, TraceEvent, TraceLane, TraceSink,
    };
}
