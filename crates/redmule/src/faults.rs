//! Seeded fault injection and fault-tolerant execution modes.
//!
//! This module reproduces the RedMulE-FT methodology at model level:
//!
//! * a [`FaultPlan`] describes *where* and *when* faults strike — transient
//!   bit-flips in the FMA pipeline registers, the X/W/Z buffer words and
//!   TCDM words, plus persistent stuck-at bits and dropped interconnect
//!   beats. Random plans are driven by the repository's own splitmix /
//!   xoshiro PRNGs, so the same seed reproduces the same strikes on any
//!   host, with no external dependencies;
//! * a [`FaultInjector`] (armed via [`Engine::start_with_faults`]) applies
//!   the plan as the engine executes, recording every landed fault in a
//!   cycle-stamped [`FaultLog`];
//! * [`Engine::run_ft`] wraps execution in one of two protection modes
//!   mirroring the hardware options: **replay** (checksum-based ABFT
//!   detects a corrupted output tile, which is then re-executed, costing
//!   only the replayed tiles) and **redundancy** (every tile is executed
//!   twice and the results voted, modelling the duplication mode's halved
//!   throughput).
//!
//! Coverage honesty: the ABFT reference is recomputed from the *same* TCDM
//! the engine read, so faults that corrupt X/W source words in memory
//! ([`TransientTarget::TcdmData`]) are **outside** the protection boundary
//! — both the engine and the checker see the corrupted operand. This
//! matches real ABFT, which protects the computation, not the inputs.

use crate::cast;
use crate::config::AccelConfig;
use crate::datapath::Datapath;
use crate::engine::{Engine, EngineError, RunReport};
use crate::regfile::Job;
use redmule_cluster::{Hci, Tcdm};
use redmule_fp16::vector::{gemm_golden_accumulate, GemmShape};
use redmule_fp16::F16;
use redmule_hwsim::faults::flip_bit16;
use redmule_hwsim::snapshot::{Snapshot, SnapshotError, StateReader, StateWriter};
use redmule_hwsim::{
    Cycle, FaultClass, FaultLog, FaultPhase, SplitMix64, Stats, StuckBit, Xoshiro256,
};
use redmule_obs::{Phase, PhaseCycles};

/// Storage classes a random transient can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientTarget {
    /// An FMA partial-sum pipeline register.
    Pipe,
    /// A word of a W group as it is loaded into the W buffer.
    WLoad,
    /// A word of an X chunk as it is loaded into the X buffer.
    XLoad,
    /// A word of a Z row as it is stored back to memory.
    ZStore,
    /// A random TCDM word inside the job's operand footprint. **Not**
    /// covered by ABFT when it hits X/W source data (see module docs).
    TcdmData,
}

/// One concrete fault location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Flip `bit` of the partial sum in pipeline stage `stage` of FMA
    /// (`row`, `col`), at or after the spec's cycle. Retried every cycle
    /// until it lands on a non-bubble stage.
    Pipe {
        /// Datapath column (0..H).
        col: usize,
        /// Datapath row (0..L).
        row: usize,
        /// Pipeline stage, 0 = newest.
        stage: usize,
        /// Bit to flip, 0 = LSB.
        bit: u8,
    },
    /// Flip `bit` of element `elem` of the W group for (`phase`, `col`)
    /// as the streamer loads it (the spec's cycle is ignored).
    WLoad {
        /// Reduction phase within the tile.
        phase: usize,
        /// Datapath column.
        col: usize,
        /// Element within the `H*(P+1)`-wide group.
        elem: usize,
        /// Bit to flip.
        bit: u8,
    },
    /// Flip `bit` of element `elem` of the X chunk for (`chunk`, `row`)
    /// as the streamer loads it.
    XLoad {
        /// X chunk index within the tile.
        chunk: usize,
        /// Datapath row.
        row: usize,
        /// Element within the chunk.
        elem: usize,
        /// Bit to flip.
        bit: u8,
    },
    /// Flip `bit` of element `elem` of the `store`-th Z row written back
    /// during the run.
    ZStore {
        /// Ordinal of the store transaction within the run.
        store: usize,
        /// Element within the stored row.
        elem: usize,
        /// Bit to flip.
        bit: u8,
    },
    /// Flip one bit of the TCDM element at `addr`, at or after the
    /// spec's cycle (single attempt; out-of-range strikes are dropped).
    TcdmWord {
        /// Byte address of the element (halfword for FP16 operands, a
        /// single byte for FP8 storage).
        addr: u32,
        /// Bit within the element at `addr`, 0 = LSB.
        bit: u8,
    },
}

/// A fault pinned to a tile, cycle and site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Index of the output tile (row-major over the tile grid) whose
    /// execution the fault strikes.
    pub tile: usize,
    /// Tile-local cycle at (or after) which cycle-addressed sites apply.
    pub cycle: u64,
    /// Where the fault lands.
    pub site: FaultSite,
}

/// Per-tile geometry the random expansion needs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TileGeom {
    pub rows_live: usize,
    pub cols_live: usize,
    pub n_chunks: usize,
    /// Upper estimate of the tile's compute length in cycles.
    pub est_len: u64,
}

/// A deterministic, seeded description of every fault to inject.
///
/// Explicit [`FaultSpec`]s and randomly expanded transients coexist; the
/// random part draws per-tile from a PRNG stream derived from the plan
/// seed and the tile index, so runs are reproducible and tiles are
/// statistically independent.
///
/// # Example
///
/// ```
/// use redmule::faults::{FaultPlan, TransientTarget};
///
/// let plan = FaultPlan::new(0xBAD5EED)
///     .with_random_transients(1, &[TransientTarget::Pipe, TransientTarget::WLoad])
///     .with_hci_drops(8);
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    transients_per_tile: u32,
    targets: Vec<TransientTarget>,
    scheduled: Vec<FaultSpec>,
    tcdm_stuck: Vec<(u32, StuckBit)>,
    hci_drop_beats: u32,
}

impl FaultPlan {
    /// Creates an empty plan with the given PRNG seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transients_per_tile: 0,
            targets: Vec::new(),
            scheduled: Vec::new(),
            tcdm_stuck: Vec::new(),
            hci_drop_beats: 0,
        }
    }

    /// Injects `per_tile` random transients into every tile, drawn from
    /// `targets`.
    #[must_use]
    pub fn with_random_transients(
        mut self,
        per_tile: u32,
        targets: &[TransientTarget],
    ) -> FaultPlan {
        self.transients_per_tile = per_tile;
        self.targets = targets.to_vec();
        self
    }

    /// Adds one explicitly placed fault.
    #[must_use]
    pub fn with_spec(mut self, spec: FaultSpec) -> FaultPlan {
        self.scheduled.push(spec);
        self
    }

    /// Pins one bit of the TCDM word containing `addr` for the whole run
    /// (a persistent stuck-at fault, applied on every read).
    #[must_use]
    pub fn with_tcdm_stuck(mut self, addr: u32, fault: StuckBit) -> FaultPlan {
        self.tcdm_stuck.push((addr, fault));
        self
    }

    /// Drops the first `beats` shallow-port transactions of the run
    /// (`u32::MAX` drops forever — use a watchdog).
    #[must_use]
    pub fn with_hci_drops(mut self, beats: u32) -> FaultPlan {
        self.hci_drop_beats = beats;
        self
    }

    /// The plan's PRNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        (self.transients_per_tile == 0 || self.targets.is_empty())
            && self.scheduled.is_empty()
            && self.tcdm_stuck.is_empty()
            && self.hci_drop_beats == 0
    }

    /// Expands the plan into concrete `(cycle, site)` pairs for one tile:
    /// the explicit specs pinned to it plus the seeded random transients.
    pub(crate) fn expand_for_tile(
        &self,
        tile_idx: usize,
        cfg: &AccelConfig,
        geom: &TileGeom,
        job: &Job,
    ) -> Vec<(u64, FaultSite)> {
        let mut out: Vec<(u64, FaultSite)> = self
            .scheduled
            .iter()
            .filter(|s| s.tile == tile_idx)
            .map(|s| (s.cycle, s.site))
            .collect();
        if self.transients_per_tile == 0 || self.targets.is_empty() {
            return out;
        }
        let pw = cfg.phase_width();
        let lat = cfg.latency();
        let mut rng =
            Xoshiro256::seed_from_u64(self.seed ^ SplitMix64::new(tile_idx as u64 + 1).next_u64());
        for _ in 0..self.transients_per_tile {
            let target = self.targets[rng.below(self.targets.len() as u64) as usize];
            let cycle = rng.below(geom.est_len.max(1));
            let site = match target {
                TransientTarget::Pipe => FaultSite::Pipe {
                    col: rng.below(cfg.h as u64) as usize,
                    row: rng.below(geom.rows_live as u64) as usize,
                    stage: rng.below(lat as u64) as usize,
                    bit: rng.below(16) as u8,
                },
                TransientTarget::WLoad => {
                    if job.n == 0 {
                        continue;
                    }
                    let n_idx = rng.below(job.n as u64) as usize;
                    FaultSite::WLoad {
                        phase: n_idx / cfg.h,
                        col: n_idx % cfg.h,
                        elem: rng.below(pw as u64) as usize,
                        bit: rng.below(16) as u8,
                    }
                }
                TransientTarget::XLoad => {
                    if geom.n_chunks == 0 {
                        continue;
                    }
                    FaultSite::XLoad {
                        chunk: rng.below(geom.n_chunks as u64) as usize,
                        row: rng.below(geom.rows_live as u64) as usize,
                        elem: rng.below(pw as u64) as usize,
                        bit: rng.below(16) as u8,
                    }
                }
                TransientTarget::ZStore => FaultSite::ZStore {
                    store: rng.below(geom.rows_live as u64) as usize,
                    elem: rng.below(geom.cols_live as u64) as usize,
                    bit: rng.below(16) as u8,
                },
                TransientTarget::TcdmData => {
                    let windows = [
                        (job.x_addr, job.m * job.x_ld()),
                        (job.w_addr, job.n * job.w_ld()),
                        (job.z_addr, job.m * job.z_ld()),
                    ];
                    let (base, elems) = windows[rng.below(3) as usize];
                    if elems == 0 {
                        continue;
                    }
                    let esz = job.format.elem_bytes() as u32;
                    FaultSite::TcdmWord {
                        addr: base + esz * rng.below(elems as u64) as u32,
                        bit: rng.below(8 * u64::from(esz)) as u8,
                    }
                }
            };
            out.push((cycle, site));
        }
        out
    }
}

fn flip(v: &mut F16, bit: u8) {
    *v = F16::from_bits(flip_bit16(v.to_bits(), bit));
}

/// Applies a tile's expanded faults as the engine executes, recording
/// every landed strike. Built by the fault-tolerant runner; arm one
/// manually via [`Engine::start_with_faults`] for raw (unprotected)
/// injection experiments.
#[derive(Debug, Default)]
pub struct FaultInjector {
    pending: Vec<(u64, FaultSite)>,
    log: FaultLog,
    stores_seen: usize,
}

impl Snapshot for FaultInjector {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.pending.len());
        for (cycle, site) in &self.pending {
            w.put(cycle);
            FaultInjector::save_site(*site, w);
        }
        self.log.save_state(w);
        w.put(&self.stores_seen);
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let n: usize = r.get()?;
        if n > r.remaining() {
            return Err(SnapshotError::Corrupt(format!(
                "fault-injector pending length {n} exceeds remaining payload"
            )));
        }
        self.pending.clear();
        for _ in 0..n {
            let cycle: u64 = r.get()?;
            let site = FaultInjector::load_site(r)?;
            self.pending.push((cycle, site));
        }
        self.log.restore_state(r)?;
        self.stores_seen = r.get()?;
        Ok(())
    }
}

impl FaultInjector {
    /// Creates an injector from expanded `(cycle, site)` pairs.
    pub fn new(specs: Vec<(u64, FaultSite)>) -> FaultInjector {
        FaultInjector {
            pending: specs,
            log: FaultLog::new(),
            stores_seen: 0,
        }
    }

    /// The events recorded so far.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Consumes the injector, yielding its log (unapplied specs — e.g. a
    /// pipe strike scheduled after the drain — are architecturally masked
    /// and dropped).
    pub fn into_log(self) -> FaultLog {
        self.log
    }

    fn save_site(site: FaultSite, w: &mut StateWriter) {
        save_fault_site(site, w)
    }

    fn load_site(r: &mut StateReader<'_>) -> Result<FaultSite, SnapshotError> {
        load_fault_site(r)
    }
}

/// Serialises one [`FaultSite`] with the snapshot codec — the wire
/// helper host-side journals use to persist `Submission` fault strikes.
pub fn save_fault_site(site: FaultSite, w: &mut StateWriter) {
    match site {
        FaultSite::Pipe {
            col,
            row,
            stage,
            bit,
        } => {
            w.put(&0u8);
            w.put(&col);
            w.put(&row);
            w.put(&stage);
            w.put(&bit);
        }
        FaultSite::WLoad {
            phase,
            col,
            elem,
            bit,
        } => {
            w.put(&1u8);
            w.put(&phase);
            w.put(&col);
            w.put(&elem);
            w.put(&bit);
        }
        FaultSite::XLoad {
            chunk,
            row,
            elem,
            bit,
        } => {
            w.put(&2u8);
            w.put(&chunk);
            w.put(&row);
            w.put(&elem);
            w.put(&bit);
        }
        FaultSite::ZStore { store, elem, bit } => {
            w.put(&3u8);
            w.put(&store);
            w.put(&elem);
            w.put(&bit);
        }
        FaultSite::TcdmWord { addr, bit } => {
            w.put(&4u8);
            w.put(&addr);
            w.put(&bit);
        }
    }
}

/// Decodes one [`FaultSite`] written by [`save_fault_site`].
///
/// # Errors
///
/// [`SnapshotError`] on truncation or an unknown site tag.
pub fn load_fault_site(r: &mut StateReader<'_>) -> Result<FaultSite, SnapshotError> {
    Ok(match r.get::<u8>()? {
        0 => FaultSite::Pipe {
            col: r.get()?,
            row: r.get()?,
            stage: r.get()?,
            bit: r.get()?,
        },
        1 => FaultSite::WLoad {
            phase: r.get()?,
            col: r.get()?,
            elem: r.get()?,
            bit: r.get()?,
        },
        2 => FaultSite::XLoad {
            chunk: r.get()?,
            row: r.get()?,
            elem: r.get()?,
            bit: r.get()?,
        },
        3 => FaultSite::ZStore {
            store: r.get()?,
            elem: r.get()?,
            bit: r.get()?,
        },
        4 => FaultSite::TcdmWord {
            addr: r.get()?,
            bit: r.get()?,
        },
        t => {
            return Err(SnapshotError::Corrupt(format!(
                "unknown fault-site tag {t}"
            )))
        }
    })
}

impl FaultInjector {
    /// Cycle-addressed strikes: FMA pipeline registers and TCDM words.
    pub(crate) fn on_cycle(&mut self, cycle: u64, dp: &mut Datapath, mem: &mut Tcdm) {
        let mut i = 0;
        while i < self.pending.len() {
            let (due, site) = self.pending[i];
            let remove = match site {
                // Retry until the strike lands on a non-bubble stage: a
                // flip of an empty register has no architectural effect,
                // so keep the particle in flight.
                FaultSite::Pipe {
                    col,
                    row,
                    stage,
                    bit,
                } if cycle >= due && dp.corrupt(col, row, stage, bit) => {
                    self.log.record(
                        cycle,
                        format!("fma[{col}][{row}].s{stage}.b{bit}"),
                        FaultClass::TransientFlip,
                        FaultPhase::Injected,
                    );
                    true
                }
                FaultSite::TcdmWord { addr, bit } if cycle >= due => {
                    let word = addr & !3;
                    // Place the flip at the element's byte offset inside the
                    // 32-bit word; identical to the old halfword maths for
                    // 2-aligned FP16 addresses, byte-exact for FP8 elements.
                    let word_bit = (bit % 16) + 8 * (addr & 3) as u8;
                    if mem.flip_bit(word, word_bit).is_ok() {
                        self.log.record(
                            cycle,
                            format!("tcdm@{addr:#x}.b{bit}"),
                            FaultClass::TransientFlip,
                            FaultPhase::Injected,
                        );
                    }
                    true
                }
                _ => false,
            };
            if remove {
                self.pending.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    pub(crate) fn on_w_load(&mut self, cycle: u64, phase: usize, col: usize, group: &mut [F16]) {
        let mut i = 0;
        while i < self.pending.len() {
            if let (
                _,
                FaultSite::WLoad {
                    phase: p,
                    col: c,
                    elem,
                    bit,
                },
            ) = self.pending[i]
            {
                if p == phase && c == col {
                    if let Some(v) = group.get_mut(elem) {
                        flip(v, bit);
                        self.log.record(
                            cycle,
                            format!("wload[p{phase}][c{col}][{elem}].b{bit}"),
                            FaultClass::TransientFlip,
                            FaultPhase::Injected,
                        );
                    }
                    self.pending.swap_remove(i);
                    continue;
                }
            }
            i += 1;
        }
    }

    pub(crate) fn on_x_load(&mut self, cycle: u64, chunk: usize, row: usize, data: &mut [F16]) {
        let mut i = 0;
        while i < self.pending.len() {
            if let (
                _,
                FaultSite::XLoad {
                    chunk: ch,
                    row: r,
                    elem,
                    bit,
                },
            ) = self.pending[i]
            {
                if ch == chunk && r == row {
                    if let Some(v) = data.get_mut(elem) {
                        flip(v, bit);
                        self.log.record(
                            cycle,
                            format!("xload[k{chunk}][r{row}][{elem}].b{bit}"),
                            FaultClass::TransientFlip,
                            FaultPhase::Injected,
                        );
                    }
                    self.pending.swap_remove(i);
                    continue;
                }
            }
            i += 1;
        }
    }

    pub(crate) fn on_z_store(&mut self, cycle: u64, data: &mut [F16]) {
        let ordinal = self.stores_seen;
        self.stores_seen += 1;
        let mut i = 0;
        while i < self.pending.len() {
            if let (_, FaultSite::ZStore { store, elem, bit }) = self.pending[i] {
                if store == ordinal {
                    if let Some(v) = data.get_mut(elem) {
                        flip(v, bit);
                        self.log.record(
                            cycle,
                            format!("zstore[{store}][{elem}].b{bit}"),
                            FaultClass::TransientFlip,
                            FaultPhase::Injected,
                        );
                    }
                    self.pending.swap_remove(i);
                    continue;
                }
            }
            i += 1;
        }
    }
}

/// Which protection scheme [`Engine::run_ft`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtMode {
    /// Checksum ABFT validates each output tile; a corrupted tile is
    /// re-executed. Cheap when faults are rare.
    Replay,
    /// Every tile is executed twice and the two results voted (duplication
    /// with comparison) — detection without a numeric reference, at half
    /// the throughput.
    Redundancy,
}

/// Fault-tolerance configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtConfig {
    /// Protection scheme.
    pub mode: FtMode,
    /// Replays allowed per tile before giving up with
    /// [`EngineError::FaultUnrecoverable`].
    pub max_retries: u32,
}

impl FtConfig {
    /// ABFT + replay with the default retry budget.
    pub fn replay() -> FtConfig {
        FtConfig {
            mode: FtMode::Replay,
            max_retries: 3,
        }
    }

    /// Duplication with comparison, default retry budget.
    pub fn redundancy() -> FtConfig {
        FtConfig {
            mode: FtMode::Redundancy,
            max_retries: 3,
        }
    }
}

/// FP16 row/column checksums of a tile, exact in `f64` (each sum folds at
/// most `H*(P+1)` half-precision values, far within the 53-bit mantissa),
/// plus an XOR fold so even sign flips of zero are caught.
// modelcheck-allow: RM-FP-001 -- ABFT reference path: checksums fold F16
// values exactly in f64 (sums stay far within the 53-bit mantissa); the
// signatures detect faults and never enter the FP16 datapath.
fn tile_signature(z: &[Vec<F16>]) -> (Vec<u64>, Vec<u64>, u16) {
    let cols = z.first().map_or(0, Vec::len);
    let mut row_sums = Vec::with_capacity(z.len());
    let mut col_sums = vec![0.0f64; cols];
    let mut xor = 0u16;
    for row in z {
        let mut rs = 0.0f64;
        for (j, v) in row.iter().enumerate() {
            let x = f64::from(v.to_f32());
            rs += x;
            col_sums[j] += x;
            xor ^= v.to_bits();
        }
        row_sums.push(rs.to_bits());
    }
    (
        row_sums,
        col_sums.into_iter().map(f64::to_bits).collect(),
        xor,
    )
}

/// One tile of the fault-tolerant tiling, mirroring the engine's own
/// enumeration order.
struct FtTile {
    row0: usize,
    k0: usize,
    rows: usize,
    cols: usize,
}

impl Engine {
    /// Executes a job under fault injection with one of the RedMulE-FT
    /// protection modes, producing bit-exact results for any transient
    /// fault the mode covers.
    ///
    /// The job is executed tile by tile (same tiling as [`Engine::run`]).
    /// Per tile, the plan's faults are injected on the first attempt;
    /// detection triggers a bounded number of clean replays. All recovery
    /// overhead — duplicated executions, checksum cycles, replays — lands
    /// in the report's `cycles` and stats (`tiles_replayed`, `ft_runs`,
    /// `abft_cycles`, `faults_detected`, `faults_corrected`).
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidJob`] / [`EngineError::Memory`] as
    /// [`Engine::run`]; [`EngineError::Watchdog`] when injected drops hang
    /// the schedule; [`EngineError::FaultUnrecoverable`] when a tile stays
    /// corrupted through every retry (a persistent fault replay cannot
    /// outrun).
    pub fn run_ft(
        &self,
        job: Job,
        mem: &mut Tcdm,
        hci: &mut Hci,
        plan: &FaultPlan,
        ft: FtConfig,
    ) -> Result<RunReport, EngineError> {
        job.validate().map_err(EngineError::InvalidJob)?;
        let cfg = *self.config();
        let pw = cfg.phase_width();
        let lat = cfg.latency();
        let n_phases = job.n.div_ceil(cfg.h);

        let mut log = FaultLog::new();
        let mut stats = Stats::new();
        let mut total_cycles = 0u64;
        let mut stall_cycles = 0u64;
        let mut phases = PhaseCycles::new();
        let mut persistent_injected = 0u64;

        for &(addr, stuck) in &plan.tcdm_stuck {
            mem.set_stuck(addr, stuck)?;
            log.record(
                0,
                format!(
                    "tcdm@{addr:#x}.b{} stuck-{}",
                    stuck.bit,
                    u8::from(stuck.value)
                ),
                FaultClass::StuckAt,
                FaultPhase::Injected,
            );
            persistent_injected += 1;
        }
        if plan.hci_drop_beats > 0 {
            hci.inject_shallow_drop(plan.hci_drop_beats);
            log.record(
                0,
                format!("hci.shallow x{}", plan.hci_drop_beats),
                FaultClass::DropTransaction,
                FaultPhase::Injected,
            );
            persistent_injected += 1;
        }

        let mut tiles = Vec::new();
        for row0 in (0..job.m).step_by(cfg.l) {
            for k0 in (0..job.k).step_by(pw) {
                tiles.push(FtTile {
                    row0,
                    k0,
                    rows: (job.m - row0).min(cfg.l),
                    cols: (job.k - k0).min(pw),
                });
            }
        }

        for (idx, tile) in tiles.iter().enumerate() {
            let esz = job.format.elem_bytes() as u32;
            let sub_job = Job {
                x_addr: job.x_addr + esz * (tile.row0 * job.x_ld()) as u32,
                w_addr: job.w_addr + esz * tile.k0 as u32,
                z_addr: job.z_addr + esz * (tile.row0 * job.z_ld() + tile.k0) as u32,
                m: tile.rows,
                n: job.n,
                k: tile.cols,
                accumulate: job.accumulate,
                x_stride: job.x_ld(),
                w_stride: job.w_ld(),
                z_stride: job.z_ld(),
                format: job.format,
            };
            let geom = TileGeom {
                rows_live: tile.rows,
                cols_live: tile.cols,
                n_chunks: n_phases.div_ceil(lat),
                est_len: (cfg.h * lat + n_phases * pw + 64) as u64,
            };
            let mut specs = plan.expand_for_tile(idx, &cfg, &geom, &job);

            // The Z pre-image doubles as the accumulate restore point and
            // the ABFT reference's Y operand.
            let esz = job.format.elem_bytes() as u32;
            let z_pre: Option<Vec<Vec<F16>>> = if job.accumulate {
                let mut rows = Vec::with_capacity(tile.rows);
                for r in 0..tile.rows {
                    let addr = sub_job.z_addr + esz * (r * job.z_ld()) as u32;
                    rows.push(cast::castin_slice(mem, job.format, addr, tile.cols)?);
                }
                Some(rows)
            } else {
                None
            };
            let restore =
                |mem: &mut Tcdm, pre: &Option<Vec<Vec<F16>>>| -> Result<(), EngineError> {
                    if let Some(rows) = pre {
                        for (r, row) in rows.iter().enumerate() {
                            let addr = sub_job.z_addr + esz * (r * job.z_ld()) as u32;
                            cast::castout_slice(mem, job.format, addr, row)?;
                        }
                    }
                    Ok(())
                };

            let mut attempt = 0u32;
            loop {
                if attempt > 0 {
                    restore(mem, &z_pre)?;
                }
                let injector = FaultInjector::new(std::mem::take(&mut specs));
                let report = self.run_with_faults(sub_job, mem, hci, injector)?;
                let run_base = total_cycles;
                total_cycles = total_cycles.saturating_add(report.cycles.count());
                stall_cycles = stall_cycles.saturating_add(report.stall_cycles);
                stats.merge(&report.stats);
                stats.incr("ft_runs");
                phases += report.phases;
                log.absorb(&report.faults, run_base);

                let clean = match ft.mode {
                    FtMode::Replay => {
                        // ABFT: recompute the tile from the operands the
                        // engine saw and compare exact f64 checksums. The
                        // check pipeline costs rows + cols + lat cycles.
                        total_cycles =
                            total_cycles.saturating_add((tile.rows + tile.cols + lat) as u64);
                        stats.add("abft_cycles", (tile.rows + tile.cols + lat) as u64);
                        // The checksum pipeline is doing arithmetic, so its
                        // cycles are attributed to compute.
                        phases.add_many(Phase::Compute, (tile.rows + tile.cols + lat) as u64);
                        let shape = GemmShape::new(tile.rows, job.n, tile.cols);
                        let mut x_sub = Vec::with_capacity(shape.x_len());
                        for r in 0..tile.rows {
                            let addr = sub_job.x_addr + esz * (r * job.x_ld()) as u32;
                            x_sub.extend(cast::castin_slice(mem, job.format, addr, job.n)?);
                        }
                        let mut w_sub = Vec::with_capacity(shape.w_len());
                        for n_idx in 0..job.n {
                            let addr = sub_job.w_addr + esz * (n_idx * job.w_ld()) as u32;
                            w_sub.extend(cast::castin_slice(mem, job.format, addr, tile.cols)?);
                        }
                        let y_flat: Option<Vec<F16>> = z_pre.as_ref().map(|rows| rows.concat());
                        // The engine narrows each result through the castout
                        // stage before it lands in TCDM, so the reference must
                        // pass through the same quantisation or every clean
                        // FP8 tile would look corrupted.
                        let reference: Vec<F16> =
                            gemm_golden_accumulate(shape, &x_sub, &w_sub, y_flat.as_deref())
                                .into_iter()
                                .map(|v| job.format.quantize(v))
                                .collect();
                        let ref_rows: Vec<Vec<F16>> = reference
                            .chunks(tile.cols.max(1))
                            .map(<[F16]>::to_vec)
                            .collect();
                        let mut got_rows = Vec::with_capacity(tile.rows);
                        for r in 0..tile.rows {
                            let addr = sub_job.z_addr + esz * (r * job.z_ld()) as u32;
                            got_rows.push(cast::castin_slice(mem, job.format, addr, tile.cols)?);
                        }
                        tile_signature(&got_rows) == tile_signature(&ref_rows)
                    }
                    FtMode::Redundancy => {
                        // Duplication with comparison: run the tile again
                        // on the same inputs and vote bitwise.
                        let mut first = Vec::with_capacity(tile.rows);
                        for r in 0..tile.rows {
                            let addr = sub_job.z_addr + esz * (r * job.z_ld()) as u32;
                            first.push(cast::castin_slice(mem, job.format, addr, tile.cols)?);
                        }
                        restore(mem, &z_pre)?;
                        let clean_run = self.run(sub_job, mem, hci)?;
                        total_cycles = total_cycles.saturating_add(clean_run.cycles.count());
                        stall_cycles = stall_cycles.saturating_add(clean_run.stall_cycles);
                        stats.merge(&clean_run.stats);
                        stats.incr("ft_runs");
                        phases += clean_run.phases;
                        let mut second = Vec::with_capacity(tile.rows);
                        for r in 0..tile.rows {
                            let addr = sub_job.z_addr + esz * (r * job.z_ld()) as u32;
                            second.push(cast::castin_slice(mem, job.format, addr, tile.cols)?);
                        }
                        first
                            .iter()
                            .flatten()
                            .map(|v| v.to_bits())
                            .eq(second.iter().flatten().map(|v| v.to_bits()))
                    }
                };

                if clean {
                    if attempt > 0 {
                        log.record(
                            total_cycles,
                            format!("tile{idx}"),
                            FaultClass::TransientFlip,
                            FaultPhase::Corrected,
                        );
                        stats.incr("faults_corrected");
                    }
                    break;
                }
                log.record(
                    total_cycles,
                    format!("tile{idx}"),
                    FaultClass::TransientFlip,
                    FaultPhase::Detected,
                );
                stats.incr("faults_detected");
                if attempt >= ft.max_retries {
                    return Err(EngineError::FaultUnrecoverable {
                        tile: idx,
                        attempts: attempt + 1,
                    });
                }
                attempt += 1;
                stats.incr("tiles_replayed");
            }
        }

        if persistent_injected > 0 {
            stats.add("faults_injected", persistent_injected);
        }
        Ok(RunReport {
            cycles: Cycle::new(total_cycles),
            macs: job.shape().macs(),
            stall_cycles,
            phases,
            stats,
            trace: None,
            faults: log,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelConfig;

    #[test]
    fn expansion_is_deterministic_per_tile() {
        let cfg = AccelConfig::paper();
        let job = Job::new(0, 0x400, 0x800, 16, 16, 16);
        let geom = TileGeom {
            rows_live: 8,
            cols_live: 16,
            n_chunks: 1,
            est_len: 100,
        };
        let plan = FaultPlan::new(7)
            .with_random_transients(3, &[TransientTarget::Pipe, TransientTarget::WLoad]);
        let a = plan.expand_for_tile(0, &cfg, &geom, &job);
        let b = plan.expand_for_tile(0, &cfg, &geom, &job);
        assert_eq!(a, b, "same seed, same tile, same strikes");
        assert_eq!(a.len(), 3);
        let c = plan.expand_for_tile(1, &cfg, &geom, &job);
        assert_ne!(a, c, "tiles draw independent streams");
    }

    #[test]
    fn explicit_specs_filter_by_tile() {
        let cfg = AccelConfig::paper();
        let job = Job::new(0, 0x400, 0x800, 16, 16, 16);
        let geom = TileGeom {
            rows_live: 8,
            cols_live: 16,
            n_chunks: 1,
            est_len: 100,
        };
        let site = FaultSite::ZStore {
            store: 0,
            elem: 0,
            bit: 3,
        };
        let plan = FaultPlan::new(0).with_spec(FaultSpec {
            tile: 1,
            cycle: 5,
            site,
        });
        assert!(plan.expand_for_tile(0, &cfg, &geom, &job).is_empty());
        assert_eq!(plan.expand_for_tile(1, &cfg, &geom, &job), vec![(5, site)]);
    }

    #[test]
    fn signature_catches_any_single_flip() {
        let base: Vec<Vec<F16>> = (0..4)
            .map(|r| {
                (0..4)
                    .map(|c| F16::from_f32((r * 4 + c) as f32 * 0.25))
                    .collect()
            })
            .collect();
        let sig = tile_signature(&base);
        for r in 0..4 {
            for c in 0..4 {
                for bit in 0..16 {
                    let mut z = base.clone();
                    flip(&mut z[r][c], bit);
                    assert_ne!(
                        tile_signature(&z),
                        sig,
                        "flip at ({r},{c}) bit {bit} must change the signature"
                    );
                }
            }
        }
    }
}
