//! L2-resident execution: tiling large GEMMs through the TCDM with DMA.
//!
//! The kernel-level experiments assume operands resident in the cluster
//! scratchpad; real workloads (like the paper's autoencoder with its
//! ~0.5 MiB of FP16 weights) keep data in L2 and stream panels into the
//! TCDM with the cluster DMA. This module provides that driver:
//!
//! * the output is processed in macro-tiles of `RM x KM` elements, with
//!   the reduction dimension split into `NM`-deep slices accumulated with
//!   the engine's `Z += X·W` mode;
//! * panel sizes are chosen automatically to fit the configured TCDM;
//! * the cycle model reports both *serial* cost (every DMA exposed) and
//!   *double-buffered* cost (panel transfers overlapped with compute,
//!   only the remainder exposed) — the standard deployment practice.
//!
//! Numerics remain bit-exact: the same engine executes every macro-tile,
//! and reduction slices accumulate in slice order, matching
//! [`gemm_golden_accumulate`](redmule_fp16::vector::gemm_golden_accumulate)
//! applied slice by slice.

use crate::config::AccelConfig;
use crate::engine::{Engine, EngineError};
use crate::regfile::Job;
use redmule_cluster::{ClusterConfig, Dma, Hci, Tcdm};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use redmule_hwsim::{Cycle, Stats};

/// Chosen macro-tile dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileShape {
    /// Output rows per macro-tile (multiple of `L`).
    pub rm: usize,
    /// Output columns per macro-tile (multiple of the phase width).
    pub km: usize,
    /// Reduction depth per slice.
    pub nm: usize,
}

/// Cycle accounting of a tiled execution.
#[derive(Debug, Clone)]
pub struct TiledReport {
    /// The tile shape the driver selected.
    pub tile: TileShape,
    /// Number of engine invocations (macro-tiles x reduction slices).
    pub jobs: usize,
    /// Sum of engine compute cycles.
    pub compute_cycles: Cycle,
    /// Sum of all DMA transfer cycles (panels in, results out).
    pub dma_cycles: Cycle,
    /// End-to-end cycles with no overlap (compute + all DMA serialised).
    pub serial_cycles: Cycle,
    /// End-to-end cycles with double buffering: each tile's panel
    /// transfers overlap the previous tile's compute.
    pub overlapped_cycles: Cycle,
    /// Aggregated engine statistics.
    pub stats: Stats,
}

impl TiledReport {
    /// Effective MACs per cycle of the double-buffered execution.
    // modelcheck-allow: RM-FP-001 -- telemetry: throughput ratio reported to
    // humans and benchmarks; never feeds back into model state.
    pub fn macs_per_cycle(&self, shape: GemmShape) -> f64 {
        if self.overlapped_cycles.count() == 0 {
            return 0.0;
        }
        shape.macs() as f64 / self.overlapped_cycles.count() as f64
    }

    /// Fraction of DMA cost hidden under compute by double buffering.
    // modelcheck-allow: RM-FP-001 -- telemetry: overlap ratio reported to
    // humans and benchmarks; never feeds back into model state.
    pub fn dma_hidden_fraction(&self) -> f64 {
        if self.dma_cycles.count() == 0 {
            return 1.0;
        }
        let exposed = self
            .overlapped_cycles
            .count()
            .saturating_sub(self.compute_cycles.count());
        1.0 - exposed as f64 / self.dma_cycles.count() as f64
    }
}

/// Driver executing arbitrarily large GEMMs from L2 through the TCDM.
///
/// # Example
///
/// ```
/// use redmule::{AccelConfig, L2TiledGemm};
/// use redmule_cluster::ClusterConfig;
/// use redmule_fp16::{vector::GemmShape, F16};
///
/// let driver = L2TiledGemm::new(AccelConfig::paper(), ClusterConfig::default());
/// let shape = GemmShape::new(64, 96, 64); // too large? panels are sliced
/// let x = vec![F16::HALF; shape.x_len()];
/// let w = vec![F16::TWO; shape.w_len()];
/// let (z, report) = driver.run(shape, &x, &w)?;
/// assert_eq!(z[0].to_f32(), 96.0);
/// assert!(report.overlapped_cycles <= report.serial_cycles);
/// # Ok::<(), redmule::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct L2TiledGemm {
    accel: AccelConfig,
    cluster: ClusterConfig,
    dma: Dma,
}

impl L2TiledGemm {
    /// Creates a driver for an accelerator instance inside a cluster.
    ///
    /// # Panics
    ///
    /// Panics if the cluster configuration is invalid.
    pub fn new(accel: AccelConfig, cluster: ClusterConfig) -> L2TiledGemm {
        // modelcheck-allow: RM-PANIC-001 -- documented constructor contract: an
        // invalid ClusterConfig is a programming error; validate() is the
        // fallible path for untrusted input.
        cluster.validate().expect("invalid cluster configuration");
        L2TiledGemm {
            accel,
            cluster,
            dma: Dma::default(),
        }
    }

    /// Overrides the DMA cost model.
    #[must_use]
    pub fn with_dma(mut self, dma: Dma) -> L2TiledGemm {
        self.dma = dma;
        self
    }

    /// Selects the largest macro-tile (by MACs) whose three panels fit in
    /// half the TCDM (the other half holds the double buffers).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidJob`] when even the minimum tile
    /// (`L x phase_width x phase_width`) does not fit.
    pub fn plan(&self, shape: GemmShape) -> Result<TileShape, EngineError> {
        let budget_elems = self.cluster.tcdm_bytes() / 2 / 2; // half TCDM, 2 B/elem
        let l = self.accel.l;
        let pw = self.accel.phase_width();

        let rm_opts = [l * 16, l * 8, l * 4, l * 2, l];
        let km_opts = [pw * 16, pw * 8, pw * 4, pw * 2, pw];
        let nm_opts = [2048usize, 1024, 512, 256, 128, 64, 32, 16];

        let mut best: Option<(u64, TileShape)> = None;
        for &rm in &rm_opts {
            for &km in &km_opts {
                for &nm in &nm_opts {
                    let rm_c = rm.min(shape.m.next_multiple_of(l).max(l));
                    let km_c = km.min(shape.k.next_multiple_of(pw).max(pw));
                    let nm_c = nm.min(shape.n.max(1));
                    let elems = rm_c * nm_c + nm_c * km_c + rm_c * km_c;
                    if elems > budget_elems {
                        continue;
                    }
                    let macs = (rm_c * km_c * nm_c) as u64;
                    if best.is_none_or(|(b, _)| macs > b) {
                        best = Some((
                            macs,
                            TileShape {
                                rm: rm_c,
                                km: km_c,
                                nm: nm_c,
                            },
                        ));
                    }
                }
            }
        }
        best.map(|(_, t)| t).ok_or_else(|| {
            EngineError::InvalidJob(format!(
                "TCDM of {} bytes cannot hold even a minimal tile for {shape}",
                self.cluster.tcdm_bytes()
            ))
        })
    }

    /// Executes `Z = X * W` with L2-resident operands.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when a slice length does not match
    /// `shape`; otherwise propagates [`EngineError`] — see
    /// [`L2TiledGemm::plan`] for the too-small-TCDM case.
    pub fn run(
        &self,
        shape: GemmShape,
        x: &[F16],
        w: &[F16],
    ) -> Result<(Vec<F16>, TiledReport), EngineError> {
        if x.len() != shape.x_len() {
            return Err(EngineError::ShapeMismatch {
                operand: "X",
                expected: shape.x_len(),
                got: x.len(),
            });
        }
        if w.len() != shape.w_len() {
            return Err(EngineError::ShapeMismatch {
                operand: "W",
                expected: shape.w_len(),
                got: w.len(),
            });
        }

        let tile = self.plan(shape)?;
        let engine = Engine::new(self.accel);
        let mut z = vec![F16::ZERO; shape.z_len()];
        let mut stats = Stats::new();

        let mut compute: u64 = 0;
        let mut dma_total: u64 = 0;
        // Per-step (compute_cycles, dma_in_cycles) used by the pipeline
        // overlap model; dma-outs are attributed to the step that frees
        // the Z panel.
        let mut steps: Vec<(u64, u64)> = Vec::new();

        if shape.m == 0 || shape.k == 0 {
            return Ok((
                z,
                TiledReport {
                    tile,
                    jobs: 0,
                    compute_cycles: Cycle::ZERO,
                    dma_cycles: Cycle::ZERO,
                    serial_cycles: Cycle::ZERO,
                    overlapped_cycles: Cycle::ZERO,
                    stats,
                },
            ));
        }

        let n_slices = if shape.n == 0 {
            1
        } else {
            shape.n.div_ceil(tile.nm)
        };
        let mut jobs = 0usize;

        for row0 in (0..shape.m).step_by(tile.rm) {
            let rows = (shape.m - row0).min(tile.rm);
            for k0 in (0..shape.k).step_by(tile.km) {
                let cols = (shape.k - k0).min(tile.km);
                // Z panel lives in the TCDM across the reduction slices.
                let mut z_panel = vec![F16::ZERO; rows * cols];
                for slice in 0..n_slices {
                    let n0 = slice * tile.nm;
                    let depth = if shape.n == 0 {
                        0
                    } else {
                        (shape.n - n0).min(tile.nm)
                    };

                    // Gather panels (the DMA's gather capability; cost is
                    // pure data volume plus setup).
                    let mut x_panel = vec![F16::ZERO; rows * depth];
                    for r in 0..rows {
                        for e in 0..depth {
                            x_panel[r * depth + e] = x[(row0 + r) * shape.n + n0 + e];
                        }
                    }
                    let mut w_panel = vec![F16::ZERO; depth * cols];
                    for d in 0..depth {
                        for e in 0..cols {
                            w_panel[d * cols + e] = w[(n0 + d) * shape.k + k0 + e];
                        }
                    }
                    let dma_in = self.dma.transfer_cycles(2 * x_panel.len()).count()
                        + self.dma.transfer_cycles(2 * w_panel.len()).count();

                    // Execute the slice on a panel-local scratchpad.
                    let mut mem = Tcdm::new(&self.cluster);
                    let mut hci = Hci::new(&self.cluster);
                    let x_addr = 0u32;
                    let w_addr = x_addr + 2 * x_panel.len() as u32;
                    let z_addr = w_addr + 2 * w_panel.len() as u32;
                    mem.store_f16_slice(x_addr, &x_panel)?;
                    mem.store_f16_slice(w_addr, &w_panel)?;
                    let mut job = Job::new(x_addr, w_addr, z_addr, rows, depth, cols);
                    if slice > 0 {
                        mem.store_f16_slice(z_addr, &z_panel)?;
                        job = job.with_accumulate();
                    }
                    let report = engine.run(job, &mut mem, &mut hci)?;
                    z_panel = mem.load_f16_slice(z_addr, rows * cols)?;

                    compute += report.cycles.count();
                    dma_total += dma_in;
                    stats.merge(&report.stats);
                    jobs += 1;

                    // The Z panel leaves via DMA after the last slice.
                    let dma_out = if slice + 1 == n_slices {
                        self.dma.transfer_cycles(2 * z_panel.len()).count()
                    } else {
                        0
                    };
                    dma_total += dma_out;
                    steps.push((report.cycles.count(), dma_in + dma_out));
                }
                // Scatter the finished panel back to the L2 image.
                for r in 0..rows {
                    for e in 0..cols {
                        z[(row0 + r) * shape.k + k0 + e] = z_panel[r * cols + e];
                    }
                }
            }
        }

        // Pipeline model: serially, everything adds up; double-buffered,
        // each step's DMA overlaps the *previous* step's compute, so only
        // the first transfer and any DMA excess over compute are exposed.
        let serial = compute + dma_total;
        let mut overlapped = steps.first().map_or(0, |&(_, d)| d);
        for i in 0..steps.len() {
            let c = steps[i].0;
            let next_dma = steps.get(i + 1).map_or(0, |&(_, d)| d);
            overlapped += c.max(next_dma);
        }

        stats.add("dma_cycles", dma_total);
        Ok((
            z,
            TiledReport {
                tile,
                jobs,
                compute_cycles: Cycle::new(compute),
                dma_cycles: Cycle::new(dma_total),
                serial_cycles: Cycle::new(serial),
                overlapped_cycles: Cycle::new(overlapped),
                stats,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redmule_fp16::vector::gemm_golden;

    fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
        let gen = |len: usize, s: u32| -> Vec<F16> {
            (0..len)
                .map(|i| {
                    let h = ((i as u32).wrapping_mul(2654435761) ^ s) >> 18;
                    F16::from_f32((h % 32) as f32 / 32.0 - 0.5)
                })
                .collect()
        };
        (gen(shape.x_len(), seed), gen(shape.w_len(), !seed))
    }

    fn bits(v: &[F16]) -> Vec<u16> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn driver_with_tcdm(kib: usize) -> L2TiledGemm {
        L2TiledGemm::new(
            AccelConfig::paper(),
            ClusterConfig::default().with_tcdm_kib(kib),
        )
    }

    #[test]
    fn single_tile_matches_golden() {
        let shape = GemmShape::new(8, 16, 16);
        let (x, w) = data(shape, 1);
        let (z, report) = driver_with_tcdm(128).run(shape, &x, &w).expect("runs");
        assert_eq!(bits(&z), bits(&gemm_golden(shape, &x, &w)));
        assert_eq!(report.jobs, 1);
    }

    #[test]
    fn multi_tile_rows_and_cols_match_golden() {
        // An 8 KiB scratchpad forces tiling in both output dimensions.
        let shape = GemmShape::new(40, 24, 48);
        let (x, w) = data(shape, 2);
        let (z, report) = driver_with_tcdm(8).run(shape, &x, &w).expect("runs");
        assert_eq!(bits(&z), bits(&gemm_golden(shape, &x, &w)));
        assert!(report.jobs > 1, "must tile: {:?}", report.tile);
    }

    #[test]
    fn reduction_slicing_uses_accumulate_and_matches_golden() {
        // Deep N with a small scratchpad forces reduction slices.
        let shape = GemmShape::new(8, 300, 16);
        let (x, w) = data(shape, 3);
        let driver = driver_with_tcdm(4);
        let tile = driver.plan(shape).expect("plan fits");
        assert!(tile.nm < shape.n, "N must be sliced: {tile:?}");
        let (z, report) = driver.run(shape, &x, &w).expect("runs");
        assert_eq!(bits(&z), bits(&gemm_golden(shape, &x, &w)));
        assert!(report.stats.get("z_preloads") > 0, "accumulate mode used");
    }

    #[test]
    fn ragged_edges_match_golden() {
        let shape = GemmShape::new(27, 70, 35);
        let (x, w) = data(shape, 4);
        let (z, _) = driver_with_tcdm(4).run(shape, &x, &w).expect("runs");
        assert_eq!(bits(&z), bits(&gemm_golden(shape, &x, &w)));
    }

    #[test]
    fn overlap_hides_dma_when_compute_bound() {
        let shape = GemmShape::new(64, 128, 64);
        let (x, w) = data(shape, 5);
        let (_, report) = driver_with_tcdm(64).run(shape, &x, &w).expect("runs");
        assert!(report.overlapped_cycles <= report.serial_cycles);
        assert!(
            report.dma_hidden_fraction() > 0.5,
            "hidden = {}",
            report.dma_hidden_fraction()
        );
        // Overlapped is close to pure compute plus the first fill.
        let overhead =
            report.overlapped_cycles.count() as f64 / report.compute_cycles.count() as f64;
        assert!(overhead < 1.3, "overlap overhead = {overhead}");
    }

    #[test]
    fn too_small_tcdm_is_reported() {
        let driver = L2TiledGemm::new(
            AccelConfig::paper(),
            ClusterConfig {
                bank_words: 8, // 512 B total
                ..ClusterConfig::default()
            },
        );
        let shape = GemmShape::new(64, 64, 64);
        let (x, w) = data(shape, 6);
        assert!(matches!(
            driver.run(shape, &x, &w),
            Err(EngineError::InvalidJob(_))
        ));
    }

    #[test]
    fn empty_outputs_cost_nothing() {
        let driver = driver_with_tcdm(128);
        for shape in [GemmShape::new(0, 8, 8), GemmShape::new(8, 8, 0)] {
            let (x, w) = data(shape, 7);
            let (z, report) = driver.run(shape, &x, &w).expect("runs");
            assert!(z.is_empty());
            assert_eq!(report.serial_cycles, Cycle::ZERO);
        }
    }

    #[test]
    fn zero_reduction_still_writes_zeros() {
        let shape = GemmShape::new(4, 0, 6);
        let driver = driver_with_tcdm(128);
        let (z, _) = driver.run(shape, &[], &[]).expect("runs");
        assert_eq!(z, vec![F16::ZERO; 24]);
    }

    #[test]
    fn custom_dma_scales_transfer_cost() {
        let shape = GemmShape::new(16, 32, 16);
        let (x, w) = data(shape, 8);
        let fast = driver_with_tcdm(16).with_dma(Dma::new(4, 32));
        let slow = driver_with_tcdm(16).with_dma(Dma::new(4, 2));
        let (_, rf) = fast.run(shape, &x, &w).expect("runs");
        let (_, rs) = slow.run(shape, &x, &w).expect("runs");
        assert!(rs.dma_cycles > rf.dma_cycles);
        assert_eq!(rf.compute_cycles, rs.compute_cycles);
    }
}
