//! Top-level accelerator facade: register-file programming plus
//! one-call GEMM convenience.

use crate::cast;
use crate::config::AccelConfig;
use crate::engine::{Engine, EngineError, RunReport};
use crate::faults::{FaultPlan, FtConfig};
use crate::regfile::{Job, RegFile};
use redmule_cluster::{ClusterConfig, Hci, Tcdm};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::{Format, F16};

/// A complete RedMulE instance: the cycle-accurate [`Engine`] plus the
/// HWPE [`RegFile`] the cores program it through.
///
/// Two usage styles are supported:
///
/// * **Offload flow** (as in the real cluster): write the job registers
///   via [`Accelerator::regfile_mut`], trigger, then [`Accelerator::service`]
///   — mirroring how a PULP core drives the HWPE.
/// * **Convenience flow**: [`Accelerator::gemm`] places operands in a
///   fresh TCDM and runs the job in one call.
///
/// # Example
///
/// ```
/// use redmule::Accelerator;
/// use redmule_fp16::{vector::GemmShape, F16};
///
/// let accel = Accelerator::paper_instance();
/// let shape = GemmShape::new(4, 4, 4);
/// let x = vec![F16::ONE; 16];
/// let w = vec![F16::TWO; 16];
/// let run = accel.gemm(shape, &x, &w)?;
/// assert!(run.z.iter().all(|v| v.to_f32() == 8.0));
/// # Ok::<(), redmule::EngineError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    engine: Engine,
    regfile: RegFile,
}

/// Result of a convenience GEMM run.
#[derive(Debug, Clone)]
pub struct GemmRun {
    /// The computed output matrix (`m x k`, row-major).
    pub z: Vec<F16>,
    /// Cycle-accurate execution report.
    pub report: RunReport,
}

impl Accelerator {
    /// The paper's prototype: `H = 4, L = 8, P = 3` (32 FMAs, 9 ports).
    pub fn paper_instance() -> Accelerator {
        Accelerator::new(AccelConfig::paper())
    }

    /// Builds an instance with custom parameters.
    pub fn new(cfg: AccelConfig) -> Accelerator {
        Accelerator {
            engine: Engine::new(cfg),
            regfile: RegFile::new(),
        }
    }

    /// Enables per-cycle port tracing on the underlying engine.
    #[must_use]
    pub fn with_trace(mut self) -> Accelerator {
        self.engine = self.engine.clone().with_trace();
        self
    }

    /// The instance parameters.
    pub fn config(&self) -> &AccelConfig {
        self.engine.config()
    }

    /// The underlying execution engine (e.g. to wrap it in a supervised
    /// runtime driving the same instance).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Core-visible register file (read side).
    pub fn regfile(&self) -> &RegFile {
        &self.regfile
    }

    /// Core-visible register file (write side) for the offload flow.
    pub fn regfile_mut(&mut self) -> &mut RegFile {
        &mut self.regfile
    }

    /// Services a pending trigger: runs the programmed job to completion
    /// against the given memory/interconnect and clears the busy flag.
    ///
    /// Returns `Ok(None)` when no trigger is pending.
    ///
    /// # Errors
    ///
    /// Propagates [`EngineError`] from the engine; the job is marked
    /// complete either way (a real HWPE would raise an error event).
    pub fn service(
        &mut self,
        mem: &mut Tcdm,
        hci: &mut Hci,
    ) -> Result<Option<RunReport>, EngineError> {
        let Some(job) = self.regfile.take_triggered_job() else {
            return Ok(None);
        };
        let result = self.engine.run(job, mem, hci);
        self.regfile.complete_job();
        result.map(Some)
    }

    /// Runs `Z = X * W` on a fresh, operand-sized TCDM and returns the
    /// result with its cycle report.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when a slice length does not match
    /// `shape`; otherwise propagates [`EngineError`].
    pub fn gemm(&self, shape: GemmShape, x: &[F16], w: &[F16]) -> Result<GemmRun, EngineError> {
        self.gemm_inner(shape, Format::Fp16, x, w, None, None)
    }

    /// Runs `Z = X * W` with operands stored in TCDM in `format`: FP8
    /// storage is narrowed at staging (castout), widened at buffer fill
    /// (castin), accumulated in FP16 and narrowed again at store drain.
    /// The returned `z` is read back widened to FP16 — bit-identical to
    /// [`crate::FunctionalGemm::run_format`] on the same operands.
    ///
    /// # Errors
    ///
    /// As [`Accelerator::gemm`].
    pub fn gemm_with_format(
        &self,
        shape: GemmShape,
        format: Format,
        x: &[F16],
        w: &[F16],
    ) -> Result<GemmRun, EngineError> {
        self.gemm_inner(shape, format, x, w, None, None)
    }

    /// Runs `Z = X * W + Y` with operands stored in `format`
    /// (see [`Accelerator::gemm_with_format`]).
    ///
    /// # Errors
    ///
    /// As [`Accelerator::gemm`].
    pub fn gemm_accumulate_with_format(
        &self,
        shape: GemmShape,
        format: Format,
        x: &[F16],
        w: &[F16],
        y: &[F16],
    ) -> Result<GemmRun, EngineError> {
        self.gemm_inner(shape, format, x, w, Some(y), None)
    }

    /// Runs `Z = X * W + Y` (accumulate mode, the journal follow-up's GEMM
    /// extension) on a fresh TCDM.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShapeMismatch`] when a slice length does not match
    /// `shape`; otherwise propagates [`EngineError`].
    pub fn gemm_accumulate(
        &self,
        shape: GemmShape,
        x: &[F16],
        w: &[F16],
        y: &[F16],
    ) -> Result<GemmRun, EngineError> {
        self.gemm_inner(shape, Format::Fp16, x, w, Some(y), None)
    }

    /// Runs `Z = X * W` under a [`FaultPlan`] with one of the RedMulE-FT
    /// protection modes (see [`Engine::run_ft`]): the report carries the
    /// fault log and all recovery overhead.
    ///
    /// # Errors
    ///
    /// As [`Accelerator::gemm`], plus [`EngineError::FaultUnrecoverable`]
    /// when a persistent fault defeats the retry budget and
    /// [`EngineError::Watchdog`] when injected transaction drops hang the
    /// schedule.
    pub fn gemm_ft(
        &self,
        shape: GemmShape,
        x: &[F16],
        w: &[F16],
        plan: &FaultPlan,
        ft: FtConfig,
    ) -> Result<GemmRun, EngineError> {
        self.gemm_inner(shape, Format::Fp16, x, w, None, Some((plan, ft)))
    }

    fn gemm_inner(
        &self,
        shape: GemmShape,
        format: Format,
        x: &[F16],
        w: &[F16],
        y: Option<&[F16]>,
        ft: Option<(&FaultPlan, FtConfig)>,
    ) -> Result<GemmRun, EngineError> {
        let (job, mut mem, mut hci) = stage_gemm_workspace_in(shape, format, x, w, y)?;
        let report = match ft {
            Some((plan, ft_cfg)) => self.engine.run_ft(job, &mut mem, &mut hci, plan, ft_cfg)?,
            None => self.engine.run(job, &mut mem, &mut hci)?,
        };
        let z = cast::castin_slice(&mem, format, job.z_addr, shape.z_len())?;
        Ok(GemmRun { z, report })
    }
}

/// Sizes a fresh TCDM for `shape`, places the operands at the standard
/// layout (X at 0, then W, then Z; `y` preloads Z and enables accumulate
/// mode) and builds the matching [`Job`].
///
/// This is the workspace-staging step [`Accelerator::gemm`] performs
/// internally, exposed so external drivers — notably the supervised
/// runtime's checkpointed execution loop — can run the exact same
/// workspace through their own tick loop and read Z back from
/// `job.z_addr` afterwards.
///
/// # Errors
///
/// [`EngineError::ShapeMismatch`] when a slice length does not match
/// `shape`; [`EngineError::Memory`] when the operands cannot be placed.
pub fn stage_gemm_workspace(
    shape: GemmShape,
    x: &[F16],
    w: &[F16],
    y: Option<&[F16]>,
) -> Result<(Job, Tcdm, Hci), EngineError> {
    stage_gemm_workspace_in(shape, Format::Fp16, x, w, y)
}

/// As [`stage_gemm_workspace`], with the operands stored in `format`: FP8
/// storage is narrowed element-wise at staging (the castout the DMA-side
/// repacker performs) and packed at 1 byte per element, halving the
/// workspace footprint. Read Z back with [`cast::castin_slice`] to get
/// FP16 values regardless of format.
///
/// # Errors
///
/// As [`stage_gemm_workspace`].
pub fn stage_gemm_workspace_in(
    shape: GemmShape,
    format: Format,
    x: &[F16],
    w: &[F16],
    y: Option<&[F16]>,
) -> Result<(Job, Tcdm, Hci), EngineError> {
    let check = |operand: &'static str, got: usize, expected: usize| {
        if got == expected {
            Ok(())
        } else {
            Err(EngineError::ShapeMismatch {
                operand,
                expected,
                got,
            })
        }
    };
    check("X", x.len(), shape.x_len())?;
    check("W", w.len(), shape.w_len())?;
    if let Some(y) = y {
        check("Y", y.len(), shape.z_len())?;
    }

    let esz = format.elem_bytes();
    let needed = esz * (shape.x_len() + shape.w_len() + shape.z_len()) + 256;
    let mut ccfg = ClusterConfig::default();
    if needed > ccfg.tcdm_bytes() {
        ccfg = ccfg.with_tcdm_kib(needed.div_ceil(1024));
    }
    let mut mem = Tcdm::new(&ccfg);
    let hci = Hci::new(&ccfg);

    let x_addr = 0u32;
    let w_addr = x_addr + (esz * shape.x_len()) as u32;
    let z_addr = w_addr + (esz * shape.w_len()) as u32;
    cast::castout_slice(&mut mem, format, x_addr, x)?;
    cast::castout_slice(&mut mem, format, w_addr, w)?;
    let mut job = Job::new(x_addr, w_addr, z_addr, shape.m, shape.n, shape.k).with_format(format);
    if let Some(y) = y {
        cast::castout_slice(&mut mem, format, z_addr, y)?;
        job = job.with_accumulate();
    }
    Ok((job, mem, hci))
}

#[cfg(test)]
mod tests {
    use super::*;
    use redmule_fp16::vector::{gemm_golden, gemm_golden_accumulate};

    fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
        let gen = |len: usize, s: u32| -> Vec<F16> {
            (0..len)
                .map(|i| {
                    let v = ((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 64;
                    F16::from_f32(v as f32 / 16.0 - 2.0)
                })
                .collect()
        };
        (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xABCD))
    }

    fn bits(v: &[F16]) -> Vec<u16> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn gemm_matches_golden_for_aligned_shapes() {
        let accel = Accelerator::paper_instance();
        for (m, n, k) in [(8, 4, 16), (8, 16, 16), (16, 8, 32), (8, 64, 16)] {
            let shape = GemmShape::new(m, n, k);
            let (x, w) = data(shape, 7);
            let run = accel.gemm(shape, &x, &w).expect("gemm runs");
            assert_eq!(
                bits(&run.z),
                bits(&gemm_golden(shape, &x, &w)),
                "shape {shape}"
            );
        }
    }

    #[test]
    fn gemm_matches_golden_for_ragged_shapes() {
        let accel = Accelerator::paper_instance();
        for (m, n, k) in [
            (1, 1, 1),
            (3, 5, 7),
            (9, 13, 17),
            (7, 3, 33),
            (8, 1, 16),
            (17, 16, 15),
            (5, 31, 2),
        ] {
            let shape = GemmShape::new(m, n, k);
            let (x, w) = data(shape, 99);
            let run = accel.gemm(shape, &x, &w).expect("gemm runs");
            assert_eq!(
                bits(&run.z),
                bits(&gemm_golden(shape, &x, &w)),
                "shape {shape}"
            );
        }
    }

    #[test]
    fn gemm_handles_subnormal_data() {
        let accel = Accelerator::paper_instance();
        let shape = GemmShape::new(4, 8, 4);
        let x: Vec<F16> = (0..shape.x_len())
            .map(|i| F16::from_bits(1 + (i as u16 % 32)))
            .collect();
        let w: Vec<F16> = (0..shape.w_len())
            .map(|i| F16::from_bits(0x0200 + (i as u16 % 64)))
            .collect();
        let run = accel.gemm(shape, &x, &w).expect("gemm runs");
        assert_eq!(bits(&run.z), bits(&gemm_golden(shape, &x, &w)));
    }

    #[test]
    fn zero_reduction_dimension_writes_zeros() {
        let accel = Accelerator::paper_instance();
        let shape = GemmShape::new(3, 0, 5);
        let run = accel.gemm(shape, &[], &[]).expect("gemm runs");
        assert_eq!(run.z, vec![F16::ZERO; 15]);
        assert!(run.report.cycles.count() > 0);
    }

    #[test]
    fn empty_output_costs_nothing() {
        let accel = Accelerator::paper_instance();
        for shape in [GemmShape::new(0, 4, 4), GemmShape::new(4, 4, 0)] {
            let (x, w) = data(shape, 3);
            let run = accel.gemm(shape, &x, &w).expect("gemm runs");
            assert!(run.z.is_empty());
            assert_eq!(run.report.cycles.count(), 0);
        }
    }

    #[test]
    fn accumulate_mode_matches_golden() {
        let accel = Accelerator::paper_instance();
        for (m, n, k) in [(8, 8, 16), (5, 7, 9)] {
            let shape = GemmShape::new(m, n, k);
            let (x, w) = data(shape, 21);
            let y: Vec<F16> = (0..shape.z_len())
                .map(|i| F16::from_f32(i as f32 / 4.0 - 3.0))
                .collect();
            let run = accel.gemm_accumulate(shape, &x, &w, &y).expect("gemm runs");
            let golden = gemm_golden_accumulate(shape, &x, &w, Some(&y));
            assert_eq!(bits(&run.z), bits(&golden), "shape {shape}");
        }
    }

    #[test]
    fn accumulate_with_zero_n_preserves_z() {
        let accel = Accelerator::paper_instance();
        let shape = GemmShape::new(2, 0, 3);
        let y: Vec<F16> = (0..6).map(|i| F16::from_f32(i as f32)).collect();
        let run = accel
            .gemm_accumulate(shape, &[], &[], &y)
            .expect("gemm runs");
        assert_eq!(bits(&run.z), bits(&y));
    }

    #[test]
    fn utilization_grows_with_problem_size() {
        let accel = Accelerator::paper_instance();
        let mut last = 0.0;
        for size in [16usize, 32, 64] {
            let shape = GemmShape::new(size, size, size);
            let (x, w) = data(shape, 5);
            let run = accel.gemm(shape, &x, &w).expect("gemm runs");
            let util = run.report.utilization(accel.config());
            assert!(util > last, "utilization must grow: {util} at {size}");
            last = util;
        }
        assert!(last > 0.8, "64^3 should already be fairly efficient");
    }

    #[test]
    fn large_square_gemm_is_near_ideal() {
        let accel = Accelerator::paper_instance();
        let shape = GemmShape::new(128, 128, 128);
        let (x, w) = data(shape, 11);
        let run = accel.gemm(shape, &x, &w).expect("gemm runs");
        let util = run.report.utilization(accel.config());
        assert!(util > 0.95, "128^3 utilization = {util}");
        assert_eq!(run.report.macs, shape.macs());
        // And the numerics still hold at this size (spot check).
        let golden = gemm_golden(shape, &x, &w);
        assert_eq!(bits(&run.z), bits(&golden));
    }

    #[test]
    fn w_port_cadence_matches_the_paper_schedule() {
        // In steady state the W stream must fire once every P+1 = 4 cycles.
        let accel = Accelerator::paper_instance().with_trace();
        let shape = GemmShape::new(8, 64, 16); // single tile, 16 phases
        let (x, w) = data(shape, 13);
        let run = accel.gemm(shape, &x, &w).expect("gemm runs");
        let trace = run.report.trace.expect("tracing enabled");
        let fires: Vec<usize> = trace
            .w
            .history()
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.fires().then_some(i))
            .collect();
        assert_eq!(fires.len() as u64, run.report.stats.get("w_loads"));
        // Steady-state gaps are exactly 4 cycles; startup may be denser.
        let steady = &fires[8..fires.len() - 2];
        for pair in steady.windows(2) {
            let gap = pair[1] - pair[0];
            assert!(
                gap == 4,
                "steady-state W cadence must be 4 cycles, got {gap}"
            );
        }
    }

    #[test]
    fn x_and_z_interleave_between_w_accesses() {
        let accel = Accelerator::paper_instance().with_trace();
        let shape = GemmShape::new(16, 64, 32); // several tiles
        let (x, w) = data(shape, 17);
        let run = accel.gemm(shape, &x, &w).expect("gemm runs");
        let trace = run.report.trace.expect("tracing enabled");
        // On any cycle at most one stream fires (single shallow port).
        for i in 0..trace.w.cycles() {
            let fired = [&trace.w, &trace.x, &trace.z]
                .iter()
                .filter(|m| m.history()[i].fires())
                .count();
            assert!(fired <= 1, "port can only serve one stream per cycle");
        }
        assert!(trace.x.fires() > 0 && trace.z.fires() > 0);
    }

    #[test]
    fn strided_job_multiplies_a_submatrix_in_place() {
        // A big M x N matrix lives in memory; the job multiplies an
        // interior block of it, writing into an interior block of a big Z
        // buffer — no packing copies, like the silicon's strided streamer.
        let big_n = 40usize; // leading dimension of the stored X
        let big_k = 24usize; // leading dimension of the stored W and Z
        let sub = GemmShape::new(6, 10, 7);
        let (x_off_r, x_off_c) = (2usize, 3usize);
        let (w_off_r, w_off_c) = (1usize, 4usize);
        let (z_off_r, z_off_c) = (5usize, 2usize);

        let big_x: Vec<F16> = (0..16 * big_n)
            .map(|i| F16::from_f32(((i % 37) as f32 - 18.0) / 16.0))
            .collect();
        let big_w: Vec<F16> = (0..16 * big_k)
            .map(|i| F16::from_f32(((i % 31) as f32 - 15.0) / 32.0))
            .collect();

        let ccfg = ClusterConfig::default();
        let mut mem = Tcdm::new(&ccfg);
        let mut hci = Hci::new(&ccfg);
        let x_base = 0u32;
        let w_base = 0x4000u32;
        let z_base = 0x8000u32;
        mem.store_f16_slice(x_base, &big_x).expect("X fits");
        mem.store_f16_slice(w_base, &big_w).expect("W fits");

        let job = Job::new(
            x_base + 2 * (x_off_r * big_n + x_off_c) as u32,
            w_base + 2 * (w_off_r * big_k + w_off_c) as u32,
            z_base + 2 * (z_off_r * big_k + z_off_c) as u32,
            sub.m,
            sub.n,
            sub.k,
        )
        .with_strides(big_n, big_k, big_k);
        assert!(job.validate().is_ok());

        let engine = Engine::new(AccelConfig::paper());
        engine
            .run(job, &mut mem, &mut hci)
            .expect("strided job runs");

        // Golden: extract the sub-blocks densely and multiply.
        let big_x_ref = &big_x;
        let big_w_ref = &big_w;
        let x_sub: Vec<F16> = (0..sub.m)
            .flat_map(|r| (0..sub.n).map(move |c| big_x_ref[(x_off_r + r) * big_n + x_off_c + c]))
            .collect();
        let w_sub: Vec<F16> = (0..sub.n)
            .flat_map(|r| (0..sub.k).map(move |c| big_w_ref[(w_off_r + r) * big_k + w_off_c + c]))
            .collect();
        let golden = gemm_golden(sub, &x_sub, &w_sub);
        for r in 0..sub.m {
            for c in 0..sub.k {
                let addr = z_base + 2 * ((z_off_r + r) * big_k + z_off_c + c) as u32;
                let got = mem.read_f16(addr).expect("Z in range");
                assert_eq!(
                    got.to_bits(),
                    golden[r * sub.k + c].to_bits(),
                    "mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn stride_validation_rejects_short_strides() {
        let job = Job::new(0, 0x100, 0x200, 4, 8, 4).with_strides(4, 0, 0);
        assert!(job.validate().is_err(), "x_stride 4 < n = 8 must fail");
        let job = Job::new(0, 0x100, 0x200, 4, 8, 4).with_strides(8, 4, 4);
        assert!(job.validate().is_ok());
        assert_eq!(job.x_ld(), 8);
        assert_eq!(job.w_ld(), 4);
        assert_eq!(Job::new(0, 0, 0, 2, 3, 5).z_ld(), 5, "dense default");
    }

    #[test]
    fn occupancy_trace_captures_startup_stalls_and_steady_state() {
        let accel = Accelerator::paper_instance().with_trace();
        let shape = GemmShape::new(8, 64, 16);
        let (x, w) = data(shape, 57);
        let run = accel.gemm(shape, &x, &w).expect("gemm runs");
        let trace = run.report.trace.expect("tracing enabled");
        assert_eq!(trace.occupancy.len() as u64, run.report.cycles.count());
        // Startup: the first cycles stall while the X buffer preloads.
        assert!(trace.occupancy[0].stalled, "cycle 0 must stall on preload");
        let startup_stalls = trace.occupancy[..12].iter().filter(|s| s.stalled).count();
        assert!(startup_stalls >= 6, "startup stalls = {startup_stalls}");
        // Steady state (middle third): no stalls, X staging mostly full.
        let n = trace.occupancy.len();
        let mid = &trace.occupancy[n / 3..2 * n / 3];
        assert!(
            mid.iter().all(|s| !s.stalled),
            "steady state must not stall"
        );
        // The recorded stall count matches the report.
        let total_stalls = trace.occupancy.iter().filter(|s| s.stalled).count() as u64;
        assert_eq!(total_stalls, run.report.stall_cycles);
        // Z rows appear in the queue near the end.
        assert!(trace.occupancy.iter().any(|s| s.z_pending > 0));
    }

    #[test]
    fn offload_flow_through_the_register_file() {
        use crate::regfile::offsets;
        let ccfg = ClusterConfig::default();
        let mut mem = Tcdm::new(&ccfg);
        let mut hci = Hci::new(&ccfg);
        let shape = GemmShape::new(4, 4, 4);
        let (x, w) = data(shape, 31);
        mem.store_f16_slice(0x0, &x).expect("X fits");
        mem.store_f16_slice(0x100, &w).expect("W fits");

        let mut accel = Accelerator::paper_instance();
        assert!(matches!(accel.service(&mut mem, &mut hci), Ok(None)));
        let rf = accel.regfile_mut();
        rf.write(offsets::X_ADDR, 0x0);
        rf.write(offsets::W_ADDR, 0x100);
        rf.write(offsets::Z_ADDR, 0x200);
        rf.write(offsets::M_SIZE, 4);
        rf.write(offsets::N_SIZE, 4);
        rf.write(offsets::K_SIZE, 4);
        rf.write(offsets::TRIGGER, 1);
        let report = accel
            .service(&mut mem, &mut hci)
            .expect("job runs")
            .expect("job was pending");
        assert!(report.cycles.count() > 0);
        assert!(!accel.regfile().is_busy());
        let z = mem.load_f16_slice(0x200, shape.z_len()).expect("Z range");
        assert_eq!(bits(&z), bits(&gemm_golden(shape, &x, &w)));
    }

    #[test]
    fn shape_mismatch_is_an_error_not_a_panic() {
        let accel = Accelerator::paper_instance();
        let shape = GemmShape::new(2, 2, 2);
        let err = accel
            .gemm(shape, &[F16::ONE; 3], &[F16::ONE; 4])
            .expect_err("short X must be rejected");
        assert_eq!(
            err,
            EngineError::ShapeMismatch {
                operand: "X",
                expected: 4,
                got: 3
            }
        );
        assert!(err.to_string().contains("wrong length"));
        let err = accel
            .gemm_accumulate(shape, &[F16::ONE; 4], &[F16::ONE; 4], &[])
            .expect_err("short Y must be rejected");
        assert!(matches!(
            err,
            EngineError::ShapeMismatch { operand: "Y", .. }
        ));
    }

    #[test]
    fn misaligned_job_is_rejected() {
        let ccfg = ClusterConfig::default();
        let mut mem = Tcdm::new(&ccfg);
        let mut hci = Hci::new(&ccfg);
        let engine = Engine::new(AccelConfig::paper());
        let job = Job::new(0x1, 0x100, 0x200, 4, 4, 4);
        assert!(matches!(
            engine.run(job, &mut mem, &mut hci),
            Err(EngineError::InvalidJob(_))
        ));
    }

    #[test]
    fn out_of_bounds_operands_error() {
        let ccfg = ClusterConfig::default();
        let mut mem = Tcdm::new(&ccfg);
        let mut hci = Hci::new(&ccfg);
        let engine = Engine::new(AccelConfig::paper());
        let far = (mem.size_bytes() as u32) - 8;
        let job = Job::new(far, 0x100, 0x200, 8, 8, 8);
        assert!(matches!(
            engine.run(job, &mut mem, &mut hci),
            Err(EngineError::Memory(_))
        ));
    }

    #[test]
    fn ablation_policies_degrade_but_stay_correct() {
        use crate::engine::StreamerPolicy;
        let shape = GemmShape::new(16, 64, 32);
        let (x, w) = data(shape, 41);
        let golden = gemm_golden(shape, &x, &w);

        let run_policy = |policy: StreamerPolicy| {
            let ccfg = ClusterConfig::default();
            let mut mem = Tcdm::new(&ccfg);
            let mut hci = Hci::new(&ccfg);
            mem.store_f16_slice(0, &x).expect("X fits");
            mem.store_f16_slice(0x1000, &w).expect("W fits");
            let engine = Engine::new(AccelConfig::paper()).with_streamer_policy(policy);
            let job = Job::new(0, 0x1000, 0x3000, shape.m, shape.n, shape.k);
            let report = engine.run(job, &mut mem, &mut hci).expect("job runs");
            let z = mem
                .load_f16_slice(0x3000, shape.z_len())
                .expect("Z range valid");
            assert_eq!(bits(&z), bits(&golden), "policy {policy:?} broke numerics");
            report.cycles.count()
        };

        let base = run_policy(StreamerPolicy::Interleaved);
        let half = run_policy(StreamerPolicy::HalfBandwidth);
        let single = run_policy(StreamerPolicy::SingleBufferedW);
        assert!(half > base, "half bandwidth must cost cycles");
        assert!(single > base, "no-prefetch must cost cycles");
    }

    #[test]
    fn non_paper_instances_also_match_golden() {
        for cfg in [
            AccelConfig::new(2, 4, 1),
            AccelConfig::new(4, 4, 3),
            AccelConfig::new(8, 8, 3),
            AccelConfig::new(4, 8, 0),
            AccelConfig::new(1, 2, 2),
        ] {
            let accel = Accelerator::new(cfg);
            let shape = GemmShape::new(9, 11, 13);
            let (x, w) = data(shape, cfg.fma_count() as u32);
            let run = accel.gemm(shape, &x, &w).expect("gemm runs");
            assert_eq!(
                bits(&run.z),
                bits(&gemm_golden(shape, &x, &w)),
                "config {cfg}"
            );
        }
    }
}
