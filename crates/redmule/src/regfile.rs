//! The HWPE peripheral register file.
//!
//! RedMulE is "software-programmed by the cores": a core writes the job
//! descriptor (matrix pointers and sizes) into memory-mapped registers and
//! then triggers the accelerator, exactly as in the HWPE specification this
//! module mirrors. The [`crate::Accelerator`] consumes the decoded
//! [`Job`].

use crate::engine::EngineError;
use redmule_fp16::Format;
use redmule_hwsim::snapshot::{SnapshotError, StateReader, StateWriter};
use redmule_hwsim::StuckBit;
use std::fmt;

/// Register offsets (byte addresses in the HWPE peripheral window).
pub mod offsets {
    /// Write-any to start the configured job.
    pub const TRIGGER: u32 = 0x00;
    /// Read: bit 0 = busy.
    pub const STATUS: u32 = 0x04;
    /// Soft-clear: write-any to abort/reset the job configuration.
    pub const SOFT_CLEAR: u32 = 0x08;
    /// Pointer to the X matrix in TCDM.
    pub const X_ADDR: u32 = 0x20;
    /// Pointer to the W matrix in TCDM.
    pub const W_ADDR: u32 = 0x24;
    /// Pointer to the Z matrix in TCDM.
    pub const Z_ADDR: u32 = 0x28;
    /// Rows of X / Z (`M`).
    pub const M_SIZE: u32 = 0x2C;
    /// Columns of X / rows of W (`N`).
    pub const N_SIZE: u32 = 0x30;
    /// Columns of W / Z (`K`).
    pub const K_SIZE: u32 = 0x34;
    /// Job flags: bit 0 = accumulate into existing Z; bits \[2:1\] =
    /// operand storage format (0 = FP16, 1 = FP8 E4M3, 2 = FP8 E5M2; the
    /// encoding 3 is reserved and decodes as FP16).
    pub const FLAGS: u32 = 0x38;
    /// Row stride of X in elements (0 = dense, i.e. `N`).
    pub const X_STRIDE: u32 = 0x3C;
    /// Row stride of W in elements (0 = dense, i.e. `K`).
    pub const W_STRIDE: u32 = 0x40;
    /// Row stride of Z in elements (0 = dense, i.e. `K`).
    pub const Z_STRIDE: u32 = 0x44;
}

/// A fully described matrix-multiplication job: `Z = X * W` (plus `+ Z` in
/// accumulate mode), with row-major operands resident in the TCDM.
///
/// # Example
///
/// ```
/// use redmule::Job;
///
/// let job = Job::new(0x0000, 0x1000, 0x2000, 8, 16, 8);
/// assert_eq!(job.shape().macs(), 8 * 16 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// Byte address of X (`m x n`, row-major FP16).
    pub x_addr: u32,
    /// Byte address of W (`n x k`, row-major FP16).
    pub w_addr: u32,
    /// Byte address of Z (`m x k`, row-major FP16).
    pub z_addr: u32,
    /// Rows of X and Z.
    pub m: usize,
    /// Reduction dimension.
    pub n: usize,
    /// Columns of W and Z.
    pub k: usize,
    /// When `true`, accumulate onto the existing contents of Z
    /// (`Z += X * W`) instead of overwriting.
    pub accumulate: bool,
    /// Row stride of X in elements; `0` means dense (`n`). Strides let a
    /// job read a sub-matrix in place, like the silicon streamer's address
    /// generators.
    pub x_stride: usize,
    /// Row stride of W in elements; `0` means dense (`k`).
    pub w_stride: usize,
    /// Row stride of Z in elements; `0` means dense (`k`).
    pub z_stride: usize,
    /// Storage format of the X/W/Z operands in TCDM. FP8 operands are
    /// widened at buffer fill (castin) and narrowed at store drain
    /// (castout); the FMA datapath always accumulates in FP16.
    pub format: Format,
}

impl Job {
    /// Creates a non-accumulating, densely laid-out job.
    pub fn new(x_addr: u32, w_addr: u32, z_addr: u32, m: usize, n: usize, k: usize) -> Job {
        Job {
            x_addr,
            w_addr,
            z_addr,
            m,
            n,
            k,
            accumulate: false,
            x_stride: 0,
            w_stride: 0,
            z_stride: 0,
            format: Format::Fp16,
        }
    }

    /// Returns a copy with accumulate mode enabled.
    #[must_use]
    pub fn with_accumulate(mut self) -> Job {
        self.accumulate = true;
        self
    }

    /// Returns a copy with the given operand storage format.
    #[must_use]
    pub fn with_format(mut self, format: Format) -> Job {
        self.format = format;
        self
    }

    /// Returns a copy with explicit row strides in elements (`0` keeps a
    /// dimension dense). Strides must be at least the dense width.
    #[must_use]
    pub fn with_strides(mut self, x_stride: usize, w_stride: usize, z_stride: usize) -> Job {
        self.x_stride = x_stride;
        self.w_stride = w_stride;
        self.z_stride = z_stride;
        self
    }

    /// Effective X row stride in elements.
    pub fn x_ld(&self) -> usize {
        if self.x_stride == 0 {
            self.n
        } else {
            self.x_stride
        }
    }

    /// Effective W row stride in elements.
    pub fn w_ld(&self) -> usize {
        if self.w_stride == 0 {
            self.k
        } else {
            self.w_stride
        }
    }

    /// Effective Z row stride in elements.
    pub fn z_ld(&self) -> usize {
        if self.z_stride == 0 {
            self.k
        } else {
            self.z_stride
        }
    }

    /// The GEMM shape of this job.
    pub fn shape(&self) -> redmule_fp16::vector::GemmShape {
        redmule_fp16::vector::GemmShape::new(self.m, self.n, self.k)
    }

    /// Validates pointer alignment (operands must be element-aligned:
    /// 2 bytes for FP16; FP8 bytes are always aligned).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        let align = self.format.elem_bytes() as u32;
        for (name, addr) in [
            ("x_addr", self.x_addr),
            ("w_addr", self.w_addr),
            ("z_addr", self.z_addr),
        ] {
            if addr % align != 0 {
                return Err(format!("{name} ({addr:#x}) must be {align}-byte aligned"));
            }
        }
        for (name, stride, dense) in [
            ("x_stride", self.x_stride, self.n),
            ("w_stride", self.w_stride, self.k),
            ("z_stride", self.z_stride, self.k),
        ] {
            if stride != 0 && stride < dense {
                return Err(format!(
                    "{name} ({stride}) must be at least the dense width ({dense})"
                ));
            }
        }
        Ok(())
    }

    /// Serialises the descriptor into a session snapshot payload.
    pub(crate) fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.x_addr);
        w.put(&self.w_addr);
        w.put(&self.z_addr);
        w.put(&self.m);
        w.put(&self.n);
        w.put(&self.k);
        w.put(&self.accumulate);
        w.put(&self.x_stride);
        w.put(&self.w_stride);
        w.put(&self.z_stride);
        w.put(&self.format.tag());
    }

    /// Deserialises a descriptor written by [`Job::save_state`].
    pub(crate) fn load_state(r: &mut StateReader<'_>) -> Result<Job, SnapshotError> {
        Ok(Job {
            x_addr: r.get()?,
            w_addr: r.get()?,
            z_addr: r.get()?,
            m: r.get()?,
            n: r.get()?,
            k: r.get()?,
            accumulate: r.get()?,
            x_stride: r.get()?,
            w_stride: r.get()?,
            z_stride: r.get()?,
            format: {
                let tag: u8 = r.get()?;
                Format::from_tag(tag)
                    .ok_or_else(|| SnapshotError::Corrupt(format!("job format tag {tag}")))?
            },
        })
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Z[{:#x}] {}= X[{:#x}] ({}x{}) * W[{:#x}] ({}x{})",
            self.z_addr,
            if self.accumulate { "+" } else { "" },
            self.x_addr,
            self.m,
            self.n,
            self.w_addr,
            self.n,
            self.k
        )?;
        if self.format.is_fp8() {
            write!(f, " [{}]", self.format)?;
        }
        Ok(())
    }
}

/// The memory-mapped register file through which cores program RedMulE.
///
/// # Example
///
/// ```
/// use redmule::{regfile::offsets, RegFile};
///
/// let mut rf = RegFile::new();
/// rf.write(offsets::X_ADDR, 0x100);
/// rf.write(offsets::W_ADDR, 0x200);
/// rf.write(offsets::Z_ADDR, 0x300);
/// rf.write(offsets::M_SIZE, 8);
/// rf.write(offsets::N_SIZE, 8);
/// rf.write(offsets::K_SIZE, 8);
/// rf.write(offsets::TRIGGER, 1);
/// let job = rf.take_triggered_job().expect("job was triggered");
/// assert_eq!(job.m, 8);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RegFile {
    x_addr: u32,
    w_addr: u32,
    z_addr: u32,
    m: u32,
    n: u32,
    k: u32,
    flags: u32,
    x_stride: u32,
    w_stride: u32,
    z_stride: u32,
    triggered: bool,
    busy: bool,
    /// Injected stuck-at applied to values written through the offset it
    /// is armed for — models a fault on the peripheral-bus write path.
    write_fault: Option<(u32, StuckBit)>,
}

impl RegFile {
    /// Creates a cleared register file.
    pub fn new() -> RegFile {
        RegFile::default()
    }

    /// Core-side register write.
    ///
    /// # Panics
    ///
    /// Panics on an unmapped offset (a real HWPE would raise a bus error).
    /// Use [`RegFile::try_write`] to handle the error instead.
    pub fn write(&mut self, offset: u32, value: u32) {
        if let Err(e) = self.try_write(offset, value) {
            // modelcheck-allow: RM-PANIC-001 -- documented panicking wrapper
            // (see # Panics); try_write is the fallible alternative.
            panic!("write to unmapped HWPE register: {e}");
        }
    }

    /// Core-side register write, reporting unmapped offsets as an error.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnmappedRegister`] when no register decodes at
    /// `offset` (the model's equivalent of an HWPE bus error).
    pub fn try_write(&mut self, offset: u32, value: u32) -> Result<(), EngineError> {
        let value = match self.write_fault {
            Some((off, stuck)) if off == offset => stuck.apply32(value),
            _ => value,
        };
        match offset {
            offsets::TRIGGER => self.triggered = true,
            offsets::SOFT_CLEAR => {
                // Soft-clear resets the job configuration; a physical
                // write-path defect survives the reset.
                let fault = self.write_fault;
                *self = RegFile::new();
                self.write_fault = fault;
            }
            offsets::X_ADDR => self.x_addr = value,
            offsets::W_ADDR => self.w_addr = value,
            offsets::Z_ADDR => self.z_addr = value,
            offsets::M_SIZE => self.m = value,
            offsets::N_SIZE => self.n = value,
            offsets::K_SIZE => self.k = value,
            offsets::FLAGS => self.flags = value,
            offsets::X_STRIDE => self.x_stride = value,
            offsets::W_STRIDE => self.w_stride = value,
            offsets::Z_STRIDE => self.z_stride = value,
            offsets::STATUS => {} // read-only: writes ignored
            other => return Err(EngineError::UnmappedRegister { offset: other }),
        }
        Ok(())
    }

    /// Core-side register read.
    ///
    /// # Panics
    ///
    /// Panics on an unmapped offset. Use [`RegFile::try_read`] to handle
    /// the error instead.
    pub fn read(&self, offset: u32) -> u32 {
        match self.try_read(offset) {
            Ok(v) => v,
            // modelcheck-allow: RM-PANIC-001 -- documented panicking wrapper
            // (see # Panics); try_read is the fallible alternative.
            Err(e) => panic!("read from unmapped HWPE register: {e}"),
        }
    }

    /// Core-side register read, reporting unmapped offsets as an error.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnmappedRegister`] when no register decodes at
    /// `offset`.
    pub fn try_read(&self, offset: u32) -> Result<u32, EngineError> {
        Ok(match offset {
            offsets::TRIGGER | offsets::SOFT_CLEAR => 0,
            offsets::STATUS => u32::from(self.busy),
            offsets::X_ADDR => self.x_addr,
            offsets::W_ADDR => self.w_addr,
            offsets::Z_ADDR => self.z_addr,
            offsets::M_SIZE => self.m,
            offsets::N_SIZE => self.n,
            offsets::K_SIZE => self.k,
            offsets::FLAGS => self.flags,
            offsets::X_STRIDE => self.x_stride,
            offsets::W_STRIDE => self.w_stride,
            offsets::Z_STRIDE => self.z_stride,
            other => return Err(EngineError::UnmappedRegister { offset: other }),
        })
    }

    /// Arms a stuck-at fault on the write path of the register at
    /// `offset`: every subsequent value written there has the bit pinned.
    pub fn inject_write_stuck(&mut self, offset: u32, fault: StuckBit) {
        self.write_fault = Some((offset, fault));
    }

    /// Removes an armed write-path fault.
    pub fn clear_write_fault(&mut self) {
        self.write_fault = None;
    }

    /// Consumes a pending trigger, decoding the programmed job and marking
    /// the accelerator busy. Returns `None` when no trigger is pending.
    pub fn take_triggered_job(&mut self) -> Option<Job> {
        if !self.triggered {
            return None;
        }
        self.triggered = false;
        self.busy = true;
        let mut job = Job::new(
            self.x_addr,
            self.w_addr,
            self.z_addr,
            self.m as usize,
            self.n as usize,
            self.k as usize,
        );
        if self.flags & 1 != 0 {
            job = job.with_accumulate();
        }
        // Bits [2:1] select the operand storage format; the reserved
        // encoding 3 falls back to FP16.
        let format = Format::from_tag(((self.flags >> 1) & 0x3) as u8).unwrap_or(Format::Fp16);
        job = job.with_format(format);
        job = job.with_strides(
            self.x_stride as usize,
            self.w_stride as usize,
            self.z_stride as usize,
        );
        Some(job)
    }

    /// Marks the current job complete (status returns idle).
    pub fn complete_job(&mut self) {
        self.busy = false;
    }

    /// Whether a job is in flight.
    pub fn is_busy(&self) -> bool {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn programmed() -> RegFile {
        let mut rf = RegFile::new();
        rf.write(offsets::X_ADDR, 0x100);
        rf.write(offsets::W_ADDR, 0x200);
        rf.write(offsets::Z_ADDR, 0x300);
        rf.write(offsets::M_SIZE, 12);
        rf.write(offsets::N_SIZE, 34);
        rf.write(offsets::K_SIZE, 56);
        rf
    }

    #[test]
    fn registers_read_back() {
        let rf = programmed();
        assert_eq!(rf.read(offsets::X_ADDR), 0x100);
        assert_eq!(rf.read(offsets::K_SIZE), 56);
        assert_eq!(rf.read(offsets::STATUS), 0);
    }

    #[test]
    fn trigger_produces_job_once() {
        let mut rf = programmed();
        assert!(rf.take_triggered_job().is_none());
        rf.write(offsets::TRIGGER, 1);
        let job = rf.take_triggered_job().expect("trigger pending");
        assert_eq!(job.x_addr, 0x100);
        assert_eq!((job.m, job.n, job.k), (12, 34, 56));
        assert!(!job.accumulate);
        assert!(rf.take_triggered_job().is_none(), "trigger is one-shot");
        assert!(rf.is_busy());
        assert_eq!(rf.read(offsets::STATUS), 1);
        rf.complete_job();
        assert_eq!(rf.read(offsets::STATUS), 0);
    }

    #[test]
    fn accumulate_flag_decodes() {
        let mut rf = programmed();
        rf.write(offsets::FLAGS, 1);
        rf.write(offsets::TRIGGER, 1);
        let job = rf.take_triggered_job().expect("triggered");
        assert!(job.accumulate);
        assert_eq!(job.format, Format::Fp16);
    }

    #[test]
    fn format_flag_bits_decode() {
        for (flags, format) in [
            (0b000, Format::Fp16),
            (0b010, Format::Fp8E4M3),
            (0b100, Format::Fp8E5M2),
            (0b110, Format::Fp16), // reserved encoding falls back
        ] {
            let mut rf = programmed();
            rf.write(offsets::FLAGS, flags);
            rf.write(offsets::TRIGGER, 1);
            let job = rf.take_triggered_job().expect("triggered");
            assert_eq!(job.format, format, "flags {flags:#05b}");
            assert!(!job.accumulate);
        }
        // Accumulate and format bits compose.
        let mut rf = programmed();
        rf.write(offsets::FLAGS, 0b011);
        rf.write(offsets::TRIGGER, 1);
        let job = rf.take_triggered_job().expect("triggered");
        assert!(job.accumulate);
        assert_eq!(job.format, Format::Fp8E4M3);
    }

    #[test]
    fn soft_clear_resets_everything() {
        let mut rf = programmed();
        rf.write(offsets::SOFT_CLEAR, 1);
        assert_eq!(rf.read(offsets::X_ADDR), 0);
        assert_eq!(rf.read(offsets::M_SIZE), 0);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_write_panics() {
        RegFile::new().write(0xFC, 1);
    }

    #[test]
    #[should_panic(expected = "unmapped")]
    fn unmapped_read_panics() {
        let _ = RegFile::new().read(0xFC);
    }

    #[test]
    fn try_accessors_report_unmapped() {
        let mut rf = RegFile::new();
        assert!(matches!(
            rf.try_write(0xFC, 1),
            Err(EngineError::UnmappedRegister { offset: 0xFC })
        ));
        assert!(matches!(
            rf.try_read(0xFC),
            Err(EngineError::UnmappedRegister { offset: 0xFC })
        ));
        assert!(rf.try_write(offsets::M_SIZE, 5).is_ok());
        assert_eq!(rf.try_read(offsets::M_SIZE), Ok(5));
    }

    #[test]
    fn write_fault_pins_bits_and_survives_soft_clear() {
        let mut rf = RegFile::new();
        rf.inject_write_stuck(
            offsets::M_SIZE,
            StuckBit {
                bit: 0,
                value: true,
            },
        );
        rf.write(offsets::M_SIZE, 4);
        assert_eq!(rf.read(offsets::M_SIZE), 5, "LSB pinned high");
        rf.write(offsets::SOFT_CLEAR, 1);
        rf.write(offsets::M_SIZE, 2);
        assert_eq!(rf.read(offsets::M_SIZE), 3, "defect survives soft-clear");
        rf.clear_write_fault();
        rf.write(offsets::M_SIZE, 2);
        assert_eq!(rf.read(offsets::M_SIZE), 2);
    }

    #[test]
    fn fp8_jobs_allow_byte_aligned_pointers() {
        let odd = Job::new(0x101, 0x203, 0x305, 2, 2, 2);
        assert!(odd.validate().is_err(), "FP16 needs 2-byte alignment");
        assert!(odd.with_format(Format::Fp8E4M3).validate().is_ok());
        assert!(odd.with_format(Format::Fp8E5M2).validate().is_ok());
        let text = odd.with_format(Format::Fp8E5M2).to_string();
        assert!(text.contains("fp8e5m2"), "format shows in display: {text}");
    }

    #[test]
    fn job_validation_and_display() {
        let job = Job::new(0x101, 0, 0, 1, 1, 1);
        assert!(job.validate().is_err());
        let job = Job::new(0x100, 0x200, 0x300, 2, 3, 4).with_accumulate();
        assert!(job.validate().is_ok());
        let text = job.to_string();
        assert!(text.contains("2x3") && text.contains("3x4") && text.contains("+="));
        assert_eq!(job.shape().macs(), 24);
    }
}
