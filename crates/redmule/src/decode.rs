//! Typed decoding of the serialised state containers (`RMSS` session
//! snapshots here, `RMCK` checkpoints in `redmule-runtime`).
//!
//! Both containers share one envelope — magic, little-endian format
//! version, `u64` payload length, payload, FNV-1a-64 payload checksum —
//! and both used to report damage as an opaque string. Durable storage
//! made the damage cases load-bearing (recovery decides *repair or fall
//! back* per damage kind), so decoding now returns [`DecodeError`]: a
//! closed enum, one variant per way a container can be malformed, and a
//! guarantee that no input — truncated, bit-flipped, oversized or
//! adversarial — panics the decoder.

use redmule_hwsim::snapshot::fnv1a64;

/// The fixed part of a container envelope: 4 magic bytes, `u32`
/// version, `u64` payload length.
pub const CONTAINER_HEADER_LEN: usize = 16;
/// The trailing FNV-1a-64 checksum.
pub const CONTAINER_CHECKSUM_LEN: usize = 8;

/// Structural damage found while decoding a state container. Every
/// malformed input maps to exactly one variant; decoding never panics
/// and never loses the damage kind in a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The magic bytes do not identify `container` (or fewer than four
    /// bytes were present).
    NotAContainer {
        /// Which container was expected (`"session"`, `"checkpoint"`).
        container: &'static str,
    },
    /// A format version this build does not read.
    UnsupportedVersion {
        /// Which container the version belongs to.
        container: &'static str,
        /// Version this build understands.
        expected: u32,
        /// Version found in the stream.
        got: u32,
    },
    /// The stream ended before the declared data — a torn or cut
    /// container.
    Truncated {
        /// Which container was being decoded.
        container: &'static str,
    },
    /// The declared payload length does not fit in this host's `usize`.
    LengthOverflow {
        /// Which container was being decoded.
        container: &'static str,
        /// The declared length.
        declared: u64,
    },
    /// Bytes remained after the checksum — the container does not own
    /// its buffer.
    TrailingBytes {
        /// Which container was being decoded.
        container: &'static str,
        /// How many bytes were left over.
        extra: usize,
    },
    /// The stored payload checksum does not match the recomputed one.
    ChecksumMismatch {
        /// Which container was being decoded.
        container: &'static str,
    },
    /// The envelope was intact but a nested section failed to decode.
    Section {
        /// Which container was being decoded.
        container: &'static str,
        /// The section that failed (`"session"`, `"tcdm"`, ...).
        section: &'static str,
        /// The nested damage.
        cause: Box<DecodeError>,
    },
}

impl DecodeError {
    /// Stable lowercase label for trace events and reports.
    pub fn label(&self) -> &'static str {
        match self {
            DecodeError::NotAContainer { .. } => "bad-magic",
            DecodeError::UnsupportedVersion { .. } => "bad-version",
            DecodeError::Truncated { .. } => "truncated",
            DecodeError::LengthOverflow { .. } => "length-overflow",
            DecodeError::TrailingBytes { .. } => "trailing-bytes",
            DecodeError::ChecksumMismatch { .. } => "checksum-mismatch",
            DecodeError::Section { .. } => "bad-section",
        }
    }

    /// Which container the damage was found in.
    pub fn container(&self) -> &'static str {
        match self {
            DecodeError::NotAContainer { container }
            | DecodeError::UnsupportedVersion { container, .. }
            | DecodeError::Truncated { container }
            | DecodeError::LengthOverflow { container, .. }
            | DecodeError::TrailingBytes { container, .. }
            | DecodeError::ChecksumMismatch { container }
            | DecodeError::Section { container, .. } => container,
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::NotAContainer { container } => {
                write!(f, "not a {container} container (bad magic)")
            }
            DecodeError::UnsupportedVersion {
                container,
                expected,
                got,
            } => write!(
                f,
                "unsupported {container} version {got} (this build reads {expected})"
            ),
            DecodeError::Truncated { container } => write!(f, "{container} container truncated"),
            DecodeError::LengthOverflow {
                container,
                declared,
            } => write!(
                f,
                "{container} payload length {declared} overflows this host"
            ),
            DecodeError::TrailingBytes { container, extra } => {
                write!(f, "{extra} trailing bytes after {container} container")
            }
            DecodeError::ChecksumMismatch { container } => {
                write!(f, "{container} payload checksum mismatch")
            }
            DecodeError::Section {
                container,
                section,
                cause,
            } => write!(f, "{container} section {section:?}: {cause}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Shape of one container family: its human name, magic and the single
/// version this build reads.
#[derive(Debug, Clone, Copy)]
pub struct ContainerSpec {
    /// Human name used in [`DecodeError`] (`"session"`, `"checkpoint"`).
    pub name: &'static str,
    /// The four magic bytes.
    pub magic: [u8; 4],
    /// The format version this build reads.
    pub version: u32,
}

/// Validates the envelope of `bytes` against `spec` and returns the
/// payload. Total function of the input: any byte stream yields either
/// the payload or a typed [`DecodeError`] — never a panic.
///
/// # Errors
///
/// The [`DecodeError`] variant matching the first structural problem
/// found, scanning front to back.
pub fn decode_container(spec: ContainerSpec, bytes: &[u8]) -> Result<Vec<u8>, DecodeError> {
    let container = spec.name;
    if bytes.len() < 4 || bytes[..4] != spec.magic {
        if bytes.len() >= 4 {
            return Err(DecodeError::NotAContainer { container });
        }
        // Shorter than the magic: could be a torn copy of a valid
        // container, report the more actionable truncation if the
        // prefix still matches.
        return if spec.magic.starts_with(bytes) {
            Err(DecodeError::Truncated { container })
        } else {
            Err(DecodeError::NotAContainer { container })
        };
    }
    if bytes.len() < CONTAINER_HEADER_LEN {
        return Err(DecodeError::Truncated { container });
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != spec.version {
        return Err(DecodeError::UnsupportedVersion {
            container,
            expected: spec.version,
            got: version,
        });
    }
    let declared = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]);
    let len = usize::try_from(declared).map_err(|_| DecodeError::LengthOverflow {
        container,
        declared,
    })?;
    let after_header = bytes.len() - CONTAINER_HEADER_LEN;
    if len > after_header.saturating_sub(CONTAINER_CHECKSUM_LEN)
        || len.checked_add(CONTAINER_CHECKSUM_LEN).is_none()
    {
        return Err(DecodeError::Truncated { container });
    }
    let payload = &bytes[CONTAINER_HEADER_LEN..CONTAINER_HEADER_LEN + len];
    let checksum_at = CONTAINER_HEADER_LEN + len;
    let extra = bytes.len() - checksum_at - CONTAINER_CHECKSUM_LEN;
    if extra != 0 {
        return Err(DecodeError::TrailingBytes { container, extra });
    }
    let stored = u64::from_le_bytes([
        bytes[checksum_at],
        bytes[checksum_at + 1],
        bytes[checksum_at + 2],
        bytes[checksum_at + 3],
        bytes[checksum_at + 4],
        bytes[checksum_at + 5],
        bytes[checksum_at + 6],
        bytes[checksum_at + 7],
    ]);
    if fnv1a64(payload) != stored {
        return Err(DecodeError::ChecksumMismatch { container });
    }
    Ok(payload.to_vec())
}

/// Reads a `u64`-length-prefixed byte section at `*pos` in `payload`
/// (the `StateWriter` encoding of `Vec<u8>`), advancing `*pos`.
///
/// # Errors
///
/// [`DecodeError::Truncated`] when the prefix or body runs past the
/// payload.
pub fn take_byte_section(
    container: &'static str,
    payload: &[u8],
    pos: &mut usize,
) -> Result<Vec<u8>, DecodeError> {
    let truncated = || DecodeError::Truncated { container };
    let at = *pos;
    let header = payload.get(at..at + 8).ok_or_else(truncated)?;
    let declared = u64::from_le_bytes([
        header[0], header[1], header[2], header[3], header[4], header[5], header[6], header[7],
    ]);
    let len = usize::try_from(declared).map_err(|_| DecodeError::LengthOverflow {
        container,
        declared,
    })?;
    let body = payload
        .get(at + 8..(at + 8).checked_add(len).ok_or_else(truncated)?)
        .ok_or_else(truncated)?;
    *pos = at + 8 + len;
    Ok(body.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: ContainerSpec = ContainerSpec {
        name: "test",
        magic: *b"TSTC",
        version: 3,
    };

    fn encode(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&SPEC.magic);
        out.extend_from_slice(&SPEC.version.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        out
    }

    #[test]
    fn round_trip_and_typed_damage() {
        let bytes = encode(b"payload-bytes");
        assert_eq!(decode_container(SPEC, &bytes).unwrap(), b"payload-bytes");

        let mut wrong_magic = bytes.clone();
        wrong_magic[1] = b'X';
        assert_eq!(
            decode_container(SPEC, &wrong_magic),
            Err(DecodeError::NotAContainer { container: "test" })
        );

        let mut wrong_version = bytes.clone();
        wrong_version[4] = 9;
        assert!(matches!(
            decode_container(SPEC, &wrong_version),
            Err(DecodeError::UnsupportedVersion { got: 9, .. })
        ));

        let mut flipped = bytes.clone();
        flipped[CONTAINER_HEADER_LEN] ^= 1;
        assert_eq!(
            decode_container(SPEC, &flipped),
            Err(DecodeError::ChecksumMismatch { container: "test" })
        );

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            decode_container(SPEC, &trailing),
            Err(DecodeError::TrailingBytes { extra: 1, .. })
        ));

        for cut in 0..bytes.len() {
            assert!(decode_container(SPEC, &bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn byte_sections_decode_and_reject_truncation() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&3u64.to_le_bytes());
        payload.extend_from_slice(b"abc");
        payload.extend_from_slice(&0u64.to_le_bytes());
        let mut pos = 0;
        assert_eq!(
            take_byte_section("test", &payload, &mut pos).unwrap(),
            b"abc"
        );
        assert_eq!(take_byte_section("test", &payload, &mut pos).unwrap(), b"");
        assert_eq!(pos, payload.len());
        assert!(take_byte_section("test", &payload, &mut pos).is_err());
        // Length prefix larger than the body.
        let mut lying = Vec::new();
        lying.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut pos = 0;
        assert!(take_byte_section("test", &lying, &mut pos).is_err());
    }
}
