//! The semi-systolic FMA array.
//!
//! `L` rows by `H` columns of FP16 fused multiply-add units. Within a row
//! the FMAs are chained: each passes its partial result to the next column
//! after `P + 1` cycles, and the last column feeds back into the first (the
//! *row ring*), re-accumulating over the reduction dimension. All `L` rows
//! operate in lockstep on the same output column index, offset column by
//! column by the FMA latency.
//!
//! The model is bit-accurate: every active FMA performs one
//! [`F16::mul_add`] per cycle, so the array's results are exactly those of
//! FPnew hardware, and cycle counts emerge from the pipeline structure.

use crate::config::AccelConfig;
use redmule_fp16::F16;
use redmule_hwsim::faults::flip_bit16;
use redmule_hwsim::Pipeline;

/// Source of the accumulation input for column 0 this cycle.
#[derive(Debug, Clone, PartialEq)]
pub enum Acc0 {
    /// Start of a fresh output tile: accumulate from zero.
    Zero,
    /// Mid-tile: take the row-ring feedback from the last column.
    Ring,
    /// Accumulate mode (`Z += X*W`): start from preloaded Z values, one per
    /// row, for the output column processed this cycle.
    Init(Vec<F16>),
}

/// Per-column, per-cycle control word.
#[derive(Debug, Clone, Default)]
pub struct ColumnCtrl {
    /// W element broadcast to all `L` FMAs of the column this cycle.
    /// `None` leaves the column idle (startup/drain bubble).
    pub w: Option<F16>,
    /// When present, latches new X operands (one per row) before computing.
    pub set_x: Option<Vec<F16>>,
    /// Zero-padding of the reduction dimension: the partial sum passes
    /// through unchanged (the FMA lane is clock-gated, so `-0` survives).
    pub passthrough: bool,
}

/// The array state: one pipeline of partial sums per FMA.
#[derive(Debug, Clone)]
pub struct Datapath {
    cfg: AccelConfig,
    /// `x_ops[h][r]`: operand held by FMA (r, h).
    x_ops: Vec<Vec<F16>>,
    /// `pipes[h][r]`: partial-sum pipeline of FMA (r, h), depth `P + 1`.
    pipes: Vec<Vec<Pipeline<F16>>>,
    macs: u64,
}

impl Datapath {
    /// Builds the array for an accelerator configuration.
    pub fn new(cfg: AccelConfig) -> Datapath {
        Datapath {
            cfg,
            x_ops: vec![vec![F16::ZERO; cfg.l]; cfg.h],
            pipes: (0..cfg.h)
                .map(|_| (0..cfg.l).map(|_| Pipeline::new(cfg.latency())).collect())
                .collect(),
            macs: 0,
        }
    }

    /// The instance parameters.
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Total FMA operations performed so far (excluding padding
    /// pass-throughs).
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Overwrites the MAC counter when restoring a session snapshot (the
    /// pipeline registers themselves are drained at every snapshot point).
    pub(crate) fn restore_macs(&mut self, macs: u64) {
        self.macs = macs;
    }

    /// `true` when every pipeline stage holds a bubble.
    pub fn is_drained(&self) -> bool {
        self.pipes.iter().flatten().all(|p| p.is_empty())
    }

    /// Advances the array one clock cycle.
    ///
    /// Returns the values leaving the **last** column this cycle (one per
    /// row): mid-tile these are the ring feedback, in the final phase they
    /// are finished Z elements.
    ///
    /// # Panics
    ///
    /// Panics if an active column's accumulation input is a bubble — that
    /// is a scheduler bug, since the ring is rate-matched by construction.
    pub fn tick(&mut self, ctrl: &[ColumnCtrl], acc0: &Acc0) -> Vec<Option<F16>> {
        assert_eq!(ctrl.len(), self.cfg.h, "one control word per column");

        // Hardware registers are read before they are written: snapshot the
        // value leaving every pipeline this cycle.
        let outs: Vec<Vec<Option<F16>>> = self
            .pipes
            .iter()
            .map(|col| col.iter().map(|p| p.back().copied()).collect())
            .collect();

        for (h, cc) in ctrl.iter().enumerate() {
            if let Some(new_x) = &cc.set_x {
                assert_eq!(new_x.len(), self.cfg.l, "one X operand per row");
                self.x_ops[h].copy_from_slice(new_x);
            }
            for r in 0..self.cfg.l {
                let input = match cc.w {
                    None => None, // idle column: insert a bubble
                    Some(w) => {
                        let acc = if h == 0 {
                            match acc0 {
                                Acc0::Zero => F16::ZERO,
                                Acc0::Init(vals) => vals[r],
                                // modelcheck-allow: RM-PANIC-001 -- datapath
                                // invariant: the ring feedback path is only
                                // selected when the last column holds a value.
                                Acc0::Ring => outs[self.cfg.h - 1][r]
                                    .expect("ring feedback bubble reached column 0"),
                            }
                        } else {
                            // modelcheck-allow: RM-PANIC-001 -- datapath
                            // invariant: columns feed forward in lockstep, so
                            // a mid-row bubble means the schedule is broken.
                            outs[h - 1][r].expect("partial-sum bubble mid-row")
                        };
                        if cc.passthrough {
                            Some(acc)
                        } else {
                            self.macs += 1;
                            Some(self.x_ops[h][r].mul_add(w, acc))
                        }
                    }
                };
                // modelcheck-allow: RM-ERR-001 -- name collision: the FMA
                // pipeline's `tick` returns unit, not the engine's Result.
                self.pipes[h][r].tick(input);
            }
        }

        // modelcheck-allow: RM-PANIC-001 -- structural invariant: AccelConfig
        // rejects H = 0, so the outs vector is never empty.
        outs.into_iter().next_back().expect("H >= 1")
    }

    /// Flips `bit` of the partial sum held in pipeline stage `stage`
    /// (0 = newest) of FMA (`row`, `col`).
    ///
    /// Returns `false` when the stage holds a bubble or an index is out of
    /// range — a transient strike on an empty register is architecturally
    /// masked, exactly as in hardware.
    pub fn corrupt(&mut self, col: usize, row: usize, stage: usize, bit: u8) -> bool {
        let Some(pipe) = self.pipes.get_mut(col).and_then(|c| c.get_mut(row)) else {
            return false;
        };
        match pipe.stage_mut(stage) {
            Some(v) => {
                *v = F16::from_bits(flip_bit16(v.to_bits(), bit));
                true
            }
            None => false,
        }
    }

    /// Clears all pipelines and operands (between jobs).
    pub fn reset(&mut self) {
        for col in &mut self.pipes {
            for p in col {
                // modelcheck-allow: RM-ERR-001 -- name collision: the FMA
                // pipeline's `reset` returns unit, not the engine's Result.
                p.reset();
            }
        }
        for col in &mut self.x_ops {
            col.fill(F16::ZERO);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the array through one full tile exactly like the engine
    /// does, for a single row (L = 1) and returns the finished Z values.
    /// This mirrors Fig. 2d of the paper at unit-test scale.
    fn run_single_tile(
        cfg: AccelConfig,
        x: &[Vec<F16>], // x[n] per row: x[r][n]
        w: &[Vec<F16>], // w[n][j], j in 0..phase_width
        n_real: usize,
    ) -> Vec<Vec<F16>> {
        let l = cfg.l;
        let pw = cfg.phase_width();
        let lat = cfg.latency();
        let n_phases = n_real.div_ceil(cfg.h).max(1);
        let total = cfg.h * lat + n_phases * pw;
        let mut dp = Datapath::new(cfg);
        let mut z = vec![vec![F16::ZERO; pw]; l];
        let final_start = cfg.h * lat + (n_phases - 1) * pw;

        for t in 0..total {
            let mut ctrl: Vec<ColumnCtrl> = Vec::with_capacity(cfg.h);
            for h in 0..cfg.h {
                let t_local = t as i64 - (h * lat) as i64;
                if t_local < 0 || t_local >= (n_phases * pw) as i64 {
                    ctrl.push(ColumnCtrl::default());
                    continue;
                }
                let t_local = t_local as usize;
                let phase = t_local / pw;
                let j = t_local % pw;
                let n_idx = phase * cfg.h + h;
                let pad = n_idx >= n_real;
                let w_elem = if pad { F16::ZERO } else { w[n_idx][j] };
                let set_x = if j == 0 {
                    Some(
                        (0..l)
                            .map(|r| if pad { F16::ZERO } else { x[r][n_idx] })
                            .collect(),
                    )
                } else {
                    None
                };
                ctrl.push(ColumnCtrl {
                    w: Some(w_elem),
                    set_x,
                    passthrough: pad,
                });
            }
            let acc0 = if t < pw { Acc0::Zero } else { Acc0::Ring };
            let outs = dp.tick(&ctrl, &acc0);
            if t >= final_start && t < final_start + pw {
                let j = t - final_start;
                for (r, v) in outs.iter().enumerate() {
                    z[r][j] = v.expect("final-phase output present");
                }
            }
        }
        assert!(dp.is_drained(), "array must drain after the tile");
        z
    }

    fn f(v: f32) -> F16 {
        F16::from_f32(v)
    }

    #[test]
    fn single_fma_chain_matches_golden_dot_products() {
        let cfg = AccelConfig::paper();
        let n = 8; // two phases
        let x: Vec<Vec<F16>> = (0..cfg.l)
            .map(|r| (0..n).map(|i| f((r * n + i) as f32 / 8.0 - 2.0)).collect())
            .collect();
        let w: Vec<Vec<F16>> = (0..n)
            .map(|i| {
                (0..cfg.phase_width())
                    .map(|j| f(((i * 17 + j * 3) % 13) as f32 / 4.0 - 1.5))
                    .collect()
            })
            .collect();
        let z = run_single_tile(cfg, &x, &w, n);
        for r in 0..cfg.l {
            for j in 0..cfg.phase_width() {
                let mut acc = F16::ZERO;
                for i in 0..n {
                    acc = x[r][i].mul_add(w[i][j], acc);
                }
                assert_eq!(
                    z[r][j].to_bits(),
                    acc.to_bits(),
                    "mismatch at row {r}, column {j}"
                );
            }
        }
    }

    #[test]
    fn padding_passthrough_preserves_partial_sums() {
        // N = 5 is not a multiple of H = 4: the last phase pads 3 lanes.
        let cfg = AccelConfig::paper();
        let n = 5;
        let x: Vec<Vec<F16>> = (0..cfg.l)
            .map(|r| (0..n).map(|i| f((r + i) as f32 * 0.25)).collect())
            .collect();
        let w: Vec<Vec<F16>> = (0..n)
            .map(|i| (0..16).map(|j| f((i as f32 - j as f32) / 8.0)).collect())
            .collect();
        let z = run_single_tile(cfg, &x, &w, n);
        for r in 0..cfg.l {
            for j in 0..16 {
                let mut acc = F16::ZERO;
                for i in 0..n {
                    acc = x[r][i].mul_add(w[i][j], acc);
                }
                assert_eq!(z[r][j].to_bits(), acc.to_bits());
            }
        }
    }

    #[test]
    fn passthrough_preserves_negative_zero() {
        // A clock-gated pad lane must not launder -0 into +0.
        let cfg = AccelConfig::new(1, 1, 0);
        let mut dp = Datapath::new(cfg);
        let ctrl = [ColumnCtrl {
            w: Some(F16::ONE),
            set_x: Some(vec![F16::ONE]),
            passthrough: true,
        }];
        dp.tick(&ctrl, &Acc0::Init(vec![F16::NEG_ZERO]));
        let out = dp.tick(&[ColumnCtrl::default()], &Acc0::Zero);
        assert_eq!(out[0].expect("value emerges").to_bits(), 0x8000);
        assert_eq!(dp.macs(), 0, "passthrough must not count as a MAC");
    }

    #[test]
    fn mac_counter_counts_active_lanes_only() {
        // Only column 0 computes this cycle (the others are staggered), so
        // exactly L MACs are performed.
        let cfg = AccelConfig::paper();
        let mut dp = Datapath::new(cfg);
        let mut ctrl: Vec<ColumnCtrl> = (0..cfg.h).map(|_| ColumnCtrl::default()).collect();
        ctrl[0] = ColumnCtrl {
            w: Some(F16::ONE),
            set_x: Some(vec![F16::ONE; cfg.l]),
            passthrough: false,
        };
        dp.tick(&ctrl, &Acc0::Zero);
        assert_eq!(dp.macs(), cfg.l as u64);
        // A pad (passthrough) cycle adds nothing.
        ctrl[0].passthrough = true;
        dp.tick(&ctrl, &Acc0::Zero);
        assert_eq!(dp.macs(), cfg.l as u64);
    }

    #[test]
    fn accumulate_mode_starts_from_init() {
        let cfg = AccelConfig::new(1, 2, 0);
        let mut dp = Datapath::new(cfg);
        let ctrl = [ColumnCtrl {
            w: Some(F16::TWO),
            set_x: Some(vec![f(3.0), f(4.0)]),
            passthrough: false,
        }];
        dp.tick(&ctrl, &Acc0::Init(vec![f(10.0), f(20.0)]));
        let out = dp.tick(&[ColumnCtrl::default()], &Acc0::Zero);
        assert_eq!(out[0].expect("row 0").to_f32(), 16.0);
        assert_eq!(out[1].expect("row 1").to_f32(), 28.0);
    }

    #[test]
    fn reset_drains_everything() {
        let cfg = AccelConfig::paper();
        let mut dp = Datapath::new(cfg);
        let mut ctrl: Vec<ColumnCtrl> = (0..cfg.h).map(|_| ColumnCtrl::default()).collect();
        ctrl[0] = ColumnCtrl {
            w: Some(F16::ONE),
            set_x: Some(vec![F16::ONE; cfg.l]),
            passthrough: false,
        };
        dp.tick(&ctrl, &Acc0::Zero);
        assert!(!dp.is_drained());
        dp.reset();
        assert!(dp.is_drained());
    }

    #[test]
    #[should_panic(expected = "one control word per column")]
    fn control_width_checked() {
        let mut dp = Datapath::new(AccelConfig::paper());
        let _ = dp.tick(&[], &Acc0::Zero);
    }
}
