//! Cycle-model regression tests (ISSUE PR 5).
//!
//! Pins the three quantitative contracts the observability layer leans
//! on:
//!
//! 1. exactness — [`FunctionalGemm::estimated_cycles`] matches the
//!    measured [`Engine::run`] cycle count on every uncontended
//!    fault-free shape (zero drift, not "bounded" drift);
//! 2. the remaining-cycles estimate is monotonically non-increasing as a
//!    session advances and never exceeds the true remaining cycles by
//!    more than one tile;
//! 3. per-phase cycle attribution is a partition: the five
//!    [`PhaseCycles`] buckets sum *exactly* to the report's total cycle
//!    count on every corpus run — both streamer policies, accumulate
//!    mode, empty reductions, interconnect contention, fault-tolerant
//!    execution and mid-run partial reports.

use redmule::obs::{validate_chrome_trace, EventLog, TraceEvent, TraceLane};
use redmule::{
    stage_gemm_workspace, AccelConfig, Engine, FaultPlan, FtConfig, FunctionalGemm, RunReport,
    StreamerPolicy, TransientTarget,
};
use redmule_cluster::{Hci, Initiator, Tcdm};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;

fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
    let gen = |len: usize, s: u32| -> Vec<F16> {
        (0..len)
            .map(|i| {
                let v = ((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 64;
                F16::from_f32(v as f32 / 16.0 - 2.0)
            })
            .collect()
    };
    (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xABCD))
}

fn staged(shape: GemmShape, seed: u32) -> (redmule::Job, Tcdm, Hci) {
    let (x, w) = data(shape, seed);
    stage_gemm_workspace(shape, &x, &w, None).expect("staging")
}

/// The shape grid: every model branch — ragged edges on all three
/// dimensions, single-tile and multi-tile grids, empty reductions.
fn corpus() -> Vec<GemmShape> {
    let mut shapes = Vec::new();
    for m in [1usize, 8, 13, 16] {
        for n in [0usize, 1, 7, 16] {
            for k in [1usize, 16, 24] {
                shapes.push(GemmShape::new(m, n, k));
            }
        }
    }
    shapes
}

fn assert_phases_partition(report: &RunReport, what: &str) {
    assert_eq!(
        report.phases.total(),
        report.cycles.count(),
        "{what}: phase buckets must partition the run exactly ({})",
        report.phases
    );
}

// ---------------------------------------------------------------------------
// (1) analytical estimate == measured cycles, exactly
// ---------------------------------------------------------------------------

#[test]
fn functional_estimate_matches_measured_cycles_exactly() {
    let engine = Engine::new(AccelConfig::paper());
    let model = FunctionalGemm::paper_instance();
    for shape in corpus() {
        let (job, mut mem, mut hci) = staged(shape, 7);
        let report = engine.run(job, &mut mem, &mut hci).expect("run");
        let estimate = model.estimated_cycles(shape);
        assert_eq!(
            estimate.count(),
            report.cycles.count(),
            "estimate drifted from measurement on {shape}"
        );
        assert_phases_partition(&report, &format!("paper policy {shape}"));
    }
}

// ---------------------------------------------------------------------------
// (2) remaining-cycles estimate: monotone, bounded overshoot
// ---------------------------------------------------------------------------

/// One tile's worth of cycles on the paper instance for `shape` — the
/// permitted overshoot of the remaining-cycles estimate.
fn one_tile_bound(cfg: &AccelConfig, shape: GemmShape) -> u64 {
    let n_phases = shape.n.div_ceil(cfg.h);
    (cfg.h * cfg.latency() + n_phases * cfg.phase_width() + cfg.l) as u64
}

#[test]
fn remaining_estimate_is_monotone_and_tightly_bounded() {
    let cfg = AccelConfig::paper();
    let engine = Engine::new(cfg);
    for shape in [
        GemmShape::new(16, 16, 32),
        GemmShape::new(8, 16, 16),
        GemmShape::new(3, 7, 21),
        GemmShape::new(16, 0, 32),
        GemmShape::new(1, 1, 1),
    ] {
        let (job, mut mem, mut hci) = staged(shape, 13);
        // Total cycles from a reference run of the same job.
        let total = {
            let (job, mut mem, mut hci) = staged(shape, 13);
            engine
                .run(job, &mut mem, &mut hci)
                .expect("ref")
                .cycles
                .count()
        };
        let bound = one_tile_bound(&cfg, shape);
        let mut session = engine.start(job).expect("start");
        let mut prev = u64::MAX;
        while !session.is_finished() {
            let est = session.estimated_remaining_cycles();
            let actual = total - session.cycle();
            assert!(
                est <= prev,
                "{shape}: estimate rose {prev} -> {est} at cycle {}",
                session.cycle()
            );
            assert!(
                est <= actual + bound,
                "{shape}: estimate {est} overshoots actual remaining {actual} \
                 by more than one tile ({bound}) at cycle {}",
                session.cycle()
            );
            prev = est;
            session.tick(&mut mem, &mut hci, &[]).expect("tick");
        }
        assert_eq!(session.estimated_remaining_cycles(), 0);
        assert_eq!(session.cycle(), total, "{shape}: lockstep drifted");
    }
}

#[test]
fn remaining_estimate_stays_monotone_under_contention() {
    let engine = Engine::new(AccelConfig::paper());
    let shape = GemmShape::new(16, 16, 32);
    let (job, mut mem, mut hci) = staged(shape, 21);
    let mut session = engine.start(job).expect("start");
    let mut prev = u64::MAX;
    let mut step = 0u32;
    while !session.is_finished() {
        let est = session.estimated_remaining_cycles();
        assert!(
            est <= prev,
            "estimate rose {prev} -> {est} under contention at cycle {}",
            session.cycle()
        );
        prev = est;
        // A core hammering the same banks the streamer uses.
        let addr = (step % 64) * 2;
        session
            .tick(&mut mem, &mut hci, &[(Initiator::Core(0), addr)])
            .expect("tick");
        step += 1;
    }
    let report = session.finish();
    assert!(report.stall_cycles > 0, "contention must actually bite");
    assert_phases_partition(&report, "contended run");
    assert!(report.phases.stall > 0, "contention must surface as Stall");
}

// ---------------------------------------------------------------------------
// (3) phase attribution partitions every kind of run
// ---------------------------------------------------------------------------

#[test]
fn phase_attribution_partitions_all_policies_and_modes() {
    for policy in [
        StreamerPolicy::Interleaved,
        StreamerPolicy::HalfBandwidth,
        StreamerPolicy::SingleBufferedW,
    ] {
        let engine = Engine::new(AccelConfig::paper()).with_streamer_policy(policy);
        for shape in [
            GemmShape::new(16, 16, 32),
            GemmShape::new(3, 7, 21),
            GemmShape::new(8, 0, 16),
        ] {
            let (job, mut mem, mut hci) = staged(shape, 31);
            let report = engine.run(job, &mut mem, &mut hci).expect("run");
            assert_phases_partition(&report, &format!("{policy:?} {shape}"));
            // The mirrored stats agree with the typed ledger.
            let from_stats: u64 = report
                .stats
                .iter()
                .filter(|(k, _)| k.starts_with("phase_"))
                .map(|(_, v)| v)
                .sum();
            assert_eq!(from_stats, report.cycles.count(), "{policy:?} {shape}");
        }
    }

    // Accumulate mode preloads Z — its wait cycles must be attributed too.
    let engine = Engine::new(AccelConfig::paper());
    let shape = GemmShape::new(8, 16, 16);
    let (x, w) = data(shape, 41);
    let y: Vec<F16> = (0..shape.z_len())
        .map(|i| F16::from_f32((i % 3) as f32))
        .collect();
    let (job, mut mem, mut hci) = stage_gemm_workspace(shape, &x, &w, Some(&y)).expect("staging");
    let report = engine.run(job, &mut mem, &mut hci).expect("accumulate run");
    assert_phases_partition(&report, "accumulate");
}

#[test]
fn phase_attribution_partitions_fault_tolerant_runs() {
    let engine = Engine::new(AccelConfig::paper());
    let shape = GemmShape::new(16, 8, 20);
    for ft in [FtConfig::replay(), FtConfig::redundancy()] {
        let (job, mut mem, mut hci) = staged(shape, 51);
        let plan = FaultPlan::new(0xF00D).with_random_transients(2, &[TransientTarget::Pipe]);
        let report = engine
            .run_ft(job, &mut mem, &mut hci, &plan, ft)
            .expect("ft run");
        assert_phases_partition(&report, &format!("{:?}", ft.mode));
    }
}

#[test]
fn phase_attribution_partitions_partial_reports() {
    let engine = Engine::new(AccelConfig::paper());
    let shape = GemmShape::new(16, 16, 32);
    let (job, mut mem, mut hci) = staged(shape, 61);
    let mut session = engine.start(job).expect("start");
    for stop_at in [1u64, 17, 90, 200] {
        while session.cycle() < stop_at && !session.is_finished() {
            session.tick(&mut mem, &mut hci, &[]).expect("tick");
        }
        let partial = session.partial_report();
        assert_eq!(
            partial.phases.total(),
            session.cycle(),
            "partial report at cycle {} must partition the cycles so far",
            session.cycle()
        );
    }
}

// ---------------------------------------------------------------------------
// event-stream sanity for the traced path
// ---------------------------------------------------------------------------

#[test]
fn run_logged_emits_a_consistent_event_stream() {
    let engine = Engine::new(AccelConfig::paper());
    let shape = GemmShape::new(16, 16, 32); // 4 output tiles
    let (job, mut mem, mut hci) = staged(shape, 71);
    let (report, events) = engine.run_logged(job, &mut mem, &mut hci).expect("run");
    assert_phases_partition(&report, "run_logged");

    let starts: Vec<u32> = events
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TileStart { tile, .. } => Some(*tile),
            _ => None,
        })
        .collect();
    let ends: Vec<u32> = events
        .events()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::TileEnd { tile, .. } => Some(*tile),
            _ => None,
        })
        .collect();
    assert_eq!(starts, vec![0, 1, 2, 3], "one start per tile, in order");
    assert_eq!(ends, vec![0, 1, 2, 3], "one end per tile, in order");
    assert!(
        events
            .events()
            .iter()
            .any(|e| matches!(e, TraceEvent::Refill { .. })),
        "operand refills must be visible"
    );
    for ev in events.events() {
        assert!(
            ev.cycle() < report.cycles.count(),
            "event {ev:?} timestamped past the end of the run"
        );
    }
    // Timestamps never decrease for the same kind of bracketing event.
    let mut prev = 0;
    for e in events.events() {
        if let TraceEvent::TileEnd { cycle, .. } = e {
            assert!(*cycle >= prev);
            prev = *cycle;
        }
    }

    // And the stream exports to a valid Chrome trace document.
    let lane = TraceLane {
        tid: 0,
        name: format!("job 0 ({shape})"),
        events: events.events(),
    };
    let json = redmule::obs::chrome_trace(&[lane]);
    let summary = validate_chrome_trace(&json).expect("valid chrome JSON");
    assert_eq!(summary.lanes, 1);
    assert_eq!(summary.events, events.len());
    assert!(summary.max_ts <= report.cycles.count());
}

#[test]
fn untraced_sessions_charge_no_observation_state() {
    // Zero-cost-when-disabled: a session without a sink must produce a
    // bit-identical report to a traced one (tracing is read-only), and
    // an empty event log.
    let engine = Engine::new(AccelConfig::paper());
    let shape = GemmShape::new(8, 16, 16);
    let (job, mut mem, mut hci) = staged(shape, 81);
    let plain = engine.run(job, &mut mem, &mut hci).expect("plain");
    let (job2, mut mem2, mut hci2) = staged(shape, 81);
    let (traced, events) = engine
        .run_logged(job2, &mut mem2, &mut hci2)
        .expect("traced");
    assert_eq!(plain.cycles, traced.cycles);
    assert_eq!(plain.macs, traced.macs);
    assert_eq!(plain.phases, traced.phases);
    assert!(!events.is_empty());
    let mut log = EventLog::new();
    events.replay_into(&mut log);
    assert_eq!(log, events);
}
