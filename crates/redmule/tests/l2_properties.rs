//! Property-based tests for the L2 tiling driver: any shape, any (large
//! enough) scratchpad size, bit-exact results and consistent accounting.

use proptest::prelude::*;
use redmule::{AccelConfig, L2TiledGemm};
use redmule_cluster::ClusterConfig;
use redmule_fp16::vector::{gemm_golden, GemmShape};
use redmule_fp16::F16;

fn operands(shape: GemmShape, seed: u64) -> (Vec<F16>, Vec<F16>) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        F16::from_f32(((state >> 32) as i32 % 256) as f32 / 256.0)
    };
    (
        (0..shape.x_len()).map(|_| next()).collect(),
        (0..shape.w_len()).map(|_| next()).collect(),
    )
}

fn bits(v: &[F16]) -> Vec<u16> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tiled execution is bit-exact against the golden model for any
    /// shape and any scratchpad that can hold a minimal tile.
    #[test]
    fn tiled_execution_is_bit_exact(
        m in 1usize..48,
        n in 0usize..80,
        k in 1usize..48,
        tcdm_kib in prop::sample::select(vec![3usize, 4, 8, 16, 64]),
        seed in 0u64..500,
    ) {
        let shape = GemmShape::new(m, n, k);
        let (x, w) = operands(shape, seed);
        let driver = L2TiledGemm::new(
            AccelConfig::paper(),
            ClusterConfig::default().with_tcdm_kib(tcdm_kib),
        );
        let (z, report) = driver.run(shape, &x, &w).expect("driver runs");
        prop_assert_eq!(bits(&z), bits(&gemm_golden(shape, &x, &w)));

        // Accounting invariants.
        prop_assert!(report.overlapped_cycles <= report.serial_cycles);
        prop_assert!(report.compute_cycles <= report.overlapped_cycles);
        prop_assert_eq!(
            report.serial_cycles.count(),
            report.compute_cycles.count() + report.dma_cycles.count()
        );
        let ideal = shape.macs().div_ceil(32);
        prop_assert!(report.compute_cycles.count() >= ideal);
        // The plan's panels must genuinely fit the budget.
        let t = report.tile;
        prop_assert!(
            2 * (t.rm * t.nm + t.nm * t.km + t.rm * t.km)
                <= tcdm_kib * 1024 / 2
        );
    }

    /// Tiling granularity never changes results: the same job through two
    /// very different scratchpad sizes is bitwise identical.
    #[test]
    fn result_is_invariant_to_tile_plan(
        m in 1usize..32,
        n in 1usize..64,
        k in 1usize..32,
        seed in 0u64..500,
    ) {
        let shape = GemmShape::new(m, n, k);
        let (x, w) = operands(shape, seed);
        let small = L2TiledGemm::new(
            AccelConfig::paper(),
            ClusterConfig::default().with_tcdm_kib(3),
        );
        let large = L2TiledGemm::new(AccelConfig::paper(), ClusterConfig::default());
        let (zs, rs) = small.run(shape, &x, &w).expect("small runs");
        let (zl, rl) = large.run(shape, &x, &w).expect("large runs");
        prop_assert_eq!(bits(&zs), bits(&zl));
        // Finer tiling can only add jobs.
        prop_assert!(rs.jobs >= rl.jobs);
    }
}
