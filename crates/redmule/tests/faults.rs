//! Fault-injection and fault-tolerance integration tests (ISSUE PR 1).
//!
//! Covers the three headline guarantees:
//!
//! 1. determinism — the same seed produces the same strikes, the same
//!    recovery sequence and a bit-identical [`RunReport`];
//! 2. transparency — an empty plan leaves the fault-tolerant paths
//!    bit-identical to the fault-free engine;
//! 3. protection — ABFT detects every single-bit flip of a live W-buffer
//!    word, and both RedMulE-FT modes recover bit-exact GEMM results from
//!    any single transient per tile.

use proptest::prelude::*;
use redmule::faults::{FaultPlan, FaultSite, FaultSpec, FtConfig, FtMode, TransientTarget};
use redmule::{AccelConfig, Accelerator, Engine, EngineError, Job};
use redmule_cluster::{ClusterConfig, Hci, Tcdm};
use redmule_fp16::vector::{gemm_golden, GemmShape};
use redmule_fp16::F16;
use redmule_hwsim::StuckBit;

fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
    let gen = |len: usize, s: u32| -> Vec<F16> {
        (0..len)
            .map(|i| {
                let v = ((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 64;
                F16::from_f32(v as f32 / 16.0 - 2.0)
            })
            .collect()
    };
    (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xABCD))
}

fn bits(v: &[F16]) -> Vec<u16> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// A fresh cluster memory system with X and W staged at fixed addresses.
fn staged_cluster(shape: GemmShape, x: &[F16], w: &[F16]) -> (Tcdm, Hci, Job) {
    let needed = shape.footprint_bytes() + 256;
    let mut ccfg = ClusterConfig::default();
    if needed > ccfg.tcdm_bytes() {
        ccfg = ccfg.with_tcdm_kib(needed.div_ceil(1024));
    }
    let mut mem = Tcdm::new(&ccfg);
    let hci = Hci::new(&ccfg);
    let x_addr = 0u32;
    let w_addr = x_addr + 2 * shape.x_len() as u32;
    let z_addr = w_addr + 2 * shape.w_len() as u32;
    mem.store_f16_slice(x_addr, x).expect("stage X");
    mem.store_f16_slice(w_addr, w).expect("stage W");
    let job = Job::new(x_addr, w_addr, z_addr, shape.m, shape.n, shape.k);
    (mem, hci, job)
}

// ---------------------------------------------------------------------------
// (ii) zero-fault plan ⇒ bit-identical to the fault-free path
// ---------------------------------------------------------------------------

#[test]
fn zero_fault_plan_is_bit_identical_to_fault_free_run() {
    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(16, 8, 20); // 2x2 tile grid on the paper instance
    let (x, w) = data(shape, 11);
    let baseline = accel.gemm(shape, &x, &w).expect("fault-free run");

    for ft in [FtConfig::replay(), FtConfig::redundancy()] {
        let run = accel
            .gemm_ft(shape, &x, &w, &FaultPlan::new(42), ft)
            .expect("empty plan must not fail");
        assert_eq!(
            bits(&run.z),
            bits(&baseline.z),
            "{:?}: empty plan changed the result",
            ft.mode
        );
        assert!(
            run.report.faults.is_empty(),
            "{:?}: phantom faults",
            ft.mode
        );
        assert_eq!(run.report.stats.get("faults_detected"), 0);
        assert_eq!(run.report.stats.get("tiles_replayed"), 0);
    }
}

#[test]
fn redundancy_mode_runs_every_tile_twice() {
    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(16, 8, 20);
    let (x, w) = data(shape, 3);
    let plain = accel
        .gemm_ft(shape, &x, &w, &FaultPlan::new(0), FtConfig::replay())
        .expect("replay run");
    let dmr = accel
        .gemm_ft(shape, &x, &w, &FaultPlan::new(0), FtConfig::redundancy())
        .expect("redundancy run");
    // 2 row tiles x 2 col tiles = 4 tiles; duplication doubles the runs.
    assert_eq!(plain.report.stats.get("ft_runs"), 4);
    assert_eq!(dmr.report.stats.get("ft_runs"), 8);
    assert!(
        dmr.report.cycles.count() > plain.report.cycles.count(),
        "duplication must cost cycles: {} vs {}",
        dmr.report.cycles.count(),
        plain.report.cycles.count()
    );
}

// ---------------------------------------------------------------------------
// (i) same seed ⇒ identical RunReport
// ---------------------------------------------------------------------------

#[test]
fn same_seed_produces_identical_run_reports() {
    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(12, 8, 20);
    let (x, w) = data(shape, 77);
    let plan = FaultPlan::new(0xDEAD_BEEF).with_random_transients(
        2,
        &[
            TransientTarget::Pipe,
            TransientTarget::WLoad,
            TransientTarget::XLoad,
            TransientTarget::ZStore,
            TransientTarget::TcdmData,
        ],
    );
    let a = accel
        .gemm_ft(shape, &x, &w, &plan, FtConfig::replay())
        .expect("first run");
    let b = accel
        .gemm_ft(shape, &x, &w, &plan, FtConfig::replay())
        .expect("second run");
    assert_eq!(bits(&a.z), bits(&b.z), "results must match bit for bit");
    assert_eq!(a.report.cycles.count(), b.report.cycles.count());
    assert_eq!(a.report.stall_cycles, b.report.stall_cycles);
    assert_eq!(a.report.macs, b.report.macs);
    assert_eq!(a.report.stats, b.report.stats, "stats must be identical");
    assert_eq!(
        a.report.faults.events(),
        b.report.faults.events(),
        "fault logs must replay identically"
    );
    assert!(
        !a.report.faults.is_empty(),
        "the plan must actually inject something"
    );
}

// ---------------------------------------------------------------------------
// (iii) ABFT detects every single-bit flip of a live W word
// ---------------------------------------------------------------------------

#[test]
fn abft_detects_every_single_bit_w_flip() {
    let accel = Accelerator::paper_instance();
    // One tile, one reduction step: z[r][j] == w[j], so every W corruption
    // is architecturally visible in the output.
    let shape = GemmShape::new(8, 1, 16);
    let x = vec![F16::from_f32(1.0); shape.x_len()];
    let w: Vec<F16> = (0..shape.w_len())
        .map(|j| F16::from_f32(1.0 + j as f32 / 16.0))
        .collect();
    let golden = gemm_golden(shape, &x, &w);

    for elem in 0..16usize {
        for bit in 0..16u8 {
            let plan = FaultPlan::new(0).with_spec(FaultSpec {
                tile: 0,
                cycle: 0,
                site: FaultSite::WLoad {
                    phase: 0,
                    col: 0,
                    elem,
                    bit,
                },
            });
            let run = accel
                .gemm_ft(shape, &x, &w, &plan, FtConfig::replay())
                .unwrap_or_else(|e| panic!("elem {elem} bit {bit}: {e}"));
            assert_eq!(
                bits(&run.z),
                bits(&golden),
                "elem {elem} bit {bit}: replay must restore the exact result"
            );
            assert!(
                run.report.stats.get("faults_detected") >= 1,
                "elem {elem} bit {bit}: flip escaped the checksum"
            );
            assert!(
                run.report.stats.get("faults_corrected") >= 1,
                "elem {elem} bit {bit}: detection without correction"
            );
            assert!(run.report.stats.get("tiles_replayed") >= 1);
        }
    }
}

// ---------------------------------------------------------------------------
// Acceptance: any single transient per tile is recovered bit-exact
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn single_transient_per_tile_is_recovered_bit_exact(
        (m, n, k) in prop::sample::select(vec![
            (8usize, 4usize, 16usize),
            (9, 5, 17),
            (12, 8, 20),
            (5, 3, 7),
            (16, 16, 16),
        ]),
        seed in any::<u64>(),
        data_seed in any::<u32>(),
        mode in prop_oneof![Just(FtMode::Replay), Just(FtMode::Redundancy)],
    ) {
        let accel = Accelerator::paper_instance();
        let shape = GemmShape::new(m, n, k);
        let (x, w) = data(shape, data_seed);
        let golden = gemm_golden(shape, &x, &w);
        // TcdmData is excluded: source-operand corruption in memory is
        // outside the ABFT protection boundary by construction.
        let plan = FaultPlan::new(seed).with_random_transients(
            1,
            &[
                TransientTarget::Pipe,
                TransientTarget::WLoad,
                TransientTarget::XLoad,
                TransientTarget::ZStore,
            ],
        );
        let ft = FtConfig { mode, max_retries: 3 };
        let run = accel.gemm_ft(shape, &x, &w, &plan, ft)
            .map_err(|e| TestCaseError::fail(format!("{mode:?}: {e}")))?;
        prop_assert_eq!(
            bits(&run.z),
            bits(&golden),
            "{:?} seed {:#x}: corrupted result escaped", mode, seed
        );
    }
}

// ---------------------------------------------------------------------------
// Watchdog and persistent faults
// ---------------------------------------------------------------------------

#[test]
fn watchdog_converts_dropped_transactions_into_an_error() {
    let engine = Engine::new(AccelConfig::paper()).with_watchdog(500);
    let shape = GemmShape::new(8, 8, 16);
    let (x, w) = data(shape, 5);
    let (mut mem, mut hci, job) = staged_cluster(shape, &x, &w);
    let plan = FaultPlan::new(0).with_hci_drops(u32::MAX);
    let err = engine
        .run_ft(job, &mut mem, &mut hci, &plan, FtConfig::replay())
        .expect_err("an interconnect that never grants must hang");
    assert!(
        matches!(err, EngineError::Watchdog { .. }),
        "expected Watchdog, got {err:?}"
    );
}

#[test]
fn watchdog_fires_on_directly_sabotaged_hci() {
    let engine = Engine::new(AccelConfig::paper()).with_watchdog(500);
    let shape = GemmShape::new(8, 8, 16);
    let (x, w) = data(shape, 5);
    let (mut mem, mut hci, job) = staged_cluster(shape, &x, &w);
    hci.inject_shallow_drop(u32::MAX);
    let err = engine
        .run(job, &mut mem, &mut hci)
        .expect_err("plain runs are watchdog-protected too");
    assert!(matches!(err, EngineError::Watchdog { .. }));
}

#[test]
fn stuck_output_bit_exhausts_the_replay_budget() {
    let engine = Engine::new(AccelConfig::paper());
    let shape = GemmShape::new(1, 1, 1);
    let x = vec![F16::from_f32(1.0)];
    let w = vec![F16::from_f32(1.0)];
    let (mut mem, mut hci, job) = staged_cluster(shape, &x, &w);
    // z = 1.0 = 0x3C00: pinning bit 1 high corrupts every readback, which
    // no amount of replay can outrun.
    let plan = FaultPlan::new(0).with_tcdm_stuck(
        job.z_addr,
        StuckBit {
            bit: 1,
            value: true,
        },
    );
    let err = engine
        .run_ft(job, &mut mem, &mut hci, &plan, FtConfig::replay())
        .expect_err("a stuck output bit must defeat replay");
    match err {
        EngineError::FaultUnrecoverable { tile, attempts } => {
            assert_eq!(tile, 0);
            assert_eq!(attempts, 4, "default budget is 3 retries + first try");
        }
        other => panic!("expected FaultUnrecoverable, got {other:?}"),
    }
}

#[test]
fn finite_hci_drops_stall_but_complete() {
    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(8, 8, 16);
    let (x, w) = data(shape, 9);
    let baseline = accel
        .gemm_ft(shape, &x, &w, &FaultPlan::new(0), FtConfig::replay())
        .expect("clean run");
    let run = accel
        .gemm_ft(
            shape,
            &x,
            &w,
            &FaultPlan::new(0).with_hci_drops(50),
            FtConfig::replay(),
        )
        .expect("50 dropped beats must only stall, not hang");
    assert_eq!(bits(&run.z), bits(&baseline.z));
    assert!(
        run.report.stall_cycles > baseline.report.stall_cycles,
        "dropped beats must show up as stalls: {} vs {}",
        run.report.stall_cycles,
        baseline.report.stall_cycles
    );
}

// ---------------------------------------------------------------------------
// Telemetry: the fault log reaches the VCD tracer
// ---------------------------------------------------------------------------

#[test]
fn fault_log_from_a_run_dumps_as_vcd() {
    let accel = Accelerator::paper_instance();
    let shape = GemmShape::new(8, 1, 16);
    let x = vec![F16::from_f32(1.0); shape.x_len()];
    let w: Vec<F16> = (0..shape.w_len())
        .map(|j| F16::from_f32(1.0 + j as f32 / 16.0))
        .collect();
    let plan = FaultPlan::new(0).with_spec(FaultSpec {
        tile: 0,
        cycle: 0,
        site: FaultSite::WLoad {
            phase: 0,
            col: 0,
            elem: 2,
            bit: 9,
        },
    });
    let run = accel
        .gemm_ft(shape, &x, &w, &plan, FtConfig::replay())
        .expect("single transient is recoverable");
    let mut out = Vec::new();
    run.report
        .faults
        .dump_vcd(&mut out, 1)
        .expect("in-memory VCD dump");
    let text = String::from_utf8(out).expect("VCD is ASCII");
    for wire in ["fault_injected", "fault_detected", "fault_corrected"] {
        assert!(text.contains(wire), "missing {wire} wire");
    }
}
