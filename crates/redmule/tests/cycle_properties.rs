//! Property-based tests for the analytical cycle model: the estimate
//! must behave like a cost function (monotone in the problem size) and
//! the FP8 cast datapath must never be modeled as *slower* than FP16 —
//! half-width operands halve streamer beats, they cannot add any.

use proptest::prelude::*;
use redmule::{AccelConfig, Format, FunctionalGemm};
use redmule_fp16::vector::GemmShape;

fn models() -> Vec<FunctionalGemm> {
    vec![
        FunctionalGemm::paper_instance(),
        FunctionalGemm::new(AccelConfig::new(2, 4, 1)),
        FunctionalGemm::new(AccelConfig::new(8, 16, 2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Growing any one dimension of the GEMM by one never makes the
    /// estimate cheaper: more rows, a longer reduction or more output
    /// columns each add work (or, at a tile boundary, at least break
    /// even on fill/drain overlap — never a negative amount).
    #[test]
    fn estimate_is_monotone_in_every_dimension(
        m in 1usize..40,
        n in 0usize..40,
        k in 1usize..40,
        fmt in prop::sample::select(vec![Format::Fp16, Format::Fp8E4M3, Format::Fp8E5M2]),
    ) {
        for model in models() {
            let base = model
                .estimated_cycles_format(GemmShape::new(m, n, k), fmt)
                .count();
            for grown in [
                GemmShape::new(m + 1, n, k),
                GemmShape::new(m, n + 1, k),
                GemmShape::new(m, n, k + 1),
            ] {
                let bigger = model.estimated_cycles_format(grown, fmt).count();
                prop_assert!(
                    bigger >= base,
                    "estimate shrank from {base} to {bigger} going {:?} -> {:?} ({fmt:?})",
                    (m, n, k),
                    (grown.m, grown.n, grown.k),
                );
            }
        }
    }

    /// FP8 storage only narrows the streamed operands; with two elements
    /// per beat, fill and drain can only get cheaper. The model must
    /// never charge an FP8 job more cycles than the same job in FP16.
    #[test]
    fn fp8_never_costs_more_cycles_than_fp16(
        m in 1usize..48,
        n in 0usize..48,
        k in 1usize..48,
    ) {
        let shape = GemmShape::new(m, n, k);
        for model in models() {
            let fp16 = model.estimated_cycles_format(shape, Format::Fp16).count();
            for fmt in [Format::Fp8E4M3, Format::Fp8E5M2] {
                let fp8 = model.estimated_cycles_format(shape, fmt).count();
                prop_assert!(
                    fp8 <= fp16,
                    "{fmt:?} modeled at {fp8} cycles > FP16 at {fp16} for {shape:?}"
                );
            }
        }
    }
}
