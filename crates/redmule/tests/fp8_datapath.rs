//! FP8 cast-in/cast-out datapath regressions (ISSUE PR 9).
//!
//! Locks the engine-level contracts of the FP8 storage formats:
//!
//! 1. the analytical cycle model tracks the measured engine exactly for
//!    both FP8 formats on the full shape corpus (zero drift, as for
//!    FP16);
//! 2. the functional backend is bit-identical to the engine for FP8
//!    jobs, plain and accumulate;
//! 3. FP8 streaming really is cheaper: the doubled elements-per-beat
//!    shows up both in the `fp8_pair_beats` stat and as a cycle count
//!    never exceeding the FP16 run of the same shape;
//! 4. checkpoints taken mid-run on an FP8 job resume bit-exactly, and
//!    stale snapshot versions are rejected rather than misparsed.

use redmule::{
    cast, stage_gemm_workspace_in, AccelConfig, Accelerator, Engine, Format, FunctionalGemm,
    SessionState,
};
use redmule_cluster::{Hci, Tcdm};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;

fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
    let gen = |len: usize, s: u32| -> Vec<F16> {
        (0..len)
            .map(|i| {
                let v = ((i as u32).wrapping_mul(2654435761).wrapping_add(s) >> 16) % 64;
                F16::from_f32(v as f32 / 16.0 - 2.0)
            })
            .collect()
    };
    (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xABCD))
}

fn staged(shape: GemmShape, format: Format, seed: u32) -> (redmule::Job, Tcdm, Hci) {
    let (x, w) = data(shape, seed);
    stage_gemm_workspace_in(shape, format, &x, &w, None).expect("staging")
}

/// Same grid as `cycle_model.rs`: ragged edges on all three dimensions,
/// single- and multi-tile grids, empty reductions.
fn corpus() -> Vec<GemmShape> {
    let mut shapes = Vec::new();
    for m in [1usize, 8, 13, 16] {
        for n in [0usize, 1, 7, 16] {
            for k in [1usize, 16, 24] {
                shapes.push(GemmShape::new(m, n, k));
            }
        }
    }
    shapes
}

// ---------------------------------------------------------------------------
// (1) the cycle model is exact for FP8 too
// ---------------------------------------------------------------------------

#[test]
fn fp8_estimate_matches_measured_cycles_exactly() {
    let engine = Engine::new(AccelConfig::paper());
    let model = FunctionalGemm::paper_instance();
    for format in [Format::Fp8E4M3, Format::Fp8E5M2] {
        for shape in corpus() {
            let (job, mut mem, mut hci) = staged(shape, format, 7);
            let report = engine.run(job, &mut mem, &mut hci).expect("run");
            let estimate = model.estimated_cycles_format(shape, format);
            assert_eq!(
                estimate.count(),
                report.cycles.count(),
                "estimate drifted from measurement on {shape} [{format}]"
            );
            assert_eq!(
                report.phases.total(),
                report.cycles.count(),
                "{shape} [{format}]: phase buckets must partition the run"
            );
        }
    }
}

#[test]
fn fp8_remaining_estimate_is_monotone() {
    let engine = Engine::new(AccelConfig::paper());
    for format in [Format::Fp8E4M3, Format::Fp8E5M2] {
        for shape in [GemmShape::new(16, 16, 32), GemmShape::new(3, 7, 21)] {
            let (job, mut mem, mut hci) = staged(shape, format, 13);
            let mut session = engine.start(job).expect("start");
            let mut prev = u64::MAX;
            while !session.is_finished() {
                let est = session.estimated_remaining_cycles();
                assert!(
                    est <= prev,
                    "{shape} [{format}]: estimate rose {prev} -> {est} at cycle {}",
                    session.cycle()
                );
                prev = est;
                session.tick(&mut mem, &mut hci, &[]).expect("tick");
            }
            assert_eq!(session.estimated_remaining_cycles(), 0);
        }
    }
}

// ---------------------------------------------------------------------------
// (2) functional backend == engine, bitwise
// ---------------------------------------------------------------------------

#[test]
fn fp8_engine_matches_functional_bitwise() {
    let accel = Accelerator::paper_instance();
    let model = FunctionalGemm::paper_instance();
    for format in Format::ALL {
        for shape in [
            GemmShape::new(8, 16, 16),
            GemmShape::new(3, 7, 21),
            GemmShape::new(16, 1, 24),
        ] {
            let (x, w) = data(shape, 97);
            let run = accel.gemm_with_format(shape, format, &x, &w).expect("run");
            let fast = model.run_format(shape, format, &x, &w).expect("model");
            assert_eq!(
                bits(&run.z),
                bits(&fast.z),
                "engine/functional drift on {shape} [{format}]"
            );
        }
    }
}

#[test]
fn fp8_accumulate_matches_functional_bitwise() {
    let accel = Accelerator::paper_instance();
    let model = FunctionalGemm::paper_instance();
    let shape = GemmShape::new(8, 16, 16);
    let (x, w) = data(shape, 101);
    let y: Vec<F16> = (0..shape.z_len())
        .map(|i| F16::from_f32((i % 5) as f32 - 2.0))
        .collect();
    for format in [Format::Fp8E4M3, Format::Fp8E5M2] {
        let run = accel
            .gemm_accumulate_with_format(shape, format, &x, &w, &y)
            .expect("run");
        let fast = model
            .run_accumulate_format(shape, format, &x, &w, &y)
            .expect("model");
        assert_eq!(
            bits(&run.z),
            bits(&fast.z),
            "accumulate drift on {shape} [{format}]"
        );
    }
}

fn bits(z: &[F16]) -> Vec<u16> {
    z.iter().map(|v| v.to_bits()).collect()
}

// ---------------------------------------------------------------------------
// (3) the doubled beat is real
// ---------------------------------------------------------------------------

#[test]
fn fp8_pair_beats_counted_and_fp8_never_slower() {
    let engine = Engine::new(AccelConfig::paper());
    for shape in corpus() {
        let (job, mut mem, mut hci) = staged(shape, Format::Fp16, 29);
        let fp16 = engine.run(job, &mut mem, &mut hci).expect("fp16 run");
        assert_eq!(fp16.stats.get("fp8_pair_beats"), 0, "{shape}: fp16 paired");
        for format in [Format::Fp8E4M3, Format::Fp8E5M2] {
            let (job, mut mem, mut hci) = staged(shape, format, 29);
            let fp8 = engine.run(job, &mut mem, &mut hci).expect("fp8 run");
            assert!(
                fp8.cycles.count() <= fp16.cycles.count(),
                "{shape} [{format}]: fp8 run slower than fp16 ({} > {})",
                fp8.cycles.count(),
                fp16.cycles.count()
            );
            // Empty reductions can queue a single store per cycle, so only
            // compute shapes are guaranteed a paired beat (W + X on fill).
            if shape.n > 0 {
                assert!(
                    fp8.stats.get("fp8_pair_beats") > 0,
                    "{shape} [{format}]: no beat ever served two picks"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// (4) snapshots: FP8 jobs resume bit-exactly, stale versions rejected
// ---------------------------------------------------------------------------

#[test]
fn fp8_checkpoint_resumes_bit_exactly() {
    let engine = Engine::new(AccelConfig::paper());
    let shape = GemmShape::new(16, 16, 32); // four output tiles
    let format = Format::Fp8E4M3;

    // Reference: uninterrupted run.
    let (job, mut mem, mut hci) = staged(shape, format, 43);
    let z_addr = job.z_addr;
    let reference = engine.run(job, &mut mem, &mut hci).expect("reference");
    let z_ref = cast::castin_slice(&mem, format, z_addr, shape.z_len()).expect("z");

    // Interrupted: run to the second tile boundary, checkpoint, reload
    // through the wire format, resume on a fresh engine.
    let (job, mut mem, mut hci) = staged(shape, format, 43);
    let mut session = engine.start(job).expect("start");
    let mut boundaries = 0;
    let state = loop {
        session.tick(&mut mem, &mut hci, &[]).expect("tick");
        if session.at_tile_boundary() && session.cycle() > 0 {
            boundaries += 1;
            if boundaries == 2 {
                break session.checkpoint().expect("checkpoint");
            }
        }
    };
    let state = SessionState::from_bytes(&state.to_bytes()).expect("round trip");
    let mut resumed = Engine::new(AccelConfig::paper())
        .resume(&state)
        .expect("resume");
    while !resumed.is_finished() {
        resumed.tick(&mut mem, &mut hci, &[]).expect("tick");
    }
    let report = resumed.finish();
    assert_eq!(report.cycles.count(), reference.cycles.count());
    let z_resumed = cast::castin_slice(&mem, format, z_addr, shape.z_len()).expect("z");
    assert_eq!(bits(&z_ref), bits(&z_resumed), "resumed Z drifted");
}

#[test]
fn stale_snapshot_versions_are_rejected() {
    let engine = Engine::new(AccelConfig::paper());
    let shape = GemmShape::new(8, 16, 16);
    let (job, mut mem, mut hci) = staged(shape, Format::Fp8E5M2, 47);
    let mut session = engine.start(job).expect("start");
    while !(session.at_tile_boundary() && session.cycle() > 0) {
        session.tick(&mut mem, &mut hci, &[]).expect("tick");
    }
    let mut bytes = session.checkpoint().expect("checkpoint").to_bytes();
    // The version (v2 predates the format tag) lives after the 4-byte magic.
    bytes[4..8].copy_from_slice(&2u32.to_le_bytes());
    assert!(
        SessionState::from_bytes(&bytes).is_err(),
        "a pre-FP8 snapshot version must be rejected, not misparsed"
    );
}
