//! Ordering-bug canary: the canonical [`BatchReport`] serialization must
//! be byte-identical no matter how many workers the pool runs — results
//! are keyed by job id, never by completion order, and per-job outcomes
//! depend only on the job itself.
//!
//! The adversarial job set lives in `tests/common` and is shared with the
//! trace-determinism canary (`tests/trace.rs`).

mod common;

use common::adversarial_job_set;
use redmule::BackendKind;
use redmule_batch::{BatchExecutor, JobStatus};

#[test]
fn report_bytes_are_identical_for_1_2_and_8_workers() {
    let reference = BatchExecutor::new(1)
        .run(adversarial_job_set())
        .expect("1-worker batch")
        .report
        .to_canonical_json();

    for workers in [2usize, 8] {
        let got = BatchExecutor::new(workers)
            .run(adversarial_job_set())
            .expect("parallel batch")
            .report
            .to_canonical_json();
        assert_eq!(
            got, reference,
            "BatchReport serialization diverged at {workers} workers"
        );
    }
}

#[test]
fn repeated_runs_are_identical_at_fixed_worker_count() {
    let a = BatchExecutor::new(8)
        .run(adversarial_job_set())
        .expect("first run");
    let b = BatchExecutor::new(8)
        .run(adversarial_job_set())
        .expect("second run");
    assert_eq!(a.report.to_canonical_json(), b.report.to_canonical_json());
    // The schedule stats are a deterministic virtual replay, so they
    // repeat exactly too — host thread timing must not leak in.
    assert_eq!(a.schedule, b.schedule);
}

#[test]
fn the_job_set_actually_covers_the_interesting_paths() {
    // Guard against this canary silently weakening: the batch must
    // contain a degraded job, fault telemetry and both backends.
    let report = BatchExecutor::new(4)
        .run(adversarial_job_set())
        .expect("batch")
        .report;
    assert_eq!(report.jobs.len(), 11);
    assert_eq!(
        report.jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
        (0..11).collect::<Vec<_>>()
    );
    assert_eq!(report.degraded(), 1);
    assert_eq!(report.jobs[5].status, JobStatus::CycleBudget);
    assert!(report.total_fault_events() > 0);
    assert!(report
        .jobs
        .iter()
        .any(|j| j.backend == BackendKind::Functional));
    // All three storage formats must be represented, and the FP8 jobs
    // must really run as FP8 (the canonical JSON records the label).
    for format in redmule::Format::ALL {
        assert!(
            report.jobs.iter().any(|j| j.format == format),
            "job set lost its {format} coverage"
        );
    }
    assert!(report.failed() == 0, "no job in this set may fail outright");
    assert!(report.utilization(&redmule::AccelConfig::paper()) > 0.0);
}
