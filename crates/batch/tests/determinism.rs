//! Ordering-bug canary: the canonical [`BatchReport`] serialization must
//! be byte-identical no matter how many workers the pool runs — results
//! are keyed by job id, never by completion order, and per-job outcomes
//! depend only on the job itself.
//!
//! The job set deliberately mixes everything that could tempt an
//! implementation into order-dependence: both backends, accumulate mode,
//! a degraded (cycle-budget) job, a raw fault injection and an
//! FT-protected fault plan, submitted in shuffled id order.

use redmule::{BackendKind, FaultPlan, FaultSite, FtConfig, TransientTarget};
use redmule_batch::{BatchExecutor, GemmJob, JobFaults, JobStatus};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use redmule_runtime::Limits;

fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
    let gen = |len: usize, s: u32| -> Vec<F16> {
        (0..len)
            .map(|i| {
                let h = ((i as u32).wrapping_mul(2654435761) ^ s.wrapping_mul(0x85EB_CA6B)) >> 17;
                F16::from_f32((h % 63) as f32 / 64.0 - 0.5)
            })
            .collect()
    };
    (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xBEEF))
}

/// A batch exercising every execution path the executor has.
fn adversarial_job_set() -> Vec<GemmJob> {
    let mut jobs = Vec::new();

    // Plain cycle-accurate jobs of different weights.
    for (id, (m, n, k)) in [(0u64, (8, 16, 16)), (1, (3, 7, 21)), (2, (16, 8, 32))] {
        let shape = GemmShape::new(m, n, k);
        let (x, w) = data(shape, id as u32);
        jobs.push(GemmJob::new(id, shape, x, w));
    }

    // Functional jobs, one with accumulate.
    let shape = GemmShape::new(6, 12, 10);
    let (x, w) = data(shape, 33);
    jobs.push(GemmJob::new(3, shape, x.clone(), w.clone()).with_backend(BackendKind::Functional));
    let y: Vec<F16> = (0..shape.z_len())
        .map(|i| F16::from_f32((i % 5) as f32 - 2.0))
        .collect();
    jobs.push(
        GemmJob::new(4, shape, x, w)
            .with_backend(BackendKind::Functional)
            .with_accumulate(y),
    );

    // A job that exhausts its cycle budget (deterministically degraded).
    let big = GemmShape::new(16, 16, 32);
    let (x, w) = data(big, 44);
    jobs.push(
        GemmJob::new(5, big, x, w)
            .with_limits(Limits::none().with_max_cycles(60))
            .with_checkpoint_interval(1),
    );

    // Raw fault injection under supervision: the corrupted result is
    // deterministic because the strike schedule is.
    let shape = GemmShape::new(4, 6, 8);
    let (x, w) = data(shape, 55);
    jobs.push(
        GemmJob::new(6, shape, x, w).with_faults(JobFaults::Raw(vec![
            (
                10,
                FaultSite::Pipe {
                    col: 1,
                    row: 2,
                    stage: 0,
                    bit: 7,
                },
            ),
            (
                0,
                FaultSite::WLoad {
                    phase: 0,
                    col: 0,
                    elem: 1,
                    bit: 3,
                },
            ),
        ])),
    );

    // FT-protected execution of a seeded transient plan.
    let shape = GemmShape::new(8, 8, 16);
    let (x, w) = data(shape, 66);
    jobs.push(
        GemmJob::new(7, shape, x, w).with_faults(JobFaults::Protected {
            plan: FaultPlan::new(0xBAD5_EED).with_random_transients(1, &[TransientTarget::Pipe]),
            ft: FtConfig::replay(),
        }),
    );

    // Submit in shuffled order; the report must still come out id-sorted.
    jobs.swap(0, 7);
    jobs.swap(2, 5);
    jobs
}

#[test]
fn report_bytes_are_identical_for_1_2_and_8_workers() {
    let reference = BatchExecutor::new(1)
        .run(adversarial_job_set())
        .expect("1-worker batch")
        .report
        .to_canonical_json();

    for workers in [2usize, 8] {
        let got = BatchExecutor::new(workers)
            .run(adversarial_job_set())
            .expect("parallel batch")
            .report
            .to_canonical_json();
        assert_eq!(
            got, reference,
            "BatchReport serialization diverged at {workers} workers"
        );
    }
}

#[test]
fn repeated_runs_are_identical_at_fixed_worker_count() {
    let a = BatchExecutor::new(8)
        .run(adversarial_job_set())
        .expect("first run");
    let b = BatchExecutor::new(8)
        .run(adversarial_job_set())
        .expect("second run");
    assert_eq!(a.report.to_canonical_json(), b.report.to_canonical_json());
    // The schedule stats are a deterministic virtual replay, so they
    // repeat exactly too — host thread timing must not leak in.
    assert_eq!(a.schedule, b.schedule);
}

#[test]
fn the_job_set_actually_covers_the_interesting_paths() {
    // Guard against this canary silently weakening: the batch must
    // contain a degraded job, fault telemetry and both backends.
    let report = BatchExecutor::new(4)
        .run(adversarial_job_set())
        .expect("batch")
        .report;
    assert_eq!(report.jobs.len(), 8);
    assert_eq!(
        report.jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
        (0..8).collect::<Vec<_>>()
    );
    assert_eq!(report.degraded(), 1);
    assert_eq!(report.jobs[5].status, JobStatus::CycleBudget);
    assert!(report.total_fault_events() > 0);
    assert!(report
        .jobs
        .iter()
        .any(|j| j.backend == BackendKind::Functional));
    assert!(report.failed() == 0, "no job in this set may fail outright");
    assert!(report.utilization(&redmule::AccelConfig::paper()) > 0.0);
}
