//! Trace determinism canary: the Chrome trace-event JSON exported from a
//! traced batch must be byte-identical no matter how many workers the
//! pool runs. Every timestamp in the trace is a *simulated* cycle of the
//! job's own clock, so the worker count — a host-side scheduling knob —
//! must not leak a single byte into the document.

mod common;

use common::adversarial_job_set;
use redmule::obs::{validate_chrome_trace, TraceEvent};
use redmule_batch::BatchExecutor;

#[test]
fn chrome_trace_bytes_are_identical_for_1_2_and_8_workers() {
    let reference = BatchExecutor::new(1)
        .with_event_trace()
        .run(adversarial_job_set())
        .expect("1-worker batch")
        .report
        .chrome_trace();

    for workers in [2usize, 8] {
        let got = BatchExecutor::new(workers)
            .with_event_trace()
            .run(adversarial_job_set())
            .expect("parallel batch")
            .report
            .chrome_trace();
        assert_eq!(
            got, reference,
            "Chrome trace bytes diverged at {workers} workers"
        );
    }
}

#[test]
fn traced_batch_exports_valid_and_populated_chrome_json() {
    let report = BatchExecutor::new(4)
        .with_event_trace()
        .run(adversarial_job_set())
        .expect("batch")
        .report;

    let json = report.chrome_trace();
    let summary = validate_chrome_trace(&json).expect("trace must parse and validate");
    assert_eq!(summary.lanes, report.jobs.len());
    assert!(summary.events > 0, "a traced batch must emit events");

    // Every execution path contributes its signature events. Jobs 7 and
    // 10 are FT-protected: that path only synthesizes Fault events from
    // the merged fault log, so they are exempt from the tile-span
    // requirement.
    for job in report.jobs.iter().filter(|j| j.id != 7 && j.id != 10) {
        assert!(
            job.events
                .events()
                .iter()
                .any(|e| matches!(e, TraceEvent::TileStart { .. })),
            "job {} recorded no tile spans",
            job.id
        );
    }
    let all: Vec<&TraceEvent> = report.jobs.iter().flat_map(|j| j.events.events()).collect();
    assert!(
        all.iter().any(|e| matches!(e, TraceEvent::Fault { .. })),
        "the fault-injection jobs must surface Fault events"
    );
    assert!(
        all.iter().any(|e| matches!(e, TraceEvent::Refill { .. })),
        "cycle-accurate jobs must surface Refill events"
    );
}

#[test]
fn untraced_batch_records_no_events() {
    let report = BatchExecutor::new(2)
        .run(adversarial_job_set())
        .expect("batch")
        .report;
    assert!(
        report.jobs.iter().all(|j| j.events.is_empty()),
        "tracing must be strictly opt-in"
    );
    // The export is still a valid (empty-lane) document.
    let summary = validate_chrome_trace(&report.chrome_trace()).expect("valid");
    assert_eq!(summary.events, 0);
}
