//! Shared fixture for the batch determinism canaries: a job set that
//! deliberately mixes everything that could tempt an implementation into
//! order-dependence — both backends, accumulate mode, a degraded
//! (cycle-budget) job, a raw fault injection, an FT-protected fault
//! plan and all three storage formats (FP16 plus both FP8 formats),
//! submitted in shuffled id order.

use redmule::{BackendKind, FaultPlan, FaultSite, Format, FtConfig, TransientTarget};
use redmule_batch::{GemmJob, JobFaults};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use redmule_runtime::Limits;

pub fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
    let gen = |len: usize, s: u32| -> Vec<F16> {
        (0..len)
            .map(|i| {
                let h = ((i as u32).wrapping_mul(2654435761) ^ s.wrapping_mul(0x85EB_CA6B)) >> 17;
                F16::from_f32((h % 63) as f32 / 64.0 - 0.5)
            })
            .collect()
    };
    (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0xBEEF))
}

/// A batch exercising every execution path the executor has.
pub fn adversarial_job_set() -> Vec<GemmJob> {
    let mut jobs = Vec::new();

    // Plain cycle-accurate jobs of different weights.
    for (id, (m, n, k)) in [(0u64, (8, 16, 16)), (1, (3, 7, 21)), (2, (16, 8, 32))] {
        let shape = GemmShape::new(m, n, k);
        let (x, w) = data(shape, id as u32);
        jobs.push(GemmJob::new(id, shape, x, w));
    }

    // Functional jobs, one with accumulate.
    let shape = GemmShape::new(6, 12, 10);
    let (x, w) = data(shape, 33);
    jobs.push(GemmJob::new(3, shape, x.clone(), w.clone()).with_backend(BackendKind::Functional));
    let y: Vec<F16> = (0..shape.z_len())
        .map(|i| F16::from_f32((i % 5) as f32 - 2.0))
        .collect();
    jobs.push(
        GemmJob::new(4, shape, x, w)
            .with_backend(BackendKind::Functional)
            .with_accumulate(y),
    );

    // A job that exhausts its cycle budget (deterministically degraded).
    let big = GemmShape::new(16, 16, 32);
    let (x, w) = data(big, 44);
    jobs.push(
        GemmJob::new(5, big, x, w)
            .with_limits(Limits::none().with_max_cycles(60))
            .with_checkpoint_interval(1),
    );

    // Raw fault injection under supervision: the corrupted result is
    // deterministic because the strike schedule is.
    let shape = GemmShape::new(4, 6, 8);
    let (x, w) = data(shape, 55);
    jobs.push(
        GemmJob::new(6, shape, x, w).with_faults(JobFaults::Raw(vec![
            (
                10,
                FaultSite::Pipe {
                    col: 1,
                    row: 2,
                    stage: 0,
                    bit: 7,
                },
            ),
            (
                0,
                FaultSite::WLoad {
                    phase: 0,
                    col: 0,
                    elem: 1,
                    bit: 3,
                },
            ),
        ])),
    );

    // FT-protected execution of a seeded transient plan.
    let shape = GemmShape::new(8, 8, 16);
    let (x, w) = data(shape, 66);
    jobs.push(
        GemmJob::new(7, shape, x, w).with_faults(JobFaults::Protected {
            plan: FaultPlan::new(0xBAD5_EED).with_random_transients(1, &[TransientTarget::Pipe]),
            ft: FtConfig::replay(),
        }),
    );

    // FP8 storage on the cycle-accurate engine: the castin/castout
    // stages and the paired-beat streamer schedule must be just as
    // worker-count-invariant as the FP16 paths.
    let shape = GemmShape::new(5, 9, 14);
    let (x, w) = data(shape, 77);
    jobs.push(GemmJob::new(8, shape, x, w).with_format(Format::Fp8E4M3));

    // FP8 on the functional backend, with accumulate: exercises the
    // quantise-in/quantise-out path that mirrors the engine bitwise.
    let shape = GemmShape::new(6, 12, 10);
    let (x, w) = data(shape, 88);
    let y: Vec<F16> = (0..shape.z_len())
        .map(|i| F16::from_f32((i % 7) as f32 / 2.0 - 1.5))
        .collect();
    jobs.push(
        GemmJob::new(9, shape, x, w)
            .with_format(Format::Fp8E5M2)
            .with_backend(BackendKind::Functional)
            .with_accumulate(y),
    );

    // FP8 under FT protection: ABFT comparison happens on quantised
    // values and the fault windows are byte-addressed.
    let shape = GemmShape::new(8, 8, 16);
    let (x, w) = data(shape, 99);
    jobs.push(
        GemmJob::new(10, shape, x, w)
            .with_format(Format::Fp8E5M2)
            .with_faults(JobFaults::Protected {
                plan: FaultPlan::new(0xF8F8_5EED)
                    .with_random_transients(1, &[TransientTarget::Pipe]),
                ft: FtConfig::redundancy(),
            }),
    );

    // Submit in shuffled order; the report must still come out id-sorted.
    jobs.swap(0, 7);
    jobs.swap(2, 5);
    jobs.swap(1, 10);
    jobs
}
