//! Host-side parallel batch execution of independent RedMulE GEMM jobs.
//!
//! The model crates (`fp16`, `hwsim`, `cluster`, `redmule`, `runtime`)
//! simulate *one* accelerator deterministically. A deployed system runs
//! *many* GEMMs back to back — training steps over a batch, multi-tenant
//! inference — and the host has cores to spare while each simulated (or
//! functional) job is single-threaded. This crate is the host-side bridge:
//!
//! * [`GemmJob`] — one independent `Z = X * W (+ Y)` work item with its
//!   own execution model ([`BackendKind`]), supervision [`Limits`], fault
//!   plan and checkpoint cadence.
//! * [`BatchExecutor`] — a work-stealing thread pool: each worker owns a
//!   deque of jobs and steals from its peers when it drains, so an
//!   imbalanced mix of heavy and light jobs still keeps every worker
//!   busy. Every job runs on its own engine/workspace instance; nothing
//!   is shared between jobs, so the parallelism cannot perturb the
//!   simulated results.
//! * [`BatchReport`] — per-job results **keyed by job id, never by
//!   completion order**, plus aggregated cycles, utilization and fault
//!   telemetry. Its canonical serialization is byte-identical for any
//!   worker count (the determinism regression test in
//!   `tests/determinism.rs` runs the same job set on 1, 2 and 8 workers).
//! * [`ScheduleStats`] — what the pool's schedule costs: per-worker busy
//!   cycles and the schedule makespan, from which throughput scaling is
//!   derived. Computed by a deterministic virtual replay of the
//!   deal-then-steal policy over per-job simulated cycles, so it models
//!   dedicated per-worker hardware rather than host timeslicing. It is
//!   intentionally kept outside [`BatchReport`], because it legitimately
//!   varies with the worker count.
//!
//! Cycle-accurate jobs are driven through
//! [`redmule_runtime::Supervisor`], so per-job cycle budgets, panics and
//! watchdog hangs degrade or fail that one job without taking down the
//! batch.
//!
//! # Example
//!
//! ```
//! use redmule_batch::{BatchExecutor, GemmJob};
//! use redmule::BackendKind;
//! use redmule_fp16::{vector::GemmShape, F16};
//!
//! let shape = GemmShape::new(8, 16, 16);
//! let jobs: Vec<GemmJob> = (0..4)
//!     .map(|id| {
//!         let x = vec![F16::from_f32(0.5); shape.x_len()];
//!         let w = vec![F16::from_f32(2.0); shape.w_len()];
//!         GemmJob::new(id, shape, x, w).with_backend(BackendKind::Functional)
//!     })
//!     .collect();
//! let outcome = BatchExecutor::new(2).run(jobs)?;
//! assert_eq!(outcome.report.jobs.len(), 4);
//! assert!(outcome.report.all_completed());
//! # Ok::<(), redmule_batch::BatchError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod executor;
mod job;
mod report;

pub use executor::{BatchError, BatchExecutor, BatchOutcome, ScheduleStats};
pub use job::{GemmJob, JobFaults, JobResult, JobStatus};
pub use redmule::{BackendKind, Format};
pub use report::BatchReport;
