//! Batch work items and their per-job outcomes.

use redmule::obs::EventLog;
use redmule::{BackendKind, FaultPlan, FaultSite, Format, FtConfig};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use redmule_runtime::{Limits, RetryPolicy, StopReason};

/// Fault activity requested for one job.
#[derive(Debug, Clone)]
pub enum JobFaults {
    /// Raw injection: the expanded `(cycle, site)` strikes arm a
    /// [`redmule::FaultInjector`] and the corrupted results land in the
    /// output as hardware would produce them. Runs under the supervisor,
    /// so per-job [`Limits`] and checkpoints still apply.
    Raw(Vec<(u64, FaultSite)>),
    /// Protected execution: the [`FaultPlan`] is injected under one of
    /// the RedMulE-FT modes ([`FtConfig`]), with detection/replay
    /// overhead and telemetry in the result. Driven by
    /// [`redmule::Engine::run_ft`], which has its own per-tile retry
    /// budget (supervisor limits do not apply on this path).
    Protected {
        /// The seeded fault plan to inject.
        plan: FaultPlan,
        /// Protection mode and retry budget.
        ft: FtConfig,
    },
}

/// One independent GEMM work item: `Z = X * W`, optionally `+ Y`.
///
/// Jobs are self-contained — operands are owned, and every configuration
/// knob is per-job — so a batch can mix shapes, backends, budgets and
/// fault drills freely.
#[derive(Debug, Clone)]
pub struct GemmJob {
    /// Caller-chosen identifier; must be unique within one batch. All
    /// results are keyed and ordered by this id, never by completion
    /// order.
    pub id: u64,
    /// Problem shape (`M x N x K`).
    pub shape: GemmShape,
    /// Input operand `X` (`m x n`, row-major).
    pub x: Vec<F16>,
    /// Weight operand `W` (`n x k`, row-major).
    pub w: Vec<F16>,
    /// Optional accumulate input `Y` (`m x k`, row-major).
    pub y: Option<Vec<F16>>,
    /// TCDM storage format for the operands: FP16, or one of the FP8
    /// formats cast at the engine's castin/castout stages. Operands are
    /// always supplied as FP16 and quantised on staging, so results are
    /// backend-independent for any format.
    pub format: Format,
    /// Execution model. A job with [`JobFaults`] always uses the
    /// cycle-accurate engine — fault injection needs real cycles.
    pub backend: BackendKind,
    /// Supervision budgets for the cycle-accurate path. A wall-clock
    /// deadline makes the *outcome* timing-dependent; use cycle budgets
    /// when batch determinism matters.
    pub limits: Limits,
    /// Optional fault activity.
    pub faults: Option<JobFaults>,
    /// Supervisor checkpoint cadence in tiles (`usize::MAX` = entry
    /// checkpoint only, the cheapest safe setting).
    pub checkpoint_interval: usize,
    /// Supervisor retry policy for the cycle-accurate path. Use
    /// [`RetryPolicy::deterministic`] so recovery delay is charged in
    /// simulated cycles and stays visible in the batch schedule.
    pub retry: RetryPolicy,
}

impl GemmJob {
    /// A plain cycle-accurate job with no budgets and no faults.
    pub fn new(id: u64, shape: GemmShape, x: Vec<F16>, w: Vec<F16>) -> GemmJob {
        GemmJob {
            id,
            shape,
            x,
            w,
            y: None,
            format: Format::Fp16,
            backend: BackendKind::CycleAccurate,
            limits: Limits::none(),
            faults: None,
            checkpoint_interval: usize::MAX,
            retry: RetryPolicy::default(),
        }
    }

    /// Selects the execution model.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> GemmJob {
        self.backend = backend;
        self
    }

    /// Selects the TCDM storage format for the operands.
    #[must_use]
    pub fn with_format(mut self, format: Format) -> GemmJob {
        self.format = format;
        self
    }

    /// Adds an accumulate input (`Z = X * W + Y`).
    #[must_use]
    pub fn with_accumulate(mut self, y: Vec<F16>) -> GemmJob {
        self.y = Some(y);
        self
    }

    /// Sets the supervision budgets.
    #[must_use]
    pub fn with_limits(mut self, limits: Limits) -> GemmJob {
        self.limits = limits;
        self
    }

    /// Arms fault activity (forces the cycle-accurate engine).
    #[must_use]
    pub fn with_faults(mut self, faults: JobFaults) -> GemmJob {
        self.faults = Some(faults);
        self
    }

    /// Sets the supervisor checkpoint cadence in tiles.
    #[must_use]
    pub fn with_checkpoint_interval(mut self, tiles: usize) -> GemmJob {
        self.checkpoint_interval = tiles;
        self
    }

    /// Sets the supervisor retry policy for the cycle-accurate path.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> GemmJob {
        self.retry = retry;
        self
    }

    /// Checks operand lengths against the shape.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatch.
    pub fn validate(&self) -> Result<(), String> {
        let check = |name: &str, expected: usize, got: usize| {
            if expected == got {
                Ok(())
            } else {
                Err(format!(
                    "job {}: operand {name} has {got} elements, shape {} needs {expected}",
                    self.id, self.shape
                ))
            }
        };
        check("X", self.shape.x_len(), self.x.len())?;
        check("W", self.shape.w_len(), self.w.len())?;
        if let Some(y) = &self.y {
            check("Y", self.shape.z_len(), y.len())?;
        }
        Ok(())
    }
}

/// How one job ended — a serializable flavour of
/// [`redmule_runtime::StopReason`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion; `z` holds the full result.
    Completed,
    /// Stopped at the cycle budget; `z` is partial, a checkpoint existed.
    CycleBudget,
    /// Stopped at the wall-clock deadline; `z` is partial.
    Deadline,
    /// Stopped at the simulated-cycle deadline; `z` is partial. Unlike
    /// [`JobStatus::Deadline`] this stop point is deterministic.
    DeadlineCycles,
    /// Cancelled via the supervisor's token; `z` is partial.
    Cancelled,
    /// The simulation panicked persistently (a model bug).
    Panicked(String),
    /// The run failed with an engine error (message retained).
    Failed(String),
}

impl JobStatus {
    /// Stable one-word label used in canonical serializations.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::CycleBudget => "cycle-budget",
            JobStatus::Deadline => "deadline",
            JobStatus::DeadlineCycles => "deadline-cycles",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Panicked(_) => "panicked",
            JobStatus::Failed(_) => "failed",
        }
    }

    pub(crate) fn from_stop(stop: StopReason) -> JobStatus {
        match stop {
            StopReason::Completed => JobStatus::Completed,
            StopReason::CycleBudget => JobStatus::CycleBudget,
            StopReason::Deadline => JobStatus::Deadline,
            StopReason::DeadlineCycles => JobStatus::DeadlineCycles,
            StopReason::Cancelled => JobStatus::Cancelled,
            StopReason::Panicked(msg) => JobStatus::Panicked(msg),
            StopReason::Failed(e) => JobStatus::Failed(e.to_string()),
        }
    }
}

/// Outcome of one job, independent of which worker ran it and when.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's id.
    pub id: u64,
    /// Execution model that actually ran (faulted jobs report
    /// [`BackendKind::CycleAccurate`] even if functional was requested).
    pub backend: BackendKind,
    /// TCDM storage format the job ran with.
    pub format: Format,
    /// The job's shape.
    pub shape: GemmShape,
    /// Output matrix — complete on [`JobStatus::Completed`], the partial
    /// tile-granular state on degraded stops, empty on failures before
    /// staging.
    pub z: Vec<F16>,
    /// Executed cycles (cycle-accurate) or the analytical estimate
    /// (functional).
    pub cycles: u64,
    /// Useful FMA operations performed.
    pub macs: u64,
    /// Datapath stall cycles (zero on the functional backend).
    pub stall_cycles: u64,
    /// How the job ended.
    pub status: JobStatus,
    /// True when the supervisor cut the run short at a budget.
    pub degraded: bool,
    /// Supervisor retries consumed by panic/watchdog recovery.
    pub retries: u32,
    /// Simulated cycles charged for deterministic retry backoff
    /// ([`redmule_runtime::RetryPolicy::backoff_cycles`]); the virtual
    /// schedule accounts them on top of the executed cycles.
    pub backoff_cycles: u64,
    /// Fault events recorded (injections, detections, corrections).
    pub fault_events: u64,
    /// Output tiles finished.
    pub tiles_done: usize,
    /// Output tiles the job has in total.
    pub tiles_total: usize,
    /// Simulated-cycle trace events, populated only when the batch ran
    /// with [`BatchExecutor::with_event_trace`](crate::BatchExecutor::with_event_trace).
    /// Cycle-accurate jobs record the engine's event stream; functional
    /// jobs carry the analytical model's synthetic tile spans. Depends
    /// only on the job, never on the worker count.
    pub events: EventLog,
}

impl JobResult {
    /// FNV-1a 64-bit digest of the output bits — a stable, order-
    /// sensitive fingerprint of `z` for canonical serializations (the
    /// full matrix would bloat them).
    pub fn z_checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in &self.z {
            for b in v.to_bits().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_validation() {
        let shape = GemmShape::new(2, 3, 4);
        let job = GemmJob::new(7, shape, vec![F16::ONE; 6], vec![F16::ONE; 12]);
        assert_eq!(job.id, 7);
        assert_eq!(job.backend, BackendKind::CycleAccurate);
        assert!(job.validate().is_ok());

        let bad = GemmJob::new(8, shape, vec![F16::ONE; 5], vec![F16::ONE; 12]);
        let msg = bad.validate().expect_err("short X must be rejected");
        assert!(msg.contains("job 8"), "{msg}");
        assert!(msg.contains('X'), "{msg}");

        let bad_y = GemmJob::new(9, shape, vec![F16::ONE; 6], vec![F16::ONE; 12])
            .with_accumulate(vec![F16::ONE; 7]);
        assert!(bad_y.validate().is_err());
    }

    #[test]
    fn status_labels_are_stable() {
        assert_eq!(JobStatus::Completed.label(), "completed");
        assert_eq!(JobStatus::CycleBudget.label(), "cycle-budget");
        assert_eq!(JobStatus::DeadlineCycles.label(), "deadline-cycles");
        assert_eq!(JobStatus::Panicked("x".into()).label(), "panicked");
        assert_eq!(JobStatus::Failed("y".into()).label(), "failed");
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let mk = |bits: &[u16]| JobResult {
            id: 0,
            backend: BackendKind::Functional,
            format: Format::Fp16,
            shape: GemmShape::new(1, 1, 2),
            z: bits.iter().map(|b| F16::from_bits(*b)).collect(),
            cycles: 0,
            macs: 0,
            stall_cycles: 0,
            status: JobStatus::Completed,
            degraded: false,
            retries: 0,
            backoff_cycles: 0,
            fault_events: 0,
            tiles_done: 1,
            tiles_total: 1,
            events: EventLog::new(),
        };
        assert_ne!(
            mk(&[0x3C00, 0x4000]).z_checksum(),
            mk(&[0x4000, 0x3C00]).z_checksum()
        );
        assert_eq!(
            mk(&[0x3C00, 0x4000]).z_checksum(),
            mk(&[0x3C00, 0x4000]).z_checksum()
        );
    }
}
