//! The worker-count-invariant batch report and its canonical
//! serialization.

use crate::job::{JobResult, JobStatus};
use redmule::obs::{chrome_trace, TraceLane};
use redmule::AccelConfig;
use std::fmt::Write as _;

/// Per-job results and batch aggregates, keyed by job id.
///
/// Everything in this struct — and in particular every byte of
/// [`BatchReport::to_canonical_json`] — depends only on the submitted
/// jobs, never on the worker count, completion order or wall clock. That
/// property is the ordering-bug canary pinned by the determinism
/// regression test (`tests/determinism.rs`): the same job set run with
/// 1, 2 and 8 workers must serialize byte-identically.
///
/// The one escape hatch is a job with a wall-clock deadline in its
/// [`Limits`](redmule_runtime::Limits): where it stops depends on host
/// timing by definition. Use cycle budgets when determinism matters.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job results, sorted by job id.
    pub jobs: Vec<JobResult>,
}

impl BatchReport {
    pub(crate) fn new(mut jobs: Vec<JobResult>) -> BatchReport {
        jobs.sort_by_key(|j| j.id);
        BatchReport { jobs }
    }

    /// Sum of executed (or functionally estimated) cycles over all jobs.
    pub fn total_cycles(&self) -> u64 {
        self.jobs.iter().map(|j| j.cycles).sum()
    }

    /// Sum of useful FMA operations over all jobs.
    pub fn total_macs(&self) -> u64 {
        self.jobs.iter().map(|j| j.macs).sum()
    }

    /// Sum of datapath stall cycles over all jobs.
    pub fn total_stall_cycles(&self) -> u64 {
        self.jobs.iter().map(|j| j.stall_cycles).sum()
    }

    /// Total fault events (injections, detections, corrections) across
    /// the batch.
    pub fn total_fault_events(&self) -> u64 {
        self.jobs.iter().map(|j| j.fault_events).sum()
    }

    /// Total simulated cycles charged for deterministic retry backoff.
    pub fn total_backoff_cycles(&self) -> u64 {
        self.jobs.iter().map(|j| j.backoff_cycles).sum()
    }

    /// Jobs that ran to completion.
    pub fn completed(&self) -> usize {
        self.count(|s| matches!(s, JobStatus::Completed))
    }

    /// Jobs cut short at a budget (cycle, deadline or cancellation).
    pub fn degraded(&self) -> usize {
        self.jobs.iter().filter(|j| j.degraded).count()
    }

    /// Jobs that failed outright (engine error or persistent panic).
    pub fn failed(&self) -> usize {
        self.count(|s| matches!(s, JobStatus::Failed(_) | JobStatus::Panicked(_)))
    }

    /// True when the batch ran at least one job and every job completed.
    /// An empty batch answers `false`: "all jobs completed" is a claim
    /// about work done, and the vacuous-truth reading let empty batches
    /// masquerade as successful ones in success gates.
    pub fn all_completed(&self) -> bool {
        !self.jobs.is_empty() && self.completed() == self.jobs.len()
    }

    /// Achieved fraction of the instance's ideal `H*L` MACs/cycle over
    /// the whole batch (`total_macs / (ideal * total_cycles)`).
    // RM-FP-001 does not bind this host-side crate: telemetry ratios are
    // plain f64, never fed back into model state.
    pub fn utilization(&self, cfg: &AccelConfig) -> f64 {
        let cycles = self.total_cycles();
        if cycles == 0 {
            return 0.0;
        }
        self.total_macs() as f64 / (cfg.ideal_macs_per_cycle() as u64 * cycles) as f64
    }

    /// Canonical JSON serialization: integer-only fields in a fixed
    /// order, output matrices folded to FNV-1a digests, status reduced
    /// to its stable label. Byte-identical across worker counts.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::from("{\"jobs\":[");
        for (i, j) in self.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"id\":{},\"backend\":\"{}\",\"format\":\"{}\",\
                 \"m\":{},\"n\":{},\"k\":{},\
                 \"status\":\"{}\",\"cycles\":{},\"macs\":{},\"stall_cycles\":{},\
                 \"degraded\":{},\"retries\":{},\"backoff_cycles\":{},\"fault_events\":{},\
                 \"tiles_done\":{},\"tiles_total\":{},\
                 \"z_len\":{},\"z_fnv64\":\"{:#018x}\"}}",
                j.id,
                j.backend.label(),
                j.format.label(),
                j.shape.m,
                j.shape.n,
                j.shape.k,
                j.status.label(),
                j.cycles,
                j.macs,
                j.stall_cycles,
                j.degraded,
                j.retries,
                j.backoff_cycles,
                j.fault_events,
                j.tiles_done,
                j.tiles_total,
                j.z.len(),
                j.z_checksum(),
            );
        }
        let _ = write!(
            out,
            "],\"totals\":{{\"jobs\":{},\"completed\":{},\"degraded\":{},\"failed\":{},\
             \"cycles\":{},\"macs\":{},\"stall_cycles\":{},\"backoff_cycles\":{},\
             \"fault_events\":{}}}}}",
            self.jobs.len(),
            self.completed(),
            self.degraded(),
            self.failed(),
            self.total_cycles(),
            self.total_macs(),
            self.total_stall_cycles(),
            self.total_backoff_cycles(),
            self.total_fault_events(),
        );
        out
    }

    /// Chrome trace-event JSON (Perfetto-loadable) for a batch run with
    /// [`BatchExecutor::with_event_trace`](crate::BatchExecutor::with_event_trace):
    /// one lane per job, `tid` = job id, events on the job's own
    /// simulated-cycle clock. Lanes come from [`JobResult::events`], so
    /// the bytes are — like the canonical JSON — invariant under the
    /// worker count (pinned by `tests/trace.rs`). Untraced runs yield a
    /// valid document with empty lanes.
    pub fn chrome_trace(&self) -> String {
        let lanes: Vec<TraceLane<'_>> = self
            .jobs
            .iter()
            .map(|j| TraceLane {
                tid: j.id,
                name: format!("job {} ({})", j.id, j.shape),
                events: j.events.events(),
            })
            .collect();
        chrome_trace(&lanes)
    }

    fn count(&self, pred: impl Fn(&JobStatus) -> bool) -> usize {
        self.jobs.iter().filter(|j| pred(&j.status)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redmule::BackendKind;
    use redmule_fp16::vector::GemmShape;
    use redmule_fp16::F16;

    fn result(id: u64, status: JobStatus, cycles: u64) -> JobResult {
        JobResult {
            id,
            backend: BackendKind::CycleAccurate,
            format: redmule::Format::Fp16,
            shape: GemmShape::new(2, 2, 2),
            z: vec![F16::ONE; 4],
            cycles,
            macs: 8,
            stall_cycles: 1,
            status,
            degraded: false,
            retries: 0,
            backoff_cycles: 0,
            fault_events: 0,
            tiles_done: 1,
            tiles_total: 1,
            events: redmule::obs::EventLog::new(),
        }
    }

    #[test]
    fn aggregates_and_sorting() {
        let report = BatchReport::new(vec![
            result(2, JobStatus::Completed, 100),
            result(0, JobStatus::Failed("boom".into()), 0),
            result(1, JobStatus::Completed, 50),
        ]);
        assert_eq!(
            report.jobs.iter().map(|j| j.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(report.total_cycles(), 150);
        assert_eq!(report.completed(), 2);
        assert_eq!(report.failed(), 1);
        assert!(!report.all_completed());
    }

    #[test]
    fn canonical_json_is_stable_and_integer_only() {
        let report = BatchReport::new(vec![result(0, JobStatus::Completed, 10)]);
        let json = report.to_canonical_json();
        assert_eq!(json, report.to_canonical_json());
        assert!(json.starts_with("{\"jobs\":["));
        assert!(json.contains("\"status\":\"completed\""));
        assert!(json.contains("\"z_fnv64\":\"0x"));
        assert!(json.ends_with("}}"));
        // No floating-point fields may leak into the canonical form.
        assert!(!json.contains('.'), "canonical JSON must be integer-only");
    }

    #[test]
    fn utilization_is_bounded() {
        let cfg = AccelConfig::paper();
        let full = BatchReport::new(vec![result(0, JobStatus::Completed, 8)]);
        // 8 macs in 8 cycles on a 32-MAC/cycle instance.
        let u = full.utilization(&cfg);
        assert!((u - 8.0 / (32.0 * 8.0)).abs() < 1e-12);
        let empty = BatchReport::new(Vec::new());
        assert_eq!(empty.utilization(&cfg), 0.0);
    }

    #[test]
    fn empty_batch_is_well_defined() {
        let empty = BatchReport::new(Vec::new());
        assert!(
            !empty.all_completed(),
            "an empty batch completed no jobs and must not claim success"
        );
        assert_eq!(empty.completed(), 0);
        assert_eq!(empty.degraded(), 0);
        assert_eq!(empty.failed(), 0);
        assert_eq!(empty.total_cycles(), 0);
        assert_eq!(empty.total_macs(), 0);
        assert_eq!(empty.total_stall_cycles(), 0);
        assert_eq!(empty.total_fault_events(), 0);
        assert_eq!(
            empty.to_canonical_json(),
            "{\"jobs\":[],\"totals\":{\"jobs\":0,\"completed\":0,\"degraded\":0,\
             \"failed\":0,\"cycles\":0,\"macs\":0,\"stall_cycles\":0,\"backoff_cycles\":0,\
             \"fault_events\":0}}"
        );
    }

    #[test]
    fn all_failed_batch_is_well_defined() {
        let report = BatchReport::new(vec![
            result(0, JobStatus::Failed("stage".into()), 0),
            result(1, JobStatus::Panicked("sim".into()), 0),
        ]);
        assert!(!report.all_completed());
        assert_eq!(report.completed(), 0);
        assert_eq!(report.failed(), 2);
        assert_eq!(report.total_cycles(), 0);
        // Zero total cycles must not divide-by-zero the utilization.
        assert_eq!(report.utilization(&AccelConfig::paper()), 0.0);
        let json = report.to_canonical_json();
        assert!(json.contains("\"failed\":2"), "{json}");
        assert!(json.contains("\"completed\":0"), "{json}");
        assert_eq!(json, report.to_canonical_json());
    }

    #[test]
    fn chrome_trace_of_untraced_report_is_valid_and_empty() {
        let report = BatchReport::new(vec![result(0, JobStatus::Completed, 10)]);
        let json = report.chrome_trace();
        let summary = redmule::obs::validate_chrome_trace(&json).expect("valid chrome JSON");
        assert_eq!(summary.lanes, 1);
        assert_eq!(summary.events, 0, "untraced jobs contribute no events");
    }
}
