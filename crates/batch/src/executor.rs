//! The work-stealing worker pool and per-job execution paths.

use crate::job::{GemmJob, JobFaults, JobResult, JobStatus};
use crate::report::BatchReport;
use redmule::obs::{EventLog, TraceEvent};
use redmule::{
    cast, stage_gemm_workspace_in, AccelConfig, BackendKind, Engine, FaultInjector, FunctionalGemm,
};
use redmule_fp16::F16;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::{Mutex, PoisonError};
use std::thread;

/// Batch-level misconfiguration or a harness failure. Per-job *execution*
/// failures never surface here — they are recorded in that job's
/// [`JobResult`] so the rest of the batch still completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchError {
    /// `workers == 0`.
    NoWorkers,
    /// Two jobs share an id, which would make result keying ambiguous.
    DuplicateJobId(u64),
    /// A job failed [`GemmJob::validate`] (message names the job).
    InvalidJob(String),
    /// A worker thread died outside the supervisor's panic isolation —
    /// a bug in the pool itself.
    WorkerPanicked(String),
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::NoWorkers => write!(f, "batch executor needs at least one worker"),
            BatchError::DuplicateJobId(id) => write!(f, "duplicate job id {id} in batch"),
            BatchError::InvalidJob(msg) => write!(f, "invalid job: {msg}"),
            BatchError::WorkerPanicked(msg) => write!(f, "batch worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for BatchError {}

/// What the pool's schedule costs, as opposed to what the jobs computed:
/// per-worker simulated busy cycles and job counts. Unlike
/// [`BatchReport`], this varies with the worker count — the schedule
/// *is* the worker count's effect — so it lives outside the canonical
/// report.
///
/// The stats come from a *deterministic virtual replay* of the pool's
/// deal-then-steal policy on per-job simulated cycles, modeling `W`
/// dedicated workers that each advance only while executing a job. The
/// OS threads still run the jobs (that is where host-side wall-clock
/// parallelism comes from), but which thread the host scheduler happened
/// to hand each job does not leak into the stats — on a loaded or
/// single-core host that assignment is timing noise, not a property of
/// the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Number of workers the batch ran with.
    pub workers: usize,
    /// Simulated cycles each worker spends executing jobs, including the
    /// deterministic retry-backoff charge of each job it ran.
    pub per_worker_busy_cycles: Vec<u64>,
    /// Jobs each worker executes (own deque plus steals).
    pub per_worker_jobs: Vec<usize>,
    /// Total simulated cycles charged for deterministic retry backoff
    /// ([`redmule_runtime::RetryPolicy::backoff_cycles`]) across the
    /// batch. Already included in `per_worker_busy_cycles`; broken out so
    /// recovery cost stays visible in the schedule.
    pub backoff_cycles: u64,
}

impl ScheduleStats {
    /// The schedule makespan: the busiest worker's simulated cycles.
    /// With one worker this equals the serial total; with `W` balanced
    /// workers it approaches `total / W`.
    pub fn makespan_cycles(&self) -> u64 {
        self.per_worker_busy_cycles
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Sum of all workers' busy cycles (the serial cost of the batch).
    pub fn total_busy_cycles(&self) -> u64 {
        self.per_worker_busy_cycles.iter().sum()
    }

    /// Parallel speedup achieved by this schedule:
    /// `total_busy_cycles / makespan_cycles`. 1.0 for an empty or
    /// serialized schedule, approaching the worker count when balanced.
    pub fn parallel_speedup(&self) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0 {
            return 1.0;
        }
        self.total_busy_cycles() as f64 / makespan as f64
    }
}

/// Outcome of one batch: the worker-count-invariant [`BatchReport`] and
/// the worker-count-dependent [`ScheduleStats`].
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-job results and aggregates, keyed by job id. Byte-identical
    /// canonical serialization for any worker count.
    pub report: BatchReport,
    /// What the pool did with its workers.
    pub schedule: ScheduleStats,
}

/// A work-stealing pool executing [`GemmJob`]s on per-job engine
/// instances.
///
/// Jobs are dealt round-robin (in id order) onto per-worker deques. A
/// worker pops from the front of its own deque and, when it drains,
/// steals from the back of its peers' — classic deque stealing, so a mix
/// of heavy and light jobs stays balanced without any coordination on
/// the hot path.
#[derive(Debug)]
pub struct BatchExecutor {
    workers: usize,
    engine: Engine,
    trace: bool,
    intra: usize,
}

impl BatchExecutor {
    /// A pool of `workers` threads running the paper's engine instance.
    pub fn new(workers: usize) -> BatchExecutor {
        BatchExecutor {
            workers,
            engine: Engine::new(AccelConfig::paper()),
            trace: false,
            intra: 1,
        }
    }

    /// Replaces the engine template (instance parameters, streamer
    /// policy, watchdog) cloned for every job.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> BatchExecutor {
        self.engine = engine;
        self
    }

    /// Records per-job trace events (simulated-cycle timestamps) into
    /// each [`JobResult::events`], ready for
    /// [`BatchReport::chrome_trace`]. Off by default: untraced runs pay
    /// no per-tick observation cost.
    #[must_use]
    pub fn with_event_trace(mut self) -> BatchExecutor {
        self.trace = true;
        self
    }

    /// Splits each *functional-backend* job's compute across up to
    /// `threads` scoped host threads, one output band per unit of work.
    /// Bands are dealt round-robin onto the threads and each band writes
    /// a disjoint `Z` slice ([`FunctionalPlan::compute_band_into`] is
    /// pure), so results, reports and traces stay byte-identical at any
    /// setting — this knob only changes wall-clock time. `0` and `1`
    /// both mean serial (the default). Cycle-accurate jobs are
    /// inherently serial and ignore it.
    ///
    /// [`FunctionalPlan::compute_band_into`]: redmule::FunctionalPlan::compute_band_into
    #[must_use]
    pub fn with_intra_job_parallelism(mut self, threads: usize) -> BatchExecutor {
        self.intra = threads.max(1);
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured intra-job thread count (1 = serial per job).
    pub fn intra_job_parallelism(&self) -> usize {
        self.intra
    }

    /// Runs every job and returns the batch outcome.
    ///
    /// Results are keyed by job id: `outcome.report.jobs` is sorted by
    /// id regardless of which worker finished which job first, and the
    /// per-job contents depend only on the job itself (the simulations
    /// share nothing), so the report is deterministic for any worker
    /// count — the property pinned by `tests/determinism.rs`.
    ///
    /// # Errors
    ///
    /// [`BatchError`] on misconfiguration (zero workers, duplicate ids,
    /// malformed operands) or if a worker thread itself dies. Per-job
    /// execution failures are reported in the corresponding
    /// [`JobResult`], not as errors.
    pub fn run(&self, mut jobs: Vec<GemmJob>) -> Result<BatchOutcome, BatchError> {
        if self.workers == 0 {
            return Err(BatchError::NoWorkers);
        }
        let mut seen = BTreeSet::new();
        for job in &jobs {
            if !seen.insert(job.id) {
                return Err(BatchError::DuplicateJobId(job.id));
            }
            job.validate().map_err(BatchError::InvalidJob)?;
        }
        // Canonical processing order: by id. With round-robin dealing
        // this also spreads a sorted-by-size batch evenly.
        jobs.sort_by_key(|j| j.id);

        let n_jobs = jobs.len();
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..self.workers)
            .map(|w| Mutex::new((w..n_jobs).step_by(self.workers).collect()))
            .collect();
        let results: Mutex<Vec<Option<JobResult>>> = Mutex::new(vec![None; n_jobs]);
        let jobs_ref: &[GemmJob] = &jobs;
        let engine = &self.engine;

        let panicked: Mutex<Option<String>> = Mutex::new(None);
        // modelcheck-allow: RM-ERR-001 -- name collision: this is
        // std::thread::scope returning the closure's unit value, not the
        // workspace's Result-returning `scope`.
        thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|w| {
                    let deques = &deques;
                    let results = &results;
                    let trace = self.trace;
                    let intra = self.intra;
                    scope.spawn(move || {
                        while let Some(idx) = next_job(deques, w) {
                            let result = exec_job(engine, &jobs_ref[idx], trace, intra);
                            lock(results)[idx] = Some(result);
                        }
                    })
                })
                .collect();
            for handle in handles {
                if let Err(payload) = handle.join() {
                    *lock(&panicked) = Some(panic_message(payload.as_ref()));
                }
            }
        });
        if let Some(msg) = lock(&panicked).take() {
            return Err(BatchError::WorkerPanicked(msg));
        }

        let mut collected = Vec::with_capacity(n_jobs);
        for (i, slot) in lock(&results).iter_mut().enumerate() {
            match slot.take() {
                Some(r) => collected.push(r),
                None => {
                    return Err(BatchError::WorkerPanicked(format!(
                        "job {} was never executed",
                        jobs_ref[i].id
                    )))
                }
            }
        }

        // The schedule charges each job its executed cycles plus the
        // deterministic retry-backoff cycles its recovery consumed: a
        // worker that spent recovery delay on a job is busy for it.
        let cycles: Vec<u64> = collected
            .iter()
            .map(|r| r.cycles + r.backoff_cycles)
            .collect();
        let backoff_total: u64 = collected.iter().map(|r| r.backoff_cycles).sum();
        let (busy, jobs_run) = virtual_schedule(self.workers, &cycles);
        Ok(BatchOutcome {
            report: BatchReport::new(collected),
            schedule: ScheduleStats {
                workers: self.workers,
                per_worker_busy_cycles: busy,
                per_worker_jobs: jobs_run,
                backoff_cycles: backoff_total,
            },
        })
    }
}

/// Deterministically replays the pool's deal-then-steal policy on a
/// virtual clock: jobs (indexed in id order, `cycles[i]` = job `i`'s
/// simulated cost) are dealt round-robin, then whichever virtual worker
/// is least busy takes the next job — front of its own deque, back of a
/// peer's once drained. Greedy list scheduling, so workers are never
/// idle while work remains and each worker's finish time equals its busy
/// cycles.
fn virtual_schedule(workers: usize, cycles: &[u64]) -> (Vec<u64>, Vec<usize>) {
    let mut deques: Vec<VecDeque<usize>> = (0..workers)
        .map(|w| (w..cycles.len()).step_by(workers).collect())
        .collect();
    let mut busy = vec![0u64; workers];
    let mut jobs_run = vec![0usize; workers];
    for _ in 0..cycles.len() {
        // Least-busy worker takes the next job; ties break to the
        // lowest index, keeping the replay fully deterministic.
        let w = (0..workers).min_by_key(|&w| (busy[w], w)).unwrap_or(0);
        let idx = match virtual_take(&mut deques, w) {
            Some(i) => i,
            None => break, // unreachable: one deque entry exists per job
        };
        busy[w] += cycles[idx];
        jobs_run[w] += 1;
    }
    (busy, jobs_run)
}

/// The virtual counterpart of [`next_job`]: same deque discipline,
/// without locks.
fn virtual_take(deques: &mut [VecDeque<usize>], w: usize) -> Option<usize> {
    if let Some(idx) = deques[w].pop_front() {
        return Some(idx);
    }
    let n = deques.len();
    for off in 1..n {
        if let Some(idx) = deques[(w + off) % n].pop_back() {
            return Some(idx);
        }
    }
    None
}

/// Pops the next job index for worker `w`: front of its own deque, then
/// steals from the back of its peers'. Returns `None` only when every
/// deque is empty — jobs are never re-enqueued, so emptiness is stable.
fn next_job(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(idx) = lock(&deques[w]).pop_front() {
        return Some(idx);
    }
    let n = deques.len();
    for off in 1..n {
        if let Some(idx) = lock(&deques[(w + off) % n]).pop_back() {
            return Some(idx);
        }
    }
    None
}

/// Mutex lock that survives a poisoned peer: the protected data here is
/// either per-slot (results) or monotonically drained (deques), both of
/// which stay consistent across a worker panic.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_owned())
}

/// Executes one job on a private engine/workspace. Infallible by design:
/// every failure mode lands in the result's [`JobStatus`].
fn exec_job(engine: &Engine, job: &GemmJob, trace: bool, intra: usize) -> JobResult {
    let cfg = *engine.config();
    let tiles_total = job.shape.m.div_ceil(cfg.l) * job.shape.k.div_ceil(cfg.phase_width());
    match (&job.faults, job.backend) {
        (None, BackendKind::Functional) => exec_functional(&cfg, job, tiles_total, trace, intra),
        (Some(JobFaults::Protected { plan, ft }), _) => {
            exec_protected(engine, job, tiles_total, plan, *ft, trace)
        }
        _ => exec_supervised(engine, job, tiles_total, trace),
    }
}

fn exec_functional(
    cfg: &AccelConfig,
    job: &GemmJob,
    tiles_total: usize,
    trace: bool,
    intra: usize,
) -> JobResult {
    let model = FunctionalGemm::new(*cfg);
    let plan = match model.plan(job.shape, job.format, &job.x, &job.w, job.y.as_deref()) {
        Ok(plan) => plan,
        Err(e) => return failed(job, BackendKind::Functional, tiles_total, e.to_string()),
    };
    let mut z = vec![F16::ZERO; job.shape.z_len()];
    let threads = intra.min(plan.n_bands()).max(1);
    if threads > 1 {
        // Each band owns a disjoint row-band slice of Z (exactly what
        // chunks_mut yields), so the deal below is a pure partition of
        // the output: which thread computes which band cannot change a
        // single bit, only the wall-clock time.
        let mut lanes: Vec<Vec<(usize, &mut [F16])>> = (0..threads).map(|_| Vec::new()).collect();
        for (band, chunk) in z.chunks_mut(plan.band_stride()).enumerate() {
            lanes[band % threads].push((band, chunk));
        }
        let plan = &plan;
        // modelcheck-allow: RM-ERR-001 -- name collision: this is
        // std::thread::scope returning the closure's unit value, not the
        // workspace's Result-returning `scope`.
        thread::scope(|scope| {
            for lane in lanes {
                scope.spawn(move || {
                    for (band, out) in lane {
                        plan.compute_band_into(band, out);
                    }
                });
            }
        });
    } else {
        for (band, chunk) in z.chunks_mut(plan.band_stride()).enumerate() {
            plan.compute_band_into(band, chunk);
        }
    }
    JobResult {
        id: job.id,
        backend: BackendKind::Functional,
        format: job.format,
        shape: job.shape,
        z,
        cycles: model.estimated_cycles_format(job.shape, job.format).count(),
        macs: job.shape.macs(),
        stall_cycles: 0,
        status: JobStatus::Completed,
        degraded: false,
        retries: 0,
        backoff_cycles: 0,
        fault_events: 0,
        tiles_done: tiles_total,
        tiles_total,
        events: if trace {
            model.synthetic_events_format(job.shape, job.format)
        } else {
            EventLog::new()
        },
    }
}

fn exec_protected(
    engine: &Engine,
    job: &GemmJob,
    tiles_total: usize,
    plan: &redmule::FaultPlan,
    ft: redmule::FtConfig,
    trace: bool,
) -> JobResult {
    let staged = stage_gemm_workspace_in(job.shape, job.format, &job.x, &job.w, job.y.as_deref());
    let (hw_job, mut mem, mut hci) = match staged {
        Ok(t) => t,
        Err(e) => return failed(job, BackendKind::CycleAccurate, tiles_total, e.to_string()),
    };
    match engine.run_ft(hw_job, &mut mem, &mut hci, plan, ft) {
        Ok(report) => {
            // run_ft drives multiple internal sub-runs, so a live sink
            // cannot be threaded through; synthesize Fault events from
            // the merged fault log instead (same cycles, same order).
            let mut events = EventLog::new();
            if trace {
                for ev in report.faults.events() {
                    events.push(TraceEvent::Fault {
                        cycle: ev.cycle,
                        class: ev.class,
                        phase: ev.phase,
                    });
                }
            }
            JobResult {
                id: job.id,
                backend: BackendKind::CycleAccurate,
                format: job.format,
                shape: job.shape,
                z: cast::castin_slice(&mem, job.format, hw_job.z_addr, job.shape.z_len())
                    .unwrap_or_default(),
                cycles: report.cycles.count(),
                macs: report.macs,
                stall_cycles: report.stall_cycles,
                status: JobStatus::Completed,
                degraded: false,
                retries: 0,
                backoff_cycles: 0,
                fault_events: report.faults.events().len() as u64,
                tiles_done: tiles_total,
                tiles_total,
                events,
            }
        }
        Err(e) => failed(job, BackendKind::CycleAccurate, tiles_total, e.to_string()),
    }
}

fn exec_supervised(engine: &Engine, job: &GemmJob, tiles_total: usize, trace: bool) -> JobResult {
    use redmule_runtime::Supervisor;
    let staged = stage_gemm_workspace_in(job.shape, job.format, &job.x, &job.w, job.y.as_deref());
    let (hw_job, mut mem, mut hci) = match staged {
        Ok(t) => t,
        Err(e) => return failed(job, BackendKind::CycleAccurate, tiles_total, e.to_string()),
    };
    let session = match &job.faults {
        Some(JobFaults::Raw(sites)) => {
            engine.start_with_faults(hw_job, FaultInjector::new(sites.clone()))
        }
        _ => engine.start(hw_job),
    };
    let supervisor = Supervisor::new(engine.clone())
        .with_limits(job.limits)
        .with_retry_policy(job.retry)
        .with_checkpoint_interval(job.checkpoint_interval);
    let run = session.and_then(|mut s| {
        if trace {
            s.attach_sink(Box::new(EventLog::new()));
        }
        supervisor.run_session(s, &mut mem, &mut hci)
    });
    match run {
        Ok(run) => JobResult {
            id: job.id,
            backend: BackendKind::CycleAccurate,
            format: job.format,
            shape: job.shape,
            z: cast::castin_slice(&mem, job.format, hw_job.z_addr, job.shape.z_len())
                .unwrap_or_default(),
            cycles: run.report.cycles.count(),
            macs: run.report.macs,
            stall_cycles: run.report.stall_cycles,
            status: JobStatus::from_stop(run.stop),
            degraded: run.degraded,
            retries: run.retries,
            backoff_cycles: run.backoff_cycles,
            fault_events: run.report.faults.events().len() as u64,
            tiles_done: run.tiles_done,
            tiles_total: run.tiles_total,
            events: run.events,
        },
        Err(e) => failed(job, BackendKind::CycleAccurate, tiles_total, e.to_string()),
    }
}

fn failed(job: &GemmJob, backend: BackendKind, tiles_total: usize, msg: String) -> JobResult {
    JobResult {
        id: job.id,
        backend,
        format: job.format,
        shape: job.shape,
        z: Vec::new(),
        cycles: 0,
        macs: 0,
        stall_cycles: 0,
        status: JobStatus::Failed(msg),
        degraded: false,
        retries: 0,
        backoff_cycles: 0,
        fault_events: 0,
        tiles_done: 0,
        tiles_total,
        events: EventLog::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redmule_fp16::vector::{gemm_golden, GemmShape};
    use redmule_fp16::F16;
    use redmule_runtime::Limits;

    fn data(shape: GemmShape, seed: u32) -> (Vec<F16>, Vec<F16>) {
        let gen = |len: usize, s: u32| -> Vec<F16> {
            (0..len)
                .map(|i| {
                    let h = ((i as u32).wrapping_mul(2654435761) ^ s) >> 17;
                    F16::from_f32((h % 64) as f32 / 64.0 - 0.5)
                })
                .collect()
        };
        (gen(shape.x_len(), seed), gen(shape.w_len(), seed ^ 0x55))
    }

    fn mixed_jobs(n: usize) -> Vec<GemmJob> {
        (0..n as u64)
            .map(|id| {
                let dims = [(4, 8, 6), (8, 16, 16), (3, 5, 21)][id as usize % 3];
                let shape = GemmShape::new(dims.0, dims.1, dims.2);
                let (x, w) = data(shape, id as u32);
                let kind = if id % 2 == 0 {
                    BackendKind::CycleAccurate
                } else {
                    BackendKind::Functional
                };
                GemmJob::new(id, shape, x, w).with_backend(kind)
            })
            .collect()
    }

    #[test]
    fn results_are_keyed_by_id_and_bit_exact() {
        let jobs = mixed_jobs(7);
        let expected: Vec<Vec<u16>> = jobs
            .iter()
            .map(|j| {
                gemm_golden(j.shape, &j.x, &j.w)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect()
            })
            .collect();
        let outcome = BatchExecutor::new(3).run(jobs).expect("batch runs");
        assert!(outcome.report.all_completed());
        for (i, result) in outcome.report.jobs.iter().enumerate() {
            assert_eq!(result.id, i as u64, "results must be ordered by id");
            let got: Vec<u16> = result.z.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, expected[i], "job {i} output");
        }
    }

    #[test]
    fn submission_order_does_not_matter() {
        let mut jobs = mixed_jobs(6);
        jobs.reverse();
        let outcome = BatchExecutor::new(2).run(jobs).expect("batch runs");
        let ids: Vec<u64> = outcome.report.jobs.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn misconfiguration_is_rejected() {
        assert!(matches!(
            BatchExecutor::new(0).run(mixed_jobs(1)),
            Err(BatchError::NoWorkers)
        ));
        let mut dup = mixed_jobs(2);
        dup[1].id = dup[0].id;
        assert!(matches!(
            BatchExecutor::new(1).run(dup),
            Err(BatchError::DuplicateJobId(0))
        ));
        let shape = GemmShape::new(2, 2, 2);
        let bad = vec![GemmJob::new(0, shape, vec![F16::ONE; 3], vec![F16::ONE; 4])];
        assert!(matches!(
            BatchExecutor::new(1).run(bad),
            Err(BatchError::InvalidJob(_))
        ));
    }

    #[test]
    fn per_job_cycle_budget_degrades_only_that_job() {
        let shape = GemmShape::new(16, 16, 32); // 4 tiles
        let (x, w) = data(shape, 9);
        let jobs = vec![
            GemmJob::new(0, shape, x.clone(), w.clone())
                .with_limits(Limits::none().with_max_cycles(40))
                .with_checkpoint_interval(1),
            GemmJob::new(1, shape, x, w),
        ];
        let outcome = BatchExecutor::new(2).run(jobs).expect("batch runs");
        let budgeted = &outcome.report.jobs[0];
        assert_eq!(budgeted.status, JobStatus::CycleBudget);
        assert!(budgeted.degraded);
        assert!(budgeted.tiles_done < budgeted.tiles_total);
        let free = &outcome.report.jobs[1];
        assert_eq!(free.status, JobStatus::Completed);
        assert_eq!(free.tiles_done, free.tiles_total);
    }

    #[test]
    fn more_workers_shrink_the_makespan() {
        let jobs = mixed_jobs(12);
        let serial = BatchExecutor::new(1).run(jobs.clone()).expect("1 worker");
        let parallel = BatchExecutor::new(4).run(jobs).expect("4 workers");
        assert_eq!(
            serial.schedule.total_busy_cycles(),
            parallel.schedule.total_busy_cycles(),
            "total simulated work is schedule-invariant"
        );
        assert!(
            parallel.schedule.makespan_cycles() < serial.schedule.makespan_cycles(),
            "4 workers must beat 1 worker's makespan"
        );
        assert!(parallel.schedule.parallel_speedup() > 1.5);
        assert_eq!(serial.schedule.parallel_speedup(), 1.0);
    }

    #[test]
    fn intra_job_parallelism_is_invisible_in_the_report() {
        // All-functional jobs with shapes spanning 1..5 row bands, traced,
        // so both the canonical report bytes and the event logs are under
        // test. Any intra-thread count must reproduce the serial bytes.
        let jobs: Vec<GemmJob> = (0..8u64)
            .map(|id| {
                let dims = [(4, 8, 6), (40, 16, 16), (17, 5, 33), (25, 12, 40)][id as usize % 4];
                let shape = GemmShape::new(dims.0, dims.1, dims.2);
                let (x, w) = data(shape, id as u32);
                GemmJob::new(id, shape, x, w).with_backend(BackendKind::Functional)
            })
            .collect();
        let serial = BatchExecutor::new(2)
            .with_event_trace()
            .run(jobs.clone())
            .expect("serial batch");
        let baseline = serial.report.to_canonical_json();
        for intra in [2, 4, 7] {
            let outcome = BatchExecutor::new(2)
                .with_event_trace()
                .with_intra_job_parallelism(intra)
                .run(jobs.clone())
                .expect("parallel batch");
            assert_eq!(
                outcome.report.to_canonical_json(),
                baseline,
                "canonical report must be byte-identical at intra={intra}"
            );
            for (a, b) in serial.report.jobs.iter().zip(outcome.report.jobs.iter()) {
                assert_eq!(a.events.events(), b.events.events(), "job {} trace", a.id);
            }
        }
    }

    #[test]
    fn functional_trace_is_format_aware() {
        use redmule::Format;
        let shape = GemmShape::new(16, 32, 16);
        let (x, w) = data(shape, 3);
        let jobs = vec![GemmJob::new(0, shape, x, w)
            .with_backend(BackendKind::Functional)
            .with_format(Format::Fp8E4M3)];
        let outcome = BatchExecutor::new(1)
            .with_event_trace()
            .run(jobs)
            .expect("traced batch");
        let model = FunctionalGemm::paper_instance();
        let expected = model.synthetic_events_format(shape, Format::Fp8E4M3);
        assert_eq!(outcome.report.jobs[0].events.events(), expected.events());
        assert_ne!(
            expected.events(),
            model.synthetic_events(shape).events(),
            "FP8 must change the synthetic trace, or this test is vacuous"
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let outcome = BatchExecutor::new(4).run(Vec::new()).expect("empty batch");
        assert_eq!(outcome.report.jobs.len(), 0);
        assert_eq!(outcome.schedule.makespan_cycles(), 0);
        assert_eq!(outcome.schedule.parallel_speedup(), 1.0);
    }
}
