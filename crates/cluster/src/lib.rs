//! Behavioural + cycle-cost model of a PULP cluster.
//!
//! RedMulE is not a standalone chip: it is a Hardware Processing Engine
//! (HWPE) living inside an 8-core RISC-V PULP cluster, sharing a
//! Tightly-Coupled Data Memory (TCDM) with the cores through the
//! Heterogeneous Cluster Interconnect (HCI). This crate models that
//! substrate:
//!
//! * [`ClusterConfig`] — the parametric cluster (cores, banks, interconnect
//!   widths, core instruction timings).
//! * [`Tcdm`] — word-interleaved multi-banked scratchpad memory.
//! * [`Hci`] — the two-branch interconnect: a *logarithmic* branch giving
//!   every 32-bit initiator single-cycle access with per-bank round-robin
//!   arbitration, and a *shallow* branch exposing one 288-bit port over 9
//!   adjacent banks to the accelerator, with a starvation-free rotation
//!   between the branches.
//! * [`CoreTimings`] and [`baseline`] — an in-order single-issue RISC-V
//!   core cost model and the parallel FP16 GEMM kernel the paper uses as
//!   its software baseline ("SW execution on 8 RISC-V cores").
//! * [`Dma`] — cycle costs for L2-to-TCDM tile transfers.
//!
//! The software baseline is both *numerically* exact (it computes with the
//! bit-accurate [`redmule_fp16`] softfloat in the same accumulation order as
//! the accelerator) and *cycle-accounted* (every TCDM access goes through
//! the banking and arbitration model), so HW/SW speedup numbers emerge from
//! structure, not curve fitting.
//!
//! # Example
//!
//! ```
//! use redmule_cluster::{baseline::SwGemm, ClusterConfig};
//! use redmule_fp16::{vector::GemmShape, F16};
//!
//! let cfg = ClusterConfig::default();
//! let shape = GemmShape::new(8, 16, 8);
//! let x = vec![F16::ONE; shape.x_len()];
//! let w = vec![F16::HALF; shape.w_len()];
//! let run = SwGemm::new(&cfg).run(shape, &x, &w)?;
//! assert_eq!(run.z[0].to_f32(), 8.0);
//! assert!(run.cycles.count() > 0);
//! # Ok::<(), redmule_cluster::MemError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod baseline;
mod config;
mod dma;
mod hci;
mod tcdm;

pub use config::{ClusterConfig, CoreTimings};
pub use dma::Dma;
pub use hci::{Hci, HciGrants, Initiator};
pub use tcdm::{MemError, Tcdm};
