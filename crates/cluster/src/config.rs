//! Cluster-level configuration.

/// Instruction-timing parameters of one RISC-V cluster core.
///
/// The cores are modelled as single-issue, in-order RV32 pipelines with the
/// PULP FP16 extension (`fmadd.h` through FPnew). Only the parameters that
/// influence the GEMM baseline are exposed.
///
/// # Example
///
/// ```
/// use redmule_cluster::CoreTimings;
/// let t = CoreTimings::default();
/// assert_eq!(t.fma_latency, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreTimings {
    /// Result latency of `fmadd.h` in cycles (FPnew FP16 FMA, pipelined).
    /// A dependent `fmadd.h` on the same accumulator stalls until the
    /// previous result is ready.
    pub fma_latency: u32,
    /// Issue cost of a TCDM load/store when the bank grant is won
    /// (single-cycle latency through the HCI logarithmic branch).
    pub mem_issue: u32,
    /// Issue cost of an integer ALU op (address computation).
    pub alu: u32,
    /// Issue cost of a not-taken/taken branch (the cores have no branch
    /// predictor; taken backwards branches of tight loops cost this much).
    pub branch: u32,
}

impl Default for CoreTimings {
    fn default() -> CoreTimings {
        CoreTimings {
            fma_latency: 4,
            mem_issue: 1,
            alu: 1,
            branch: 1,
        }
    }
}

/// Static configuration of the modelled PULP cluster.
///
/// The defaults mirror the paper's prototype: 8 RISC-V cores, a
/// word-interleaved TCDM behind the HCI with a 9 x 32-bit shallow port
/// (256-bit payload + 32-bit for non-word-aligned accesses) reserved for
/// the HWPE.
///
/// # Example
///
/// ```
/// use redmule_cluster::ClusterConfig;
///
/// let cfg = ClusterConfig::default();
/// assert_eq!(cfg.n_cores, 8);
/// assert_eq!(cfg.shallow_banks, 9);
/// assert_eq!(cfg.tcdm_bytes(), 128 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of RISC-V cores (paper: 8).
    pub n_cores: usize,
    /// Number of 32-bit TCDM banks (PULP default: 16).
    pub n_banks: usize,
    /// Words (32-bit) per TCDM bank.
    pub bank_words: usize,
    /// Banks ganged into the shallow 288-bit branch (paper: 9).
    pub shallow_banks: usize,
    /// Maximum consecutive contended cycles the shallow branch may win
    /// before rotating one grant to the logarithmic branch
    /// (the HCI's "configurable latency").
    pub rotation_streak: u32,
    /// Core pipeline timings.
    pub core: CoreTimings,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            n_cores: 8,
            n_banks: 16,
            bank_words: 2048, // 16 banks * 2048 words * 4 B = 128 KiB
            shallow_banks: 9,
            rotation_streak: 4,
            core: CoreTimings::default(),
        }
    }
}

impl ClusterConfig {
    /// Creates the default 8-core configuration.
    pub fn new() -> ClusterConfig {
        ClusterConfig::default()
    }

    /// Returns a copy with the TCDM resized to at least `kib` KiB
    /// (rounded up to a whole number of words per bank).
    ///
    /// The paper's kernel-level experiments assume operands resident in L1;
    /// sweeps above 128 KiB use this to model an enlarged scratchpad.
    #[must_use]
    pub fn with_tcdm_kib(mut self, kib: usize) -> ClusterConfig {
        let bytes = kib * 1024;
        self.bank_words = bytes.div_ceil(self.n_banks * 4);
        self
    }

    /// Returns a copy with a different core count (the paper's SW scaling
    /// comparisons use 1..8 cores).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn with_cores(mut self, n: usize) -> ClusterConfig {
        assert!(n > 0, "a cluster needs at least one core");
        self.n_cores = n;
        self
    }

    /// Total TCDM capacity in bytes.
    pub fn tcdm_bytes(&self) -> usize {
        self.n_banks * self.bank_words * 4
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cores == 0 {
            return Err("n_cores must be at least 1".into());
        }
        if self.n_banks == 0 {
            return Err("n_banks must be at least 1".into());
        }
        if self.shallow_banks == 0 || self.shallow_banks > self.n_banks {
            return Err(format!(
                "shallow_banks ({}) must be in 1..={}",
                self.shallow_banks, self.n_banks
            ));
        }
        if self.rotation_streak == 0 {
            return Err("rotation_streak must be at least 1".into());
        }
        if self.bank_words == 0 {
            return Err("bank_words must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_prototype() {
        let cfg = ClusterConfig::default();
        assert_eq!(cfg.n_cores, 8);
        assert_eq!(cfg.n_banks, 16);
        assert_eq!(cfg.shallow_banks, 9);
        assert_eq!(cfg.tcdm_bytes(), 131072);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn resize_tcdm_rounds_up() {
        let cfg = ClusterConfig::default().with_tcdm_kib(1000);
        assert!(cfg.tcdm_bytes() >= 1000 * 1024);
        assert!(cfg.tcdm_bytes() < 1000 * 1024 + cfg.n_banks * 4);
    }

    #[test]
    fn with_cores_changes_count() {
        assert_eq!(ClusterConfig::default().with_cores(1).n_cores, 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn with_cores_rejects_zero() {
        let _ = ClusterConfig::default().with_cores(0);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn validate_catches_bad_configs() {
        let mut cfg = ClusterConfig::default();
        cfg.shallow_banks = 17;
        assert!(cfg.validate().is_err());
        cfg.shallow_banks = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ClusterConfig::default();
        cfg.rotation_streak = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ClusterConfig::default();
        cfg.n_banks = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ClusterConfig::default();
        cfg.bank_words = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = ClusterConfig::default();
        cfg.n_cores = 0;
        assert!(cfg.validate().is_err());
    }
}
