//! Cluster DMA cycle-cost model.

use redmule_hwsim::Cycle;

/// The cluster's lightweight DMA engine moving data between L2 and the
/// TCDM.
///
/// The paper's use-case experiments (TinyMLPerf autoencoder, Fig. 4c/4d)
/// keep activations in L2 and stream tiles into the TCDM; this model
/// provides the corresponding cycle costs: a fixed programming/setup
/// overhead plus a 64-bit-per-cycle transfer rate on the AXI port.
///
/// # Example
///
/// ```
/// use redmule_cluster::Dma;
///
/// let dma = Dma::default();
/// let c = dma.transfer_cycles(1024);
/// assert_eq!(c.count(), dma.setup_cycles() as u64 + 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dma {
    setup: u32,
    bytes_per_cycle: u32,
}

impl Default for Dma {
    fn default() -> Dma {
        Dma {
            setup: 12,
            bytes_per_cycle: 8,
        }
    }
}

impl Dma {
    /// Creates a DMA model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is zero.
    pub fn new(setup: u32, bytes_per_cycle: u32) -> Dma {
        assert!(bytes_per_cycle > 0, "transfer rate must be positive");
        Dma {
            setup,
            bytes_per_cycle,
        }
    }

    /// Fixed programming overhead per transfer, in cycles.
    pub fn setup_cycles(&self) -> u32 {
        self.setup
    }

    /// Streaming bandwidth in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> u32 {
        self.bytes_per_cycle
    }

    /// Cycles to move `bytes` in one programmed transfer.
    pub fn transfer_cycles(&self, bytes: usize) -> Cycle {
        if bytes == 0 {
            return Cycle::ZERO;
        }
        Cycle::new(u64::from(self.setup) + bytes.div_ceil(self.bytes_per_cycle as usize) as u64)
    }

    /// Cycles to move `bytes` split into `n_tiles` equal transfers (double
    /// buffering pays the setup once per tile).
    ///
    /// # Panics
    ///
    /// Panics if `n_tiles` is zero.
    pub fn tiled_transfer_cycles(&self, bytes: usize, n_tiles: usize) -> Cycle {
        assert!(n_tiles > 0, "at least one tile required");
        let per_tile = bytes.div_ceil(n_tiles);
        Cycle::new(
            (0..n_tiles)
                .map(|i| {
                    let this = per_tile.min(bytes - (i * per_tile).min(bytes));
                    self.transfer_cycles(this).count()
                })
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_bytes_cost_nothing() {
        assert_eq!(Dma::default().transfer_cycles(0), Cycle::ZERO);
    }

    #[test]
    fn rate_rounds_up() {
        let dma = Dma::new(10, 8);
        assert_eq!(dma.transfer_cycles(1).count(), 11);
        assert_eq!(dma.transfer_cycles(8).count(), 11);
        assert_eq!(dma.transfer_cycles(9).count(), 12);
    }

    #[test]
    fn tiling_pays_setup_per_tile() {
        let dma = Dma::new(10, 8);
        let whole = dma.transfer_cycles(800).count();
        let tiled = dma.tiled_transfer_cycles(800, 4).count();
        assert_eq!(tiled, whole + 3 * 10);
    }

    #[test]
    fn tiling_handles_remainders() {
        let dma = Dma::new(0, 8);
        // 10 bytes in 3 tiles: 4 + 4 + 2 bytes -> 1 + 1 + 1 cycles.
        assert_eq!(dma.tiled_transfer_cycles(10, 3).count(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = Dma::new(0, 0);
    }

    #[test]
    fn accessors() {
        let dma = Dma::default();
        assert_eq!(dma.setup_cycles(), 12);
        assert_eq!(dma.bytes_per_cycle(), 8);
    }
}
