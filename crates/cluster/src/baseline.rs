//! The software GEMM baseline: parallel FP16 matrix multiplication on the
//! cluster cores.
//!
//! This is the paper's comparison point ("SW execution on 8 RISC-V
//! cores"). The kernel is the standard three-loop GEMM with the `M` rows
//! of `Z` statically partitioned across cores. Each core runs an in-order,
//! single-issue instruction schedule:
//!
//! ```text
//! for i in my_rows:
//!   for j in 0..K:
//!     acc = 0                  ; 1 ALU cycle
//!     for l in 0..N:           ; inner loop, one FP16 MAC per iteration
//!       lh   rx, X[i][l]       ; TCDM load (log branch, may conflict)
//!       lh   rw, W[l][j]       ; TCDM load (log branch, may conflict)
//!       addi pw, pw, 2*K       ; W-pointer stride
//!       fmadd.h acc, rx, rw    ; stalls while the previous acc is in
//!                              ;   flight (FMA latency)
//!       bne  l, N, inner       ; loop branch (no HW-loop for FP code)
//!     sh   acc, Z[i][j]        ; TCDM store
//!     addi / bne               ; j-loop overhead (2 cycles)
//! ```
//!
//! Every load and store is arbitrated by the [`Hci`] model, so multi-core
//! bank conflicts lengthen execution exactly as interleaved banking
//! predicts. Numerically the kernel accumulates with the same
//! fused-multiply-add order as [`redmule_fp16::vector::gemm_golden`], hence
//! the result is bit-identical to the golden model and to the accelerator.

use crate::config::ClusterConfig;
use crate::hci::{Hci, Initiator};
use crate::tcdm::{MemError, Tcdm};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use redmule_hwsim::{Cycle, Stats};

/// Cycles consumed by the final barrier that re-synchronises the cores
/// (event-unit wakeup).
const BARRIER_CYCLES: u64 = 20;

/// For matrix-vector-like shapes (`K <= 2`) every core would read the same
/// W operand stream and serialise on its banks. Optimised PULP kernels
/// privatise the shared vector into per-core L1 buffers first; this is the
/// per-element copy cost (load + store + loop, amortised).
const PRIVATIZE_CYCLES_PER_ELEM: u64 = 4;
const PRIVATIZE_MAX_K: usize = 2;

/// Result of a software GEMM execution.
#[derive(Debug, Clone)]
pub struct SwRun {
    /// The computed `Z` matrix (row-major, `m x k`).
    pub z: Vec<F16>,
    /// Total execution cycles (slowest core + barrier).
    pub cycles: Cycle,
    /// The executed shape.
    pub shape: GemmShape,
    /// Event counters: per-core busy cycles, FMA stalls, TCDM conflicts.
    pub stats: Stats,
}

impl SwRun {
    /// Achieved MAC throughput in MACs per cycle across the cluster.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles.count() == 0 {
            return 0.0;
        }
        self.shape.macs() as f64 / self.cycles.count() as f64
    }
}

/// Which inner-loop code the software kernel uses.
///
/// The paper's baseline appears to be the scalar three-loop kernel
/// ([`KernelVariant::Scalar`]); PULP cores also offer packed-SIMD FP16
/// (`vfmac.h`), which processes two reduction steps per FMA instruction at
/// the cost of lane-split accumulation ([`KernelVariant::Simd2`] — its
/// numerical contract is [`redmule_fp16::vector::gemm_golden_simd2`]).
/// The `ablation_sw_kernel` bench uses this to quantify how much the
/// paper's speedup numbers depend on the baseline kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelVariant {
    /// Naive scalar three-loop kernel (one `fmadd.h` per MAC).
    #[default]
    Scalar,
    /// Packed-SIMD kernel: one `vfmac.h` per two MACs, even/odd lanes
    /// accumulated separately and reduced at the end of each dot product.
    Simd2,
}

/// The parallel software GEMM kernel runner.
///
/// # Example
///
/// ```
/// use redmule_cluster::{baseline::SwGemm, ClusterConfig};
/// use redmule_fp16::{vector::GemmShape, F16};
///
/// let shape = GemmShape::new(4, 4, 4);
/// let x = vec![F16::ONE; 16];
/// let w = vec![F16::ONE; 16];
/// let run = SwGemm::new(&ClusterConfig::default()).run(shape, &x, &w)?;
/// assert!(run.z.iter().all(|v| v.to_f32() == 4.0));
/// # Ok::<(), redmule_cluster::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SwGemm {
    cfg: ClusterConfig,
    variant: KernelVariant,
}

/// Per-core execution state for the lockstep simulation.
#[derive(Debug)]
struct CoreState {
    /// Last row (exclusive) of the Z range assigned to this core.
    row_end: usize,
    /// Loop counters. `jj` counts iterations; the effective column is
    /// `(jj + j0) % k` — each core starts at a different column `j0` so
    /// the per-core W-address streams are bank-decorrelated (the standard
    /// software mitigation for interleaved-banking conflicts).
    i: usize,
    jj: usize,
    j0: usize,
    l: usize,
    /// Micro-architectural stage within the loop body.
    stage: Stage,
    /// Register file slice (`*1` registers are the second SIMD lane).
    rx: F16,
    rx1: F16,
    rw: F16,
    rw1: F16,
    acc: F16,
    acc1: F16,
    /// Cycle at which the in-flight FMA result becomes available.
    acc_ready_at: u64,
    /// Remaining extra cycles of a multi-cycle instruction (issue-width
    /// beyond the first cycle, e.g. taken-branch penalties).
    wait: u32,
    done: bool,
    /// Counters.
    busy: u64,
    fma_stalls: u64,
    mem_retries: u64,
}

impl CoreState {
    /// Effective output column for the current `jj` counter.
    fn col(&self, k: usize) -> usize {
        debug_assert!(k > 0, "no columns to iterate");
        (self.jj + self.j0) % k
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    JInit,
    LoadX,
    LoadW,
    /// SIMD only: second W element of the pair (stride `K` away).
    LoadW2,
    Addi,
    Fma,
    InnerBranch,
    /// SIMD only: lane reduction `acc += acc1` after the pair loop.
    Reduce,
    /// SIMD only: scalar tail for odd N.
    TailLoadX,
    TailLoadW,
    TailFma,
    StoreZ,
    JStep,
    JBranch,
}

impl SwGemm {
    /// Creates a runner for the given cluster.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ClusterConfig::validate`].
    pub fn new(cfg: &ClusterConfig) -> SwGemm {
        // modelcheck-allow: RM-PANIC-001 -- documented constructor contract:
        // an invalid ClusterConfig is a programming error, and
        // ClusterConfig::validate is the fallible path for untrusted input.
        cfg.validate().expect("invalid cluster configuration");
        SwGemm {
            cfg: cfg.clone(),
            variant: KernelVariant::Scalar,
        }
    }

    /// Selects the inner-loop kernel variant.
    #[must_use]
    pub fn with_variant(mut self, variant: KernelVariant) -> SwGemm {
        self.variant = variant;
        self
    }

    /// Executes `Z = X * W` on the cluster cores and returns the result
    /// with its cycle cost.
    ///
    /// If the operands exceed the configured TCDM, the scratchpad is
    /// enlarged for the run (recorded in `stats` as `tcdm_oversized`),
    /// mirroring the paper's operands-resident-in-L1 kernel methodology.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] if the computed scratchpad layout does not
    /// fit the (possibly enlarged) TCDM — a modelling bug rather than a
    /// user error, but surfaced instead of aborting the simulation.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match `shape`.
    pub fn run(&self, shape: GemmShape, x: &[F16], w: &[F16]) -> Result<SwRun, MemError> {
        assert_eq!(x.len(), shape.x_len(), "X has wrong length for {shape}");
        assert_eq!(w.len(), shape.w_len(), "W has wrong length for {shape}");

        let mut stats = Stats::new();

        // Matrix-vector-like jobs privatise W per core (see constants).
        let privatize = shape.k > 0 && shape.k <= PRIVATIZE_MAX_K && shape.n > 0;
        // The SIMD kernel needs at least one even/odd pair; tiny loops use
        // the scalar code (as a compiler would decide).
        let simd = self.variant == KernelVariant::Simd2 && shape.n >= 2;
        let pair_end = if simd { shape.n - shape.n % 2 } else { 0 };

        // Lay X, W, Z out contiguously in the scratchpad, plus per-core
        // private W copies when privatising.
        let n_cores_cfg = self.cfg.n_cores;
        let priv_stride = (2 * shape.w_len() + 4).next_multiple_of(4) as u32 + 4;
        let priv_bytes = if privatize {
            priv_stride as usize * n_cores_cfg
        } else {
            0
        };
        let needed = shape.footprint_bytes() + 64 + priv_bytes;
        let mut cfg = self.cfg.clone();
        if needed > cfg.tcdm_bytes() {
            cfg = cfg.with_tcdm_kib(needed.div_ceil(1024));
            stats.incr("tcdm_oversized");
        }
        let mut mem = Tcdm::new(&cfg);
        let x_base = 0u32;
        let w_base = x_base + 2 * shape.x_len() as u32;
        let z_base = w_base + 2 * shape.w_len() as u32;
        mem.store_f16_slice(x_base, x)?;
        mem.store_f16_slice(w_base, w)?;

        // Per-core private W copies, bank-decorrelated by the stride pad.
        let priv_base = z_base + 2 * shape.z_len() as u32;
        let mut priv_cycles: u64 = 0;
        if privatize {
            for c in 0..n_cores_cfg {
                mem.store_f16_slice(priv_base + c as u32 * priv_stride, w)?;
            }
            priv_cycles = PRIVATIZE_CYCLES_PER_ELEM
                .saturating_mul(shape.w_len() as u64)
                .saturating_add(BARRIER_CYCLES);
            stats.add("w_privatize_cycles", priv_cycles);
        }

        let mut hci = Hci::new(&cfg);

        // Static row partition: core c takes rows [c*chunk, ...).
        let n_cores = cfg.n_cores;
        let chunk = shape.m.div_ceil(n_cores.max(1));
        let mut cores: Vec<CoreState> = (0..n_cores)
            .map(|c| {
                let row_begin = (c * chunk).min(shape.m);
                let row_end = ((c + 1) * chunk).min(shape.m);
                CoreState {
                    row_end,
                    i: row_begin,
                    jj: 0,
                    // Stagger each core's starting column. The extra `2*c`
                    // keeps the offsets distinct modulo the TCDM banking
                    // period (2 * n_banks elements) even when K is a large
                    // power of two, where `c*K/n_cores` alone aliases.
                    j0: if shape.k == 0 {
                        0
                    } else {
                        (c * shape.k / n_cores.max(1) + 2 * c) % shape.k
                    },
                    l: 0,
                    stage: Stage::JInit,
                    rx: F16::ZERO,
                    rx1: F16::ZERO,
                    rw: F16::ZERO,
                    rw1: F16::ZERO,
                    acc: F16::ZERO,
                    acc1: F16::ZERO,
                    acc_ready_at: 0,
                    wait: 0,
                    done: row_begin >= row_end || shape.k == 0,
                    busy: 0,
                    fma_stalls: 0,
                    mem_retries: 0,
                }
            })
            .collect();

        let fma_latency = u64::from(cfg.core.fma_latency);
        let extra_mem = cfg.core.mem_issue.saturating_sub(1);
        let extra_alu = cfg.core.alu.saturating_sub(1);
        let extra_branch = cfg.core.branch.saturating_sub(1);
        let mut cycle: u64 = 0;
        let mut reqs: Vec<(Initiator, u32)> = Vec::with_capacity(n_cores);
        let mut req_core: Vec<usize> = Vec::with_capacity(n_cores);
        let mut granted = vec![false; n_cores];
        // Degenerate shapes (no work at all) finish immediately.
        while cores.iter().any(|c| !c.done) {
            // Gather this cycle's memory requests.
            reqs.clear();
            req_core.clear();
            granted.fill(false);
            for (idx, core) in cores.iter().enumerate() {
                if core.done {
                    continue;
                }
                let addr = match core.stage {
                    Stage::LoadX | Stage::TailLoadX => {
                        Some(x_base + 2 * (core.i * shape.n + core.l) as u32)
                    }
                    Stage::LoadW | Stage::TailLoadW => {
                        let base = if privatize {
                            priv_base + idx as u32 * priv_stride
                        } else {
                            w_base
                        };
                        Some(base + 2 * (core.l * shape.k + core.col(shape.k)) as u32)
                    }
                    Stage::LoadW2 => {
                        let base = if privatize {
                            priv_base + idx as u32 * priv_stride
                        } else {
                            w_base
                        };
                        Some(base + 2 * ((core.l + 1) * shape.k + core.col(shape.k)) as u32)
                    }
                    Stage::StoreZ => {
                        Some(z_base + 2 * (core.i * shape.k + core.col(shape.k)) as u32)
                    }
                    _ => None,
                };
                if let Some(a) = addr {
                    reqs.push((Initiator::Core(idx), a));
                    req_core.push(idx);
                }
            }
            if !reqs.is_empty() {
                let grants = hci.arbitrate(&reqs, None);
                for (ri, &cidx) in req_core.iter().enumerate() {
                    granted[cidx] = grants.log_granted[ri];
                }
            }

            // Advance each core by one instruction slot. Cores leave the
            // fork barrier one cycle apart (event-unit wakeup ripple),
            // which also prevents unrealistic pathological lockstep bank
            // aliasing between identical per-core instruction streams.
            for (idx, core) in cores.iter_mut().enumerate() {
                if core.done || cycle < idx as u64 {
                    continue;
                }
                core.busy += 1;
                if core.wait > 0 {
                    core.wait -= 1;
                    continue;
                }
                match core.stage {
                    Stage::JInit => {
                        core.acc = F16::ZERO;
                        core.acc1 = F16::ZERO;
                        core.l = 0;
                        core.wait = extra_alu;
                        // N == 1 is an outer product: the compiler unrolls
                        // the single-iteration inner loop and hoists the
                        // loop-invariant X element across the j-loop.
                        core.stage = if shape.n == 0 {
                            Stage::StoreZ
                        } else if shape.n == 1 && core.jj > 0 {
                            Stage::LoadW
                        } else {
                            Stage::LoadX
                        };
                    }
                    Stage::LoadX => {
                        if granted[idx] {
                            let addr = x_base + 2 * (core.i * shape.n + core.l) as u32;
                            core.rx = mem.read_f16(addr)?;
                            if simd {
                                core.rx1 = mem.read_f16(addr + 2)?;
                                // A misaligned 32-bit load needs two bus
                                // accesses on RI5CY-class cores.
                                core.wait = extra_mem + u32::from(!addr.is_multiple_of(4));
                            } else {
                                core.wait = extra_mem;
                            }
                            core.stage = Stage::LoadW;
                        } else {
                            core.mem_retries += 1;
                        }
                    }
                    Stage::LoadW => {
                        if granted[idx] {
                            let base = if privatize {
                                priv_base + idx as u32 * priv_stride
                            } else {
                                w_base
                            };
                            let addr = base + 2 * (core.l * shape.k + core.col(shape.k)) as u32;
                            core.rw = mem.read_f16(addr)?;
                            core.wait = extra_mem;
                            core.stage = if simd {
                                Stage::LoadW2
                            } else if shape.n == 1 {
                                Stage::Fma // no pointer stride in the unrolled form
                            } else {
                                Stage::Addi
                            };
                        } else {
                            core.mem_retries += 1;
                        }
                    }
                    Stage::LoadW2 => {
                        if granted[idx] {
                            let base = if privatize {
                                priv_base + idx as u32 * priv_stride
                            } else {
                                w_base
                            };
                            let addr =
                                base + 2 * ((core.l + 1) * shape.k + core.col(shape.k)) as u32;
                            core.rw1 = mem.read_f16(addr)?;
                            core.wait = extra_mem;
                            core.stage = Stage::Addi;
                        } else {
                            core.mem_retries += 1;
                        }
                    }
                    Stage::Addi => {
                        core.wait = extra_alu;
                        core.stage = Stage::Fma;
                    }
                    Stage::Fma => {
                        if cycle < core.acc_ready_at {
                            core.fma_stalls += 1;
                        } else {
                            core.acc = core.rx.mul_add(core.rw, core.acc);
                            if simd {
                                core.acc1 = core.rx1.mul_add(core.rw1, core.acc1);
                            }
                            core.acc_ready_at = cycle.saturating_add(fma_latency);
                            core.stage = if shape.n == 1 {
                                Stage::StoreZ // unrolled: no inner branch
                            } else {
                                Stage::InnerBranch
                            };
                        }
                    }
                    Stage::InnerBranch => {
                        core.wait = extra_branch;
                        if simd {
                            core.l += 2;
                            core.stage = if core.l < pair_end {
                                Stage::LoadX
                            } else {
                                Stage::Reduce
                            };
                        } else {
                            core.l += 1;
                            core.stage = if core.l < shape.n {
                                Stage::LoadX
                            } else {
                                Stage::StoreZ
                            };
                        }
                    }
                    Stage::Reduce => {
                        // Lane reduction is itself an FP addition with the
                        // same result latency.
                        if cycle < core.acc_ready_at {
                            core.fma_stalls += 1;
                        } else {
                            core.acc += core.acc1;
                            core.acc_ready_at = cycle.saturating_add(fma_latency);
                            core.stage = if shape.n % 2 == 1 {
                                core.l = shape.n - 1;
                                Stage::TailLoadX
                            } else {
                                Stage::StoreZ
                            };
                        }
                    }
                    Stage::TailLoadX => {
                        if granted[idx] {
                            let addr = x_base + 2 * (core.i * shape.n + core.l) as u32;
                            core.rx = mem.read_f16(addr)?;
                            core.wait = extra_mem;
                            core.stage = Stage::TailLoadW;
                        } else {
                            core.mem_retries += 1;
                        }
                    }
                    Stage::TailLoadW => {
                        if granted[idx] {
                            let base = if privatize {
                                priv_base + idx as u32 * priv_stride
                            } else {
                                w_base
                            };
                            let addr = base + 2 * (core.l * shape.k + core.col(shape.k)) as u32;
                            core.rw = mem.read_f16(addr)?;
                            core.wait = extra_mem;
                            core.stage = Stage::TailFma;
                        } else {
                            core.mem_retries += 1;
                        }
                    }
                    Stage::TailFma => {
                        if cycle < core.acc_ready_at {
                            core.fma_stalls += 1;
                        } else {
                            core.acc = core.rx.mul_add(core.rw, core.acc);
                            core.acc_ready_at = cycle.saturating_add(fma_latency);
                            core.stage = Stage::StoreZ;
                        }
                    }
                    Stage::StoreZ => {
                        if granted[idx] {
                            // The store needs the final accumulator value.
                            if cycle < core.acc_ready_at {
                                core.fma_stalls += 1;
                            } else {
                                let addr =
                                    z_base + 2 * (core.i * shape.k + core.col(shape.k)) as u32;
                                mem.write_f16(addr, core.acc)?;
                                core.wait = extra_mem;
                                core.stage = Stage::JStep;
                            }
                        } else {
                            core.mem_retries += 1;
                        }
                    }
                    Stage::JStep => {
                        core.jj += 1;
                        if core.jj >= shape.k {
                            core.jj = 0;
                            core.i += 1;
                        }
                        core.wait = extra_alu;
                        core.stage = Stage::JBranch;
                    }
                    Stage::JBranch => {
                        if core.i >= core.row_end {
                            core.done = true;
                        } else {
                            core.stage = Stage::JInit;
                        }
                    }
                }
            }
            cycle = cycle.saturating_add(1);
        }

        let total = if shape.m == 0 || shape.k == 0 {
            Cycle::ZERO
        } else {
            Cycle::new(
                cycle
                    .saturating_add(BARRIER_CYCLES)
                    .saturating_add(priv_cycles),
            )
        };

        for (idx, core) in cores.iter().enumerate() {
            stats.add(&format!("core{idx}_busy"), core.busy);
            stats.add("fma_stalls", core.fma_stalls);
            stats.add("mem_retries", core.mem_retries);
        }
        stats.merge(hci.stats());
        stats.add("macs", shape.macs());

        let z = mem.load_f16_slice(z_base, shape.z_len())?;
        Ok(SwRun {
            z,
            cycles: total,
            shape,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redmule_fp16::vector::gemm_golden;

    fn run(shape: GemmShape, cores: usize) -> SwRun {
        let cfg = ClusterConfig::default().with_cores(cores);
        let x: Vec<F16> = (0..shape.x_len())
            .map(|i| F16::from_f32(((i % 23) as f32 - 11.0) / 8.0))
            .collect();
        let w: Vec<F16> = (0..shape.w_len())
            .map(|i| F16::from_f32(((i % 19) as f32 - 9.0) / 16.0))
            .collect();
        SwGemm::new(&cfg).run(shape, &x, &w).unwrap()
    }

    fn bits(v: &[F16]) -> Vec<u16> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn matches_golden_model_bitwise() {
        for (m, n, k) in [(1, 1, 1), (3, 5, 7), (8, 16, 8), (13, 9, 4)] {
            let shape = GemmShape::new(m, n, k);
            let x: Vec<F16> = (0..shape.x_len())
                .map(|i| F16::from_f32(((i * 7 % 31) as f32 - 15.0) / 4.0))
                .collect();
            let w: Vec<F16> = (0..shape.w_len())
                .map(|i| F16::from_f32(((i * 5 % 29) as f32 - 14.0) / 8.0))
                .collect();
            let sw = SwGemm::new(&ClusterConfig::default())
                .run(shape, &x, &w)
                .unwrap();
            let golden = gemm_golden(shape, &x, &w);
            assert_eq!(bits(&sw.z), bits(&golden), "shape {shape}");
        }
    }

    #[test]
    fn single_core_cost_is_about_five_cycles_per_mac() {
        let shape = GemmShape::new(4, 64, 4);
        let r = run(shape, 1);
        let cpm = r.cycles.count() as f64 / shape.macs() as f64;
        // 5 issue slots per inner iteration, plus j-loop overhead.
        assert!((5.0..6.0).contains(&cpm), "cycles/MAC = {cpm}");
    }

    #[test]
    fn eight_cores_scale_nearly_linearly_on_large_matrices() {
        let shape = GemmShape::new(32, 32, 16);
        let one = run(shape, 1).cycles.count() as f64;
        let eight = run(shape, 8).cycles.count() as f64;
        let scaling = one / eight;
        assert!((6.0..=8.0).contains(&scaling), "8-core scaling = {scaling}");
    }

    #[test]
    fn unbalanced_rows_limit_scaling() {
        // M = 2 on 8 cores: only two cores have work.
        let shape = GemmShape::new(2, 32, 8);
        let r = run(shape, 8);
        let active = (0..8)
            .filter(|c| r.stats.get(&format!("core{c}_busy")) > 0)
            .count();
        assert_eq!(active, 2);
    }

    #[test]
    fn conflicts_are_recorded_with_many_cores() {
        let r = run(GemmShape::new(16, 32, 8), 8);
        assert!(r.stats.get("log_conflicts") > 0, "8 cores must conflict");
        assert!(r.stats.get("mem_retries") > 0);
    }

    #[test]
    fn empty_shapes_cost_nothing() {
        for shape in [GemmShape::new(0, 4, 4), GemmShape::new(4, 4, 0)] {
            let r = run(shape, 8);
            assert_eq!(r.cycles, Cycle::ZERO);
            assert!(r.z.iter().all(|v| v.is_zero()));
        }
    }

    #[test]
    fn zero_inner_dimension_stores_zeros() {
        let r = run(GemmShape::new(2, 0, 3), 4);
        assert_eq!(r.z, vec![F16::ZERO; 6]);
        assert!(r.cycles.count() > 0); // still stores six zeros
    }

    #[test]
    fn macs_per_cycle_is_reported() {
        let r = run(GemmShape::new(16, 16, 16), 8);
        let mpc = r.macs_per_cycle();
        assert!(mpc > 0.5 && mpc < 2.5, "SW MAC/cycle = {mpc}");
    }

    #[test]
    fn simd2_matches_its_golden_model() {
        use redmule_fp16::vector::gemm_golden_simd2;
        for (m, n, k) in [
            (3, 8, 5),
            (2, 9, 4),
            (1, 2, 1),
            (4, 1, 4),
            (2, 0, 3),
            (5, 3, 16),
        ] {
            let shape = GemmShape::new(m, n, k);
            let x: Vec<F16> = (0..shape.x_len())
                .map(|i| F16::from_f32(((i * 7 % 31) as f32 - 15.0) / 4.0))
                .collect();
            let w: Vec<F16> = (0..shape.w_len())
                .map(|i| F16::from_f32(((i * 5 % 29) as f32 - 14.0) / 8.0))
                .collect();
            let run = SwGemm::new(&ClusterConfig::default())
                .with_variant(KernelVariant::Simd2)
                .run(shape, &x, &w)
                .unwrap();
            let golden = gemm_golden_simd2(shape, &x, &w);
            assert_eq!(bits(&run.z), bits(&golden), "shape {shape}");
        }
    }

    #[test]
    fn simd2_is_meaningfully_faster_than_scalar() {
        let shape = GemmShape::new(16, 64, 16);
        let x = vec![F16::HALF; shape.x_len()];
        let w = vec![F16::HALF; shape.w_len()];
        let scalar = SwGemm::new(&ClusterConfig::default())
            .run(shape, &x, &w)
            .unwrap();
        let simd = SwGemm::new(&ClusterConfig::default())
            .with_variant(KernelVariant::Simd2)
            .run(shape, &x, &w)
            .unwrap();
        let gain = scalar.cycles.count() as f64 / simd.cycles.count() as f64;
        // 5 issue slots/MAC -> 6 slots/2 MACs: ~1.6x expected.
        assert!((1.3..2.1).contains(&gain), "SIMD gain = {gain}");
    }

    #[test]
    fn simd2_handles_misaligned_pairs() {
        // Odd N makes every other row's pair loads misaligned; results must
        // still match the SIMD golden model.
        use redmule_fp16::vector::gemm_golden_simd2;
        let shape = GemmShape::new(4, 7, 3);
        let x: Vec<F16> = (0..shape.x_len())
            .map(|i| F16::from_f32(i as f32 / 8.0 - 1.5))
            .collect();
        let w: Vec<F16> = (0..shape.w_len())
            .map(|i| F16::from_f32(1.0 - i as f32 / 16.0))
            .collect();
        let run = SwGemm::new(&ClusterConfig::default())
            .with_variant(KernelVariant::Simd2)
            .run(shape, &x, &w)
            .unwrap();
        assert_eq!(bits(&run.z), bits(&gemm_golden_simd2(shape, &x, &w)));
    }

    #[test]
    fn slower_core_timings_slow_the_kernel() {
        let shape = GemmShape::new(8, 32, 8);
        let x = vec![F16::ONE; shape.x_len()];
        let w = vec![F16::ONE; shape.w_len()];
        let base = SwGemm::new(&ClusterConfig::default())
            .run(shape, &x, &w)
            .unwrap();
        let mut slow_cfg = ClusterConfig::default();
        slow_cfg.core.branch = 3; // RI5CY-like taken-branch penalty
        let slow = SwGemm::new(&slow_cfg).run(shape, &x, &w).unwrap();
        // Two extra cycles per inner iteration: ~7/5 slowdown.
        let ratio = slow.cycles.count() as f64 / base.cycles.count() as f64;
        assert!((1.2..1.6).contains(&ratio), "slowdown ratio = {ratio}");
        assert_eq!(
            bits(&slow.z),
            bits(&base.z),
            "timings must not change numerics"
        );

        // A longer FMA latency that no longer hides behind the loop body
        // also stalls the accumulator chain.
        let mut lat_cfg = ClusterConfig::default();
        lat_cfg.core.fma_latency = 8;
        let lat = SwGemm::new(&lat_cfg).run(shape, &x, &w).unwrap();
        assert!(lat.cycles > base.cycles);
        assert!(lat.stats.get("fma_stalls") > base.stats.get("fma_stalls"));
    }

    #[test]
    fn oversized_operands_grow_the_scratchpad() {
        // A 1 KiB scratchpad cannot hold a 16x16x16 problem (1.5 KiB).
        let cfg = ClusterConfig::default().with_tcdm_kib(1);
        let shape = GemmShape::new(16, 16, 16);
        let x = vec![F16::ONE; shape.x_len()];
        let w = vec![F16::ONE; shape.w_len()];
        let r = SwGemm::new(&cfg).run(shape, &x, &w).unwrap();
        assert_eq!(r.stats.get("tcdm_oversized"), 1);
        assert_eq!(r.z.len(), shape.z_len());
        assert!(r.z.iter().all(|v| v.to_f32() == 16.0));
    }
}
