//! Word-interleaved Tightly-Coupled Data Memory.

use crate::config::ClusterConfig;
use redmule_fp16::F16;
use redmule_hwsim::snapshot::{Snapshot, SnapshotError, StateReader, StateWriter};
use redmule_hwsim::StuckBit;
use std::collections::BTreeMap;
use std::fmt;

/// Error for invalid TCDM accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address beyond the end of the scratchpad.
    OutOfBounds {
        /// Offending byte address.
        addr: u32,
        /// Memory size in bytes.
        size: u32,
    },
    /// Address not aligned to the access width.
    Misaligned {
        /// Offending byte address.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, size } => {
                write!(f, "address {addr:#x} outside TCDM of {size} bytes")
            }
            MemError::Misaligned { addr, align } => {
                write!(f, "address {addr:#x} not aligned to {align} bytes")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// The cluster scratchpad: `n_banks` single-ported 32-bit banks,
/// word-interleaved so consecutive words live in consecutive banks.
///
/// Interleaving is what makes both access patterns of the paper work:
/// cores spread scalar accesses across banks (logarithmic branch), and a
/// 256-bit accelerator row access touches [`ClusterConfig::shallow_banks`]
/// *adjacent* banks exactly once each (shallow branch).
///
/// # Example
///
/// ```
/// use redmule_cluster::{ClusterConfig, Tcdm};
///
/// let mut mem = Tcdm::new(&ClusterConfig::default());
/// mem.write_u32(0x40, 0xDEAD_BEEF)?;
/// assert_eq!(mem.read_u32(0x40)?, 0xDEAD_BEEF);
/// assert_eq!(mem.bank_of(0x40), (0x40 / 4) % 16);
/// # Ok::<(), redmule_cluster::MemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tcdm {
    n_banks: usize,
    words: Vec<u32>,
    /// Stuck-at faults by word index, applied to every read until cleared.
    stuck: BTreeMap<usize, StuckBit>,
}

impl Tcdm {
    /// Allocates a zero-initialised scratchpad per the cluster config.
    pub fn new(cfg: &ClusterConfig) -> Tcdm {
        Tcdm {
            n_banks: cfg.n_banks,
            words: vec![0; cfg.n_banks * cfg.bank_words],
            stuck: BTreeMap::new(),
        }
    }

    /// The stored word at `idx` as a read port observes it: stuck-at
    /// faults pin their bit on every read.
    fn observe(&self, idx: usize) -> u32 {
        let raw = self.words[idx];
        match self.stuck.get(&idx) {
            Some(s) => s.apply32(raw),
            None => raw,
        }
    }

    /// Injects a transient single-bit flip into the stored word containing
    /// byte address `addr` (`bit` counts from the word's LSB).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if `addr` is beyond the scratchpad.
    pub fn flip_bit(&mut self, addr: u32, bit: u8) -> Result<(), MemError> {
        let idx = self.word_index(addr & !3, 4)?;
        self.words[idx] = redmule_hwsim::faults::flip_bit32(self.words[idx], bit);
        Ok(())
    }

    /// Pins one bit of the word containing `addr` to a fixed value on every
    /// subsequent read (a stuck-at fault); writes still update the cell
    /// underneath, so clearing the fault reveals the written data.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if `addr` is beyond the scratchpad.
    pub fn set_stuck(&mut self, addr: u32, fault: StuckBit) -> Result<(), MemError> {
        let idx = self.word_index(addr & !3, 4)?;
        self.stuck.insert(idx, fault);
        Ok(())
    }

    /// Removes a stuck-at fault previously set on the word containing
    /// `addr`; returns whether one was present.
    pub fn clear_stuck(&mut self, addr: u32) -> bool {
        let idx = addr as usize / 4;
        self.stuck.remove(&idx).is_some()
    }

    /// Number of words currently carrying a stuck-at fault.
    pub fn stuck_faults(&self) -> usize {
        self.stuck.len()
    }

    /// Capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Number of banks.
    pub fn n_banks(&self) -> usize {
        self.n_banks
    }

    /// Bank index serving byte address `addr`.
    pub fn bank_of(&self, addr: u32) -> usize {
        (addr as usize / 4) % self.n_banks
    }

    fn word_index(&self, addr: u32, align: u32) -> Result<usize, MemError> {
        if !addr.is_multiple_of(align) {
            return Err(MemError::Misaligned { addr, align });
        }
        let idx = addr as usize / 4;
        if idx >= self.words.len() {
            return Err(MemError::OutOfBounds {
                addr,
                size: self.size_bytes() as u32,
            });
        }
        Ok(idx)
    }

    /// Reads an aligned 32-bit word.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        Ok(self.observe(self.word_index(addr, 4)?))
    }

    /// Writes an aligned 32-bit word.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        let idx = self.word_index(addr, 4)?;
        self.words[idx] = value;
        Ok(())
    }

    /// Reads an aligned 16-bit halfword (an FP16 element).
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn read_u16(&self, addr: u32) -> Result<u16, MemError> {
        if !addr.is_multiple_of(2) {
            return Err(MemError::Misaligned { addr, align: 2 });
        }
        let word = self.observe(self.word_index(addr & !3, 4)?);
        Ok(if addr & 2 == 0 {
            word as u16
        } else {
            (word >> 16) as u16
        })
    }

    /// Writes an aligned 16-bit halfword.
    ///
    /// # Errors
    ///
    /// [`MemError::Misaligned`] or [`MemError::OutOfBounds`].
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), MemError> {
        if !addr.is_multiple_of(2) {
            return Err(MemError::Misaligned { addr, align: 2 });
        }
        let idx = self.word_index(addr & !3, 4)?;
        let word = &mut self.words[idx];
        if addr & 2 == 0 {
            *word = (*word & 0xFFFF_0000) | u32::from(value);
        } else {
            *word = (*word & 0x0000_FFFF) | (u32::from(value) << 16);
        }
        Ok(())
    }

    /// Reads a single byte (an FP8 element). Any address is aligned.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`].
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        let word = self.observe(self.word_index(addr & !3, 4)?);
        Ok((word >> ((addr & 3) * 8)) as u8)
    }

    /// Writes a single byte (an FP8 element). Any address is aligned.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`].
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        let idx = self.word_index(addr & !3, 4)?;
        let shift = (addr & 3) * 8;
        let word = &mut self.words[idx];
        *word = (*word & !(0xFF << shift)) | (u32::from(value) << shift);
        Ok(())
    }

    /// Reads an FP16 element.
    ///
    /// # Errors
    ///
    /// As [`Tcdm::read_u16`].
    pub fn read_f16(&self, addr: u32) -> Result<F16, MemError> {
        Ok(F16::from_bits(self.read_u16(addr)?))
    }

    /// Writes an FP16 element.
    ///
    /// # Errors
    ///
    /// As [`Tcdm::write_u16`].
    pub fn write_f16(&mut self, addr: u32, value: F16) -> Result<(), MemError> {
        self.write_u16(addr, value.to_bits())
    }

    /// Copies a slice of FP16 values into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// As [`Tcdm::write_u16`]; partial writes are possible on error.
    pub fn store_f16_slice(&mut self, addr: u32, data: &[F16]) -> Result<(), MemError> {
        for (i, v) in data.iter().enumerate() {
            self.write_f16(addr + 2 * i as u32, *v)?;
        }
        Ok(())
    }

    /// Reads `n` FP16 values starting at `addr`.
    ///
    /// # Errors
    ///
    /// As [`Tcdm::read_u16`].
    pub fn load_f16_slice(&self, addr: u32, n: usize) -> Result<Vec<F16>, MemError> {
        (0..n).map(|i| self.read_f16(addr + 2 * i as u32)).collect()
    }
}

impl Snapshot for Tcdm {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.n_banks);
        w.put(&self.words);
        w.put(&self.stuck.len());
        for (&idx, fault) in &self.stuck {
            w.put(&idx);
            w.put(&fault.bit);
            w.put(&fault.value);
        }
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let n_banks: usize = r.get()?;
        if n_banks != self.n_banks {
            return Err(SnapshotError::ConfigMismatch(format!(
                "TCDM has {n_banks} banks, target has {}",
                self.n_banks
            )));
        }
        let words: Vec<u32> = r.get()?;
        if words.len() != self.words.len() {
            return Err(SnapshotError::ConfigMismatch(format!(
                "TCDM holds {} words, target holds {}",
                words.len(),
                self.words.len()
            )));
        }
        self.words = words;
        let n_stuck: usize = r.get()?;
        self.stuck.clear();
        for _ in 0..n_stuck {
            let idx: usize = r.get()?;
            if idx >= self.words.len() {
                return Err(SnapshotError::Corrupt(format!(
                    "stuck-at fault on word {idx} beyond TCDM"
                )));
            }
            let bit: u8 = r.get()?;
            let value: bool = r.get()?;
            self.stuck.insert(idx, StuckBit { bit, value });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Tcdm {
        Tcdm::new(&ClusterConfig::default())
    }

    #[test]
    fn sizes_match_config() {
        let m = mem();
        assert_eq!(m.size_bytes(), 128 * 1024);
        assert_eq!(m.n_banks(), 16);
    }

    #[test]
    fn word_interleaving() {
        let m = mem();
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(4), 1);
        assert_eq!(m.bank_of(60), 15);
        assert_eq!(m.bank_of(64), 0); // wraps after 16 banks
    }

    #[test]
    fn u32_round_trip() {
        let mut m = mem();
        m.write_u32(0, 0x1234_5678).unwrap();
        m.write_u32(4, 0x9ABC_DEF0).unwrap();
        assert_eq!(m.read_u32(0).unwrap(), 0x1234_5678);
        assert_eq!(m.read_u32(4).unwrap(), 0x9ABC_DEF0);
    }

    #[test]
    fn u16_halves_pack_into_words() {
        let mut m = mem();
        m.write_u16(8, 0xAAAA).unwrap();
        m.write_u16(10, 0x5555).unwrap();
        assert_eq!(m.read_u32(8).unwrap(), 0x5555_AAAA); // little-endian halves
        assert_eq!(m.read_u16(8).unwrap(), 0xAAAA);
        assert_eq!(m.read_u16(10).unwrap(), 0x5555);
        // Writing one half must not clobber the other.
        m.write_u16(8, 0x1111).unwrap();
        assert_eq!(m.read_u16(10).unwrap(), 0x5555);
    }

    #[test]
    fn u8_bytes_pack_into_words_at_any_offset() {
        let mut m = mem();
        for (i, b) in [0x11u8, 0x22, 0x33, 0x44].into_iter().enumerate() {
            m.write_u8(12 + i as u32, b).unwrap();
        }
        assert_eq!(m.read_u32(12).unwrap(), 0x4433_2211); // little-endian bytes
        for (i, b) in [0x11u8, 0x22, 0x33, 0x44].into_iter().enumerate() {
            assert_eq!(m.read_u8(12 + i as u32).unwrap(), b);
        }
        // Writing one byte must not clobber its neighbours.
        m.write_u8(13, 0xEE).unwrap();
        assert_eq!(m.read_u32(12).unwrap(), 0x4433_EE11);
        assert!(matches!(
            m.read_u8(m.size_bytes() as u32),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn alignment_enforced() {
        let mut m = mem();
        assert!(matches!(
            m.read_u32(2),
            Err(MemError::Misaligned { align: 4, .. })
        ));
        assert!(matches!(
            m.write_u16(1, 0),
            Err(MemError::Misaligned { align: 2, .. })
        ));
    }

    #[test]
    fn bounds_enforced() {
        let mut m = mem();
        let size = m.size_bytes() as u32;
        assert!(matches!(
            m.read_u32(size),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(m.write_u32(size - 4, 1).is_ok());
        assert!(matches!(
            m.read_u16(size),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn f16_slices_round_trip() {
        let mut m = mem();
        let data: Vec<F16> = (0..20).map(|i| F16::from_f32(i as f32 * 0.5)).collect();
        m.store_f16_slice(100 * 2, &data).unwrap();
        let back = m.load_f16_slice(100 * 2, 20).unwrap();
        for (a, b) in data.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn transient_flip_corrupts_one_bit() {
        let mut m = mem();
        m.write_u32(0x40, 0x0000_00F0).unwrap();
        m.flip_bit(0x40, 3).unwrap();
        assert_eq!(m.read_u32(0x40).unwrap(), 0x0000_00F8);
        // Flipping again restores the original value.
        m.flip_bit(0x40, 3).unwrap();
        assert_eq!(m.read_u32(0x40).unwrap(), 0x0000_00F0);
        assert!(m.flip_bit(1 << 30, 0).is_err());
    }

    #[test]
    fn stuck_bit_pins_reads_until_cleared() {
        let mut m = mem();
        m.write_u32(8, 0).unwrap();
        m.set_stuck(
            8,
            StuckBit {
                bit: 5,
                value: true,
            },
        )
        .unwrap();
        assert_eq!(m.stuck_faults(), 1);
        assert_eq!(m.read_u32(8).unwrap(), 1 << 5);
        // Writes land in the cell but the read stays pinned.
        m.write_u32(8, 0xFFFF_FFFF).unwrap();
        assert_eq!(m.read_u32(8).unwrap(), 0xFFFF_FFFF);
        m.write_u32(8, 0).unwrap();
        assert_eq!(m.read_u32(8).unwrap(), 1 << 5);
        // Halfword reads observe the same pinned word.
        assert_eq!(m.read_u16(8).unwrap(), 1 << 5);
        assert!(m.clear_stuck(8));
        assert_eq!(m.read_u32(8).unwrap(), 0);
        assert!(!m.clear_stuck(8));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = MemError::OutOfBounds {
            addr: 0x100,
            size: 64,
        };
        assert!(e.to_string().contains("0x100"));
        let e = MemError::Misaligned {
            addr: 0x3,
            align: 4,
        };
        assert!(e.to_string().contains("aligned"));
    }
}
