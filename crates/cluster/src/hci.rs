//! The Heterogeneous Cluster Interconnect (HCI) model.
//!
//! Two branches connect initiators to the TCDM banks:
//!
//! * **Logarithmic branch** — all-to-all, single-cycle crossbar for 32-bit
//!   initiators (cores, DMA). When several initiators hit the same bank in
//!   the same cycle, only one is granted, chosen round-robin; the rest
//!   retry next cycle.
//! * **Shallow branch** — one 288-bit port routed to
//!   [`shallow_banks`](crate::ClusterConfig::shallow_banks) adjacent banks
//!   "treated like a single 288-bit bank without arbitration". The whole
//!   group is granted atomically.
//!
//! Banks choose between the branches through a configurable-latency,
//! starvation-free rotation ([`RotatingMux`]); under contention the
//! accelerator wins bursts of up to
//! [`rotation_streak`](crate::ClusterConfig::rotation_streak) cycles.

use crate::config::ClusterConfig;
use redmule_hwsim::arbiter::{RotatingMux, RoundRobin, Side};
use redmule_hwsim::snapshot::{Snapshot, SnapshotError, StateReader, StateWriter};
use redmule_hwsim::Stats;

/// A 32-bit initiator on the logarithmic branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Initiator {
    /// A cluster core by index.
    Core(usize),
    /// The cluster DMA engine.
    Dma,
}

/// Per-cycle arbitration outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HciGrants {
    /// `granted[i]` tells whether logarithmic request `i` (in submission
    /// order) won its bank this cycle.
    pub log_granted: Vec<bool>,
    /// Whether the shallow-branch request (if any) won its whole bank
    /// group this cycle.
    pub shallow_granted: bool,
}

/// Cycle-by-cycle interconnect arbiter.
///
/// Call [`Hci::arbitrate`] once per simulated cycle with every access
/// attempted in that cycle.
///
/// # Example
///
/// ```
/// use redmule_cluster::{ClusterConfig, Hci, Initiator};
///
/// let cfg = ClusterConfig::default();
/// let mut hci = Hci::new(&cfg);
/// // Two cores hitting the same bank: only one wins.
/// let grants = hci.arbitrate(&[(Initiator::Core(0), 0x0), (Initiator::Core(1), 0x40)], None);
/// let winners = grants.log_granted.iter().filter(|&&g| g).count();
/// assert_eq!(winners, 1);
/// ```
#[derive(Debug)]
pub struct Hci {
    n_banks: usize,
    // modelcheck-allow: RM-SNAP-001 -- configuration constant, rebuilt from
    // ClusterConfig on restore; never mutated after `new`.
    shallow_banks: usize,
    bank_arb: Vec<RoundRobin>,
    group_mux: RotatingMux,
    stats: Stats,
    // modelcheck-allow: RM-SNAP-001 -- configuration constant, rebuilt from
    // ClusterConfig on restore; never mutated after `new`.
    max_log_initiators: usize,
    /// Remaining shallow-branch transactions to silently drop (fault
    /// injection); `u32::MAX` is effectively "drop forever".
    drop_shallow: u32,
    /// Scratch buffers reused every cycle to keep arbitration
    /// allocation-free on the hot path.
    // modelcheck-allow: RM-SNAP-001 -- per-cycle scratch, fully overwritten at
    // the start of every arbitrate() call; holds no cross-cycle state.
    scratch_requests: Vec<bool>,
    // modelcheck-allow: RM-SNAP-001 -- per-cycle scratch, fully overwritten at
    // the start of every arbitrate() call; holds no cross-cycle state.
    scratch_idx: Vec<Option<usize>>,
}

impl Hci {
    /// Builds the interconnect for a cluster configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ClusterConfig::validate`].
    pub fn new(cfg: &ClusterConfig) -> Hci {
        // modelcheck-allow: RM-PANIC-001 -- documented constructor contract: an
        // invalid ClusterConfig is a programming error, and validate() is the
        // fallible path for untrusted input.
        cfg.validate().expect("invalid cluster configuration");
        assert!(cfg.n_banks <= 64, "bank bitmask limited to 64 banks");
        // Initiators on the log branch: cores + DMA.
        let max_log_initiators = cfg.n_cores + 1;
        Hci {
            n_banks: cfg.n_banks,
            shallow_banks: cfg.shallow_banks,
            bank_arb: (0..cfg.n_banks)
                .map(|_| RoundRobin::new(max_log_initiators))
                .collect(),
            group_mux: RotatingMux::new(cfg.rotation_streak),
            stats: Stats::new(),
            max_log_initiators,
            drop_shallow: 0,
            scratch_requests: vec![false; max_log_initiators],
            scratch_idx: vec![None; max_log_initiators],
        }
    }

    /// Bank index serving byte address `addr`.
    pub fn bank_of(&self, addr: u32) -> usize {
        (addr as usize / 4) % self.n_banks
    }

    /// The set of banks a shallow (288-bit) access at `addr` occupies:
    /// `shallow_banks` adjacent banks starting at `addr`'s bank.
    pub fn shallow_group(&self, addr: u32) -> Vec<usize> {
        let start = self.bank_of(addr);
        (0..self.shallow_banks)
            .map(|i| (start + i) % self.n_banks)
            .collect()
    }

    /// Arbitrates one cycle.
    ///
    /// `log_requests` carries each logarithmic-branch access attempted this
    /// cycle as `(initiator, byte address)`; `shallow_request` optionally
    /// carries the accelerator's wide access address.
    ///
    /// Statistics recorded: `log_grants`, `log_conflicts`,
    /// `shallow_grants`, `shallow_conflicts`.
    pub fn arbitrate(
        &mut self,
        log_requests: &[(Initiator, u32)],
        shallow_request: Option<u32>,
    ) -> HciGrants {
        let n = self.n_banks;
        // Fault injection: a dropped shallow transaction is never granted —
        // from the accelerator's point of view the beat simply vanished and
        // it will retry next cycle (forever, if drops persist).
        let shallow_request = if shallow_request.is_some() && self.drop_shallow > 0 {
            self.drop_shallow = self.drop_shallow.saturating_sub(1);
            self.stats.incr("shallow_dropped");
            None
        } else {
            shallow_request
        };
        let shallow_start = shallow_request.map(|addr| self.bank_of(addr));
        let in_group = |bank: usize| match shallow_start {
            Some(start) => (bank + n - start) % n < self.shallow_banks,
            None => false,
        };

        // Decide branch ownership for the shallow group when contended.
        let log_wants_group = log_requests
            .iter()
            .any(|&(_, addr)| in_group(self.bank_of(addr)));
        let shallow_granted = if shallow_request.is_some() {
            if log_wants_group {
                match self.group_mux.grant(true, true) {
                    Side::Shallow => true,
                    Side::Log => false,
                }
            } else {
                true
            }
        } else {
            false
        };
        if shallow_request.is_some() {
            if shallow_granted {
                self.stats.incr("shallow_grants");
            } else {
                self.stats.incr("shallow_conflicts");
            }
        }

        // Round-robin per bank among logarithmic requestors; banks owned by
        // a granted shallow access are unavailable. Only banks that are
        // actually requested this cycle are visited.
        let mut requested_banks: u64 = 0;
        for &(_, addr) in log_requests {
            requested_banks |= 1 << self.bank_of(addr);
        }
        let mut log_granted = vec![false; log_requests.len()];
        let mut grants = 0u64;
        let mut mask = requested_banks;
        while mask != 0 {
            let bank = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if shallow_granted && in_group(bank) {
                continue;
            }
            self.scratch_requests.fill(false);
            self.scratch_idx.fill(None);
            for (i, &(init, addr)) in log_requests.iter().enumerate() {
                if self.bank_of(addr) == bank {
                    let slot = self.initiator_slot(init);
                    self.scratch_requests[slot] = true;
                    self.scratch_idx[slot] = Some(i);
                }
            }
            if let Some(winner) = self.bank_arb[bank].grant(&self.scratch_requests) {
                // modelcheck-allow: RM-PANIC-001 -- arbiter invariant: a grant
                // can only be issued for a slot that raised a request, and the
                // request/idx scratch vectors are filled together just above.
                let idx = self.scratch_idx[winner].expect("granted slot has a request");
                log_granted[idx] = true;
                grants += 1;
            }
        }

        self.stats.add("log_grants", grants);
        self.stats
            .add("log_conflicts", log_requests.len() as u64 - grants);

        HciGrants {
            log_granted,
            shallow_granted,
        }
    }

    fn initiator_slot(&self, init: Initiator) -> usize {
        match init {
            Initiator::Core(i) => {
                assert!(i < self.max_log_initiators - 1, "core index out of range");
                i
            }
            Initiator::Dma => self.max_log_initiators - 1,
        }
    }

    /// Arms fault injection: the next `n` shallow-branch transactions are
    /// silently dropped (never granted); pass `u32::MAX` to drop forever.
    /// Dropped beats are counted in the `shallow_dropped` statistic.
    pub fn inject_shallow_drop(&mut self, n: u32) {
        self.drop_shallow = n;
    }

    /// Shallow-branch drops still armed.
    pub fn pending_shallow_drops(&self) -> u32 {
        self.drop_shallow
    }

    /// Accumulated arbitration statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }
}

impl Snapshot for Hci {
    fn save_state(&self, w: &mut StateWriter) {
        w.put(&self.n_banks);
        for arb in &self.bank_arb {
            arb.save_state(w);
        }
        self.group_mux.save_state(w);
        self.stats.save_state(w);
        w.put(&self.drop_shallow);
        // Scratch buffers are per-cycle temporaries; not state.
    }

    fn restore_state(&mut self, r: &mut StateReader<'_>) -> Result<(), SnapshotError> {
        let n_banks: usize = r.get()?;
        if n_banks != self.n_banks {
            return Err(SnapshotError::ConfigMismatch(format!(
                "HCI has {n_banks} banks, target has {}",
                self.n_banks
            )));
        }
        for arb in &mut self.bank_arb {
            arb.restore_state(r)?;
        }
        self.group_mux.restore_state(r)?;
        self.stats.restore_state(r)?;
        self.drop_shallow = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hci() -> Hci {
        Hci::new(&ClusterConfig::default())
    }

    #[test]
    fn distinct_banks_all_granted() {
        let mut h = hci();
        let reqs: Vec<(Initiator, u32)> = (0..8)
            .map(|i| (Initiator::Core(i), (i as u32) * 4))
            .collect();
        let g = h.arbitrate(&reqs, None);
        assert!(g.log_granted.iter().all(|&x| x));
        assert_eq!(h.stats().get("log_conflicts"), 0);
    }

    #[test]
    fn same_bank_conflicts_serialise_fairly() {
        let mut h = hci();
        // Cores 0 and 1 both hit bank 0 repeatedly.
        let mut wins = [0u32; 2];
        for _ in 0..10 {
            let g = h.arbitrate(&[(Initiator::Core(0), 0), (Initiator::Core(1), 64)], None);
            for (i, &won) in g.log_granted.iter().enumerate() {
                if won {
                    wins[i] += 1;
                }
            }
            assert_eq!(g.log_granted.iter().filter(|&&x| x).count(), 1);
        }
        assert_eq!(wins, [5, 5]);
        assert_eq!(h.stats().get("log_conflicts"), 10);
    }

    #[test]
    fn shallow_group_spans_nine_adjacent_banks() {
        let h = hci();
        assert_eq!(h.shallow_group(0), (0..9).collect::<Vec<_>>());
        // Wraps around the 16-bank boundary.
        let g = h.shallow_group(14 * 4);
        assert_eq!(g, vec![14, 15, 0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn uncontended_shallow_always_granted() {
        let mut h = hci();
        for _ in 0..100 {
            let g = h.arbitrate(&[], Some(0));
            assert!(g.shallow_granted);
        }
        assert_eq!(h.stats().get("shallow_conflicts"), 0);
    }

    #[test]
    fn contended_shallow_rotates_after_streak() {
        let mut h = hci();
        // Core 0 hammers bank 2, inside the shallow group [0..9).
        let mut shallow_wins = 0;
        let mut log_wins = 0;
        for _ in 0..10 {
            let g = h.arbitrate(&[(Initiator::Core(0), 8)], Some(0));
            if g.shallow_granted {
                shallow_wins += 1;
                assert!(!g.log_granted[0], "bank granted to both branches");
            } else {
                log_wins += 1;
                assert!(g.log_granted[0], "rotation must hand the bank to the core");
            }
        }
        // rotation_streak = 4: pattern SSSS L SSSS L => 8 shallow, 2 log.
        assert_eq!(shallow_wins, 8);
        assert_eq!(log_wins, 2);
    }

    #[test]
    fn log_requests_outside_group_coexist_with_shallow() {
        let mut h = hci();
        // Bank 12 is outside the shallow group starting at bank 0.
        let g = h.arbitrate(&[(Initiator::Core(3), 12 * 4)], Some(0));
        assert!(g.shallow_granted);
        assert!(g.log_granted[0]);
    }

    #[test]
    fn dma_participates_in_round_robin() {
        let mut h = hci();
        let g = h.arbitrate(&[(Initiator::Dma, 0), (Initiator::Core(0), 64)], None);
        assert_eq!(g.log_granted.iter().filter(|&&x| x).count(), 1);
    }

    #[test]
    fn dropped_shallow_beats_never_grant() {
        let mut h = hci();
        h.inject_shallow_drop(3);
        for i in 0..10 {
            let g = h.arbitrate(&[], Some(0));
            assert_eq!(g.shallow_granted, i >= 3, "beat {i}");
        }
        assert_eq!(h.stats().get("shallow_dropped"), 3);
        assert_eq!(h.stats().get("shallow_grants"), 7);
        assert_eq!(h.pending_shallow_drops(), 0);
        // A dropped beat frees its banks for the logarithmic branch.
        h.inject_shallow_drop(u32::MAX);
        let g = h.arbitrate(&[(Initiator::Core(0), 8)], Some(0));
        assert!(!g.shallow_granted);
        assert!(g.log_granted[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_core_index_panics() {
        let mut h = hci();
        let _ = h.arbitrate(&[(Initiator::Core(99), 0)], None);
    }
}
