//! Property-based tests for the cluster substrate.

use proptest::prelude::*;
use redmule_cluster::{ClusterConfig, Hci, Initiator, Tcdm};
use redmule_hwsim::{StuckBit, Xoshiro256};

/// TCDM behaves like flat little-endian byte memory under any interleaving
/// of halfword and word writes.
#[derive(Debug, Clone)]
enum Op {
    WriteU32(u32, u32),
    WriteU16(u32, u16),
    ReadU32(u32),
    ReadU16(u32),
}

fn op_strategy(size: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..size / 4, any::<u32>()).prop_map(|(w, v)| Op::WriteU32(w * 4, v)),
        (0..size / 2, any::<u16>()).prop_map(|(h, v)| Op::WriteU16(h * 2, v)),
        (0..size / 4).prop_map(|w| Op::ReadU32(w * 4)),
        (0..size / 2).prop_map(|h| Op::ReadU16(h * 2)),
    ]
}

proptest! {
    #[test]
    fn tcdm_matches_flat_byte_memory(
        ops in prop::collection::vec(op_strategy(4096), 1..200),
    ) {
        let cfg = ClusterConfig::default();
        let mut mem = Tcdm::new(&cfg);
        let mut model = vec![0u8; mem.size_bytes()];
        for op in &ops {
            match *op {
                Op::WriteU32(a, v) => {
                    mem.write_u32(a, v).expect("aligned in-range write");
                    model[a as usize..a as usize + 4].copy_from_slice(&v.to_le_bytes());
                }
                Op::WriteU16(a, v) => {
                    mem.write_u16(a, v).expect("aligned in-range write");
                    model[a as usize..a as usize + 2].copy_from_slice(&v.to_le_bytes());
                }
                Op::ReadU32(a) => {
                    let want = u32::from_le_bytes(
                        model[a as usize..a as usize + 4].try_into().expect("4 bytes"),
                    );
                    prop_assert_eq!(mem.read_u32(a).expect("read"), want);
                }
                Op::ReadU16(a) => {
                    let want = u16::from_le_bytes(
                        model[a as usize..a as usize + 2].try_into().expect("2 bytes"),
                    );
                    prop_assert_eq!(mem.read_u16(a).expect("read"), want);
                }
            }
        }
    }

    /// HCI safety: per cycle, at most one logarithmic grant per bank, every
    /// grant answers a request, and a granted shallow access excludes all
    /// logarithmic grants inside its bank group.
    #[test]
    fn hci_grant_safety(
        rounds in prop::collection::vec(
            (
                prop::collection::vec((0usize..8, 0u32..1024), 0..8),
                prop::option::of(0u32..1024),
            ),
            1..100,
        ),
    ) {
        let cfg = ClusterConfig::default();
        let mut hci = Hci::new(&cfg);
        for (core_reqs, shallow) in &rounds {
            let reqs: Vec<(Initiator, u32)> = core_reqs
                .iter()
                .map(|&(c, a)| (Initiator::Core(c), a * 4))
                .collect();
            let shallow_addr = shallow.map(|a| a * 4);
            let grants = hci.arbitrate(&reqs, shallow_addr);

            // Each grant pairs with its request.
            prop_assert_eq!(grants.log_granted.len(), reqs.len());

            // One grant per bank max.
            let mut granted_banks = std::collections::HashSet::new();
            for (i, &(_, addr)) in reqs.iter().enumerate() {
                if grants.log_granted[i] {
                    prop_assert!(
                        granted_banks.insert(hci.bank_of(addr)),
                        "two grants on one bank"
                    );
                }
            }

            // A granted shallow access owns its whole group exclusively.
            if let (Some(addr), true) = (shallow_addr, grants.shallow_granted) {
                let group: std::collections::HashSet<usize> =
                    hci.shallow_group(addr).into_iter().collect();
                for (i, &(_, a)) in reqs.iter().enumerate() {
                    if grants.log_granted[i] {
                        prop_assert!(
                            !group.contains(&hci.bank_of(a)),
                            "log grant inside a granted shallow group"
                        );
                    }
                }
            }

            // If exactly one core requests a bank and the shallow side does
            // not own it, that core must be granted (work-conserving).
            let mut per_bank: std::collections::HashMap<usize, Vec<usize>> =
                std::collections::HashMap::new();
            for (i, &(_, a)) in reqs.iter().enumerate() {
                per_bank.entry(hci.bank_of(a)).or_default().push(i);
            }
            let shallow_group: std::collections::HashSet<usize> =
                match (shallow_addr, grants.shallow_granted) {
                    (Some(a), true) => hci.shallow_group(a).into_iter().collect(),
                    _ => std::collections::HashSet::new(),
                };
            for (bank, idxs) in &per_bank {
                if idxs.len() == 1 && !shallow_group.contains(bank) {
                    // The same core may appear once per cycle only; single
                    // requestor on a free bank is always served.
                    prop_assert!(
                        grants.log_granted[idxs[0]],
                        "uncontended request on bank {bank} denied"
                    );
                }
            }
        }
    }

    /// Fault-injection determinism: the same seed drives the same flips and
    /// stuck-at placements, producing bit-identical memory images; a
    /// double flip of the same bit restores the original image.
    #[test]
    fn tcdm_fault_injection_is_deterministic(
        seed in any::<u64>(),
        writes in prop::collection::vec((0u32..1024, any::<u32>()), 1..40),
        n_faults in 1usize..16,
    ) {
        let cfg = ClusterConfig::default();
        let image = |seed: u64| -> Vec<u32> {
            let mut mem = Tcdm::new(&cfg);
            for &(w, v) in &writes {
                mem.write_u32(w * 4, v).expect("in-range write");
            }
            let mut rng = Xoshiro256::seed_from_u64(seed);
            for _ in 0..n_faults {
                let addr = (rng.below(1024) as u32) * 4;
                let bit = rng.below(32) as u8;
                if rng.chance(1, 2) {
                    mem.flip_bit(addr, bit).expect("in-range flip");
                } else {
                    mem.set_stuck(addr, StuckBit { bit, value: rng.chance(1, 2) })
                        .expect("in-range stuck");
                }
            }
            (0..1024).map(|w| mem.read_u32(w * 4).expect("read")).collect()
        };
        prop_assert_eq!(image(seed), image(seed));

        // Transient flips are involutions: re-running the same plan with
        // flips applied twice (and no stuck-ats) leaves memory untouched.
        let mut mem = Tcdm::new(&cfg);
        for &(w, v) in &writes {
            mem.write_u32(w * 4, v).expect("in-range write");
        }
        let before: Vec<u32> = (0..1024).map(|w| mem.read_u32(w * 4).expect("read")).collect();
        let mut rng = Xoshiro256::seed_from_u64(seed);
        for _ in 0..n_faults {
            let addr = (rng.below(1024) as u32) * 4;
            let bit = rng.below(32) as u8;
            mem.flip_bit(addr, bit).expect("flip");
            mem.flip_bit(addr, bit).expect("flip");
        }
        let after: Vec<u32> = (0..1024).map(|w| mem.read_u32(w * 4).expect("read")).collect();
        prop_assert_eq!(before, after);
    }

    /// Armed shallow drops deny exactly the first `n` shallow beats and
    /// never disturb logarithmic requests outside the group.
    #[test]
    fn hci_drops_deny_exactly_n_beats(n in 0u32..20, addr_word in 0u32..512) {
        let cfg = ClusterConfig::default();
        let mut hci = Hci::new(&cfg);
        hci.inject_shallow_drop(n);
        for i in 0..40u32 {
            let g = hci.arbitrate(&[], Some(addr_word * 4));
            prop_assert_eq!(g.shallow_granted, i >= n, "beat {}", i);
        }
        prop_assert_eq!(hci.stats().get("shallow_dropped"), u64::from(n));
    }

    /// HCI liveness: a core re-requesting the same address every cycle is
    /// granted within the structural bound — its bank reaches the
    /// logarithmic branch once per rotation period (`streak + 1` cycles
    /// under accelerator contention), and round-robin then serves each of
    /// the up-to-`n_cores + 1` contenders in turn.
    #[test]
    fn hci_no_starvation(addr_word in 0u32..512, others in prop::collection::vec(0u32..512, 7)) {
        let cfg = ClusterConfig::default();
        let mut hci = Hci::new(&cfg);
        let addr = addr_word * 4;
        let bound = (cfg.rotation_streak + 1) * (cfg.n_cores as u32 + 1);
        let mut waited = 0u32;
        for _ in 0..400 {
            let mut reqs = vec![(Initiator::Core(0), addr)];
            for (c, &w) in others.iter().enumerate() {
                reqs.push((Initiator::Core(c + 1), w * 4));
            }
            let grants = hci.arbitrate(&reqs, Some(addr));
            if grants.log_granted[0] {
                waited = 0;
            } else {
                waited += 1;
                prop_assert!(waited <= bound, "core 0 starved beyond {bound}");
            }
        }
    }
}
