//! Property-based tests for the area/power/energy models: the structural
//! monotonicities that make the models trustworthy between their
//! calibration anchors.

use proptest::prelude::*;
use redmule_energy::{AreaModel, OperatingPoint, PowerModel, Technology};

proptest! {
    /// Area grows strictly with each structural parameter.
    #[test]
    fn area_is_monotone_in_every_parameter(
        h in 1usize..16,
        l in 1usize..32,
        p in 0usize..6,
    ) {
        let m = AreaModel::new(Technology::Gf22Fdx);
        let base = m.redmule(h, l, p).total();
        prop_assert!(m.redmule(h + 1, l, p).total() > base);
        prop_assert!(m.redmule(h, l + 1, p).total() > base);
        prop_assert!(m.redmule(h, l, p + 1).total() > base);
        // And the 65 nm port scales by a constant factor.
        let scaled = AreaModel::new(Technology::Node65).redmule(h, l, p).total();
        prop_assert!((scaled / base - Technology::Node65.area_scale()).abs() < 1e-9);
    }

    /// Component shares are a valid partition of the total.
    #[test]
    fn area_shares_partition_the_total(
        h in 1usize..16,
        l in 1usize..32,
        p in 0usize..6,
    ) {
        let b = AreaModel::new(Technology::Gf22Fdx).redmule(h, l, p);
        let shares = b.shares();
        prop_assert!(shares.iter().all(|&s| s > 0.0 && s < 1.0));
        prop_assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    /// Cluster power grows with utilization, voltage and frequency.
    #[test]
    fn power_is_monotone(
        util in 0.0f64..1.0,
        mv in 460u32..990,
        mhz in 100u32..900,
    ) {
        let vdd = mv as f64 / 1000.0;
        let op = OperatingPoint::custom("t", vdd, mhz as f64);
        let m = PowerModel::new(Technology::Gf22Fdx, op);
        let base = m.cluster_power_mw(util).total();
        prop_assert!(m.cluster_power_mw((util + 0.01).min(1.0)).total() >= base);

        let up_v = PowerModel::new(
            Technology::Gf22Fdx,
            OperatingPoint::custom("t", vdd + 0.01, mhz as f64),
        );
        prop_assert!(up_v.cluster_power_mw(util).total() > base);

        let up_f = PowerModel::new(
            Technology::Gf22Fdx,
            OperatingPoint::custom("t", vdd, mhz as f64 + 10.0),
        );
        prop_assert!(up_f.cluster_power_mw(util).total() > base);
    }

    /// Energy per MAC is inversely monotone in throughput at fixed power,
    /// and efficiency in GFLOPS/W times power recovers the GOPS.
    #[test]
    fn energy_and_efficiency_are_consistent(
        mpc in 1.0f64..32.0,
        util in 0.05f64..1.0,
    ) {
        let m = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_efficiency());
        let e1 = m.energy_per_mac_pj(mpc, util);
        let e2 = m.energy_per_mac_pj(mpc * 1.1, util);
        prop_assert!(e2 < e1, "more throughput at equal power must cost less per MAC");

        let eff = m.efficiency_gflops_w(mpc, util);
        let power_w = m.cluster_power_mw(util).total() / 1e3;
        let gops = m.gops(mpc);
        prop_assert!((eff * power_w - gops).abs() / gops < 1e-9);

        // pJ/MAC and GFLOPS/W are reciprocal up to the 2-ops-per-MAC factor.
        prop_assert!((e1 * eff - 2000.0).abs() / 2000.0 < 1e-9);
    }

    /// The DVFS curve is monotone and bounds the paper's corners.
    #[test]
    fn dvfs_curve_is_monotone(mv in 460u32..995) {
        let vdd = mv as f64 / 1000.0;
        let f = OperatingPoint::at_vdd(vdd).frequency().as_mhz();
        let f_up = OperatingPoint::at_vdd(vdd + 0.005).frequency().as_mhz();
        prop_assert!(f_up > f);
        // Within the validated interval the frequency stays physical.
        prop_assert!(f > 50.0 && f < 1500.0);
    }

    /// Efficiency falls monotonically with voltage along the DVFS curve
    /// (the reason the paper's best-efficiency point is its lowest V).
    #[test]
    fn efficiency_falls_with_voltage(mv in 460u32..980) {
        let vdd = mv as f64 / 1000.0;
        let lo = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::at_vdd(vdd));
        let hi = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::at_vdd(vdd + 0.02));
        prop_assert!(
            lo.efficiency_gflops_w(31.6, 0.988) > hi.efficiency_gflops_w(31.6, 0.988)
        );
    }
}
