//! Technology nodes and scaling.

use std::fmt;

/// A silicon technology node with the scale factors the models need.
///
/// The paper implements the cluster twice: in GlobalFoundries 22FDX
/// (primary) and in a 65 nm node (Table I, last row). All model constants
/// are calibrated in 22FDX; the 65 nm results are obtained by scaling
/// area and switched capacitance.
///
/// # Example
///
/// ```
/// use redmule_energy::Technology;
///
/// let t = Technology::Node65;
/// assert!(t.area_scale() > 5.0); // 65 nm is much larger per gate
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Technology {
    /// GlobalFoundries 22 nm FD-SOI (the paper's primary target).
    #[default]
    Gf22Fdx,
    /// The 65 nm bulk port of Table I's last row.
    Node65,
}

impl Technology {
    /// Feature size in nanometres.
    pub fn nm(self) -> u32 {
        match self {
            Technology::Gf22Fdx => 22,
            Technology::Node65 => 65,
        }
    }

    /// Area multiplier relative to GF22FDX.
    ///
    /// Calibrated from the paper's cluster areas: 0.5 mm² in 22 nm versus
    /// 3.85 mm² in 65 nm, i.e. 7.7x (slightly below the ideal
    /// `(65/22)² = 8.7` because macros scale worse than logic).
    pub fn area_scale(self) -> f64 {
        match self {
            Technology::Gf22Fdx => 1.0,
            Technology::Node65 => 7.7,
        }
    }

    /// Switched-capacitance multiplier relative to GF22FDX.
    ///
    /// Calibrated from the paper's power anchors: 43.5 mW at
    /// 0.65 V / 476 MHz (22 nm) versus 89.1 mW at 1.2 V / 200 MHz (65 nm)
    /// under the `C·V²·f` model gives `C65/C22 ≈ 1.43`.
    pub fn cap_scale(self) -> f64 {
        match self {
            Technology::Gf22Fdx => 1.0,
            Technology::Node65 => 1.43,
        }
    }
}

impl fmt::Display for Technology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Technology::Gf22Fdx => f.write_str("GF22FDX"),
            Technology::Node65 => f.write_str("65nm"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_properties() {
        assert_eq!(Technology::Gf22Fdx.nm(), 22);
        assert_eq!(Technology::Node65.nm(), 65);
        assert_eq!(Technology::Gf22Fdx.area_scale(), 1.0);
        assert_eq!(Technology::Gf22Fdx.cap_scale(), 1.0);
        assert!(Technology::Node65.area_scale() > 1.0);
        assert!(Technology::Node65.cap_scale() > 1.0);
    }

    #[test]
    fn area_scale_matches_paper_cluster_ratio() {
        // 22 nm cluster 0.5 mm^2, 65 nm cluster 3.85 mm^2.
        let ratio = 3.85 / 0.5;
        assert!((Technology::Node65.area_scale() - ratio).abs() < 0.1);
    }

    #[test]
    fn default_and_display() {
        assert_eq!(Technology::default(), Technology::Gf22Fdx);
        assert_eq!(Technology::Gf22Fdx.to_string(), "GF22FDX");
        assert_eq!(Technology::Node65.to_string(), "65nm");
    }
}
