//! Named operating points from the paper.

use redmule_hwsim::Frequency;
use std::fmt;

/// A voltage/frequency operating corner.
///
/// The paper reports three measurement points plus the synthesis corner:
///
/// | point | V_DD | f | use |
/// |---|---|---|---|
/// | peak efficiency | 0.65 V | 476 MHz | 688 GFLOPS/W row of Table I |
/// | peak performance | 0.80 V | 666 MHz | 42 GFLOPS row of Table I |
/// | 65 nm | 1.20 V | 200 MHz | Table I last row |
/// | slow corner | 0.59 V | 208 MHz | synthesis target only |
///
/// # Example
///
/// ```
/// use redmule_energy::OperatingPoint;
///
/// let op = OperatingPoint::peak_performance();
/// assert_eq!(op.frequency().as_mhz(), 666.0);
/// assert_eq!(op.vdd(), 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    name: &'static str,
    vdd: f64,
    freq_mhz: f64,
}

impl OperatingPoint {
    /// 0.65 V / 476 MHz: maximum energy efficiency (typical corner, 25 °C).
    pub fn peak_efficiency() -> OperatingPoint {
        OperatingPoint {
            name: "peak-efficiency",
            vdd: 0.65,
            freq_mhz: 476.0,
        }
    }

    /// 0.80 V / 666 MHz: maximum throughput and frequency.
    pub fn peak_performance() -> OperatingPoint {
        OperatingPoint {
            name: "peak-performance",
            vdd: 0.8,
            freq_mhz: 666.0,
        }
    }

    /// 1.2 V / 200 MHz: the 65 nm prototype's corner.
    pub fn node65() -> OperatingPoint {
        OperatingPoint {
            name: "65nm",
            vdd: 1.2,
            freq_mhz: 200.0,
        }
    }

    /// 0.59 V / 208 MHz / 125 °C: the slow synthesis corner (not a
    /// measurement point; kept for completeness).
    pub fn slow_corner() -> OperatingPoint {
        OperatingPoint {
            name: "slow-corner",
            vdd: 0.59,
            freq_mhz: 208.0,
        }
    }

    /// A corner at an arbitrary supply voltage on the 22 nm DVFS curve,
    /// with the maximum frequency predicted by an alpha-power-law fit
    /// through the paper's two measured typical-corner points
    /// (0.65 V / 476 MHz and 0.80 V / 666 MHz):
    ///
    /// `f(V) = k * (V - Vt)^alpha / V`, `Vt = 0.35 V`, `alpha ~= 1.34`.
    ///
    /// # Panics
    ///
    /// Panics unless `vdd` is above the fitted threshold voltage plus
    /// margin (0.45 V) and at most 1.0 V (beyond the validated range).
    ///
    /// # Example
    ///
    /// ```
    /// use redmule_energy::OperatingPoint;
    /// // Reproduces the paper's measured corners to within 1 %.
    /// let at_065 = OperatingPoint::at_vdd(0.65);
    /// assert!((at_065.frequency().as_mhz() - 476.0).abs() < 5.0);
    /// let at_080 = OperatingPoint::at_vdd(0.80);
    /// assert!((at_080.frequency().as_mhz() - 666.0).abs() < 5.0);
    /// ```
    pub fn at_vdd(vdd: f64) -> OperatingPoint {
        assert!(
            (0.45..=1.0).contains(&vdd),
            "vdd {vdd} outside the fitted DVFS range 0.45..=1.0 V"
        );
        const VT: f64 = 0.35;
        const ALPHA: f64 = 1.340_463_5;
        // k chosen so f(0.65) = 476 MHz, i.e. k = 476*0.65/(0.30^alpha).
        const K: f64 = 1_553.889_694;
        let f = K * (vdd - VT).powf(ALPHA) / vdd;
        OperatingPoint {
            name: "dvfs",
            vdd,
            freq_mhz: f,
        }
    }

    /// A custom corner.
    ///
    /// # Panics
    ///
    /// Panics unless voltage and frequency are positive and finite.
    pub fn custom(name: &'static str, vdd: f64, freq_mhz: f64) -> OperatingPoint {
        assert!(vdd.is_finite() && vdd > 0.0, "V_DD must be positive");
        let _ = Frequency::mhz(freq_mhz); // validates
        OperatingPoint {
            name,
            vdd,
            freq_mhz,
        }
    }

    /// Corner name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Supply voltage in volts.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Clock frequency.
    pub fn frequency(&self) -> Frequency {
        Frequency::mhz(self.freq_mhz)
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:.2} V, {:.0} MHz)",
            self.name, self.vdd, self.freq_mhz
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_corners() {
        assert_eq!(OperatingPoint::peak_efficiency().vdd(), 0.65);
        assert_eq!(
            OperatingPoint::peak_efficiency().frequency().as_mhz(),
            476.0
        );
        assert_eq!(OperatingPoint::peak_performance().vdd(), 0.8);
        assert_eq!(OperatingPoint::node65().frequency().as_mhz(), 200.0);
        assert_eq!(OperatingPoint::slow_corner().vdd(), 0.59);
    }

    #[test]
    fn dvfs_curve_hits_both_measured_corners() {
        let f65 = OperatingPoint::at_vdd(0.65).frequency().as_mhz();
        let f80 = OperatingPoint::at_vdd(0.80).frequency().as_mhz();
        assert!((f65 - 476.0).abs() < 2.0, "f(0.65) = {f65}");
        assert!((f80 - 666.0).abs() < 5.0, "f(0.80) = {f80}");
        // Monotone in voltage.
        let mut last = 0.0;
        for mv in (450..=1000).step_by(50) {
            let f = OperatingPoint::at_vdd(mv as f64 / 1000.0)
                .frequency()
                .as_mhz();
            assert!(f > last);
            last = f;
        }
    }

    #[test]
    fn dvfs_efficiency_improves_at_lower_voltage() {
        use crate::{PowerModel, Technology};
        // Under C·V²·f, efficiency scales as 1/V²: the paper's "peak
        // efficiency" point is simply its lowest validated voltage.
        let lo = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::at_vdd(0.55));
        let hi = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::at_vdd(0.9));
        assert!(lo.efficiency_gflops_w(31.6, 0.988) > hi.efficiency_gflops_w(31.6, 0.988));
    }

    #[test]
    #[should_panic(expected = "DVFS range")]
    fn dvfs_rejects_out_of_range_voltage() {
        let _ = OperatingPoint::at_vdd(0.3);
    }

    #[test]
    fn custom_corner() {
        let op = OperatingPoint::custom("test", 0.7, 300.0);
        assert_eq!(op.name(), "test");
        assert!(op.to_string().contains("0.70 V"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn custom_rejects_zero_vdd() {
        let _ = OperatingPoint::custom("bad", 0.0, 100.0);
    }
}
