//! Table I: the state-of-the-art comparison.
//!
//! The literature rows are constants taken from the paper; the "Our work"
//! rows are **computed** from the area/power models and a measured
//! MAC/cycle figure supplied by the cycle-accurate simulator, so the table
//! regenerates rather than merely reprints the paper's numbers.

use crate::area::AreaModel;
use crate::oppoint::OperatingPoint;
use crate::power::PowerModel;
use crate::tech::Technology;
use std::fmt;

/// One comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Design category ("GPU", "Inference Chips", ...).
    pub category: &'static str,
    /// Design name.
    pub design: String,
    /// Technology node in nm.
    pub tech_nm: u32,
    /// Die/block area in mm² (None when unreported).
    pub area_mm2: Option<f64>,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// Supply in volts (None when unreported).
    pub volt: Option<f64>,
    /// Power in mW (None when unreported).
    pub power_mw: Option<f64>,
    /// Throughput in GOPS (None when unreported).
    pub perf_gops: Option<f64>,
    /// Efficiency in GOPS/W (None when unreported).
    pub eff_gops_w: Option<f64>,
    /// MAC units.
    pub mac_units: u32,
    /// Arithmetic precision.
    pub precision: &'static str,
}

/// Literature rows of Table I (best-efficiency operating points).
pub fn literature_rows() -> Vec<Row> {
    let r = |category,
             design: &str,
             tech_nm,
             area_mm2,
             freq_mhz,
             volt,
             power_mw,
             perf_gops,
             eff_gops_w,
             mac_units,
             precision| Row {
        category,
        design: design.to_owned(),
        tech_nm,
        area_mm2,
        freq_mhz,
        volt,
        power_mw,
        perf_gops,
        eff_gops_w,
        mac_units,
        precision,
    };
    vec![
        r(
            "GPU",
            "NVIDIA A100",
            7,
            None,
            1410.0,
            None,
            Some(300000.0),
            None,
            None,
            256,
            "FP16",
        ),
        r(
            "Inference",
            "Eyeriss",
            65,
            Some(12.25),
            250.0,
            Some(1.0),
            Some(278.0),
            Some(46.0),
            Some(166.0),
            168,
            "INT16",
        ),
        r(
            "Inference",
            "EIE",
            45,
            Some(40.8),
            800.0,
            None,
            Some(590.0),
            Some(102.0),
            Some(173.0),
            64,
            "INT8",
        ),
        r(
            "Inference",
            "Zeng et al.",
            65,
            Some(2.14),
            250.0,
            None,
            Some(478.0),
            Some(1152.0),
            Some(2410.0),
            256,
            "INT8",
        ),
        r(
            "Inference",
            "Simba",
            16,
            Some(6.0),
            161.0,
            Some(0.42),
            None,
            Some(4000.0),
            Some(9100.0),
            1024,
            "INT8",
        ),
        r(
            "Training",
            "IBM",
            7,
            Some(19.6),
            1000.0,
            Some(0.55),
            Some(4400.0),
            Some(8000.0),
            Some(1800.0),
            4096,
            "FP16",
        ),
        r(
            "Training",
            "Cambricon-Q",
            45,
            None,
            1000.0,
            Some(0.6),
            Some(1030.0),
            Some(2000.0),
            Some(2240.0),
            1024,
            "INT8",
        ),
        r(
            "HPC",
            "Manticore",
            22,
            None,
            500.0,
            Some(0.6),
            Some(200.0),
            Some(25.0),
            Some(188.0),
            24,
            "FP64",
        ),
        r(
            "Mat-Mul Acc.",
            "Anders et al.",
            14,
            Some(0.024),
            2.1,
            Some(0.26),
            Some(0.023),
            Some(0.068),
            Some(2970.0),
            16,
            "FP16",
        ),
    ]
}

/// Computes one "Our work" row from the models and a simulated
/// throughput.
pub fn our_row(tech: Technology, op: OperatingPoint, macs_per_cycle: f64, util: f64) -> Row {
    let area = AreaModel::new(tech);
    let power = PowerModel::new(tech, op);
    let breakdown = power.cluster_power_mw(util);
    Row {
        category: "Our work",
        design: format!("PULP+RedMulE @{:.2}V", op.vdd()),
        tech_nm: tech.nm(),
        area_mm2: Some(area.cluster_mm2()),
        freq_mhz: op.frequency().as_mhz(),
        volt: Some(op.vdd()),
        power_mw: Some(breakdown.total()),
        perf_gops: Some(power.gops(macs_per_cycle)),
        eff_gops_w: Some(power.efficiency_gflops_w(macs_per_cycle, util)),
        mac_units: 32,
        precision: "FP16",
    }
}

/// The three "Our work" rows of Table I (22 nm best-efficiency, 22 nm
/// peak-performance, 65 nm), computed from a simulated MAC/cycle figure.
pub fn our_rows(macs_per_cycle: f64, util: f64) -> Vec<Row> {
    vec![
        our_row(
            Technology::Gf22Fdx,
            OperatingPoint::peak_efficiency(),
            macs_per_cycle,
            util,
        ),
        our_row(
            Technology::Gf22Fdx,
            OperatingPoint::peak_performance(),
            macs_per_cycle,
            util,
        ),
        our_row(
            Technology::Node65,
            OperatingPoint::node65(),
            macs_per_cycle,
            util,
        ),
    ]
}

/// Renders rows as an aligned text table (the regenerated Table I).
pub fn render(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:<28} {:>5} {:>8} {:>7} {:>5} {:>9} {:>9} {:>9} {:>5} {:>7}\n",
        "Category",
        "Design",
        "Tech",
        "Area",
        "Freq",
        "Volt",
        "Power",
        "Perf",
        "Eff",
        "MACs",
        "Prec"
    ));
    out.push_str(&format!(
        "{:<12} {:<28} {:>5} {:>8} {:>7} {:>5} {:>9} {:>9} {:>9} {:>5} {:>7}\n",
        "", "", "nm", "mm2", "MHz", "V", "mW", "GOPS", "GOPS/W", "", ""
    ));
    let opt = |v: Option<f64>, prec: usize| match v {
        // Sub-unit values (e.g. Anders et al.'s 0.023 mW) keep three
        // significant decimals regardless of the column's usual precision.
        Some(x) if x.abs() < 1.0 && x != 0.0 => format!("{x:.3}"),
        Some(x) => format!("{x:.prec$}"),
        None => "-".to_owned(),
    };
    for row in rows {
        out.push_str(&format!(
            "{:<12} {:<28} {:>5} {:>8} {:>7.0} {:>5} {:>9} {:>9} {:>9} {:>5} {:>7}\n",
            row.category,
            row.design,
            row.tech_nm,
            opt(row.area_mm2, 3),
            row.freq_mhz,
            opt(row.volt, 2),
            opt(row.power_mw, 1),
            opt(row.perf_gops, 1),
            opt(row.eff_gops_w, 0),
            row.mac_units,
            row.precision,
        ));
    }
    out
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nm, {})",
            self.design, self.tech_nm, self.precision
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literature_has_nine_rows() {
        let rows = literature_rows();
        assert_eq!(rows.len(), 9);
        assert!(rows.iter().any(|r| r.design == "Eyeriss"));
        assert!(rows.iter().any(|r| r.design.contains("Anders")));
    }

    #[test]
    fn our_rows_reproduce_paper_numbers() {
        let rows = our_rows(31.6, 0.988);
        assert_eq!(rows.len(), 3);

        let eff = &rows[0];
        assert!((eff.power_mw.unwrap() - 43.5).abs() < 1.0);
        assert!((eff.perf_gops.unwrap() - 30.0).abs() < 0.5);
        assert!((eff.eff_gops_w.unwrap() - 688.0).abs() < 15.0);
        assert!((eff.area_mm2.unwrap() - 0.5).abs() < 0.01);

        let perf = &rows[1];
        assert!((perf.power_mw.unwrap() - 90.7).abs() < 3.0);
        assert!((perf.perf_gops.unwrap() - 42.0).abs() < 0.5);
        assert!((perf.eff_gops_w.unwrap() - 462.0).abs() < 15.0);

        let n65 = &rows[2];
        assert_eq!(n65.tech_nm, 65);
        assert!((n65.power_mw.unwrap() - 89.1).abs() < 2.0);
        assert!((n65.perf_gops.unwrap() - 12.6).abs() < 0.3);
        assert!((n65.area_mm2.unwrap() - 3.85).abs() < 0.05);
    }

    #[test]
    fn headline_claims_hold() {
        // "4.65x higher energy efficiency ... than a software counterpart"
        // is checked in the bench harness; here check the cross-design
        // claims of Section III: IBM is ~2.6x more efficient, Anders ~4.3x.
        let ours = our_rows(31.6, 0.988);
        let eff = ours[0].eff_gops_w.unwrap();
        let lit = literature_rows();
        let ibm = lit.iter().find(|r| r.design == "IBM").unwrap();
        let anders = lit.iter().find(|r| r.design.contains("Anders")).unwrap();
        let ibm_ratio = ibm.eff_gops_w.unwrap() / eff;
        let anders_ratio = anders.eff_gops_w.unwrap() / eff;
        assert!((ibm_ratio - 2.6).abs() < 0.3, "IBM ratio = {ibm_ratio}");
        assert!(
            (anders_ratio - 4.3).abs() < 0.4,
            "Anders ratio = {anders_ratio}"
        );
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let mut rows = literature_rows();
        rows.extend(our_rows(31.6, 0.988));
        let text = render(&rows);
        assert_eq!(text.lines().count(), 2 + rows.len());
        assert!(text.contains("GOPS/W"));
        assert!(text.contains("PULP+RedMulE"));
        // Missing values render as '-'.
        assert!(text.lines().any(|l| l.contains("A100") && l.contains('-')));
    }

    #[test]
    fn row_display() {
        let rows = literature_rows();
        assert!(rows[0].to_string().contains("A100"));
    }
}
