//! Parametric area model.
//!
//! Component areas are linear in the structural quantities of an
//! accelerator instance:
//!
//! * datapath — proportional to the FMA count `H*L`;
//! * X/Z buffers — proportional to their storage, `L * H*(P+1)` elements
//!   each (double-buffered X, single Z);
//! * W buffer — `H` shift registers of `H*(P+1)` elements;
//! * streamer — proportional to the TCDM port count `2H + 1` (for
//!   `P = 3`);
//! * controller + scheduler — a fixed block.
//!
//! The five coefficients are calibrated against the paper's three area
//! anchors — 0.07 mm² for the 32-FMA instance, "comparable to the whole
//! cluster" (0.5 mm²) at 256 FMAs (`H=8, L=32`), and "double" (1.0 mm²)
//! at 512 FMAs (`H=16, L=32`) — so the Fig. 4b sweep reproduces the
//! paper's curve by construction of the *model*, not of each data point.

use crate::tech::Technology;
use std::fmt;

/// Cluster area (22 nm) excluding RedMulE-instance variation, per the
/// paper: "RedMulE occupies 0.07 mm², corresponding to 14 % of the entire
/// PULP cluster" => cluster = 0.5 mm² including the default instance.
const CLUSTER_AREA_22NM_MM2: f64 = 0.5;

/// Calibrated coefficients (mm² in 22 nm). See module docs. With these,
/// the model yields 0.0709 / 0.499 / 0.998 mm² at the paper's three
/// anchors (32 / 256 / 512 FMAs).
const AREA_PER_FMA: f64 = 1.40e-3;
const AREA_PER_XZBUF_ELEM: f64 = 1.225e-4;
const AREA_PER_WBUF_ELEM: f64 = 9.765e-6;
const AREA_PER_PORT: f64 = 4.6875e-4;
const AREA_CONTROLLER: f64 = 5.0e-3;

/// Per-component area of one RedMulE instance, in mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// The FMA array.
    pub datapath: f64,
    /// X, W and Z buffers together.
    pub buffers: f64,
    /// The streamer (memory ports, address generation).
    pub streamer: f64,
    /// Controller + scheduler + register file.
    pub controller: f64,
}

impl AreaBreakdown {
    /// Total instance area in mm².
    pub fn total(&self) -> f64 {
        self.datapath + self.buffers + self.streamer + self.controller
    }

    /// Component shares as fractions of the total, in the order
    /// (datapath, buffers, streamer, controller).
    pub fn shares(&self) -> [f64; 4] {
        let t = self.total();
        [
            self.datapath / t,
            self.buffers / t,
            self.streamer / t,
            self.controller / t,
        ]
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "datapath   {:8.4} mm2", self.datapath)?;
        writeln!(f, "buffers    {:8.4} mm2", self.buffers)?;
        writeln!(f, "streamer   {:8.4} mm2", self.streamer)?;
        writeln!(f, "controller {:8.4} mm2", self.controller)?;
        write!(f, "total      {:8.4} mm2", self.total())
    }
}

/// The area model for a technology node.
///
/// # Example
///
/// ```
/// use redmule_energy::{AreaModel, Technology};
///
/// let m = AreaModel::new(Technology::Gf22Fdx);
/// // Fig. 4b: at H=8, L=32 (256 FMAs) RedMulE alone is about as large as
/// // the whole cluster.
/// let big = m.redmule(8, 32, 3).total();
/// assert!((big / m.cluster_mm2() - 1.0).abs() < 0.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaModel {
    tech: Technology,
}

impl AreaModel {
    /// Creates the model for a node.
    pub fn new(tech: Technology) -> AreaModel {
        AreaModel { tech }
    }

    /// Area breakdown of a RedMulE instance with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `l` is zero.
    pub fn redmule(&self, h: usize, l: usize, p: usize) -> AreaBreakdown {
        assert!(h > 0 && l > 0, "H and L must be positive");
        let s = self.tech.area_scale();
        let pw = h * (p + 1);
        let ports = pw * 16 / 32 + 1;
        AreaBreakdown {
            datapath: s * AREA_PER_FMA * (h * l) as f64,
            buffers: s
                * (AREA_PER_XZBUF_ELEM * (l * pw) as f64 + AREA_PER_WBUF_ELEM * (h * pw) as f64),
            streamer: s * AREA_PER_PORT * ports as f64,
            controller: s * AREA_CONTROLLER,
        }
    }

    /// Area of the full PULP cluster (8 cores, TCDM, interconnect,
    /// including the default RedMulE instance).
    pub fn cluster_mm2(&self) -> f64 {
        self.tech.area_scale() * CLUSTER_AREA_22NM_MM2
    }

    /// RedMulE's share of the cluster for the paper instance (≈ 14 %).
    pub fn redmule_cluster_fraction(&self) -> f64 {
        self.redmule(4, 8, 3).total() / self.cluster_mm2()
    }

    /// The Fig. 4b area sweep: instance area and its ratio to the cluster
    /// for each `(H, L)` pair, at fixed `P`.
    pub fn sweep(&self, pairs: &[(usize, usize)], p: usize) -> Vec<AreaSweepPoint> {
        pairs
            .iter()
            .map(|&(h, l)| {
                let area = self.redmule(h, l, p).total();
                AreaSweepPoint {
                    h,
                    l,
                    fmas: h * l,
                    area_mm2: area,
                    cluster_ratio: area / self.cluster_mm2(),
                }
            })
            .collect()
    }
}

/// One point of the Fig. 4b area sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaSweepPoint {
    /// Columns.
    pub h: usize,
    /// Rows.
    pub l: usize,
    /// FMA count.
    pub fmas: usize,
    /// Instance area.
    pub area_mm2: f64,
    /// Area relative to the whole PULP cluster.
    pub cluster_ratio: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22() -> AreaModel {
        AreaModel::new(Technology::Gf22Fdx)
    }

    #[test]
    fn paper_instance_is_seven_hundredths_mm2() {
        let a = m22().redmule(4, 8, 3);
        assert!(
            (a.total() - 0.07).abs() < 0.007,
            "paper instance area = {}",
            a.total()
        );
    }

    #[test]
    fn paper_instance_is_about_14_percent_of_cluster() {
        let frac = m22().redmule_cluster_fraction();
        assert!((0.12..=0.16).contains(&frac), "fraction = {frac}");
    }

    #[test]
    fn datapath_dominates_the_breakdown() {
        let a = m22().redmule(4, 8, 3);
        let shares = a.shares();
        assert!(shares[0] > 0.5, "datapath share = {}", shares[0]);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig4b_anchors() {
        let m = m22();
        // 256 FMAs comparable to the cluster.
        let a256 = m.redmule(8, 32, 3).total();
        assert!((a256 / 0.5 - 1.0).abs() < 0.15, "256-FMA area = {a256}");
        // 512 FMAs about double the cluster.
        let a512 = m.redmule(16, 32, 3).total();
        assert!((a512 / 1.0 - 1.0).abs() < 0.15, "512-FMA area = {a512}");
    }

    #[test]
    fn area_grows_monotonically_in_h_and_l() {
        let m = m22();
        let mut last = 0.0;
        for (h, l) in [(2, 4), (4, 8), (4, 16), (8, 16), (8, 32), (16, 32)] {
            let a = m.redmule(h, l, 3).total();
            assert!(a > last, "area must grow: {a} at ({h},{l})");
            last = a;
        }
    }

    #[test]
    fn sweep_reports_ratios() {
        let pts = m22().sweep(&[(4, 8), (8, 32)], 3);
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].fmas, 32);
        assert!(pts[1].cluster_ratio > 5.0 * pts[0].cluster_ratio);
    }

    #[test]
    fn node65_scales_everything_up() {
        let a22 = m22().redmule(4, 8, 3).total();
        let a65 = AreaModel::new(Technology::Node65).redmule(4, 8, 3).total();
        assert!((a65 / a22 - 7.7).abs() < 1e-9);
        assert!((AreaModel::new(Technology::Node65).cluster_mm2() - 3.85).abs() < 1e-9);
    }

    #[test]
    fn display_lists_components() {
        let text = m22().redmule(4, 8, 3).to_string();
        assert!(text.contains("datapath") && text.contains("total"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_h_rejected() {
        let _ = m22().redmule(0, 8, 3);
    }
}
