//! Area, power and energy models for RedMulE and its PULP cluster.
//!
//! The paper's silicon results (Synopsys DC synthesis + Cadence Innovus
//! place-and-route in GF22FDX, post-layout power analysis) cannot be
//! regenerated without the PDK. What *can* be reproduced — and what the
//! paper's claims actually consist of — are the ratios and trends: RedMulE
//! is 14 % of the cluster area, dominates 69 % of its power, reaches
//! 688 GFLOPS/W at the efficiency point, and its area grows along a
//! specific curve in `(H, L)`. This crate provides analytical models
//! **calibrated once against the paper's anchor numbers** and driven
//! everywhere else by structural quantities from the simulator (FMA count,
//! buffer bits, port count, utilization), so every figure is derived, not
//! hard-coded per plot:
//!
//! * [`Technology`] — GF22FDX and the 65 nm port, with capacitance/area
//!   scale factors.
//! * [`OperatingPoint`] — the paper's named voltage/frequency corners.
//! * [`AreaModel`] — per-component area, parametric in `(H, L, P)`
//!   (Fig. 3a breakdown, Fig. 4b sweep, Table I area column).
//! * [`PowerModel`] — `C·V²·f`-scaled cluster power with
//!   utilization-dependent dynamic share (Fig. 3b/3c, Table I).
//! * [`table1`] — the state-of-the-art comparison database.
//!
//! # Example
//!
//! ```
//! use redmule_energy::{AreaModel, OperatingPoint, PowerModel, Technology};
//!
//! let area = AreaModel::new(Technology::Gf22Fdx);
//! let breakdown = area.redmule(4, 8, 3);
//! assert!((breakdown.total() - 0.07).abs() < 0.01); // ~0.07 mm^2
//!
//! let power = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_efficiency());
//! let cluster = power.cluster_power_mw(0.988);
//! assert!((cluster.total() - 43.5).abs() < 2.0); // ~43.5 mW
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod area;
mod oppoint;
mod power;
pub mod table1;
mod tech;

pub use area::{AreaBreakdown, AreaModel};
pub use oppoint::OperatingPoint;
pub use power::{PowerBreakdown, PowerModel};
pub use tech::Technology;
