//! Utilization-aware power and energy model.
//!
//! Calibrated once against the paper's measured anchor: running a large
//! GEMM at the peak-efficiency point (0.65 V, 476 MHz, 98.8 % datapath
//! utilization), the cluster consumes 43.5 mW, of which RedMulE is 69 %
//! and TCDM + HCI 17.1 %. Other corners are derived with the dynamic-power
//! law `P ∝ C·V²·f` (which the paper's own 0.8 V / 666 MHz point obeys to
//! within 2 %), and lower utilization proportionally reduces the dynamic
//! (RedMulE and memory) components — this is what makes the Fig. 3c
//! energy-per-MAC curve fall with matrix size.

use crate::oppoint::OperatingPoint;
use crate::tech::Technology;
use std::fmt;

/// Reference corner for all calibration constants.
const REF_VDD: f64 = 0.65;
const REF_FREQ_MHZ: f64 = 476.0;
const REF_UTIL: f64 = 0.988;

/// Component powers at the reference corner and utilization (mW).
const REF_REDMULE_MW: f64 = 43.5 * 0.69;
const REF_MEM_MW: f64 = 43.5 * 0.171;
const REF_OTHER_MW: f64 = 43.5 * (1.0 - 0.69 - 0.171);

/// Cluster power while executing the *software* GEMM (RedMulE clock-gated,
/// 8 cores + TCDM active), at the reference corner. The paper does not
/// report it directly, but its headline pair — 22x speedup and 4.65x
/// energy-efficiency gain — implies `P_sw = P_hw * 4.65 / 22 ≈ 9.2 mW`.
const REF_SW_MODE_MW: f64 = 43.5 * 4.65 / 22.0;

/// RedMulE-internal power shares (Fig. 3b). The paper plots but does not
/// tabulate them; these assumed shares are documented in EXPERIMENTS.md.
const RM_SHARE_DATAPATH: f64 = 0.70;
const RM_SHARE_BUFFERS: f64 = 0.13;
const RM_SHARE_STREAMER: f64 = 0.12;
const RM_SHARE_CONTROLLER: f64 = 0.05;

/// Cluster power split at a given utilization, in mW.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// The accelerator itself.
    pub redmule: f64,
    /// TCDM banks + HCI interconnect.
    pub tcdm_hci: f64,
    /// Cores (clock-gated), DMA, peripherals, clock tree.
    pub other: f64,
}

impl PowerBreakdown {
    /// Total cluster power in mW.
    pub fn total(&self) -> f64 {
        self.redmule + self.tcdm_hci + self.other
    }

    /// Shares of the total as fractions (redmule, tcdm_hci, other).
    pub fn shares(&self) -> [f64; 3] {
        let t = self.total();
        [self.redmule / t, self.tcdm_hci / t, self.other / t]
    }
}

impl fmt::Display for PowerBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "redmule  {:7.2} mW", self.redmule)?;
        writeln!(f, "tcdm+hci {:7.2} mW", self.tcdm_hci)?;
        writeln!(f, "other    {:7.2} mW", self.other)?;
        write!(f, "total    {:7.2} mW", self.total())
    }
}

/// RedMulE-internal power split (Fig. 3b), in mW.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedmulePower {
    /// The FMA array.
    pub datapath: f64,
    /// X/W/Z buffers.
    pub buffers: f64,
    /// Streamer.
    pub streamer: f64,
    /// Controller + scheduler.
    pub controller: f64,
}

impl RedmulePower {
    /// Total accelerator power in mW.
    pub fn total(&self) -> f64 {
        self.datapath + self.buffers + self.streamer + self.controller
    }
}

/// The power/energy model at one operating point.
///
/// # Example
///
/// ```
/// use redmule_energy::{OperatingPoint, PowerModel, Technology};
///
/// let m = PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_efficiency());
/// // ~688 GFLOPS/W at the paper's measured throughput.
/// let eff = m.efficiency_gflops_w(31.6, 0.988);
/// assert!((eff - 688.0).abs() < 25.0, "efficiency = {eff}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    tech: Technology,
    op: OperatingPoint,
}

impl PowerModel {
    /// Creates the model for a node and corner.
    pub fn new(tech: Technology, op: OperatingPoint) -> PowerModel {
        PowerModel { tech, op }
    }

    /// The operating point.
    pub fn operating_point(&self) -> OperatingPoint {
        self.op
    }

    /// `C·V²·f` scale factor from the reference corner to this one.
    fn scale(&self) -> f64 {
        let v = self.op.vdd() / REF_VDD;
        let f = self.op.frequency().as_mhz() / REF_FREQ_MHZ;
        v * v * f * self.tech.cap_scale()
    }

    /// Cluster power at a given datapath utilization (0..=1).
    ///
    /// # Panics
    ///
    /// Panics if `util` is outside `[0, 1]`.
    pub fn cluster_power_mw(&self, util: f64) -> PowerBreakdown {
        assert!((0.0..=1.0).contains(&util), "utilization must be in [0,1]");
        let s = self.scale();
        PowerBreakdown {
            redmule: s * REF_REDMULE_MW * util / REF_UTIL,
            tcdm_hci: s * REF_MEM_MW * util / REF_UTIL,
            other: s * REF_OTHER_MW,
        }
    }

    /// Standalone RedMulE power split at a given utilization.
    ///
    /// # Panics
    ///
    /// Panics if `util` is outside `[0, 1]`.
    pub fn redmule_power_mw(&self, util: f64) -> RedmulePower {
        let total = self.cluster_power_mw(util).redmule;
        RedmulePower {
            datapath: total * RM_SHARE_DATAPATH,
            buffers: total * RM_SHARE_BUFFERS,
            streamer: total * RM_SHARE_STREAMER,
            controller: total * RM_SHARE_CONTROLLER,
        }
    }

    /// Cluster power while the 8 cores run the software GEMM and the
    /// accelerator is clock-gated, in mW (see `REF_SW_MODE_MW`).
    pub fn sw_execution_power_mw(&self) -> f64 {
        self.scale() * REF_SW_MODE_MW
    }

    /// Energy-efficiency gain of the accelerator over the software
    /// baseline, given both measured throughputs (the paper's headline
    /// "4.65x higher energy efficiency").
    pub fn efficiency_gain_over_sw(&self, hw_mpc: f64, hw_util: f64, sw_mpc: f64) -> f64 {
        let hw_eff = self.gops(hw_mpc) / (self.cluster_power_mw(hw_util).total() / 1e3);
        let sw_eff = self.gops(sw_mpc) / (self.sw_execution_power_mw() / 1e3);
        hw_eff / sw_eff
    }

    /// Throughput in GOPS (1 MAC = 2 ops) for an achieved MAC/cycle rate.
    pub fn gops(&self, macs_per_cycle: f64) -> f64 {
        2.0 * macs_per_cycle * self.op.frequency().hz() / 1e9
    }

    /// Cluster-level energy efficiency in 16-bit GFLOPS/W.
    ///
    /// # Panics
    ///
    /// Panics if `util` is outside `[0, 1]`.
    pub fn efficiency_gflops_w(&self, macs_per_cycle: f64, util: f64) -> f64 {
        let power_w = self.cluster_power_mw(util).total() / 1e3;
        if power_w == 0.0 {
            return 0.0;
        }
        self.gops(macs_per_cycle) / power_w
    }

    /// Cluster energy per MAC operation, in picojoules (Fig. 3c).
    ///
    /// # Panics
    ///
    /// Panics if `util` is outside `[0, 1]` or `macs_per_cycle` is not
    /// positive.
    pub fn energy_per_mac_pj(&self, macs_per_cycle: f64, util: f64) -> f64 {
        assert!(macs_per_cycle > 0.0, "need a positive throughput");
        let power_w = self.cluster_power_mw(util).total() / 1e3;
        let macs_per_s = macs_per_cycle * self.op.frequency().hz();
        power_w / macs_per_s * 1e12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peak_eff() -> PowerModel {
        PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_efficiency())
    }

    fn peak_perf() -> PowerModel {
        PowerModel::new(Technology::Gf22Fdx, OperatingPoint::peak_performance())
    }

    #[test]
    fn reference_point_reproduces_43_5_mw() {
        let p = peak_eff().cluster_power_mw(0.988);
        assert!((p.total() - 43.5).abs() < 1e-9, "total = {}", p.total());
        let shares = p.shares();
        assert!((shares[0] - 0.69).abs() < 1e-9);
        assert!((shares[1] - 0.171).abs() < 1e-9);
    }

    #[test]
    fn peak_performance_point_matches_90_7_mw() {
        // Paper: 90.7 mW at 0.8 V / 666 MHz; the C·V²·f law predicts ~92.1.
        let p = peak_perf().cluster_power_mw(0.988);
        assert!((p.total() - 90.7).abs() < 3.0, "total = {}", p.total());
    }

    #[test]
    fn node65_matches_89_1_mw() {
        let m = PowerModel::new(Technology::Node65, OperatingPoint::node65());
        let p = m.cluster_power_mw(0.988);
        assert!((p.total() - 89.1).abs() < 1.5, "total = {}", p.total());
    }

    #[test]
    fn throughput_matches_table1() {
        // 31.6 MAC/cycle: 30 GOPS at 476 MHz, 42 GOPS at 666 MHz.
        assert!((peak_eff().gops(31.6) - 30.0).abs() < 0.2);
        assert!((peak_perf().gops(31.6) - 42.0).abs() < 0.2);
    }

    #[test]
    fn efficiency_matches_table1() {
        assert!((peak_eff().efficiency_gflops_w(31.6, 0.988) - 688.0).abs() < 15.0);
        assert!((peak_perf().efficiency_gflops_w(31.6, 0.988) - 462.0).abs() < 15.0);
    }

    #[test]
    fn energy_per_mac_falls_with_utilization() {
        let m = peak_eff();
        // Low utilization (small matrices) costs more energy per MAC.
        let small = m.energy_per_mac_pj(32.0 * 0.5, 0.5);
        let large = m.energy_per_mac_pj(32.0 * 0.99, 0.99);
        assert!(small > large, "{small} <= {large}");
        // Absolute scale: ~2.9 pJ/MAC at the efficiency point.
        assert!((large - 2.9).abs() < 0.3, "pJ/MAC = {large}");
    }

    #[test]
    fn idle_cluster_still_burns_static_and_clock_power() {
        let p = peak_eff().cluster_power_mw(0.0);
        assert!(p.redmule == 0.0 && p.tcdm_hci == 0.0);
        assert!(p.other > 0.0);
    }

    #[test]
    fn redmule_breakdown_sums_to_cluster_share() {
        let m = peak_eff();
        let rm = m.redmule_power_mw(0.988);
        let cluster = m.cluster_power_mw(0.988);
        assert!((rm.total() - cluster.redmule).abs() < 1e-9);
        assert!(rm.datapath > rm.buffers);
        assert!(rm.datapath > rm.streamer + rm.controller);
    }

    #[test]
    fn efficiency_gain_reproduces_headline_claim() {
        let m = peak_eff();
        // At the paper's own numbers (31.6 vs 31.6/22 MAC/cycle) the gain
        // is 4.65x by construction of the SW-mode power constant.
        let gain = m.efficiency_gain_over_sw(31.6, 0.988, 31.6 / 22.0);
        assert!((gain - 4.65).abs() < 0.05, "gain = {gain}");
        // SW-mode power is ~9.2 mW at the reference corner.
        assert!((m.sw_execution_power_mw() - 9.19).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn utilization_is_validated() {
        let _ = peak_eff().cluster_power_mw(1.5);
    }

    #[test]
    fn display_output() {
        let text = peak_eff().cluster_power_mw(0.9).to_string();
        assert!(text.contains("redmule") && text.contains("total"));
    }
}
