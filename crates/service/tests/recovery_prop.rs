//! Property: kill a durable run at an arbitrary storage write (with an
//! arbitrary torn-append length), then corrupt the surviving objects
//! with seeded bit flips — recovery still never panics, repairs damage
//! with typed events only, and produces a report byte-identical to an
//! uninterrupted run over the recovered submission prefix.

use proptest::prelude::*;
use redmule::{AccelConfig, Engine, FaultSite};
use redmule_fp16::vector::GemmShape;
use redmule_service::{ServiceConfig, ServiceSim, Submission, TenantConfig};
use redmule_store::{MemBackend, StorageFault, StorageFaultPlan};

fn small_cfg() -> AccelConfig {
    AccelConfig::new(4, 2, 1)
}

fn sim() -> ServiceSim {
    let config = ServiceConfig::new(1)
        .with_tenant(TenantConfig::new(0).with_priority(1).with_max_in_flight(1))
        .with_tenant(TenantConfig::new(7).with_priority(5));
    ServiceSim::new(config)
        .expect("valid config")
        .with_engine(Engine::new(small_cfg()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn recovery_is_bit_exact_after_any_crash_and_corruption(
        m in 2usize..6,
        n in 1usize..6,
        k in 4usize..10,
        seed in any::<u32>(),
        strike_count in 0usize..3,
        strike_bit in 0u8..16,
        interrupt_at in 20u64..200,
        crash_sel in any::<u16>(),
        torn_sel in any::<u8>(),
        flips in 0usize..3,
        fault_seed in any::<u64>(),
    ) {
        let long = GemmShape::new(m, n, k);
        let short = GemmShape::new(1, 1, 2);
        let strikes: Vec<(u64, FaultSite)> = (0..strike_count)
            .map(|j| {
                (
                    30 + j as u64 * 41,
                    FaultSite::Pipe {
                        col: (j + 1) % 4,
                        row: j % 2,
                        stage: 0,
                        bit: strike_bit,
                    },
                )
            })
            .collect();
        let script = vec![
            Submission::new(1, 0, 0, long).with_seed(seed).with_faults(strikes),
            Submission::new(100, 7, interrupt_at, short)
                .with_deadline_cycle(interrupt_at + 500),
            Submission::new(200, 0, interrupt_at + 1, short),
            Submission::new(2, 0, 900, GemmShape::new(3, 2, 4)).with_seed(5),
        ];
        let mut in_order = script.clone();
        in_order.sort_by_key(|s| (s.arrival_cycle, s.id));

        // Clean pass: the full write schedule of this exact script.
        let mut clean = MemBackend::new();
        sim().run_durable(&script, &mut clean).expect("clean durable run");
        let writes = clean.writes_done();
        prop_assert!(writes > 0);
        let crash_at = u64::from(crash_sel) % writes;

        // Crash the run mid-write, then corrupt what survived.
        let mut backend = MemBackend::new();
        StorageFaultPlan::new(fault_seed)
            .with_fault(StorageFault::TornAppend {
                write_op: crash_at,
                keep_bytes: torn_sel as usize % 29,
            })
            .apply(&mut backend);
        let crashed = sim().run_durable(&script, &mut backend);
        prop_assert!(crashed.is_err(), "the crash plan must abort the run");
        backend.clear_crash();
        StorageFaultPlan::new(fault_seed)
            .with_seeded_bit_flips(flips)
            .apply(&mut backend);

        let recovered = sim().recover(&mut backend);
        let ok = recovered.is_ok();
        prop_assert!(ok, "recovery must absorb damage, got {:?}", recovered.err());
        let recovery = recovered.expect("checked ok");

        // The recovered submissions are always a prefix of the script in
        // arrival order, and the report is byte-identical to a fresh,
        // uninterrupted run over exactly that prefix.
        let k = recovery.recovery.submissions_recovered as usize;
        prop_assert!(k <= in_order.len());
        let expected = sim().run(&in_order[..k]).expect("reference run");
        prop_assert_eq!(
            recovery.report.to_canonical_json(),
            expected.to_canonical_json(),
            "crash at write {} (torn {}, {} flips): recovered report drifted",
            crash_at,
            torn_sel as usize % 29,
            flips
        );

        // Idempotence under the same damage: recovering again changes
        // nothing (the only write recovery does is the tail repair).
        let again = sim().recover(&mut backend).expect("second recovery");
        prop_assert_eq!(
            again.report.to_canonical_json(),
            recovery.report.to_canonical_json()
        );
        prop_assert_eq!(again.recovery.torn_bytes, 0);
    }
}
