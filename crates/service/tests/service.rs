//! End-to-end service behaviour: admission, scheduling, shedding,
//! worker-count invariance and the overload soak.

use redmule::{AccelConfig, Engine, FaultSite, FunctionalGemm};
use redmule_fp16::vector::GemmShape;
use redmule_service::{
    Rejected, ServiceConfig, ServiceJobRecord, ServiceReport, ServiceRetry, ServiceSim,
    ServiceStatus, Submission, TenantConfig,
};

fn small_cfg() -> AccelConfig {
    AccelConfig::new(4, 2, 1)
}

fn sim(config: ServiceConfig) -> ServiceSim {
    ServiceSim::new(config)
        .expect("valid config")
        .with_engine(Engine::new(small_cfg()))
}

fn estimate(shape: GemmShape) -> u64 {
    FunctionalGemm::new(small_cfg())
        .estimated_cycles(shape)
        .count()
}

/// Reference record for one submission run completely unloaded.
fn solo_record(sub: &Submission) -> ServiceJobRecord {
    let config = ServiceConfig::new(1).with_tenant(TenantConfig::new(sub.tenant));
    let mut solo = sub.clone();
    solo.arrival_cycle = 0;
    solo.deadline_cycle = None;
    let report = sim(config).run(&[solo]).expect("solo run");
    assert_eq!(report.jobs.len(), 1);
    report.jobs.into_iter().next().expect("one record")
}

#[test]
fn light_load_completes_bit_exact_with_unloaded_reference() {
    let config = ServiceConfig::new(2)
        .with_tenant(TenantConfig::new(0))
        .with_tenant(TenantConfig::new(1));
    let script = vec![
        Submission::new(1, 0, 0, GemmShape::new(4, 5, 6)),
        Submission::new(2, 1, 10, GemmShape::new(3, 3, 9)),
        Submission::new(3, 0, 20, GemmShape::new(6, 2, 4)),
        Submission::new(4, 1, 20, GemmShape::new(2, 7, 3)),
    ];
    let report = sim(config).run(&script).expect("run");
    assert_eq!(report.completed(), 4);
    assert!(report.rejected.is_empty());
    for (sub, job) in script.iter().zip(&report.jobs) {
        assert_eq!(job.id, sub.id);
        assert_eq!(job.status, ServiceStatus::Completed);
        assert!(
            job.checkpoint.is_none(),
            "completed jobs carry no checkpoint"
        );
        let solo = solo_record(sub);
        assert_eq!(job.z_fnv64, solo.z_fnv64, "job {} output drifted", job.id);
        assert_eq!(job.executed_cycles, solo.executed_cycles);
        assert_eq!(
            job.estimate, job.executed_cycles,
            "analytical estimate is exact for fault-free jobs"
        );
    }
}

#[test]
fn rejections_are_typed_and_admission_is_conservative() {
    let shape = GemmShape::new(4, 4, 8);
    let est = estimate(shape);
    let config = ServiceConfig::new(1)
        .with_queue_capacity(1)
        .with_tenant(TenantConfig::new(0).with_max_in_flight(1))
        .with_tenant(TenantConfig::new(1).with_bucket(est, 0))
        .with_tenant(TenantConfig::new(2));
    let script = vec![
        // Tenant 0: second concurrent submission trips the quota.
        Submission::new(1, 0, 0, shape),
        Submission::new(2, 0, 0, shape),
        // Tenant 1: bucket holds exactly one job and never refills.
        Submission::new(3, 1, 5, shape),
        Submission::new(4, 1, 6, shape),
        // Tenant 2: a deadline no idle server could meet.
        Submission::new(5, 2, 7, shape).with_deadline_cycle(7 + est / 2),
        // Tenant 2 again: feasible, but queue and servers are saturated
        // by equal-priority work — queue-full.
        Submission::new(6, 2, 8, shape),
        Submission::new(7, 2, 9, shape),
    ];
    let report = sim(config).run(&script).expect("run");
    let reasons: Vec<(u64, Rejected)> = report.rejected.iter().map(|r| (r.id, r.reason)).collect();
    assert!(reasons.contains(&(2, Rejected::QuotaExceeded { tenant: 0 })));
    assert!(reasons.contains(&(4, Rejected::QuotaExceeded { tenant: 1 })));
    assert!(reasons.contains(&(
        5,
        Rejected::DeadlineInfeasible {
            needed: est,
            deadline: 7 + est / 2,
        }
    )));
    assert!(reasons.contains(&(7, Rejected::QueueFull)));
    // Accounting: every submission is either a job record or a rejection.
    assert_eq!(report.jobs.len() + report.rejected.len(), script.len());
    for t in &report.tenants {
        assert_eq!(
            t.submitted,
            t.admitted + t.rejected_quota + t.rejected_queue_full + t.rejected_deadline
        );
    }
}

#[test]
fn preempted_job_migrates_and_completes_bit_exact() {
    let long = GemmShape::new(8, 6, 10);
    let short = GemmShape::new(2, 2, 2);
    let est_long = estimate(long);
    let est_short = estimate(short);
    assert!(est_long > 4 * est_short, "need a long victim");
    let config = ServiceConfig::new(1)
        .with_tenant(TenantConfig::new(0))
        .with_tenant(TenantConfig::new(1));
    // The long best-effort job starts at 0; mid-run a tight-deadline job
    // arrives whose slack beats the (infinite-slack) runner.
    let mid = est_long / 2;
    let script = vec![
        Submission::new(1, 0, 0, long),
        Submission::new(2, 1, mid, short).with_deadline_cycle(mid + est_short + 4),
    ];
    let report = sim(config).run(&script).expect("run");
    assert_eq!(report.completed(), 2);
    let victim = &report.jobs[0];
    assert_eq!(victim.id, 1);
    assert!(victim.preemptions >= 1, "long job must be preempted");
    assert!(victim.migrations >= 1, "resume happened on a fresh cluster");
    assert_eq!(
        victim.z_fnv64,
        solo_record(&script[0]).z_fnv64,
        "preempt + migrate + resume must be bit-exact"
    );
    let urgent = &report.jobs[1];
    assert!(
        urgent.finished_cycle <= (mid + est_short + 4),
        "urgent job met its deadline on the virtual timeline"
    );
    assert!(report.events.len() >= 3, "admissions + preemption traced");
}

#[test]
fn overload_sheds_lowest_priority_with_checkpoint() {
    let shape = GemmShape::new(6, 4, 8);
    let config = ServiceConfig::new(1)
        .with_queue_capacity(1)
        .with_tenant(TenantConfig::new(0).with_priority(1))
        .with_tenant(TenantConfig::new(9).with_priority(5));
    // Tenant 0 fills the server and the queue; tenant 9 then bursts in
    // and must displace rather than be turned away.
    let script = vec![
        Submission::new(1, 0, 0, shape),
        Submission::new(2, 0, 0, shape),
        Submission::new(3, 9, 1, shape),
    ];
    let report = sim(config).run(&script).expect("run");
    assert!(
        report.rejected.is_empty(),
        "high priority displaces, is not rejected"
    );
    let shed: Vec<&ServiceJobRecord> = report
        .jobs
        .iter()
        .filter(|j| j.status == ServiceStatus::Evicted)
        .collect();
    assert_eq!(shed.len(), 1, "exactly one low-priority victim");
    assert_eq!(shed[0].tenant, 0);
    let ckpt = shed[0].checkpoint.as_ref().expect("evicted keeps progress");
    assert!(!ckpt.is_empty());
    let high = report
        .jobs
        .iter()
        .find(|j| j.tenant == 9)
        .expect("burst job");
    assert_eq!(high.status, ServiceStatus::Completed);
}

#[test]
fn report_bytes_are_identical_across_worker_counts() {
    let report_at = |workers: usize| -> String {
        let config = ServiceConfig::new(2)
            .with_queue_capacity(2)
            .with_preempt_margin(8)
            .with_retry(ServiceRetry {
                max_retries: 1,
                backoff_cycles: 64,
            })
            .with_tenant(TenantConfig::new(0).with_priority(1).with_max_in_flight(2))
            .with_tenant(TenantConfig::new(1).with_priority(3))
            .with_tenant(TenantConfig::new(2).with_bucket(4096, 128));
        let strikes = vec![(
            4,
            FaultSite::Pipe {
                col: 1,
                row: 0,
                stage: 0,
                bit: 3,
            },
        )];
        let long = GemmShape::new(8, 6, 10);
        let est_long = estimate(long);
        let script = vec![
            Submission::new(1, 0, 0, long),
            Submission::new(2, 0, 2, GemmShape::new(4, 4, 4)),
            Submission::new(3, 0, 3, GemmShape::new(4, 4, 4)),
            Submission::new(4, 1, est_long / 3, GemmShape::new(2, 3, 2))
                .with_deadline_cycle(est_long),
            Submission::new(5, 2, est_long / 2, GemmShape::new(3, 3, 3)).with_faults(strikes),
            Submission::new(6, 2, est_long, GemmShape::new(5, 2, 7)),
            Submission::new(7, 1, est_long + 1, GemmShape::new(2, 2, 2))
                .with_deadline_cycle(est_long + 2000),
        ];
        sim(config)
            .with_workers(workers)
            .run(&script)
            .expect("run")
            .to_canonical_json()
    };
    let one = report_at(1);
    assert_eq!(one, report_at(2), "workers=2 diverged from workers=1");
    assert_eq!(one, report_at(8), "workers=8 diverged from workers=1");
}

/// The overload soak: quota-limited, deadline-carrying, fault-striken
/// traffic from rival tenants over a single server with a tiny queue.
/// Every accepted job must terminate as bit-exact-completed,
/// evicted-with-checkpoint, or a typed failure — and the books must
/// balance.
#[test]
fn saturation_soak_never_loses_accepted_work() {
    let shapes = [
        GemmShape::new(4, 4, 6),
        GemmShape::new(6, 3, 8),
        GemmShape::new(2, 6, 4),
        GemmShape::new(8, 2, 10),
    ];
    let config = ServiceConfig::new(1)
        .with_queue_capacity(2)
        .with_retry(ServiceRetry {
            max_retries: 1,
            backoff_cycles: 128,
        })
        .with_tenant(TenantConfig::new(0).with_priority(1).with_max_in_flight(3))
        .with_tenant(
            TenantConfig::new(1)
                .with_priority(2)
                .with_bucket(1 << 14, 64),
        )
        .with_tenant(TenantConfig::new(2).with_priority(4));
    let mut script = Vec::new();
    for i in 0..24u64 {
        let shape = shapes[(i % 4) as usize];
        let est = estimate(shape);
        let mut sub = Submission::new(i, (i % 3) as u32, i * est / 6, shape);
        if i % 5 == 0 {
            // A deadline tight enough that overload makes some lapse.
            let deadline = sub.arrival_cycle + est * 2;
            sub = sub.with_deadline_cycle(deadline);
        }
        if i % 7 == 3 {
            sub = sub.with_faults(vec![(
                i,
                FaultSite::Pipe {
                    col: (i % 4) as usize,
                    row: (i % 2) as usize,
                    stage: 0,
                    bit: (i % 11) as u8,
                },
            )]);
        }
        script.push(sub);
    }
    let report: ServiceReport = sim(config).run(&script).expect("soak run");

    assert_eq!(
        report.jobs.len() + report.rejected.len(),
        script.len(),
        "every submission is accounted for"
    );
    assert!(
        !report.rejected.is_empty(),
        "the soak must actually overload"
    );
    let mut evicted = 0usize;
    for job in &report.jobs {
        match &job.status {
            ServiceStatus::Completed => {
                assert!(job.checkpoint.is_none());
                let sub = script.iter().find(|s| s.id == job.id).expect("sub");
                if sub.faults.is_empty() {
                    assert_eq!(
                        job.z_fnv64,
                        solo_record(sub).z_fnv64,
                        "job {} completed but not bit-exact",
                        job.id
                    );
                }
            }
            ServiceStatus::Evicted => {
                evicted += 1;
                assert!(
                    job.checkpoint.as_ref().is_some_and(|c| !c.is_empty()),
                    "job {} evicted without a resumable checkpoint",
                    job.id
                );
            }
            ServiceStatus::Failed(msg) => {
                assert!(!msg.is_empty(), "typed failure carries its cause");
            }
        }
    }
    assert!(evicted > 0, "the soak must shed work");
    // Fairness bookkeeping survives the storm.
    for t in &report.tenants {
        assert_eq!(
            t.submitted,
            t.admitted + t.rejected_quota + t.rejected_queue_full + t.rejected_deadline
        );
        assert_eq!(t.admitted as usize, {
            report.jobs.iter().filter(|j| j.tenant == t.id).count()
        });
    }
    // The canonical artefact is still byte-stable under this load.
    assert_eq!(
        report.to_canonical_json(),
        report.to_canonical_json(),
        "serialization is a pure function"
    );
}
