//! Crash-consistent durability: kill the service at every single storage
//! write and prove recovery is bit-exact, typed and idempotent.
//!
//! The core invariant: after a crash at any write, recovery produces a
//! [`ServiceReport`] byte-identical (canonical JSON) to an uninterrupted
//! run over the recovered submission prefix — which is always the first
//! `k` submissions of the script in arrival order.

use redmule::{AccelConfig, Engine, FaultSite};
use redmule_fp16::vector::GemmShape;
use redmule_service::{
    ServiceConfig, ServiceError, ServiceSim, Submission, TenantConfig, JOURNAL_OBJECT,
};
use redmule_store::{MemBackend, StorageBackend, StorageFault, StorageFaultPlan};

fn small_cfg() -> AccelConfig {
    AccelConfig::new(4, 2, 1)
}

fn sim(config: ServiceConfig) -> ServiceSim {
    ServiceSim::new(config)
        .expect("valid config")
        .with_engine(Engine::new(small_cfg()))
}

fn pressured_config() -> ServiceConfig {
    ServiceConfig::new(1)
        .with_tenant(TenantConfig::new(0).with_priority(1).with_max_in_flight(1))
        .with_tenant(TenantConfig::new(7).with_priority(5))
}

/// A script that exercises every durability-relevant path: a long
/// fault-striked victim that gets preempted (checkpoint generations), a
/// failing job (decision records of every tag), tight-deadline
/// interrupts and quota-bounced submissions (rejections).
fn pressured_script() -> Vec<Submission> {
    let long = GemmShape::new(8, 6, 10);
    let short = GemmShape::new(1, 1, 2);
    let strikes = vec![
        (
            40,
            FaultSite::Pipe {
                col: 1,
                row: 0,
                stage: 0,
                bit: 3,
            },
        ),
        (
            90,
            FaultSite::Pipe {
                col: 2,
                row: 1,
                stage: 0,
                bit: 7,
            },
        ),
    ];
    vec![
        Submission::new(1, 0, 0, long)
            .with_seed(11)
            .with_faults(strikes),
        Submission::new(100, 7, 60, short).with_deadline_cycle(200),
        Submission::new(200, 0, 61, short), // quota-bounced
        Submission::new(101, 7, 240, short).with_deadline_cycle(400),
        Submission::new(2, 0, 600, GemmShape::new(3, 4, 5)).with_seed(5),
    ]
}

/// The script in the service's deterministic arrival order.
fn sorted(script: &[Submission]) -> Vec<Submission> {
    let mut s = script.to_vec();
    s.sort_by_key(|sub| (sub.arrival_cycle, sub.id));
    s
}

#[test]
fn durable_run_matches_plain_run_and_populates_storage() {
    let script = pressured_script();
    let plain = sim(pressured_config()).run(&script).expect("plain run");
    let mut backend = MemBackend::new();
    let durable = sim(pressured_config())
        .run_durable(&script, &mut backend)
        .expect("durable run");
    assert_eq!(durable.to_canonical_json(), plain.to_canonical_json());
    assert!(
        !backend.read(JOURNAL_OBJECT).expect("journal").is_empty(),
        "durable run must leave a journal"
    );
    // Quota pressure and preemption must actually fire, or this script
    // proves nothing about checkpoints and decision tags.
    assert!(plain.rejected.iter().any(|r| r.tenant == 0));
    assert!(
        plain.jobs.iter().any(|j| j.migrations > 0),
        "script must preempt and migrate the victim"
    );
}

#[test]
fn run_durable_refuses_a_dirty_backend() {
    let script = pressured_script();
    let mut backend = MemBackend::new();
    sim(pressured_config())
        .run_durable(&script, &mut backend)
        .expect("first durable run");
    let err = sim(pressured_config())
        .run_durable(&script, &mut backend)
        .expect_err("second run on the same backend must refuse");
    assert!(matches!(err, ServiceError::Recover(_)), "got {err:?}");
}

/// Kill the durable run at every single write operation (with a
/// rotating torn-tail length) and recover: the report must be
/// byte-identical to an uninterrupted run over the recovered prefix,
/// with all damage surfacing as typed repairs — never a panic.
#[test]
fn kill_at_every_write_recovers_bit_exact() {
    let script = pressured_script();
    let in_order = sorted(&script);

    // Clean pass: learn the total write count (= every crash point).
    let mut clean = MemBackend::new();
    sim(pressured_config())
        .run_durable(&script, &mut clean)
        .expect("clean durable run");
    let writes = clean.writes_done();
    assert!(writes > 10, "expected a write-rich script, got {writes}");

    let mut reused_somewhere = false;
    let mut restored_somewhere = false;
    let mut torn_somewhere = false;
    for w in 0..writes {
        let mut backend = MemBackend::new();
        let plan = StorageFaultPlan::new(w).with_fault(StorageFault::TornAppend {
            write_op: w,
            keep_bytes: (w as usize * 7) % 23,
        });
        plan.apply(&mut backend);
        let err = sim(pressured_config())
            .run_durable(&script, &mut backend)
            .expect_err("the crash plan must abort the run");
        assert!(
            matches!(err, ServiceError::Store(_)),
            "crash at write {w} must surface as a Store error, got {err:?}"
        );
        backend.clear_crash();

        let recovery = sim(pressured_config())
            .recover(&mut backend)
            .unwrap_or_else(|e| panic!("recovery after crash at write {w} failed: {e}"));
        let k = recovery.recovery.submissions_recovered as usize;
        assert!(k <= in_order.len());
        let expected = sim(pressured_config())
            .run(&in_order[..k])
            .expect("reference run over the recovered prefix");
        assert_eq!(
            recovery.report.to_canonical_json(),
            expected.to_canonical_json(),
            "crash at write {w}: recovered report differs from a fresh run \
             over the first {k} submissions"
        );
        reused_somewhere |= recovery.recovery.jobs_reused > 0;
        restored_somewhere |= recovery.recovery.checkpoints_restored > 0;
        torn_somewhere |= recovery.recovery.torn_bytes > 0;
        if recovery.recovery.torn_bytes > 0 {
            assert!(
                recovery
                    .recovery
                    .repairs
                    .iter()
                    .any(|r| r.artefact == "journal" && r.action == "truncated-tail"),
                "crash at write {w}: torn tail must be a typed repair"
            );
        }
    }
    // The sweep must actually cover the interesting recovery paths.
    assert!(reused_somewhere, "no crash point reused a journaled result");
    assert!(restored_somewhere, "no crash point restored a checkpoint");
    assert!(torn_somewhere, "no crash point tore the journal tail");
}

/// Recovery never writes anything but the journal tail repair, so
/// recovering twice gives identical reports and identical bookkeeping.
#[test]
fn recovery_is_idempotent() {
    let script = pressured_script();
    let mut clean = MemBackend::new();
    sim(pressured_config())
        .run_durable(&script, &mut clean)
        .expect("clean durable run");
    let mid = clean.writes_done() / 2;

    let mut backend = MemBackend::new();
    StorageFaultPlan::new(1)
        .with_fault(StorageFault::TornAppend {
            write_op: mid,
            keep_bytes: 9,
        })
        .apply(&mut backend);
    sim(pressured_config())
        .run_durable(&script, &mut backend)
        .expect_err("must crash");
    backend.clear_crash();

    let first = sim(pressured_config())
        .recover(&mut backend)
        .expect("first");
    let second = sim(pressured_config())
        .recover(&mut backend)
        .expect("second");
    assert_eq!(
        first.report.to_canonical_json(),
        second.report.to_canonical_json()
    );
    assert_eq!(
        first.recovery.submissions_recovered,
        second.recovery.submissions_recovered
    );
    assert_eq!(first.recovery.jobs_reused, second.recovery.jobs_reused);
    assert_eq!(
        first.recovery.checkpoints_restored,
        second.recovery.checkpoints_restored
    );
    // The tail was already truncated by the first pass.
    assert_eq!(second.recovery.torn_bytes, 0);
}

/// Satellite: a journal whose tail record was replayed (duplicated) by a
/// crashed append recovers cleanly — the duplicate submission is ignored
/// with a typed repair, not double-admitted.
#[test]
fn duplicate_submission_records_are_idempotent() {
    let script = pressured_script();
    let in_order = sorted(&script);
    // Crash at write 3: the config record (write 0) and two SUBMITTED
    // appends survive, so the journal tail is a whole submission record.
    let mut backend = MemBackend::new();
    StorageFaultPlan::new(0)
        .with_fault(StorageFault::TornAppend {
            write_op: 3,
            keep_bytes: 0,
        })
        .apply(&mut backend);
    sim(pressured_config())
        .run_durable(&script, &mut backend)
        .expect_err("must crash");
    backend.clear_crash();
    // Replay the tail append: the same submission record twice.
    StorageFaultPlan::new(0)
        .with_fault(StorageFault::DuplicateTailRecord { object_index: 0 })
        .apply(&mut backend);

    let recovery = sim(pressured_config())
        .recover(&mut backend)
        .expect("recover");
    assert_eq!(recovery.recovery.submissions_recovered, 2);
    assert!(recovery.recovery.records_ignored >= 1);
    assert!(
        recovery
            .recovery
            .repairs
            .iter()
            .any(|r| r.action == "ignored-duplicate"),
        "duplicate must surface as a typed repair: {:?}",
        recovery.recovery.repairs
    );
    let expected = sim(pressured_config())
        .run(&in_order[..2])
        .expect("reference");
    assert_eq!(
        recovery.report.to_canonical_json(),
        expected.to_canonical_json()
    );
}

/// A corrupted newest checkpoint generation costs re-executed cycles,
/// never changed bytes: recovery falls back a generation with a typed
/// repair and still reproduces the reference report exactly.
#[test]
fn corrupt_checkpoint_falls_back_a_generation_bit_exact() {
    let script = pressured_script();
    let in_order = sorted(&script);

    // Find a crash point whose recovery restores a checkpoint.
    let mut clean = MemBackend::new();
    sim(pressured_config())
        .run_durable(&script, &mut clean)
        .expect("clean durable run");
    let writes = clean.writes_done();
    let mut found = None;
    for w in (0..writes).rev() {
        let mut backend = MemBackend::new();
        StorageFaultPlan::new(w)
            .with_fault(StorageFault::TornAppend {
                write_op: w,
                keep_bytes: 0,
            })
            .apply(&mut backend);
        sim(pressured_config())
            .run_durable(&script, &mut backend)
            .expect_err("must crash");
        backend.clear_crash();
        let probe = sim(pressured_config())
            .recover(&mut backend)
            .expect("probe");
        if probe.recovery.checkpoints_restored > 0 {
            found = Some((w, backend));
            break;
        }
    }
    let (w, backend) = found.expect("some crash point must restore a checkpoint");

    // Corrupt the newest checkpoint record and recover the same state.
    let mut corrupted = backend.clone();
    let newest = corrupted
        .object_names()
        .into_iter()
        .rfind(|n| n.starts_with("service.ckpt"))
        .expect("a checkpoint object exists");
    let bytes = corrupted.object_mut(&newest).expect("checkpoint bytes");
    let at = bytes.len() / 2;
    bytes[at] ^= 0x40;

    let recovery = sim(pressured_config())
        .recover(&mut corrupted)
        .expect("recovery over a corrupt checkpoint");
    assert!(
        recovery
            .recovery
            .repairs
            .iter()
            .any(|r| r.artefact == "checkpoint"
                && (r.action == "fell-back-generation" || r.action == "discarded")),
        "crash at write {w}: corruption must surface as a typed repair: {:?}",
        recovery.recovery.repairs
    );
    let k = recovery.recovery.submissions_recovered as usize;
    let expected = sim(pressured_config())
        .run(&in_order[..k])
        .expect("reference");
    assert_eq!(
        recovery.report.to_canonical_json(),
        expected.to_canonical_json(),
        "fallback recovery must still be bit-exact"
    );
}

#[test]
fn recover_refuses_a_foreign_configuration() {
    let script = pressured_script();
    let mut backend = MemBackend::new();
    sim(pressured_config())
        .run_durable(&script, &mut backend)
        .expect("durable run");
    let other = ServiceConfig::new(2)
        .with_tenant(TenantConfig::new(0))
        .with_tenant(TenantConfig::new(7));
    let err = sim(other)
        .recover(&mut backend)
        .expect_err("foreign config must be refused");
    assert!(matches!(err, ServiceError::Recover(_)), "got {err:?}");
}

#[test]
fn empty_backend_recovers_to_an_empty_report() {
    let mut backend = MemBackend::new();
    let recovery = sim(pressured_config())
        .recover(&mut backend)
        .expect("empty recovery");
    assert_eq!(recovery.recovery.submissions_recovered, 0);
    assert!(recovery.report.jobs.is_empty());
    assert!(recovery.report.rejected.is_empty());
    let expected = sim(pressured_config()).run(&[]).expect("empty run");
    assert_eq!(
        recovery.report.to_canonical_json(),
        expected.to_canonical_json()
    );
}
