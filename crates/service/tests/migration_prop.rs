//! Property: a job that the service preempts (checkpoints, migrates to a
//! fresh engine/cluster pair, and resumes — possibly several times, under
//! quota pressure and with an active fault injector) produces exactly the
//! same output bits, executed cycles and fault telemetry as the same job
//! run alone on an idle service.

use proptest::prelude::*;
use redmule::{AccelConfig, Engine, FaultSite, FunctionalGemm};
use redmule_fp16::vector::GemmShape;
use redmule_service::{ServiceConfig, ServiceSim, ServiceStatus, Submission, TenantConfig};

fn small_cfg() -> AccelConfig {
    AccelConfig::new(4, 2, 1)
}

fn sim(config: ServiceConfig) -> ServiceSim {
    ServiceSim::new(config)
        .expect("valid config")
        .with_engine(Engine::new(small_cfg()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn preempt_migrate_resume_is_bit_exact_under_pressure(
        m in 2usize..8,
        n in 1usize..8,
        k in 4usize..14,
        seed in any::<u32>(),
        strike_count in 0usize..3,
        strike_cycle in 1u64..300,
        strike_bit in 0u8..16,
        interrupts in 1usize..4,
        spread in 3u64..9,
    ) {
        let shape = GemmShape::new(m, n, k);
        let est = FunctionalGemm::new(small_cfg())
            .estimated_cycles(shape)
            .count();
        let strikes: Vec<(u64, FaultSite)> = (0..strike_count)
            .map(|j| {
                (
                    strike_cycle + j as u64 * 37,
                    FaultSite::Pipe {
                        col: (j + 1) % 4,
                        row: j % 2,
                        stage: 0,
                        bit: strike_bit,
                    },
                )
            })
            .collect();
        let victim = Submission::new(1, 0, 0, shape)
            .with_seed(seed)
            .with_faults(strikes);

        // Reference: the victim alone on an idle single-server service.
        let solo_cfg = ServiceConfig::new(1).with_tenant(TenantConfig::new(0));
        let solo = sim(solo_cfg)
            .run(std::slice::from_ref(&victim))
            .expect("solo run");
        let solo = &solo.jobs[0];

        // Loaded run: the victim's tenant is quota-capped to one job (so
        // its later submissions are rejected while the victim is still in
        // flight), and a higher-priority tenant fires tight-deadline
        // interrupts mid-run that preempt the victim at varying points.
        let cfg = ServiceConfig::new(1)
            .with_tenant(TenantConfig::new(0).with_priority(1).with_max_in_flight(1))
            .with_tenant(TenantConfig::new(7).with_priority(5));
        let short = GemmShape::new(1, 1, 2);
        let short_est = FunctionalGemm::new(small_cfg())
            .estimated_cycles(short)
            .count();
        let mut script = vec![victim.clone()];
        for i in 0..interrupts {
            let at = (i as u64 + 1) * est / spread;
            script.push(
                Submission::new(100 + i as u64, 7, at, short)
                    .with_deadline_cycle(at + short_est + 2),
            );
            // Quota pressure: a same-tenant submission that must bounce.
            script.push(Submission::new(200 + i as u64, 0, at + 1, short));
        }
        let loaded = sim(cfg).run(&script).expect("loaded run");
        let job = loaded
            .jobs
            .iter()
            .find(|j| j.id == 1)
            .expect("victim record");

        prop_assert!(
            loaded.rejected.iter().any(|r| r.tenant == 0),
            "quota pressure must actually reject tenant-0 work"
        );
        prop_assert_eq!(&job.status, &solo.status, "terminal state differs");
        if job.status == ServiceStatus::Completed {
            prop_assert_eq!(job.z_fnv64, solo.z_fnv64, "output bits differ");
            prop_assert_eq!(
                job.executed_cycles, solo.executed_cycles,
                "cycle count differs"
            );
            prop_assert_eq!(
                job.fault_events, solo.fault_events,
                "fault telemetry differs"
            );
            prop_assert_eq!(job.tiles_done, solo.tiles_done);
        }
    }
}
