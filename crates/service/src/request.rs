//! Offered-load scripts: submissions, rejection types and job outcomes.

use redmule::obs::RejectReason;
use redmule::{BackendKind, FaultSite};
use redmule_fp16::vector::GemmShape;
use redmule_fp16::F16;
use std::fmt;

/// One entry of an offered-load script: a GEMM request from a tenant,
/// arriving at a virtual cycle, with an optional absolute deadline.
///
/// Operands are generated deterministically from `seed` (see
/// [`Submission::operands`]) so a script is a compact, reproducible
/// description of load — the same script replays to the same bytes.
#[derive(Debug, Clone)]
pub struct Submission {
    /// Caller-chosen id, unique within one script. All results are keyed
    /// by this id.
    pub id: u64,
    /// Submitting tenant; must exist in the service's tenant table.
    pub tenant: u32,
    /// Virtual cycle the submission arrives at the front end.
    pub arrival_cycle: u64,
    /// Problem shape (`M x N x K`).
    pub shape: GemmShape,
    /// Seed for deterministic operand generation.
    pub seed: u32,
    /// Absolute virtual-cycle deadline (`None` = best effort). A
    /// submission that cannot meet its deadline even on an idle server
    /// is rejected up front as infeasible.
    pub deadline_cycle: Option<u64>,
    /// Execution model for the uninterrupted path. Preempted or evicted
    /// jobs always replay on the cycle-accurate engine, which is
    /// bit-exact with the functional model.
    pub backend: BackendKind,
    /// Raw fault strikes to arm (cycle-addressed). Non-empty strikes
    /// force the cycle-accurate supervised path.
    pub faults: Vec<(u64, FaultSite)>,
}

impl Submission {
    /// A fault-free, best-effort, cycle-accurate submission.
    pub fn new(id: u64, tenant: u32, arrival_cycle: u64, shape: GemmShape) -> Submission {
        Submission {
            id,
            tenant,
            arrival_cycle,
            shape,
            seed: id as u32,
            deadline_cycle: None,
            backend: BackendKind::CycleAccurate,
            faults: Vec::new(),
        }
    }

    /// Sets the operand-generation seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u32) -> Submission {
        self.seed = seed;
        self
    }

    /// Sets an absolute virtual-cycle deadline.
    #[must_use]
    pub fn with_deadline_cycle(mut self, cycle: u64) -> Submission {
        self.deadline_cycle = Some(cycle);
        self
    }

    /// Selects the execution model for the uninterrupted path.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Submission {
        self.backend = backend;
        self
    }

    /// Arms raw fault strikes (forces the supervised cycle-accurate
    /// path).
    #[must_use]
    pub fn with_faults(mut self, faults: Vec<(u64, FaultSite)>) -> Submission {
        self.faults = faults;
        self
    }

    /// Deterministically generates the `X` and `W` operands from the
    /// submission's seed: a multiplicative-hash stream mapped into
    /// `[-0.5, 0.5)` at 1/64 granularity, the same family the repo's
    /// batch tests use. A pure function of `(seed, shape)`.
    pub fn operands(&self) -> (Vec<F16>, Vec<F16>) {
        let gen = |len: usize, s: u32| -> Vec<F16> {
            (0..len)
                .map(|i| {
                    let h = (i as u32)
                        .wrapping_add(s.wrapping_mul(0x9E37_79B9))
                        .wrapping_mul(2_654_435_761)
                        >> 17;
                    F16::from_f32((h % 64) as f32 / 64.0 - 0.5)
                })
                .collect()
        };
        (
            gen(self.shape.x_len(), self.seed),
            gen(self.shape.w_len(), self.seed ^ 0x5555),
        )
    }
}

/// Why a submission was turned away at admission. Typed so callers can
/// distinguish "slow down" (quota), "come back later" (queue) and
/// "impossible as asked" (deadline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The tenant exceeded its in-flight quota or its token bucket
    /// lacked the submission's estimated cycles.
    QuotaExceeded {
        /// The over-quota tenant.
        tenant: u32,
    },
    /// The bounded queue was full and no lower-priority victim existed.
    QueueFull,
    /// The job could not meet its deadline even on an idle server.
    DeadlineInfeasible {
        /// Estimated cycles the job needs.
        needed: u64,
        /// The absolute deadline it asked for.
        deadline: u64,
    },
}

impl Rejected {
    /// Stable lowercase label, used in the canonical report.
    pub fn label(&self) -> &'static str {
        self.reason().label()
    }

    /// The observability-layer reason kind for this rejection.
    pub fn reason(&self) -> RejectReason {
        match self {
            Rejected::QuotaExceeded { .. } => RejectReason::Quota,
            Rejected::QueueFull => RejectReason::QueueFull,
            Rejected::DeadlineInfeasible { .. } => RejectReason::DeadlineInfeasible,
        }
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QuotaExceeded { tenant } => {
                write!(f, "tenant {tenant} exceeded its quota or rate limit")
            }
            Rejected::QueueFull => write!(f, "admission queue full"),
            Rejected::DeadlineInfeasible { needed, deadline } => {
                write!(f, "deadline {deadline} infeasible: {needed} cycles needed")
            }
        }
    }
}

/// One rejected submission, for the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RejectedRecord {
    /// The submission's id.
    pub id: u64,
    /// The submitting tenant.
    pub tenant: u32,
    /// Virtual cycle of the decision.
    pub cycle: u64,
    /// Why it was turned away.
    pub reason: Rejected,
}

/// Terminal state of an *accepted* job. Every admitted job ends in
/// exactly one of these — the service never silently drops work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceStatus {
    /// Ran to completion; the output is bit-exact with an unloaded run.
    Completed,
    /// Evicted under overload or a lapsed deadline; the partial work is
    /// preserved in a resumable checkpoint.
    Evicted,
    /// Ended in a typed failure (engine error or persistent panic) after
    /// exhausting the retry budget. The payload is the failure message.
    Failed(String),
}

impl ServiceStatus {
    /// Stable lowercase label, used in the canonical report.
    pub fn label(&self) -> &'static str {
        match self {
            ServiceStatus::Completed => "completed",
            ServiceStatus::Evicted => "evicted",
            ServiceStatus::Failed(_) => "failed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operands_are_deterministic_and_sized() {
        let shape = GemmShape::new(4, 8, 6);
        let a = Submission::new(1, 0, 0, shape).with_seed(42);
        let b = Submission::new(2, 0, 9, shape).with_seed(42);
        assert_eq!(a.operands(), b.operands(), "same seed, same operands");
        let (x, w) = a.operands();
        assert_eq!(x.len(), shape.x_len());
        assert_eq!(w.len(), shape.w_len());
        let c = a.clone().with_seed(43);
        assert_ne!(a.operands(), c.operands(), "different seed differs");
    }

    #[test]
    fn rejection_labels_are_distinct() {
        let labels = [
            Rejected::QuotaExceeded { tenant: 0 }.label(),
            Rejected::QueueFull.label(),
            Rejected::DeadlineInfeasible {
                needed: 1,
                deadline: 0,
            }
            .label(),
        ];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
